//! # xxi — *21st Century Computer Architecture*, as executable models
//!
//! Facade crate for the `xxi-arch` workspace: a cross-layer, energy-first
//! computer-architecture simulation framework spanning **sensors to
//! clouds**, built as the executable form of the CCC community white paper
//! *21st Century Computer Architecture* (2012; PPoPP 2014 keynote).
//!
//! The paper is an agenda, not a system — so every quantitative claim and
//! every conceptual table in it became a model plus an experiment here.
//! See `DESIGN.md` for the full inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results. The subsystems:
//!
//! | module | crate | paper hook |
//! |---|---|---|
//! | [`core`] | `xxi-core` | DES engine, units, stats, RNG |
//! | [`tech`] | `xxi-tech` | Table 1: Moore vs Dennard, NTV, SER, aging, dark silicon, NRE |
//! | [`mem`] | `xxi-mem` | caches, MESI, DRAM, NVM + Start-Gap, hybrid memory, energy ladder |
//! | [`noc`] | `xxi-noc` | mesh NoC, photonics, 3D stacking, link energy |
//! | [`cpu`] | `xxi-cpu` | Pollack cores, Hill–Marty, chip composer, CPU-DB attribution |
//! | [`accel`] | `xxi-accel` | specialization ladder, CGRA, NRE breakeven, offload coverage |
//! | [`rel`] | `xxi-rel` | SECDED ECC, fault injection, Young–Daly, invariant checker |
//! | [`sec`] | `xxi-sec` | information-flow tracking, protection domains, cache side channels |
//! | [`approx`] | `xxi-approx` | approximate data types, perforation, quality-energy Pareto |
//! | [`sensor`] | `xxi-sensor` | harvesting, radios, on-sensor filtering, intermittent computing |
//! | [`cloud`] | `xxi-cloud` | tail latency (the 63% claim), hedging, queueing, DC power, QoS |
//! | [`stack`] | `xxi-stack` | work-stealing runtime, DVFS governor, offload planner, intent |
//!
//! ## Quickstart
//!
//! ```
//! use xxi::tech::{NodeDb, ScalingRule, ScalingTrajectory};
//! use xxi::cloud::fanout::analytic_straggler_prob;
//!
//! // Table 1: Dennard scaling is gone — running a 7 nm die flat-out needs
//! // >10× the power of its 180 nm ancestor.
//! let db = NodeDb::standard();
//! let real = ScalingTrajectory::compute(&db, ScalingRule::PostDennard);
//! assert!(real.final_power_growth() > 10.0);
//!
//! // §2.1: with fan-out 100, 63% of requests see the leaf p99.
//! let p = analytic_straggler_prob(100, 0.99);
//! assert!((p - 0.634).abs() < 0.001);
//! ```

pub use xxi_accel as accel;
pub use xxi_approx as approx;
pub use xxi_check as check;
pub use xxi_cloud as cloud;
pub use xxi_core as core;
pub use xxi_cpu as cpu;
pub use xxi_mem as mem;
pub use xxi_noc as noc;
pub use xxi_rel as rel;
pub use xxi_sec as sec;
pub use xxi_sensor as sensor;
pub use xxi_stack as stack;
pub use xxi_tech as tech;

pub use xxi_core::{Result, XxiError};
