/root/repo/target/debug/examples/chip_designer-cc62c3ecb0fba971.d: examples/chip_designer.rs

/root/repo/target/debug/examples/chip_designer-cc62c3ecb0fba971: examples/chip_designer.rs

examples/chip_designer.rs:
