/root/repo/target/debug/examples/hardened_soc-c4e77a0905cc06b8.d: examples/hardened_soc.rs

/root/repo/target/debug/examples/hardened_soc-c4e77a0905cc06b8: examples/hardened_soc.rs

examples/hardened_soc.rs:
