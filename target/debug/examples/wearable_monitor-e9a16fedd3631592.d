/root/repo/target/debug/examples/wearable_monitor-e9a16fedd3631592.d: examples/wearable_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libwearable_monitor-e9a16fedd3631592.rmeta: examples/wearable_monitor.rs Cargo.toml

examples/wearable_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
