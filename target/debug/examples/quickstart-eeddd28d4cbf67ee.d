/root/repo/target/debug/examples/quickstart-eeddd28d4cbf67ee.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-eeddd28d4cbf67ee: examples/quickstart.rs

examples/quickstart.rs:
