/root/repo/target/debug/examples/search_frontend-fb77629959d02fb6.d: examples/search_frontend.rs

/root/repo/target/debug/examples/search_frontend-fb77629959d02fb6: examples/search_frontend.rs

examples/search_frontend.rs:
