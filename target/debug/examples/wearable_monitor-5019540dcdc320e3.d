/root/repo/target/debug/examples/wearable_monitor-5019540dcdc320e3.d: examples/wearable_monitor.rs

/root/repo/target/debug/examples/wearable_monitor-5019540dcdc320e3: examples/wearable_monitor.rs

examples/wearable_monitor.rs:
