/root/repo/target/debug/examples/hardened_soc-284d70d0fa199e41.d: examples/hardened_soc.rs Cargo.toml

/root/repo/target/debug/examples/libhardened_soc-284d70d0fa199e41.rmeta: examples/hardened_soc.rs Cargo.toml

examples/hardened_soc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
