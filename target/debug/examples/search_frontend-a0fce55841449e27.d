/root/repo/target/debug/examples/search_frontend-a0fce55841449e27.d: examples/search_frontend.rs Cargo.toml

/root/repo/target/debug/examples/libsearch_frontend-a0fce55841449e27.rmeta: examples/search_frontend.rs Cargo.toml

examples/search_frontend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
