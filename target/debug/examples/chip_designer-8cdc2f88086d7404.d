/root/repo/target/debug/examples/chip_designer-8cdc2f88086d7404.d: examples/chip_designer.rs Cargo.toml

/root/repo/target/debug/examples/libchip_designer-8cdc2f88086d7404.rmeta: examples/chip_designer.rs Cargo.toml

examples/chip_designer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
