/root/repo/target/debug/examples/memory_futures-c952cf7ae20fa71f.d: examples/memory_futures.rs Cargo.toml

/root/repo/target/debug/examples/libmemory_futures-c952cf7ae20fa71f.rmeta: examples/memory_futures.rs Cargo.toml

examples/memory_futures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
