/root/repo/target/debug/examples/memory_futures-09c4d40542ff4b28.d: examples/memory_futures.rs

/root/repo/target/debug/examples/memory_futures-09c4d40542ff4b28: examples/memory_futures.rs

examples/memory_futures.rs:
