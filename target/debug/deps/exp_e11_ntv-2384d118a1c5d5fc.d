/root/repo/target/debug/deps/exp_e11_ntv-2384d118a1c5d5fc.d: crates/xxi-bench/src/bin/exp_e11_ntv.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e11_ntv-2384d118a1c5d5fc.rmeta: crates/xxi-bench/src/bin/exp_e11_ntv.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e11_ntv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
