/root/repo/target/debug/deps/xxi_approx-84b2080d58e1b975.d: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

/root/repo/target/debug/deps/libxxi_approx-84b2080d58e1b975.rlib: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

/root/repo/target/debug/deps/libxxi_approx-84b2080d58e1b975.rmeta: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

crates/xxi-approx/src/lib.rs:
crates/xxi-approx/src/memo.rs:
crates/xxi-approx/src/number.rs:
crates/xxi-approx/src/pareto.rs:
crates/xxi-approx/src/perforation.rs:
crates/xxi-approx/src/quality.rs:
crates/xxi-approx/src/signal.rs:
