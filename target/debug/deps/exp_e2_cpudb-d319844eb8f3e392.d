/root/repo/target/debug/deps/exp_e2_cpudb-d319844eb8f3e392.d: crates/xxi-bench/src/bin/exp_e2_cpudb.rs

/root/repo/target/debug/deps/exp_e2_cpudb-d319844eb8f3e392: crates/xxi-bench/src/bin/exp_e2_cpudb.rs

crates/xxi-bench/src/bin/exp_e2_cpudb.rs:
