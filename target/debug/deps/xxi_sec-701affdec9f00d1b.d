/root/repo/target/debug/deps/xxi_sec-701affdec9f00d1b.d: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

/root/repo/target/debug/deps/libxxi_sec-701affdec9f00d1b.rmeta: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

crates/xxi-sec/src/lib.rs:
crates/xxi-sec/src/ift.rs:
crates/xxi-sec/src/protection.rs:
crates/xxi-sec/src/sidechannel.rs:
