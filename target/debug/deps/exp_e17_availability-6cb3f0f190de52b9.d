/root/repo/target/debug/deps/exp_e17_availability-6cb3f0f190de52b9.d: crates/xxi-bench/src/bin/exp_e17_availability.rs

/root/repo/target/debug/deps/exp_e17_availability-6cb3f0f190de52b9: crates/xxi-bench/src/bin/exp_e17_availability.rs

crates/xxi-bench/src/bin/exp_e17_availability.rs:
