/root/repo/target/debug/deps/xxi_sec-27315785fe1cc618.d: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_sec-27315785fe1cc618.rmeta: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs Cargo.toml

crates/xxi-sec/src/lib.rs:
crates/xxi-sec/src/ift.rs:
crates/xxi-sec/src/protection.rs:
crates/xxi-sec/src/sidechannel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
