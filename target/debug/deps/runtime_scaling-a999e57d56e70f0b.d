/root/repo/target/debug/deps/runtime_scaling-a999e57d56e70f0b.d: tests/runtime_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_scaling-a999e57d56e70f0b.rmeta: tests/runtime_scaling.rs Cargo.toml

tests/runtime_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
