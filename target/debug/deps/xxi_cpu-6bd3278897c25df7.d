/root/repo/target/debug/deps/xxi_cpu-6bd3278897c25df7.d: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs

/root/repo/target/debug/deps/libxxi_cpu-6bd3278897c25df7.rlib: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs

/root/repo/target/debug/deps/libxxi_cpu-6bd3278897c25df7.rmeta: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs

crates/xxi-cpu/src/lib.rs:
crates/xxi-cpu/src/chip.rs:
crates/xxi-cpu/src/core.rs:
crates/xxi-cpu/src/cpudb.rs:
crates/xxi-cpu/src/hetero.rs:
crates/xxi-cpu/src/hillmarty.rs:
crates/xxi-cpu/src/pipeline.rs:
