/root/repo/target/debug/deps/xxi_sensor-46086ab99fe159c3.d: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

/root/repo/target/debug/deps/xxi_sensor-46086ab99fe159c3: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

crates/xxi-sensor/src/lib.rs:
crates/xxi-sensor/src/intermittent.rs:
crates/xxi-sensor/src/mcu.rs:
crates/xxi-sensor/src/node.rs:
crates/xxi-sensor/src/power.rs:
crates/xxi-sensor/src/radio.rs:
