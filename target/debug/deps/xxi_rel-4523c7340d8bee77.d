/root/repo/target/debug/deps/xxi_rel-4523c7340d8bee77.d: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs

/root/repo/target/debug/deps/libxxi_rel-4523c7340d8bee77.rlib: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs

/root/repo/target/debug/deps/libxxi_rel-4523c7340d8bee77.rmeta: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs

crates/xxi-rel/src/lib.rs:
crates/xxi-rel/src/checkpoint.rs:
crates/xxi-rel/src/ecc.rs:
crates/xxi-rel/src/failsafe.rs:
crates/xxi-rel/src/inject.rs:
crates/xxi-rel/src/invariant.rs:
crates/xxi-rel/src/scrub.rs:
crates/xxi-rel/src/tmr.rs:
