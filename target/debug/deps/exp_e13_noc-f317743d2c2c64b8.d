/root/repo/target/debug/deps/exp_e13_noc-f317743d2c2c64b8.d: crates/xxi-bench/src/bin/exp_e13_noc.rs

/root/repo/target/debug/deps/exp_e13_noc-f317743d2c2c64b8: crates/xxi-bench/src/bin/exp_e13_noc.rs

crates/xxi-bench/src/bin/exp_e13_noc.rs:
