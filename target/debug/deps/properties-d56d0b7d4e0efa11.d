/root/repo/target/debug/deps/properties-d56d0b7d4e0efa11.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d56d0b7d4e0efa11.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
