/root/repo/target/debug/deps/exp_e7_specialization-05077286cf1afaf0.d: crates/xxi-bench/src/bin/exp_e7_specialization.rs

/root/repo/target/debug/deps/exp_e7_specialization-05077286cf1afaf0: crates/xxi-bench/src/bin/exp_e7_specialization.rs

crates/xxi-bench/src/bin/exp_e7_specialization.rs:
