/root/repo/target/debug/deps/xxi_bench-907dfea237d81654.d: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_bench-907dfea237d81654.rmeta: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs Cargo.toml

crates/xxi-bench/src/lib.rs:
crates/xxi-bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
