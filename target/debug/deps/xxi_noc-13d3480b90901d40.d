/root/repo/target/debug/deps/xxi_noc-13d3480b90901d40.d: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_noc-13d3480b90901d40.rmeta: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs Cargo.toml

crates/xxi-noc/src/lib.rs:
crates/xxi-noc/src/analysis.rs:
crates/xxi-noc/src/crossbar.rs:
crates/xxi-noc/src/link.rs:
crates/xxi-noc/src/sim.rs:
crates/xxi-noc/src/topology.rs:
crates/xxi-noc/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
