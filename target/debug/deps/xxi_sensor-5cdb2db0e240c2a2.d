/root/repo/target/debug/deps/xxi_sensor-5cdb2db0e240c2a2.d: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_sensor-5cdb2db0e240c2a2.rmeta: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs Cargo.toml

crates/xxi-sensor/src/lib.rs:
crates/xxi-sensor/src/intermittent.rs:
crates/xxi-sensor/src/mcu.rs:
crates/xxi-sensor/src/node.rs:
crates/xxi-sensor/src/power.rs:
crates/xxi-sensor/src/radio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
