/root/repo/target/debug/deps/exp_e7_specialization-746944d66f3fbed3.d: crates/xxi-bench/src/bin/exp_e7_specialization.rs

/root/repo/target/debug/deps/exp_e7_specialization-746944d66f3fbed3: crates/xxi-bench/src/bin/exp_e7_specialization.rs

crates/xxi-bench/src/bin/exp_e7_specialization.rs:
