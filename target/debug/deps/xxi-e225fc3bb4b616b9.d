/root/repo/target/debug/deps/xxi-e225fc3bb4b616b9.d: src/lib.rs

/root/repo/target/debug/deps/xxi-e225fc3bb4b616b9: src/lib.rs

src/lib.rs:
