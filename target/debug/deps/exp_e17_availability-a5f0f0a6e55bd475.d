/root/repo/target/debug/deps/exp_e17_availability-a5f0f0a6e55bd475.d: crates/xxi-bench/src/bin/exp_e17_availability.rs

/root/repo/target/debug/deps/exp_e17_availability-a5f0f0a6e55bd475: crates/xxi-bench/src/bin/exp_e17_availability.rs

crates/xxi-bench/src/bin/exp_e17_availability.rs:
