/root/repo/target/debug/deps/serde-44d0bddddafe9338.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/serde-44d0bddddafe9338: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
