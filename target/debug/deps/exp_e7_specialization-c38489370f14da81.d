/root/repo/target/debug/deps/exp_e7_specialization-c38489370f14da81.d: crates/xxi-bench/src/bin/exp_e7_specialization.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e7_specialization-c38489370f14da81.rmeta: crates/xxi-bench/src/bin/exp_e7_specialization.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e7_specialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
