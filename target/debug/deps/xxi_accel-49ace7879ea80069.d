/root/repo/target/debug/deps/xxi_accel-49ace7879ea80069.d: crates/xxi-accel/src/lib.rs crates/xxi-accel/src/cgra.rs crates/xxi-accel/src/fpga.rs crates/xxi-accel/src/ladder.rs crates/xxi-accel/src/nre.rs crates/xxi-accel/src/offload.rs

/root/repo/target/debug/deps/xxi_accel-49ace7879ea80069: crates/xxi-accel/src/lib.rs crates/xxi-accel/src/cgra.rs crates/xxi-accel/src/fpga.rs crates/xxi-accel/src/ladder.rs crates/xxi-accel/src/nre.rs crates/xxi-accel/src/offload.rs

crates/xxi-accel/src/lib.rs:
crates/xxi-accel/src/cgra.rs:
crates/xxi-accel/src/fpga.rs:
crates/xxi-accel/src/ladder.rs:
crates/xxi-accel/src/nre.rs:
crates/xxi-accel/src/offload.rs:
