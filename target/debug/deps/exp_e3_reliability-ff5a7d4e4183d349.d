/root/repo/target/debug/deps/exp_e3_reliability-ff5a7d4e4183d349.d: crates/xxi-bench/src/bin/exp_e3_reliability.rs

/root/repo/target/debug/deps/exp_e3_reliability-ff5a7d4e4183d349: crates/xxi-bench/src/bin/exp_e3_reliability.rs

crates/xxi-bench/src/bin/exp_e3_reliability.rs:
