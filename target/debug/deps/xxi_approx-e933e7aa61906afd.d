/root/repo/target/debug/deps/xxi_approx-e933e7aa61906afd.d: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

/root/repo/target/debug/deps/libxxi_approx-e933e7aa61906afd.rmeta: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

crates/xxi-approx/src/lib.rs:
crates/xxi-approx/src/memo.rs:
crates/xxi-approx/src/number.rs:
crates/xxi-approx/src/pareto.rs:
crates/xxi-approx/src/perforation.rs:
crates/xxi-approx/src/quality.rs:
crates/xxi-approx/src/signal.rs:
