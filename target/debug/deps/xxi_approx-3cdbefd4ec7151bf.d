/root/repo/target/debug/deps/xxi_approx-3cdbefd4ec7151bf.d: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_approx-3cdbefd4ec7151bf.rmeta: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs Cargo.toml

crates/xxi-approx/src/lib.rs:
crates/xxi-approx/src/memo.rs:
crates/xxi-approx/src/number.rs:
crates/xxi-approx/src/pareto.rs:
crates/xxi-approx/src/perforation.rs:
crates/xxi-approx/src/quality.rs:
crates/xxi-approx/src/signal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
