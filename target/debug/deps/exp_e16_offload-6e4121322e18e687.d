/root/repo/target/debug/deps/exp_e16_offload-6e4121322e18e687.d: crates/xxi-bench/src/bin/exp_e16_offload.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e16_offload-6e4121322e18e687.rmeta: crates/xxi-bench/src/bin/exp_e16_offload.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e16_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
