/root/repo/target/debug/deps/exp_e1_scaling-7ad5f6d63948708a.d: crates/xxi-bench/src/bin/exp_e1_scaling.rs

/root/repo/target/debug/deps/exp_e1_scaling-7ad5f6d63948708a: crates/xxi-bench/src/bin/exp_e1_scaling.rs

crates/xxi-bench/src/bin/exp_e1_scaling.rs:
