/root/repo/target/debug/deps/exp_e8_pyramid-515f7b8742751e0f.d: crates/xxi-bench/src/bin/exp_e8_pyramid.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e8_pyramid-515f7b8742751e0f.rmeta: crates/xxi-bench/src/bin/exp_e8_pyramid.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e8_pyramid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
