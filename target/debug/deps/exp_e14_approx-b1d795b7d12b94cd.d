/root/repo/target/debug/deps/exp_e14_approx-b1d795b7d12b94cd.d: crates/xxi-bench/src/bin/exp_e14_approx.rs

/root/repo/target/debug/deps/exp_e14_approx-b1d795b7d12b94cd: crates/xxi-bench/src/bin/exp_e14_approx.rs

crates/xxi-bench/src/bin/exp_e14_approx.rs:
