/root/repo/target/debug/deps/exp_e18_scaling-9921fd5792e16ef8.d: crates/xxi-bench/src/bin/exp_e18_scaling.rs

/root/repo/target/debug/deps/exp_e18_scaling-9921fd5792e16ef8: crates/xxi-bench/src/bin/exp_e18_scaling.rs

crates/xxi-bench/src/bin/exp_e18_scaling.rs:
