/root/repo/target/debug/deps/exp_e15_invariant-fad44c8f1942890e.d: crates/xxi-bench/src/bin/exp_e15_invariant.rs

/root/repo/target/debug/deps/exp_e15_invariant-fad44c8f1942890e: crates/xxi-bench/src/bin/exp_e15_invariant.rs

crates/xxi-bench/src/bin/exp_e15_invariant.rs:
