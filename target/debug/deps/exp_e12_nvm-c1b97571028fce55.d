/root/repo/target/debug/deps/exp_e12_nvm-c1b97571028fce55.d: crates/xxi-bench/src/bin/exp_e12_nvm.rs

/root/repo/target/debug/deps/exp_e12_nvm-c1b97571028fce55: crates/xxi-bench/src/bin/exp_e12_nvm.rs

crates/xxi-bench/src/bin/exp_e12_nvm.rs:
