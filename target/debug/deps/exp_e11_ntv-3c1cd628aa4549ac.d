/root/repo/target/debug/deps/exp_e11_ntv-3c1cd628aa4549ac.d: crates/xxi-bench/src/bin/exp_e11_ntv.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e11_ntv-3c1cd628aa4549ac.rmeta: crates/xxi-bench/src/bin/exp_e11_ntv.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e11_ntv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
