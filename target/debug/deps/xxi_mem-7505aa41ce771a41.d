/root/repo/target/debug/deps/xxi_mem-7505aa41ce771a41.d: crates/xxi-mem/src/lib.rs crates/xxi-mem/src/cache.rs crates/xxi-mem/src/coherence.rs crates/xxi-mem/src/compress.rs crates/xxi-mem/src/dram.rs crates/xxi-mem/src/energy.rs crates/xxi-mem/src/hierarchy.rs crates/xxi-mem/src/hybrid.rs crates/xxi-mem/src/nvm.rs crates/xxi-mem/src/prefetch.rs crates/xxi-mem/src/tlb.rs crates/xxi-mem/src/trace.rs crates/xxi-mem/src/wear.rs

/root/repo/target/debug/deps/libxxi_mem-7505aa41ce771a41.rmeta: crates/xxi-mem/src/lib.rs crates/xxi-mem/src/cache.rs crates/xxi-mem/src/coherence.rs crates/xxi-mem/src/compress.rs crates/xxi-mem/src/dram.rs crates/xxi-mem/src/energy.rs crates/xxi-mem/src/hierarchy.rs crates/xxi-mem/src/hybrid.rs crates/xxi-mem/src/nvm.rs crates/xxi-mem/src/prefetch.rs crates/xxi-mem/src/tlb.rs crates/xxi-mem/src/trace.rs crates/xxi-mem/src/wear.rs

crates/xxi-mem/src/lib.rs:
crates/xxi-mem/src/cache.rs:
crates/xxi-mem/src/coherence.rs:
crates/xxi-mem/src/compress.rs:
crates/xxi-mem/src/dram.rs:
crates/xxi-mem/src/energy.rs:
crates/xxi-mem/src/hierarchy.rs:
crates/xxi-mem/src/hybrid.rs:
crates/xxi-mem/src/nvm.rs:
crates/xxi-mem/src/prefetch.rs:
crates/xxi-mem/src/tlb.rs:
crates/xxi-mem/src/trace.rs:
crates/xxi-mem/src/wear.rs:
