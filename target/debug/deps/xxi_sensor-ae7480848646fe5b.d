/root/repo/target/debug/deps/xxi_sensor-ae7480848646fe5b.d: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

/root/repo/target/debug/deps/libxxi_sensor-ae7480848646fe5b.rlib: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

/root/repo/target/debug/deps/libxxi_sensor-ae7480848646fe5b.rmeta: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

crates/xxi-sensor/src/lib.rs:
crates/xxi-sensor/src/intermittent.rs:
crates/xxi-sensor/src/mcu.rs:
crates/xxi-sensor/src/node.rs:
crates/xxi-sensor/src/power.rs:
crates/xxi-sensor/src/radio.rs:
