/root/repo/target/debug/deps/exp_e12_nvm-93a703eb2fc5af33.d: crates/xxi-bench/src/bin/exp_e12_nvm.rs

/root/repo/target/debug/deps/exp_e12_nvm-93a703eb2fc5af33: crates/xxi-bench/src/bin/exp_e12_nvm.rs

crates/xxi-bench/src/bin/exp_e12_nvm.rs:
