/root/repo/target/debug/deps/exp_e4_comm_energy-6a360e55665863a7.d: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e4_comm_energy-6a360e55665863a7.rmeta: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e4_comm_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
