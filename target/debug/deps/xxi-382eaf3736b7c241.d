/root/repo/target/debug/deps/xxi-382eaf3736b7c241.d: src/lib.rs

/root/repo/target/debug/deps/libxxi-382eaf3736b7c241.rlib: src/lib.rs

/root/repo/target/debug/deps/libxxi-382eaf3736b7c241.rmeta: src/lib.rs

src/lib.rs:
