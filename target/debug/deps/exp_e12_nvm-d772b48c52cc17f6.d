/root/repo/target/debug/deps/exp_e12_nvm-d772b48c52cc17f6.d: crates/xxi-bench/src/bin/exp_e12_nvm.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e12_nvm-d772b48c52cc17f6.rmeta: crates/xxi-bench/src/bin/exp_e12_nvm.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e12_nvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
