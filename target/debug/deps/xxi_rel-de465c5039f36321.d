/root/repo/target/debug/deps/xxi_rel-de465c5039f36321.d: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_rel-de465c5039f36321.rmeta: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs Cargo.toml

crates/xxi-rel/src/lib.rs:
crates/xxi-rel/src/checkpoint.rs:
crates/xxi-rel/src/ecc.rs:
crates/xxi-rel/src/failsafe.rs:
crates/xxi-rel/src/inject.rs:
crates/xxi-rel/src/invariant.rs:
crates/xxi-rel/src/scrub.rs:
crates/xxi-rel/src/tmr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
