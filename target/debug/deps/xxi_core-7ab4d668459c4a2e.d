/root/repo/target/debug/deps/xxi_core-7ab4d668459c4a2e.d: crates/xxi-core/src/lib.rs crates/xxi-core/src/des.rs crates/xxi-core/src/error.rs crates/xxi-core/src/metrics.rs crates/xxi-core/src/obs/mod.rs crates/xxi-core/src/obs/hist.rs crates/xxi-core/src/obs/ledger.rs crates/xxi-core/src/obs/trace.rs crates/xxi-core/src/rng.rs crates/xxi-core/src/stats.rs crates/xxi-core/src/table.rs crates/xxi-core/src/time.rs crates/xxi-core/src/units.rs

/root/repo/target/debug/deps/libxxi_core-7ab4d668459c4a2e.rmeta: crates/xxi-core/src/lib.rs crates/xxi-core/src/des.rs crates/xxi-core/src/error.rs crates/xxi-core/src/metrics.rs crates/xxi-core/src/obs/mod.rs crates/xxi-core/src/obs/hist.rs crates/xxi-core/src/obs/ledger.rs crates/xxi-core/src/obs/trace.rs crates/xxi-core/src/rng.rs crates/xxi-core/src/stats.rs crates/xxi-core/src/table.rs crates/xxi-core/src/time.rs crates/xxi-core/src/units.rs

crates/xxi-core/src/lib.rs:
crates/xxi-core/src/des.rs:
crates/xxi-core/src/error.rs:
crates/xxi-core/src/metrics.rs:
crates/xxi-core/src/obs/mod.rs:
crates/xxi-core/src/obs/hist.rs:
crates/xxi-core/src/obs/ledger.rs:
crates/xxi-core/src/obs/trace.rs:
crates/xxi-core/src/rng.rs:
crates/xxi-core/src/stats.rs:
crates/xxi-core/src/table.rs:
crates/xxi-core/src/time.rs:
crates/xxi-core/src/units.rs:
