/root/repo/target/debug/deps/xxi_sec-f530696327cca104.d: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

/root/repo/target/debug/deps/libxxi_sec-f530696327cca104.rlib: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

/root/repo/target/debug/deps/libxxi_sec-f530696327cca104.rmeta: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

crates/xxi-sec/src/lib.rs:
crates/xxi-sec/src/ift.rs:
crates/xxi-sec/src/protection.rs:
crates/xxi-sec/src/sidechannel.rs:
