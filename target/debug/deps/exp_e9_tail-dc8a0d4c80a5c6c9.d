/root/repo/target/debug/deps/exp_e9_tail-dc8a0d4c80a5c6c9.d: crates/xxi-bench/src/bin/exp_e9_tail.rs

/root/repo/target/debug/deps/exp_e9_tail-dc8a0d4c80a5c6c9: crates/xxi-bench/src/bin/exp_e9_tail.rs

crates/xxi-bench/src/bin/exp_e9_tail.rs:
