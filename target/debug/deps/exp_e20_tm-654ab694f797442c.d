/root/repo/target/debug/deps/exp_e20_tm-654ab694f797442c.d: crates/xxi-bench/src/bin/exp_e20_tm.rs

/root/repo/target/debug/deps/exp_e20_tm-654ab694f797442c: crates/xxi-bench/src/bin/exp_e20_tm.rs

crates/xxi-bench/src/bin/exp_e20_tm.rs:
