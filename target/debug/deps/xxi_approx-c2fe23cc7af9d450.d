/root/repo/target/debug/deps/xxi_approx-c2fe23cc7af9d450.d: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

/root/repo/target/debug/deps/xxi_approx-c2fe23cc7af9d450: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

crates/xxi-approx/src/lib.rs:
crates/xxi-approx/src/memo.rs:
crates/xxi-approx/src/number.rs:
crates/xxi-approx/src/pareto.rs:
crates/xxi-approx/src/perforation.rs:
crates/xxi-approx/src/quality.rs:
crates/xxi-approx/src/signal.rs:
