/root/repo/target/debug/deps/xxi-f4a1b7943dcfb4d9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxxi-f4a1b7943dcfb4d9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
