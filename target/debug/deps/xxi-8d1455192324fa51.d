/root/repo/target/debug/deps/xxi-8d1455192324fa51.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxxi-8d1455192324fa51.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
