/root/repo/target/debug/deps/properties-36bac95ac66e657e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-36bac95ac66e657e: tests/properties.rs

tests/properties.rs:
