/root/repo/target/debug/deps/xxi_cloud-3e081465d1d020d0.d: crates/xxi-cloud/src/lib.rs crates/xxi-cloud/src/fanout.rs crates/xxi-cloud/src/hedge.rs crates/xxi-cloud/src/latency.rs crates/xxi-cloud/src/obs.rs crates/xxi-cloud/src/power.rs crates/xxi-cloud/src/qos.rs crates/xxi-cloud/src/queueing.rs crates/xxi-cloud/src/replication.rs

/root/repo/target/debug/deps/libxxi_cloud-3e081465d1d020d0.rmeta: crates/xxi-cloud/src/lib.rs crates/xxi-cloud/src/fanout.rs crates/xxi-cloud/src/hedge.rs crates/xxi-cloud/src/latency.rs crates/xxi-cloud/src/obs.rs crates/xxi-cloud/src/power.rs crates/xxi-cloud/src/qos.rs crates/xxi-cloud/src/queueing.rs crates/xxi-cloud/src/replication.rs

crates/xxi-cloud/src/lib.rs:
crates/xxi-cloud/src/fanout.rs:
crates/xxi-cloud/src/hedge.rs:
crates/xxi-cloud/src/latency.rs:
crates/xxi-cloud/src/obs.rs:
crates/xxi-cloud/src/power.rs:
crates/xxi-cloud/src/qos.rs:
crates/xxi-cloud/src/queueing.rs:
crates/xxi-cloud/src/replication.rs:
