/root/repo/target/debug/deps/xxi_cpu-dac2343746782adc.d: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs

/root/repo/target/debug/deps/libxxi_cpu-dac2343746782adc.rmeta: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs

crates/xxi-cpu/src/lib.rs:
crates/xxi-cpu/src/chip.rs:
crates/xxi-cpu/src/core.rs:
crates/xxi-cpu/src/cpudb.rs:
crates/xxi-cpu/src/hetero.rs:
crates/xxi-cpu/src/hillmarty.rs:
crates/xxi-cpu/src/pipeline.rs:
