/root/repo/target/debug/deps/exp_e19_security-f53aebbb86ef500a.d: crates/xxi-bench/src/bin/exp_e19_security.rs

/root/repo/target/debug/deps/exp_e19_security-f53aebbb86ef500a: crates/xxi-bench/src/bin/exp_e19_security.rs

crates/xxi-bench/src/bin/exp_e19_security.rs:
