/root/repo/target/debug/deps/exp_e16_offload-9b172ba1e399750f.d: crates/xxi-bench/src/bin/exp_e16_offload.rs

/root/repo/target/debug/deps/exp_e16_offload-9b172ba1e399750f: crates/xxi-bench/src/bin/exp_e16_offload.rs

crates/xxi-bench/src/bin/exp_e16_offload.rs:
