/root/repo/target/debug/deps/sensor_to_cloud-406a53973f88d5be.d: tests/sensor_to_cloud.rs

/root/repo/target/debug/deps/sensor_to_cloud-406a53973f88d5be: tests/sensor_to_cloud.rs

tests/sensor_to_cloud.rs:
