/root/repo/target/debug/deps/serde-4fefc088947d24e7.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-4fefc088947d24e7.so: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
