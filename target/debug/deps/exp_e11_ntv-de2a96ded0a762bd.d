/root/repo/target/debug/deps/exp_e11_ntv-de2a96ded0a762bd.d: crates/xxi-bench/src/bin/exp_e11_ntv.rs

/root/repo/target/debug/deps/exp_e11_ntv-de2a96ded0a762bd: crates/xxi-bench/src/bin/exp_e11_ntv.rs

crates/xxi-bench/src/bin/exp_e11_ntv.rs:
