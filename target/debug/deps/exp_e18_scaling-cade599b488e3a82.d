/root/repo/target/debug/deps/exp_e18_scaling-cade599b488e3a82.d: crates/xxi-bench/src/bin/exp_e18_scaling.rs

/root/repo/target/debug/deps/exp_e18_scaling-cade599b488e3a82: crates/xxi-bench/src/bin/exp_e18_scaling.rs

crates/xxi-bench/src/bin/exp_e18_scaling.rs:
