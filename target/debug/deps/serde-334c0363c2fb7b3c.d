/root/repo/target/debug/deps/serde-334c0363c2fb7b3c.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-334c0363c2fb7b3c.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
