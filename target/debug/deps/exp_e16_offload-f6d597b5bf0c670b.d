/root/repo/target/debug/deps/exp_e16_offload-f6d597b5bf0c670b.d: crates/xxi-bench/src/bin/exp_e16_offload.rs

/root/repo/target/debug/deps/exp_e16_offload-f6d597b5bf0c670b: crates/xxi-bench/src/bin/exp_e16_offload.rs

crates/xxi-bench/src/bin/exp_e16_offload.rs:
