/root/repo/target/debug/deps/exp_e10_sensor-1f3dd9f45ad833a3.d: crates/xxi-bench/src/bin/exp_e10_sensor.rs

/root/repo/target/debug/deps/exp_e10_sensor-1f3dd9f45ad833a3: crates/xxi-bench/src/bin/exp_e10_sensor.rs

crates/xxi-bench/src/bin/exp_e10_sensor.rs:
