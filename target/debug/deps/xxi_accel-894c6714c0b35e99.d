/root/repo/target/debug/deps/xxi_accel-894c6714c0b35e99.d: crates/xxi-accel/src/lib.rs crates/xxi-accel/src/cgra.rs crates/xxi-accel/src/fpga.rs crates/xxi-accel/src/ladder.rs crates/xxi-accel/src/nre.rs crates/xxi-accel/src/offload.rs

/root/repo/target/debug/deps/libxxi_accel-894c6714c0b35e99.rmeta: crates/xxi-accel/src/lib.rs crates/xxi-accel/src/cgra.rs crates/xxi-accel/src/fpga.rs crates/xxi-accel/src/ladder.rs crates/xxi-accel/src/nre.rs crates/xxi-accel/src/offload.rs

crates/xxi-accel/src/lib.rs:
crates/xxi-accel/src/cgra.rs:
crates/xxi-accel/src/fpga.rs:
crates/xxi-accel/src/ladder.rs:
crates/xxi-accel/src/nre.rs:
crates/xxi-accel/src/offload.rs:
