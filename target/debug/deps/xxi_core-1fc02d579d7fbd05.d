/root/repo/target/debug/deps/xxi_core-1fc02d579d7fbd05.d: crates/xxi-core/src/lib.rs crates/xxi-core/src/des.rs crates/xxi-core/src/error.rs crates/xxi-core/src/metrics.rs crates/xxi-core/src/obs/mod.rs crates/xxi-core/src/obs/hist.rs crates/xxi-core/src/obs/ledger.rs crates/xxi-core/src/obs/trace.rs crates/xxi-core/src/rng.rs crates/xxi-core/src/stats.rs crates/xxi-core/src/table.rs crates/xxi-core/src/time.rs crates/xxi-core/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_core-1fc02d579d7fbd05.rmeta: crates/xxi-core/src/lib.rs crates/xxi-core/src/des.rs crates/xxi-core/src/error.rs crates/xxi-core/src/metrics.rs crates/xxi-core/src/obs/mod.rs crates/xxi-core/src/obs/hist.rs crates/xxi-core/src/obs/ledger.rs crates/xxi-core/src/obs/trace.rs crates/xxi-core/src/rng.rs crates/xxi-core/src/stats.rs crates/xxi-core/src/table.rs crates/xxi-core/src/time.rs crates/xxi-core/src/units.rs Cargo.toml

crates/xxi-core/src/lib.rs:
crates/xxi-core/src/des.rs:
crates/xxi-core/src/error.rs:
crates/xxi-core/src/metrics.rs:
crates/xxi-core/src/obs/mod.rs:
crates/xxi-core/src/obs/hist.rs:
crates/xxi-core/src/obs/ledger.rs:
crates/xxi-core/src/obs/trace.rs:
crates/xxi-core/src/rng.rs:
crates/xxi-core/src/stats.rs:
crates/xxi-core/src/table.rs:
crates/xxi-core/src/time.rs:
crates/xxi-core/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
