/root/repo/target/debug/deps/exp_e2_cpudb-dfd5f384d7fb64f4.d: crates/xxi-bench/src/bin/exp_e2_cpudb.rs

/root/repo/target/debug/deps/exp_e2_cpudb-dfd5f384d7fb64f4: crates/xxi-bench/src/bin/exp_e2_cpudb.rs

crates/xxi-bench/src/bin/exp_e2_cpudb.rs:
