/root/repo/target/debug/deps/exp_e20_tm-1406e168d0273d15.d: crates/xxi-bench/src/bin/exp_e20_tm.rs

/root/repo/target/debug/deps/exp_e20_tm-1406e168d0273d15: crates/xxi-bench/src/bin/exp_e20_tm.rs

crates/xxi-bench/src/bin/exp_e20_tm.rs:
