/root/repo/target/debug/deps/exp_e9_tail-c804a7eacc1a1c9a.d: crates/xxi-bench/src/bin/exp_e9_tail.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e9_tail-c804a7eacc1a1c9a.rmeta: crates/xxi-bench/src/bin/exp_e9_tail.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e9_tail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
