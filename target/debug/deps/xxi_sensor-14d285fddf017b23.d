/root/repo/target/debug/deps/xxi_sensor-14d285fddf017b23.d: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

/root/repo/target/debug/deps/libxxi_sensor-14d285fddf017b23.rmeta: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

crates/xxi-sensor/src/lib.rs:
crates/xxi-sensor/src/intermittent.rs:
crates/xxi-sensor/src/mcu.rs:
crates/xxi-sensor/src/node.rs:
crates/xxi-sensor/src/power.rs:
crates/xxi-sensor/src/radio.rs:
