/root/repo/target/debug/deps/cross_layer-dc04bb7cf3f6f0e0.d: tests/cross_layer.rs

/root/repo/target/debug/deps/cross_layer-dc04bb7cf3f6f0e0: tests/cross_layer.rs

tests/cross_layer.rs:
