/root/repo/target/debug/deps/exp_e16_offload-4943ed8381d81f9e.d: crates/xxi-bench/src/bin/exp_e16_offload.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e16_offload-4943ed8381d81f9e.rmeta: crates/xxi-bench/src/bin/exp_e16_offload.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e16_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
