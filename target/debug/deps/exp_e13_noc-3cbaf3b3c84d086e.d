/root/repo/target/debug/deps/exp_e13_noc-3cbaf3b3c84d086e.d: crates/xxi-bench/src/bin/exp_e13_noc.rs

/root/repo/target/debug/deps/exp_e13_noc-3cbaf3b3c84d086e: crates/xxi-bench/src/bin/exp_e13_noc.rs

crates/xxi-bench/src/bin/exp_e13_noc.rs:
