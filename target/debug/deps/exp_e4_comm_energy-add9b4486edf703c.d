/root/repo/target/debug/deps/exp_e4_comm_energy-add9b4486edf703c.d: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e4_comm_energy-add9b4486edf703c.rmeta: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e4_comm_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
