/root/repo/target/debug/deps/exp_e7_specialization-89febda4db9caa32.d: crates/xxi-bench/src/bin/exp_e7_specialization.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e7_specialization-89febda4db9caa32.rmeta: crates/xxi-bench/src/bin/exp_e7_specialization.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e7_specialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
