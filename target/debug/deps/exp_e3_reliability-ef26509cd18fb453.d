/root/repo/target/debug/deps/exp_e3_reliability-ef26509cd18fb453.d: crates/xxi-bench/src/bin/exp_e3_reliability.rs

/root/repo/target/debug/deps/exp_e3_reliability-ef26509cd18fb453: crates/xxi-bench/src/bin/exp_e3_reliability.rs

crates/xxi-bench/src/bin/exp_e3_reliability.rs:
