/root/repo/target/debug/deps/exp_e1_scaling-f00325e4e45f2cea.d: crates/xxi-bench/src/bin/exp_e1_scaling.rs

/root/repo/target/debug/deps/exp_e1_scaling-f00325e4e45f2cea: crates/xxi-bench/src/bin/exp_e1_scaling.rs

crates/xxi-bench/src/bin/exp_e1_scaling.rs:
