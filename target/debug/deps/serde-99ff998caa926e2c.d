/root/repo/target/debug/deps/serde-99ff998caa926e2c.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-99ff998caa926e2c.so: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
