/root/repo/target/debug/deps/cross_layer-c06fb2516d295a35.d: tests/cross_layer.rs Cargo.toml

/root/repo/target/debug/deps/libcross_layer-c06fb2516d295a35.rmeta: tests/cross_layer.rs Cargo.toml

tests/cross_layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
