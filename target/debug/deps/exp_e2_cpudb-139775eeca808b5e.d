/root/repo/target/debug/deps/exp_e2_cpudb-139775eeca808b5e.d: crates/xxi-bench/src/bin/exp_e2_cpudb.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e2_cpudb-139775eeca808b5e.rmeta: crates/xxi-bench/src/bin/exp_e2_cpudb.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e2_cpudb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
