/root/repo/target/debug/deps/exp_e14_approx-e2a8975b6a18b599.d: crates/xxi-bench/src/bin/exp_e14_approx.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e14_approx-e2a8975b6a18b599.rmeta: crates/xxi-bench/src/bin/exp_e14_approx.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e14_approx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
