/root/repo/target/debug/deps/sensor_to_cloud-1bea91d1991ceca6.d: tests/sensor_to_cloud.rs Cargo.toml

/root/repo/target/debug/deps/libsensor_to_cloud-1bea91d1991ceca6.rmeta: tests/sensor_to_cloud.rs Cargo.toml

tests/sensor_to_cloud.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
