/root/repo/target/debug/deps/exp_e6_multicore-9c726b8e114b7db4.d: crates/xxi-bench/src/bin/exp_e6_multicore.rs

/root/repo/target/debug/deps/exp_e6_multicore-9c726b8e114b7db4: crates/xxi-bench/src/bin/exp_e6_multicore.rs

crates/xxi-bench/src/bin/exp_e6_multicore.rs:
