/root/repo/target/debug/deps/xxi_rel-ec51358896f7d0a5.d: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs

/root/repo/target/debug/deps/libxxi_rel-ec51358896f7d0a5.rmeta: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs

crates/xxi-rel/src/lib.rs:
crates/xxi-rel/src/checkpoint.rs:
crates/xxi-rel/src/ecc.rs:
crates/xxi-rel/src/failsafe.rs:
crates/xxi-rel/src/inject.rs:
crates/xxi-rel/src/invariant.rs:
crates/xxi-rel/src/scrub.rs:
crates/xxi-rel/src/tmr.rs:
