/root/repo/target/debug/deps/models-f7486e926f17eb42.d: crates/xxi-bench/benches/models.rs Cargo.toml

/root/repo/target/debug/deps/libmodels-f7486e926f17eb42.rmeta: crates/xxi-bench/benches/models.rs Cargo.toml

crates/xxi-bench/benches/models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
