/root/repo/target/debug/deps/exp_e11_ntv-3982bf3ac2d7fac1.d: crates/xxi-bench/src/bin/exp_e11_ntv.rs

/root/repo/target/debug/deps/exp_e11_ntv-3982bf3ac2d7fac1: crates/xxi-bench/src/bin/exp_e11_ntv.rs

crates/xxi-bench/src/bin/exp_e11_ntv.rs:
