/root/repo/target/debug/deps/exp_e14_approx-64675f7d5d6d1757.d: crates/xxi-bench/src/bin/exp_e14_approx.rs

/root/repo/target/debug/deps/exp_e14_approx-64675f7d5d6d1757: crates/xxi-bench/src/bin/exp_e14_approx.rs

crates/xxi-bench/src/bin/exp_e14_approx.rs:
