/root/repo/target/debug/deps/xxi_stack-e2f590d232b2d0a5.d: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs

/root/repo/target/debug/deps/libxxi_stack-e2f590d232b2d0a5.rlib: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs

/root/repo/target/debug/deps/libxxi_stack-e2f590d232b2d0a5.rmeta: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs

crates/xxi-stack/src/lib.rs:
crates/xxi-stack/src/deque.rs:
crates/xxi-stack/src/governor.rs:
crates/xxi-stack/src/intent.rs:
crates/xxi-stack/src/locality.rs:
crates/xxi-stack/src/offload.rs:
crates/xxi-stack/src/pool.rs:
crates/xxi-stack/src/stm.rs:
