/root/repo/target/debug/deps/exp_e9_tail-600827a366956775.d: crates/xxi-bench/src/bin/exp_e9_tail.rs

/root/repo/target/debug/deps/exp_e9_tail-600827a366956775: crates/xxi-bench/src/bin/exp_e9_tail.rs

crates/xxi-bench/src/bin/exp_e9_tail.rs:
