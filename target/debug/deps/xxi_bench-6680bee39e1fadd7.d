/root/repo/target/debug/deps/xxi_bench-6680bee39e1fadd7.d: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs

/root/repo/target/debug/deps/libxxi_bench-6680bee39e1fadd7.rlib: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs

/root/repo/target/debug/deps/libxxi_bench-6680bee39e1fadd7.rmeta: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs

crates/xxi-bench/src/lib.rs:
crates/xxi-bench/src/harness.rs:
