/root/repo/target/debug/deps/xxi_bench-e1341cb47fc4d353.d: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs

/root/repo/target/debug/deps/xxi_bench-e1341cb47fc4d353: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs

crates/xxi-bench/src/lib.rs:
crates/xxi-bench/src/harness.rs:
