/root/repo/target/debug/deps/exp_e4_comm_energy-da67bdd9b0582a69.d: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs

/root/repo/target/debug/deps/exp_e4_comm_energy-da67bdd9b0582a69: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs

crates/xxi-bench/src/bin/exp_e4_comm_energy.rs:
