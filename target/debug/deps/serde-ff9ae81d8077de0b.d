/root/repo/target/debug/deps/serde-ff9ae81d8077de0b.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-ff9ae81d8077de0b.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
