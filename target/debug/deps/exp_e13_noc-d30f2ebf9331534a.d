/root/repo/target/debug/deps/exp_e13_noc-d30f2ebf9331534a.d: crates/xxi-bench/src/bin/exp_e13_noc.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e13_noc-d30f2ebf9331534a.rmeta: crates/xxi-bench/src/bin/exp_e13_noc.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e13_noc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
