/root/repo/target/debug/deps/xxi_cloud-742d683c05736b8e.d: crates/xxi-cloud/src/lib.rs crates/xxi-cloud/src/fanout.rs crates/xxi-cloud/src/hedge.rs crates/xxi-cloud/src/latency.rs crates/xxi-cloud/src/obs.rs crates/xxi-cloud/src/power.rs crates/xxi-cloud/src/qos.rs crates/xxi-cloud/src/queueing.rs crates/xxi-cloud/src/replication.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_cloud-742d683c05736b8e.rmeta: crates/xxi-cloud/src/lib.rs crates/xxi-cloud/src/fanout.rs crates/xxi-cloud/src/hedge.rs crates/xxi-cloud/src/latency.rs crates/xxi-cloud/src/obs.rs crates/xxi-cloud/src/power.rs crates/xxi-cloud/src/qos.rs crates/xxi-cloud/src/queueing.rs crates/xxi-cloud/src/replication.rs Cargo.toml

crates/xxi-cloud/src/lib.rs:
crates/xxi-cloud/src/fanout.rs:
crates/xxi-cloud/src/hedge.rs:
crates/xxi-cloud/src/latency.rs:
crates/xxi-cloud/src/obs.rs:
crates/xxi-cloud/src/power.rs:
crates/xxi-cloud/src/qos.rs:
crates/xxi-cloud/src/queueing.rs:
crates/xxi-cloud/src/replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
