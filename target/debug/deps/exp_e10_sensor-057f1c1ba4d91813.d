/root/repo/target/debug/deps/exp_e10_sensor-057f1c1ba4d91813.d: crates/xxi-bench/src/bin/exp_e10_sensor.rs

/root/repo/target/debug/deps/exp_e10_sensor-057f1c1ba4d91813: crates/xxi-bench/src/bin/exp_e10_sensor.rs

crates/xxi-bench/src/bin/exp_e10_sensor.rs:
