/root/repo/target/debug/deps/exp_e8_pyramid-06738bf81bb8350a.d: crates/xxi-bench/src/bin/exp_e8_pyramid.rs

/root/repo/target/debug/deps/exp_e8_pyramid-06738bf81bb8350a: crates/xxi-bench/src/bin/exp_e8_pyramid.rs

crates/xxi-bench/src/bin/exp_e8_pyramid.rs:
