/root/repo/target/debug/deps/xxi_mem-84212b593a1f2e9d.d: crates/xxi-mem/src/lib.rs crates/xxi-mem/src/cache.rs crates/xxi-mem/src/coherence.rs crates/xxi-mem/src/compress.rs crates/xxi-mem/src/dram.rs crates/xxi-mem/src/energy.rs crates/xxi-mem/src/hierarchy.rs crates/xxi-mem/src/hybrid.rs crates/xxi-mem/src/nvm.rs crates/xxi-mem/src/prefetch.rs crates/xxi-mem/src/tlb.rs crates/xxi-mem/src/trace.rs crates/xxi-mem/src/wear.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_mem-84212b593a1f2e9d.rmeta: crates/xxi-mem/src/lib.rs crates/xxi-mem/src/cache.rs crates/xxi-mem/src/coherence.rs crates/xxi-mem/src/compress.rs crates/xxi-mem/src/dram.rs crates/xxi-mem/src/energy.rs crates/xxi-mem/src/hierarchy.rs crates/xxi-mem/src/hybrid.rs crates/xxi-mem/src/nvm.rs crates/xxi-mem/src/prefetch.rs crates/xxi-mem/src/tlb.rs crates/xxi-mem/src/trace.rs crates/xxi-mem/src/wear.rs Cargo.toml

crates/xxi-mem/src/lib.rs:
crates/xxi-mem/src/cache.rs:
crates/xxi-mem/src/coherence.rs:
crates/xxi-mem/src/compress.rs:
crates/xxi-mem/src/dram.rs:
crates/xxi-mem/src/energy.rs:
crates/xxi-mem/src/hierarchy.rs:
crates/xxi-mem/src/hybrid.rs:
crates/xxi-mem/src/nvm.rs:
crates/xxi-mem/src/prefetch.rs:
crates/xxi-mem/src/tlb.rs:
crates/xxi-mem/src/trace.rs:
crates/xxi-mem/src/wear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
