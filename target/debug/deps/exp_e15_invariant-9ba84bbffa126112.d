/root/repo/target/debug/deps/exp_e15_invariant-9ba84bbffa126112.d: crates/xxi-bench/src/bin/exp_e15_invariant.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e15_invariant-9ba84bbffa126112.rmeta: crates/xxi-bench/src/bin/exp_e15_invariant.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e15_invariant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
