/root/repo/target/debug/deps/exp_e20_tm-469ab296a2f6cb20.d: crates/xxi-bench/src/bin/exp_e20_tm.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e20_tm-469ab296a2f6cb20.rmeta: crates/xxi-bench/src/bin/exp_e20_tm.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e20_tm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
