/root/repo/target/debug/deps/exp_e2_cpudb-646b9dbecc9b3cc9.d: crates/xxi-bench/src/bin/exp_e2_cpudb.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e2_cpudb-646b9dbecc9b3cc9.rmeta: crates/xxi-bench/src/bin/exp_e2_cpudb.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e2_cpudb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
