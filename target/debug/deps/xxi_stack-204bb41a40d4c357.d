/root/repo/target/debug/deps/xxi_stack-204bb41a40d4c357.d: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs

/root/repo/target/debug/deps/libxxi_stack-204bb41a40d4c357.rmeta: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs

crates/xxi-stack/src/lib.rs:
crates/xxi-stack/src/deque.rs:
crates/xxi-stack/src/governor.rs:
crates/xxi-stack/src/intent.rs:
crates/xxi-stack/src/locality.rs:
crates/xxi-stack/src/offload.rs:
crates/xxi-stack/src/pool.rs:
crates/xxi-stack/src/stm.rs:
