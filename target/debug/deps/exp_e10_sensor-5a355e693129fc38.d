/root/repo/target/debug/deps/exp_e10_sensor-5a355e693129fc38.d: crates/xxi-bench/src/bin/exp_e10_sensor.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e10_sensor-5a355e693129fc38.rmeta: crates/xxi-bench/src/bin/exp_e10_sensor.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e10_sensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
