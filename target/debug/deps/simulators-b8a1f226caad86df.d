/root/repo/target/debug/deps/simulators-b8a1f226caad86df.d: crates/xxi-bench/benches/simulators.rs Cargo.toml

/root/repo/target/debug/deps/libsimulators-b8a1f226caad86df.rmeta: crates/xxi-bench/benches/simulators.rs Cargo.toml

crates/xxi-bench/benches/simulators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
