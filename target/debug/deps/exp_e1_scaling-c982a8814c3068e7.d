/root/repo/target/debug/deps/exp_e1_scaling-c982a8814c3068e7.d: crates/xxi-bench/src/bin/exp_e1_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e1_scaling-c982a8814c3068e7.rmeta: crates/xxi-bench/src/bin/exp_e1_scaling.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e1_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
