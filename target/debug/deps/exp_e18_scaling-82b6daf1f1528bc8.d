/root/repo/target/debug/deps/exp_e18_scaling-82b6daf1f1528bc8.d: crates/xxi-bench/src/bin/exp_e18_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e18_scaling-82b6daf1f1528bc8.rmeta: crates/xxi-bench/src/bin/exp_e18_scaling.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e18_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
