/root/repo/target/debug/deps/exp_e6_multicore-43fad78c7d1da1d0.d: crates/xxi-bench/src/bin/exp_e6_multicore.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e6_multicore-43fad78c7d1da1d0.rmeta: crates/xxi-bench/src/bin/exp_e6_multicore.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e6_multicore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
