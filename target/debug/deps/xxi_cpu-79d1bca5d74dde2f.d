/root/repo/target/debug/deps/xxi_cpu-79d1bca5d74dde2f.d: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_cpu-79d1bca5d74dde2f.rmeta: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs Cargo.toml

crates/xxi-cpu/src/lib.rs:
crates/xxi-cpu/src/chip.rs:
crates/xxi-cpu/src/core.rs:
crates/xxi-cpu/src/cpudb.rs:
crates/xxi-cpu/src/hetero.rs:
crates/xxi-cpu/src/hillmarty.rs:
crates/xxi-cpu/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
