/root/repo/target/debug/deps/exp_e13_noc-2b74ce389146adc1.d: crates/xxi-bench/src/bin/exp_e13_noc.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e13_noc-2b74ce389146adc1.rmeta: crates/xxi-bench/src/bin/exp_e13_noc.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e13_noc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
