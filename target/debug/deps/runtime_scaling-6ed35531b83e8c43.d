/root/repo/target/debug/deps/runtime_scaling-6ed35531b83e8c43.d: tests/runtime_scaling.rs

/root/repo/target/debug/deps/runtime_scaling-6ed35531b83e8c43: tests/runtime_scaling.rs

tests/runtime_scaling.rs:
