/root/repo/target/debug/deps/xxi_noc-6c8fb820021fff44.d: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

/root/repo/target/debug/deps/libxxi_noc-6c8fb820021fff44.rlib: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

/root/repo/target/debug/deps/libxxi_noc-6c8fb820021fff44.rmeta: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

crates/xxi-noc/src/lib.rs:
crates/xxi-noc/src/analysis.rs:
crates/xxi-noc/src/crossbar.rs:
crates/xxi-noc/src/link.rs:
crates/xxi-noc/src/sim.rs:
crates/xxi-noc/src/topology.rs:
crates/xxi-noc/src/traffic.rs:
