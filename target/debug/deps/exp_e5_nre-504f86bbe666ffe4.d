/root/repo/target/debug/deps/exp_e5_nre-504f86bbe666ffe4.d: crates/xxi-bench/src/bin/exp_e5_nre.rs

/root/repo/target/debug/deps/exp_e5_nre-504f86bbe666ffe4: crates/xxi-bench/src/bin/exp_e5_nre.rs

crates/xxi-bench/src/bin/exp_e5_nre.rs:
