/root/repo/target/debug/deps/exp_e19_security-b9a2fa0b34090699.d: crates/xxi-bench/src/bin/exp_e19_security.rs

/root/repo/target/debug/deps/exp_e19_security-b9a2fa0b34090699: crates/xxi-bench/src/bin/exp_e19_security.rs

crates/xxi-bench/src/bin/exp_e19_security.rs:
