/root/repo/target/debug/deps/exp_e5_nre-0715001994ce2d23.d: crates/xxi-bench/src/bin/exp_e5_nre.rs

/root/repo/target/debug/deps/exp_e5_nre-0715001994ce2d23: crates/xxi-bench/src/bin/exp_e5_nre.rs

crates/xxi-bench/src/bin/exp_e5_nre.rs:
