/root/repo/target/debug/deps/xxi_accel-018fad0a92c86b3f.d: crates/xxi-accel/src/lib.rs crates/xxi-accel/src/cgra.rs crates/xxi-accel/src/fpga.rs crates/xxi-accel/src/ladder.rs crates/xxi-accel/src/nre.rs crates/xxi-accel/src/offload.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_accel-018fad0a92c86b3f.rmeta: crates/xxi-accel/src/lib.rs crates/xxi-accel/src/cgra.rs crates/xxi-accel/src/fpga.rs crates/xxi-accel/src/ladder.rs crates/xxi-accel/src/nre.rs crates/xxi-accel/src/offload.rs Cargo.toml

crates/xxi-accel/src/lib.rs:
crates/xxi-accel/src/cgra.rs:
crates/xxi-accel/src/fpga.rs:
crates/xxi-accel/src/ladder.rs:
crates/xxi-accel/src/nre.rs:
crates/xxi-accel/src/offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
