/root/repo/target/debug/deps/xxi_noc-150c6626fb0c3c62.d: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

/root/repo/target/debug/deps/libxxi_noc-150c6626fb0c3c62.rmeta: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

crates/xxi-noc/src/lib.rs:
crates/xxi-noc/src/analysis.rs:
crates/xxi-noc/src/crossbar.rs:
crates/xxi-noc/src/link.rs:
crates/xxi-noc/src/sim.rs:
crates/xxi-noc/src/topology.rs:
crates/xxi-noc/src/traffic.rs:
