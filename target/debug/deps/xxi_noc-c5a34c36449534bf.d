/root/repo/target/debug/deps/xxi_noc-c5a34c36449534bf.d: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

/root/repo/target/debug/deps/xxi_noc-c5a34c36449534bf: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

crates/xxi-noc/src/lib.rs:
crates/xxi-noc/src/analysis.rs:
crates/xxi-noc/src/crossbar.rs:
crates/xxi-noc/src/link.rs:
crates/xxi-noc/src/sim.rs:
crates/xxi-noc/src/topology.rs:
crates/xxi-noc/src/traffic.rs:
