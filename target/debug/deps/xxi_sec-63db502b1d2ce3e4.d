/root/repo/target/debug/deps/xxi_sec-63db502b1d2ce3e4.d: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

/root/repo/target/debug/deps/xxi_sec-63db502b1d2ce3e4: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

crates/xxi-sec/src/lib.rs:
crates/xxi-sec/src/ift.rs:
crates/xxi-sec/src/protection.rs:
crates/xxi-sec/src/sidechannel.rs:
