/root/repo/target/debug/deps/exp_e17_availability-2ff4c674cad75da6.d: crates/xxi-bench/src/bin/exp_e17_availability.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e17_availability-2ff4c674cad75da6.rmeta: crates/xxi-bench/src/bin/exp_e17_availability.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e17_availability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
