/root/repo/target/debug/deps/xxi_tech-3af0c19bf757102b.d: crates/xxi-tech/src/lib.rs crates/xxi-tech/src/aging.rs crates/xxi-tech/src/dark.rs crates/xxi-tech/src/freq.rs crates/xxi-tech/src/node.rs crates/xxi-tech/src/nre.rs crates/xxi-tech/src/ntv.rs crates/xxi-tech/src/ops.rs crates/xxi-tech/src/scaling.rs crates/xxi-tech/src/ser.rs crates/xxi-tech/src/thermal.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_tech-3af0c19bf757102b.rmeta: crates/xxi-tech/src/lib.rs crates/xxi-tech/src/aging.rs crates/xxi-tech/src/dark.rs crates/xxi-tech/src/freq.rs crates/xxi-tech/src/node.rs crates/xxi-tech/src/nre.rs crates/xxi-tech/src/ntv.rs crates/xxi-tech/src/ops.rs crates/xxi-tech/src/scaling.rs crates/xxi-tech/src/ser.rs crates/xxi-tech/src/thermal.rs Cargo.toml

crates/xxi-tech/src/lib.rs:
crates/xxi-tech/src/aging.rs:
crates/xxi-tech/src/dark.rs:
crates/xxi-tech/src/freq.rs:
crates/xxi-tech/src/node.rs:
crates/xxi-tech/src/nre.rs:
crates/xxi-tech/src/ntv.rs:
crates/xxi-tech/src/ops.rs:
crates/xxi-tech/src/scaling.rs:
crates/xxi-tech/src/ser.rs:
crates/xxi-tech/src/thermal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
