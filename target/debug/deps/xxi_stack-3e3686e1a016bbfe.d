/root/repo/target/debug/deps/xxi_stack-3e3686e1a016bbfe.d: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs Cargo.toml

/root/repo/target/debug/deps/libxxi_stack-3e3686e1a016bbfe.rmeta: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs Cargo.toml

crates/xxi-stack/src/lib.rs:
crates/xxi-stack/src/deque.rs:
crates/xxi-stack/src/governor.rs:
crates/xxi-stack/src/intent.rs:
crates/xxi-stack/src/locality.rs:
crates/xxi-stack/src/offload.rs:
crates/xxi-stack/src/pool.rs:
crates/xxi-stack/src/stm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
