/root/repo/target/debug/deps/xxi-c8f120eaf390b0b1.d: src/lib.rs

/root/repo/target/debug/deps/libxxi-c8f120eaf390b0b1.rmeta: src/lib.rs

src/lib.rs:
