/root/repo/target/debug/deps/xxi_tech-5d83badaee636d58.d: crates/xxi-tech/src/lib.rs crates/xxi-tech/src/aging.rs crates/xxi-tech/src/dark.rs crates/xxi-tech/src/freq.rs crates/xxi-tech/src/node.rs crates/xxi-tech/src/nre.rs crates/xxi-tech/src/ntv.rs crates/xxi-tech/src/ops.rs crates/xxi-tech/src/scaling.rs crates/xxi-tech/src/ser.rs crates/xxi-tech/src/thermal.rs

/root/repo/target/debug/deps/libxxi_tech-5d83badaee636d58.rmeta: crates/xxi-tech/src/lib.rs crates/xxi-tech/src/aging.rs crates/xxi-tech/src/dark.rs crates/xxi-tech/src/freq.rs crates/xxi-tech/src/node.rs crates/xxi-tech/src/nre.rs crates/xxi-tech/src/ntv.rs crates/xxi-tech/src/ops.rs crates/xxi-tech/src/scaling.rs crates/xxi-tech/src/ser.rs crates/xxi-tech/src/thermal.rs

crates/xxi-tech/src/lib.rs:
crates/xxi-tech/src/aging.rs:
crates/xxi-tech/src/dark.rs:
crates/xxi-tech/src/freq.rs:
crates/xxi-tech/src/node.rs:
crates/xxi-tech/src/nre.rs:
crates/xxi-tech/src/ntv.rs:
crates/xxi-tech/src/ops.rs:
crates/xxi-tech/src/scaling.rs:
crates/xxi-tech/src/ser.rs:
crates/xxi-tech/src/thermal.rs:
