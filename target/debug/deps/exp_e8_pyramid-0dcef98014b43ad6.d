/root/repo/target/debug/deps/exp_e8_pyramid-0dcef98014b43ad6.d: crates/xxi-bench/src/bin/exp_e8_pyramid.rs

/root/repo/target/debug/deps/exp_e8_pyramid-0dcef98014b43ad6: crates/xxi-bench/src/bin/exp_e8_pyramid.rs

crates/xxi-bench/src/bin/exp_e8_pyramid.rs:
