/root/repo/target/debug/deps/exp_e6_multicore-85a7d651f441426a.d: crates/xxi-bench/src/bin/exp_e6_multicore.rs

/root/repo/target/debug/deps/exp_e6_multicore-85a7d651f441426a: crates/xxi-bench/src/bin/exp_e6_multicore.rs

crates/xxi-bench/src/bin/exp_e6_multicore.rs:
