/root/repo/target/debug/deps/exp_e4_comm_energy-f8afa5f8d5882f64.d: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs

/root/repo/target/debug/deps/exp_e4_comm_energy-f8afa5f8d5882f64: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs

crates/xxi-bench/src/bin/exp_e4_comm_energy.rs:
