/root/repo/target/debug/deps/xxi_cloud-651d540ad99fc6b9.d: crates/xxi-cloud/src/lib.rs crates/xxi-cloud/src/fanout.rs crates/xxi-cloud/src/hedge.rs crates/xxi-cloud/src/latency.rs crates/xxi-cloud/src/obs.rs crates/xxi-cloud/src/power.rs crates/xxi-cloud/src/qos.rs crates/xxi-cloud/src/queueing.rs crates/xxi-cloud/src/replication.rs

/root/repo/target/debug/deps/xxi_cloud-651d540ad99fc6b9: crates/xxi-cloud/src/lib.rs crates/xxi-cloud/src/fanout.rs crates/xxi-cloud/src/hedge.rs crates/xxi-cloud/src/latency.rs crates/xxi-cloud/src/obs.rs crates/xxi-cloud/src/power.rs crates/xxi-cloud/src/qos.rs crates/xxi-cloud/src/queueing.rs crates/xxi-cloud/src/replication.rs

crates/xxi-cloud/src/lib.rs:
crates/xxi-cloud/src/fanout.rs:
crates/xxi-cloud/src/hedge.rs:
crates/xxi-cloud/src/latency.rs:
crates/xxi-cloud/src/obs.rs:
crates/xxi-cloud/src/power.rs:
crates/xxi-cloud/src/qos.rs:
crates/xxi-cloud/src/queueing.rs:
crates/xxi-cloud/src/replication.rs:
