/root/repo/target/debug/deps/exp_e19_security-22b371ef83f557cb.d: crates/xxi-bench/src/bin/exp_e19_security.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e19_security-22b371ef83f557cb.rmeta: crates/xxi-bench/src/bin/exp_e19_security.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e19_security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
