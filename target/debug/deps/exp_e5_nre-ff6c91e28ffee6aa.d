/root/repo/target/debug/deps/exp_e5_nre-ff6c91e28ffee6aa.d: crates/xxi-bench/src/bin/exp_e5_nre.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e5_nre-ff6c91e28ffee6aa.rmeta: crates/xxi-bench/src/bin/exp_e5_nre.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e5_nre.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
