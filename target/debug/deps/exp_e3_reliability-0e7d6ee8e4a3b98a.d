/root/repo/target/debug/deps/exp_e3_reliability-0e7d6ee8e4a3b98a.d: crates/xxi-bench/src/bin/exp_e3_reliability.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e3_reliability-0e7d6ee8e4a3b98a.rmeta: crates/xxi-bench/src/bin/exp_e3_reliability.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e3_reliability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
