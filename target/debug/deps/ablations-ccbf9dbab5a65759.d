/root/repo/target/debug/deps/ablations-ccbf9dbab5a65759.d: crates/xxi-bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ccbf9dbab5a65759.rmeta: crates/xxi-bench/benches/ablations.rs Cargo.toml

crates/xxi-bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
