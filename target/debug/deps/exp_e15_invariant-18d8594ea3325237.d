/root/repo/target/debug/deps/exp_e15_invariant-18d8594ea3325237.d: crates/xxi-bench/src/bin/exp_e15_invariant.rs

/root/repo/target/debug/deps/exp_e15_invariant-18d8594ea3325237: crates/xxi-bench/src/bin/exp_e15_invariant.rs

crates/xxi-bench/src/bin/exp_e15_invariant.rs:
