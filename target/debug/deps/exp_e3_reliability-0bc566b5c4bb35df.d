/root/repo/target/debug/deps/exp_e3_reliability-0bc566b5c4bb35df.d: crates/xxi-bench/src/bin/exp_e3_reliability.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e3_reliability-0bc566b5c4bb35df.rmeta: crates/xxi-bench/src/bin/exp_e3_reliability.rs Cargo.toml

crates/xxi-bench/src/bin/exp_e3_reliability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
