/root/repo/target/release/deps/xxi_approx-76e3631681a963a8.d: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

/root/repo/target/release/deps/libxxi_approx-76e3631681a963a8.rlib: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

/root/repo/target/release/deps/libxxi_approx-76e3631681a963a8.rmeta: crates/xxi-approx/src/lib.rs crates/xxi-approx/src/memo.rs crates/xxi-approx/src/number.rs crates/xxi-approx/src/pareto.rs crates/xxi-approx/src/perforation.rs crates/xxi-approx/src/quality.rs crates/xxi-approx/src/signal.rs

crates/xxi-approx/src/lib.rs:
crates/xxi-approx/src/memo.rs:
crates/xxi-approx/src/number.rs:
crates/xxi-approx/src/pareto.rs:
crates/xxi-approx/src/perforation.rs:
crates/xxi-approx/src/quality.rs:
crates/xxi-approx/src/signal.rs:
