/root/repo/target/release/deps/xxi_cpu-3becf2bc6ddf3cb2.d: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs

/root/repo/target/release/deps/libxxi_cpu-3becf2bc6ddf3cb2.rlib: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs

/root/repo/target/release/deps/libxxi_cpu-3becf2bc6ddf3cb2.rmeta: crates/xxi-cpu/src/lib.rs crates/xxi-cpu/src/chip.rs crates/xxi-cpu/src/core.rs crates/xxi-cpu/src/cpudb.rs crates/xxi-cpu/src/hetero.rs crates/xxi-cpu/src/hillmarty.rs crates/xxi-cpu/src/pipeline.rs

crates/xxi-cpu/src/lib.rs:
crates/xxi-cpu/src/chip.rs:
crates/xxi-cpu/src/core.rs:
crates/xxi-cpu/src/cpudb.rs:
crates/xxi-cpu/src/hetero.rs:
crates/xxi-cpu/src/hillmarty.rs:
crates/xxi-cpu/src/pipeline.rs:
