/root/repo/target/release/deps/exp_e20_tm-e28e0f2080d901bf.d: crates/xxi-bench/src/bin/exp_e20_tm.rs

/root/repo/target/release/deps/exp_e20_tm-e28e0f2080d901bf: crates/xxi-bench/src/bin/exp_e20_tm.rs

crates/xxi-bench/src/bin/exp_e20_tm.rs:
