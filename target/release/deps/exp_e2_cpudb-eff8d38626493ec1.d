/root/repo/target/release/deps/exp_e2_cpudb-eff8d38626493ec1.d: crates/xxi-bench/src/bin/exp_e2_cpudb.rs

/root/repo/target/release/deps/exp_e2_cpudb-eff8d38626493ec1: crates/xxi-bench/src/bin/exp_e2_cpudb.rs

crates/xxi-bench/src/bin/exp_e2_cpudb.rs:
