/root/repo/target/release/deps/xxi_accel-4deb5615294287d0.d: crates/xxi-accel/src/lib.rs crates/xxi-accel/src/cgra.rs crates/xxi-accel/src/fpga.rs crates/xxi-accel/src/ladder.rs crates/xxi-accel/src/nre.rs crates/xxi-accel/src/offload.rs

/root/repo/target/release/deps/libxxi_accel-4deb5615294287d0.rlib: crates/xxi-accel/src/lib.rs crates/xxi-accel/src/cgra.rs crates/xxi-accel/src/fpga.rs crates/xxi-accel/src/ladder.rs crates/xxi-accel/src/nre.rs crates/xxi-accel/src/offload.rs

/root/repo/target/release/deps/libxxi_accel-4deb5615294287d0.rmeta: crates/xxi-accel/src/lib.rs crates/xxi-accel/src/cgra.rs crates/xxi-accel/src/fpga.rs crates/xxi-accel/src/ladder.rs crates/xxi-accel/src/nre.rs crates/xxi-accel/src/offload.rs

crates/xxi-accel/src/lib.rs:
crates/xxi-accel/src/cgra.rs:
crates/xxi-accel/src/fpga.rs:
crates/xxi-accel/src/ladder.rs:
crates/xxi-accel/src/nre.rs:
crates/xxi-accel/src/offload.rs:
