/root/repo/target/release/deps/exp_e4_comm_energy-8dac8700cf852126.d: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs

/root/repo/target/release/deps/exp_e4_comm_energy-8dac8700cf852126: crates/xxi-bench/src/bin/exp_e4_comm_energy.rs

crates/xxi-bench/src/bin/exp_e4_comm_energy.rs:
