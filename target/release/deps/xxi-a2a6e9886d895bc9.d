/root/repo/target/release/deps/xxi-a2a6e9886d895bc9.d: src/lib.rs

/root/repo/target/release/deps/xxi-a2a6e9886d895bc9: src/lib.rs

src/lib.rs:
