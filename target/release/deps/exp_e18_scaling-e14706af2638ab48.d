/root/repo/target/release/deps/exp_e18_scaling-e14706af2638ab48.d: crates/xxi-bench/src/bin/exp_e18_scaling.rs

/root/repo/target/release/deps/exp_e18_scaling-e14706af2638ab48: crates/xxi-bench/src/bin/exp_e18_scaling.rs

crates/xxi-bench/src/bin/exp_e18_scaling.rs:
