/root/repo/target/release/deps/simulators-458d3aabe90b9323.d: crates/xxi-bench/benches/simulators.rs

/root/repo/target/release/deps/simulators-458d3aabe90b9323: crates/xxi-bench/benches/simulators.rs

crates/xxi-bench/benches/simulators.rs:
