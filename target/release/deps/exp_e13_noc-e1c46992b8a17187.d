/root/repo/target/release/deps/exp_e13_noc-e1c46992b8a17187.d: crates/xxi-bench/src/bin/exp_e13_noc.rs

/root/repo/target/release/deps/exp_e13_noc-e1c46992b8a17187: crates/xxi-bench/src/bin/exp_e13_noc.rs

crates/xxi-bench/src/bin/exp_e13_noc.rs:
