/root/repo/target/release/deps/serde-88635c381ed3b5fd.d: crates/serde/src/lib.rs

/root/repo/target/release/deps/libserde-88635c381ed3b5fd.so: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
