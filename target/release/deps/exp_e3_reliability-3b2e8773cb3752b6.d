/root/repo/target/release/deps/exp_e3_reliability-3b2e8773cb3752b6.d: crates/xxi-bench/src/bin/exp_e3_reliability.rs

/root/repo/target/release/deps/exp_e3_reliability-3b2e8773cb3752b6: crates/xxi-bench/src/bin/exp_e3_reliability.rs

crates/xxi-bench/src/bin/exp_e3_reliability.rs:
