/root/repo/target/release/deps/exp_e12_nvm-af8eac7d32d9f800.d: crates/xxi-bench/src/bin/exp_e12_nvm.rs

/root/repo/target/release/deps/exp_e12_nvm-af8eac7d32d9f800: crates/xxi-bench/src/bin/exp_e12_nvm.rs

crates/xxi-bench/src/bin/exp_e12_nvm.rs:
