/root/repo/target/release/deps/xxi-8ea2d822bc6d9633.d: src/lib.rs

/root/repo/target/release/deps/libxxi-8ea2d822bc6d9633.rlib: src/lib.rs

/root/repo/target/release/deps/libxxi-8ea2d822bc6d9633.rmeta: src/lib.rs

src/lib.rs:
