/root/repo/target/release/deps/xxi_sec-4def8c08830e6c7a.d: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

/root/repo/target/release/deps/libxxi_sec-4def8c08830e6c7a.rlib: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

/root/repo/target/release/deps/libxxi_sec-4def8c08830e6c7a.rmeta: crates/xxi-sec/src/lib.rs crates/xxi-sec/src/ift.rs crates/xxi-sec/src/protection.rs crates/xxi-sec/src/sidechannel.rs

crates/xxi-sec/src/lib.rs:
crates/xxi-sec/src/ift.rs:
crates/xxi-sec/src/protection.rs:
crates/xxi-sec/src/sidechannel.rs:
