/root/repo/target/release/deps/exp_e15_invariant-ae0f9e839e83c022.d: crates/xxi-bench/src/bin/exp_e15_invariant.rs

/root/repo/target/release/deps/exp_e15_invariant-ae0f9e839e83c022: crates/xxi-bench/src/bin/exp_e15_invariant.rs

crates/xxi-bench/src/bin/exp_e15_invariant.rs:
