/root/repo/target/release/deps/runtime_scaling-bc994910e60796b6.d: tests/runtime_scaling.rs

/root/repo/target/release/deps/runtime_scaling-bc994910e60796b6: tests/runtime_scaling.rs

tests/runtime_scaling.rs:
