/root/repo/target/release/deps/exp_e10_sensor-451ae9c0a6c68a1a.d: crates/xxi-bench/src/bin/exp_e10_sensor.rs

/root/repo/target/release/deps/exp_e10_sensor-451ae9c0a6c68a1a: crates/xxi-bench/src/bin/exp_e10_sensor.rs

crates/xxi-bench/src/bin/exp_e10_sensor.rs:
