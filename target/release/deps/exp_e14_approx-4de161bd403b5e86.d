/root/repo/target/release/deps/exp_e14_approx-4de161bd403b5e86.d: crates/xxi-bench/src/bin/exp_e14_approx.rs

/root/repo/target/release/deps/exp_e14_approx-4de161bd403b5e86: crates/xxi-bench/src/bin/exp_e14_approx.rs

crates/xxi-bench/src/bin/exp_e14_approx.rs:
