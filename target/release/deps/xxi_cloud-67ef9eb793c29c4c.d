/root/repo/target/release/deps/xxi_cloud-67ef9eb793c29c4c.d: crates/xxi-cloud/src/lib.rs crates/xxi-cloud/src/fanout.rs crates/xxi-cloud/src/hedge.rs crates/xxi-cloud/src/latency.rs crates/xxi-cloud/src/obs.rs crates/xxi-cloud/src/power.rs crates/xxi-cloud/src/qos.rs crates/xxi-cloud/src/queueing.rs crates/xxi-cloud/src/replication.rs

/root/repo/target/release/deps/libxxi_cloud-67ef9eb793c29c4c.rlib: crates/xxi-cloud/src/lib.rs crates/xxi-cloud/src/fanout.rs crates/xxi-cloud/src/hedge.rs crates/xxi-cloud/src/latency.rs crates/xxi-cloud/src/obs.rs crates/xxi-cloud/src/power.rs crates/xxi-cloud/src/qos.rs crates/xxi-cloud/src/queueing.rs crates/xxi-cloud/src/replication.rs

/root/repo/target/release/deps/libxxi_cloud-67ef9eb793c29c4c.rmeta: crates/xxi-cloud/src/lib.rs crates/xxi-cloud/src/fanout.rs crates/xxi-cloud/src/hedge.rs crates/xxi-cloud/src/latency.rs crates/xxi-cloud/src/obs.rs crates/xxi-cloud/src/power.rs crates/xxi-cloud/src/qos.rs crates/xxi-cloud/src/queueing.rs crates/xxi-cloud/src/replication.rs

crates/xxi-cloud/src/lib.rs:
crates/xxi-cloud/src/fanout.rs:
crates/xxi-cloud/src/hedge.rs:
crates/xxi-cloud/src/latency.rs:
crates/xxi-cloud/src/obs.rs:
crates/xxi-cloud/src/power.rs:
crates/xxi-cloud/src/qos.rs:
crates/xxi-cloud/src/queueing.rs:
crates/xxi-cloud/src/replication.rs:
