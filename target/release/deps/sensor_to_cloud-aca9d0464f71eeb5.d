/root/repo/target/release/deps/sensor_to_cloud-aca9d0464f71eeb5.d: tests/sensor_to_cloud.rs

/root/repo/target/release/deps/sensor_to_cloud-aca9d0464f71eeb5: tests/sensor_to_cloud.rs

tests/sensor_to_cloud.rs:
