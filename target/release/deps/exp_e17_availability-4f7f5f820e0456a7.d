/root/repo/target/release/deps/exp_e17_availability-4f7f5f820e0456a7.d: crates/xxi-bench/src/bin/exp_e17_availability.rs

/root/repo/target/release/deps/exp_e17_availability-4f7f5f820e0456a7: crates/xxi-bench/src/bin/exp_e17_availability.rs

crates/xxi-bench/src/bin/exp_e17_availability.rs:
