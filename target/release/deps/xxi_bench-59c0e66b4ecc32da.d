/root/repo/target/release/deps/xxi_bench-59c0e66b4ecc32da.d: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs

/root/repo/target/release/deps/libxxi_bench-59c0e66b4ecc32da.rlib: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs

/root/repo/target/release/deps/libxxi_bench-59c0e66b4ecc32da.rmeta: crates/xxi-bench/src/lib.rs crates/xxi-bench/src/harness.rs

crates/xxi-bench/src/lib.rs:
crates/xxi-bench/src/harness.rs:
