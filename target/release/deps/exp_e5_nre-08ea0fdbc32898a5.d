/root/repo/target/release/deps/exp_e5_nre-08ea0fdbc32898a5.d: crates/xxi-bench/src/bin/exp_e5_nre.rs

/root/repo/target/release/deps/exp_e5_nre-08ea0fdbc32898a5: crates/xxi-bench/src/bin/exp_e5_nre.rs

crates/xxi-bench/src/bin/exp_e5_nre.rs:
