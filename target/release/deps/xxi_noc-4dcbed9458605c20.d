/root/repo/target/release/deps/xxi_noc-4dcbed9458605c20.d: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

/root/repo/target/release/deps/libxxi_noc-4dcbed9458605c20.rlib: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

/root/repo/target/release/deps/libxxi_noc-4dcbed9458605c20.rmeta: crates/xxi-noc/src/lib.rs crates/xxi-noc/src/analysis.rs crates/xxi-noc/src/crossbar.rs crates/xxi-noc/src/link.rs crates/xxi-noc/src/sim.rs crates/xxi-noc/src/topology.rs crates/xxi-noc/src/traffic.rs

crates/xxi-noc/src/lib.rs:
crates/xxi-noc/src/analysis.rs:
crates/xxi-noc/src/crossbar.rs:
crates/xxi-noc/src/link.rs:
crates/xxi-noc/src/sim.rs:
crates/xxi-noc/src/topology.rs:
crates/xxi-noc/src/traffic.rs:
