/root/repo/target/release/deps/properties-61a3eb18170d20cd.d: tests/properties.rs

/root/repo/target/release/deps/properties-61a3eb18170d20cd: tests/properties.rs

tests/properties.rs:
