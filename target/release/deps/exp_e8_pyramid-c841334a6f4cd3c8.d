/root/repo/target/release/deps/exp_e8_pyramid-c841334a6f4cd3c8.d: crates/xxi-bench/src/bin/exp_e8_pyramid.rs

/root/repo/target/release/deps/exp_e8_pyramid-c841334a6f4cd3c8: crates/xxi-bench/src/bin/exp_e8_pyramid.rs

crates/xxi-bench/src/bin/exp_e8_pyramid.rs:
