/root/repo/target/release/deps/exp_e19_security-8f77eac49519ab19.d: crates/xxi-bench/src/bin/exp_e19_security.rs

/root/repo/target/release/deps/exp_e19_security-8f77eac49519ab19: crates/xxi-bench/src/bin/exp_e19_security.rs

crates/xxi-bench/src/bin/exp_e19_security.rs:
