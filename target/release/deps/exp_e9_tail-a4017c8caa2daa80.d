/root/repo/target/release/deps/exp_e9_tail-a4017c8caa2daa80.d: crates/xxi-bench/src/bin/exp_e9_tail.rs

/root/repo/target/release/deps/exp_e9_tail-a4017c8caa2daa80: crates/xxi-bench/src/bin/exp_e9_tail.rs

crates/xxi-bench/src/bin/exp_e9_tail.rs:
