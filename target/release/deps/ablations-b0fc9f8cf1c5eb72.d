/root/repo/target/release/deps/ablations-b0fc9f8cf1c5eb72.d: crates/xxi-bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-b0fc9f8cf1c5eb72: crates/xxi-bench/benches/ablations.rs

crates/xxi-bench/benches/ablations.rs:
