/root/repo/target/release/deps/xxi_mem-8ac0e4aa11e42f60.d: crates/xxi-mem/src/lib.rs crates/xxi-mem/src/cache.rs crates/xxi-mem/src/coherence.rs crates/xxi-mem/src/compress.rs crates/xxi-mem/src/dram.rs crates/xxi-mem/src/energy.rs crates/xxi-mem/src/hierarchy.rs crates/xxi-mem/src/hybrid.rs crates/xxi-mem/src/nvm.rs crates/xxi-mem/src/prefetch.rs crates/xxi-mem/src/tlb.rs crates/xxi-mem/src/trace.rs crates/xxi-mem/src/wear.rs

/root/repo/target/release/deps/libxxi_mem-8ac0e4aa11e42f60.rlib: crates/xxi-mem/src/lib.rs crates/xxi-mem/src/cache.rs crates/xxi-mem/src/coherence.rs crates/xxi-mem/src/compress.rs crates/xxi-mem/src/dram.rs crates/xxi-mem/src/energy.rs crates/xxi-mem/src/hierarchy.rs crates/xxi-mem/src/hybrid.rs crates/xxi-mem/src/nvm.rs crates/xxi-mem/src/prefetch.rs crates/xxi-mem/src/tlb.rs crates/xxi-mem/src/trace.rs crates/xxi-mem/src/wear.rs

/root/repo/target/release/deps/libxxi_mem-8ac0e4aa11e42f60.rmeta: crates/xxi-mem/src/lib.rs crates/xxi-mem/src/cache.rs crates/xxi-mem/src/coherence.rs crates/xxi-mem/src/compress.rs crates/xxi-mem/src/dram.rs crates/xxi-mem/src/energy.rs crates/xxi-mem/src/hierarchy.rs crates/xxi-mem/src/hybrid.rs crates/xxi-mem/src/nvm.rs crates/xxi-mem/src/prefetch.rs crates/xxi-mem/src/tlb.rs crates/xxi-mem/src/trace.rs crates/xxi-mem/src/wear.rs

crates/xxi-mem/src/lib.rs:
crates/xxi-mem/src/cache.rs:
crates/xxi-mem/src/coherence.rs:
crates/xxi-mem/src/compress.rs:
crates/xxi-mem/src/dram.rs:
crates/xxi-mem/src/energy.rs:
crates/xxi-mem/src/hierarchy.rs:
crates/xxi-mem/src/hybrid.rs:
crates/xxi-mem/src/nvm.rs:
crates/xxi-mem/src/prefetch.rs:
crates/xxi-mem/src/tlb.rs:
crates/xxi-mem/src/trace.rs:
crates/xxi-mem/src/wear.rs:
