/root/repo/target/release/deps/exp_e6_multicore-bf32757819a33143.d: crates/xxi-bench/src/bin/exp_e6_multicore.rs

/root/repo/target/release/deps/exp_e6_multicore-bf32757819a33143: crates/xxi-bench/src/bin/exp_e6_multicore.rs

crates/xxi-bench/src/bin/exp_e6_multicore.rs:
