/root/repo/target/release/deps/xxi_rel-a5279470978987a9.d: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs

/root/repo/target/release/deps/libxxi_rel-a5279470978987a9.rlib: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs

/root/repo/target/release/deps/libxxi_rel-a5279470978987a9.rmeta: crates/xxi-rel/src/lib.rs crates/xxi-rel/src/checkpoint.rs crates/xxi-rel/src/ecc.rs crates/xxi-rel/src/failsafe.rs crates/xxi-rel/src/inject.rs crates/xxi-rel/src/invariant.rs crates/xxi-rel/src/scrub.rs crates/xxi-rel/src/tmr.rs

crates/xxi-rel/src/lib.rs:
crates/xxi-rel/src/checkpoint.rs:
crates/xxi-rel/src/ecc.rs:
crates/xxi-rel/src/failsafe.rs:
crates/xxi-rel/src/inject.rs:
crates/xxi-rel/src/invariant.rs:
crates/xxi-rel/src/scrub.rs:
crates/xxi-rel/src/tmr.rs:
