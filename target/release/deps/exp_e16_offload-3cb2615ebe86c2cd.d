/root/repo/target/release/deps/exp_e16_offload-3cb2615ebe86c2cd.d: crates/xxi-bench/src/bin/exp_e16_offload.rs

/root/repo/target/release/deps/exp_e16_offload-3cb2615ebe86c2cd: crates/xxi-bench/src/bin/exp_e16_offload.rs

crates/xxi-bench/src/bin/exp_e16_offload.rs:
