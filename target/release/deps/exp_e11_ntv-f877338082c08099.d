/root/repo/target/release/deps/exp_e11_ntv-f877338082c08099.d: crates/xxi-bench/src/bin/exp_e11_ntv.rs

/root/repo/target/release/deps/exp_e11_ntv-f877338082c08099: crates/xxi-bench/src/bin/exp_e11_ntv.rs

crates/xxi-bench/src/bin/exp_e11_ntv.rs:
