/root/repo/target/release/deps/cross_layer-3f54e7cf72979671.d: tests/cross_layer.rs

/root/repo/target/release/deps/cross_layer-3f54e7cf72979671: tests/cross_layer.rs

tests/cross_layer.rs:
