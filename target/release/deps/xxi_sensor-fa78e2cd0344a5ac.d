/root/repo/target/release/deps/xxi_sensor-fa78e2cd0344a5ac.d: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

/root/repo/target/release/deps/libxxi_sensor-fa78e2cd0344a5ac.rlib: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

/root/repo/target/release/deps/libxxi_sensor-fa78e2cd0344a5ac.rmeta: crates/xxi-sensor/src/lib.rs crates/xxi-sensor/src/intermittent.rs crates/xxi-sensor/src/mcu.rs crates/xxi-sensor/src/node.rs crates/xxi-sensor/src/power.rs crates/xxi-sensor/src/radio.rs

crates/xxi-sensor/src/lib.rs:
crates/xxi-sensor/src/intermittent.rs:
crates/xxi-sensor/src/mcu.rs:
crates/xxi-sensor/src/node.rs:
crates/xxi-sensor/src/power.rs:
crates/xxi-sensor/src/radio.rs:
