/root/repo/target/release/deps/xxi_stack-fcf00a3ec6b560b9.d: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs

/root/repo/target/release/deps/libxxi_stack-fcf00a3ec6b560b9.rlib: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs

/root/repo/target/release/deps/libxxi_stack-fcf00a3ec6b560b9.rmeta: crates/xxi-stack/src/lib.rs crates/xxi-stack/src/deque.rs crates/xxi-stack/src/governor.rs crates/xxi-stack/src/intent.rs crates/xxi-stack/src/locality.rs crates/xxi-stack/src/offload.rs crates/xxi-stack/src/pool.rs crates/xxi-stack/src/stm.rs

crates/xxi-stack/src/lib.rs:
crates/xxi-stack/src/deque.rs:
crates/xxi-stack/src/governor.rs:
crates/xxi-stack/src/intent.rs:
crates/xxi-stack/src/locality.rs:
crates/xxi-stack/src/offload.rs:
crates/xxi-stack/src/pool.rs:
crates/xxi-stack/src/stm.rs:
