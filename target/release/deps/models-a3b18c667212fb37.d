/root/repo/target/release/deps/models-a3b18c667212fb37.d: crates/xxi-bench/benches/models.rs

/root/repo/target/release/deps/models-a3b18c667212fb37: crates/xxi-bench/benches/models.rs

crates/xxi-bench/benches/models.rs:
