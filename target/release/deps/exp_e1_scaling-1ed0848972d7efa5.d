/root/repo/target/release/deps/exp_e1_scaling-1ed0848972d7efa5.d: crates/xxi-bench/src/bin/exp_e1_scaling.rs

/root/repo/target/release/deps/exp_e1_scaling-1ed0848972d7efa5: crates/xxi-bench/src/bin/exp_e1_scaling.rs

crates/xxi-bench/src/bin/exp_e1_scaling.rs:
