/root/repo/target/release/deps/exp_e7_specialization-40e113abf75a62e9.d: crates/xxi-bench/src/bin/exp_e7_specialization.rs

/root/repo/target/release/deps/exp_e7_specialization-40e113abf75a62e9: crates/xxi-bench/src/bin/exp_e7_specialization.rs

crates/xxi-bench/src/bin/exp_e7_specialization.rs:
