/root/repo/target/release/examples/chip_designer-ee5ee3368554ca03.d: examples/chip_designer.rs

/root/repo/target/release/examples/chip_designer-ee5ee3368554ca03: examples/chip_designer.rs

examples/chip_designer.rs:
