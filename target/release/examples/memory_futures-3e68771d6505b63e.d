/root/repo/target/release/examples/memory_futures-3e68771d6505b63e.d: examples/memory_futures.rs

/root/repo/target/release/examples/memory_futures-3e68771d6505b63e: examples/memory_futures.rs

examples/memory_futures.rs:
