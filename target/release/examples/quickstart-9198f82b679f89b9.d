/root/repo/target/release/examples/quickstart-9198f82b679f89b9.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9198f82b679f89b9: examples/quickstart.rs

examples/quickstart.rs:
