/root/repo/target/release/examples/hardened_soc-fb75caa4ef8d8c0d.d: examples/hardened_soc.rs

/root/repo/target/release/examples/hardened_soc-fb75caa4ef8d8c0d: examples/hardened_soc.rs

examples/hardened_soc.rs:
