/root/repo/target/release/examples/search_frontend-154ea0dc326c16f3.d: examples/search_frontend.rs

/root/repo/target/release/examples/search_frontend-154ea0dc326c16f3: examples/search_frontend.rs

examples/search_frontend.rs:
