/root/repo/target/release/examples/wearable_monitor-e6f9a68f9e1bdaad.d: examples/wearable_monitor.rs

/root/repo/target/release/examples/wearable_monitor-e6f9a68f9e1bdaad: examples/wearable_monitor.rs

examples/wearable_monitor.rs:
