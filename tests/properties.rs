//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::prelude::*;

use xxi::core::rng::{Rng64, Zipf};
use xxi::core::stats::{P2Quantile, Streaming, Summary};
use xxi::cpu::hillmarty::{
    speedup_amdahl, speedup_asymmetric, speedup_dynamic, speedup_symmetric,
};
use xxi::mem::cache::{AccessKind, Cache, CacheConfig, Replacement};
use xxi::mem::coherence::CoherentSystem;
use xxi::mem::nvm::{NvmDevice, NvmTech};
use xxi::mem::wear::StartGap;
use xxi::rel::ecc::{decode, encode, flip, DecodeResult};

proptest! {
    /// SECDED corrects any single flip of any data word.
    #[test]
    fn ecc_corrects_any_single_flip(data: u64, pos in 1u32..=72) {
        let cw = encode(data);
        let out = decode(flip(cw, pos));
        prop_assert_eq!(out.data(), Some(data));
    }

    /// SECDED detects (and never silently mis-corrects) any double flip.
    #[test]
    fn ecc_detects_any_double_flip(data: u64, a in 1u32..=72, b in 1u32..=72) {
        prop_assume!(a != b);
        let out = decode(flip(flip(encode(data), a), b));
        prop_assert_eq!(out, DecodeResult::DoubleError);
    }

    /// Start-Gap's logical→physical map stays a bijection under any write
    /// workload.
    #[test]
    fn start_gap_stays_bijective(
        n in 2usize..60,
        writes in proptest::collection::vec(0usize..1000, 0..300),
        psi in 1u64..20,
    ) {
        let mut sg = StartGap::new(NvmDevice::new(NvmTech::Pcm, n + 1), psi);
        for w in writes {
            sg.write(w % n);
            let mut seen = std::collections::HashSet::new();
            for la in 0..n {
                prop_assert!(seen.insert(sg.translate(la)), "collision");
            }
        }
    }

    /// Cache occupancy never exceeds capacity and hits never exceed
    /// accesses, for any trace and any replacement policy.
    #[test]
    fn cache_conservation(
        addrs in proptest::collection::vec(0u64..100_000, 1..500),
        policy in prop_oneof![
            Just(Replacement::Lru),
            Just(Replacement::Fifo),
            Just(Replacement::Random),
            Just(Replacement::TreePlru)
        ],
    ) {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
            replacement: policy,
            write_allocate: true,
        }).unwrap();
        for (i, &a) in addrs.iter().enumerate() {
            let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
            c.access(a, kind);
        }
        prop_assert!(c.occupancy() as u64 <= 4096 / 64);
        let m = &c.metrics;
        prop_assert_eq!(m.counter("hits") + m.counter("misses"), m.counter("accesses"));
        prop_assert!(m.counter("writebacks") <= m.counter("evictions"));
    }

    /// MESI keeps single-writer/multiple-reader under arbitrary op
    /// sequences.
    #[test]
    fn mesi_swmr_under_arbitrary_ops(
        ops in proptest::collection::vec((0usize..4, 0u64..16, 0u8..3), 0..400),
    ) {
        let mut sys = CoherentSystem::new(4);
        for (cache, line, op) in ops {
            match op {
                0 => sys.read(cache, line * 64),
                1 => sys.write(cache, line * 64),
                _ => sys.evict(cache, line * 64),
            }
        }
        prop_assert!(sys.holds_swmr_everywhere());
    }

    /// Hill–Marty speedups are bounded below by 1 (when r=1 exists) and
    /// above by ideal, and symmetric ≤ asymmetric ≤ dynamic.
    #[test]
    fn hillmarty_ordering_and_bounds(
        f in 0.0f64..=1.0,
        n_exp in 2u32..9, // n = 2^exp
        r_exp in 0u32..8,
    ) {
        let n = 2f64.powi(n_exp as i32);
        let r = 2f64.powi(r_exp.min(n_exp) as i32);
        let s = speedup_symmetric(f, n, r);
        let a = speedup_asymmetric(f, n, r);
        let d = speedup_dynamic(f, n, r);
        prop_assert!(s <= a + 1e-9);
        prop_assert!(a <= d + 1e-9);
        prop_assert!(d <= n + n.sqrt() + 1e-9);
        prop_assert!(s > 0.0);
        // Amdahl with unit cores is the r=1 symmetric special case.
        prop_assert!((speedup_symmetric(f, n, 1.0) - speedup_amdahl(f, n)).abs() < 1e-9);
    }

    /// Summary percentiles are monotone in p and bounded by min/max.
    #[test]
    fn summary_percentiles_monotone(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        p1 in 0.0f64..=100.0,
        p2 in 0.0f64..=100.0,
    ) {
        let s = Summary::from_slice(&xs);
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!(s.percentile(lo) <= s.percentile(hi));
        prop_assert!(s.percentile(0.0) >= s.min() - 1e-12);
        prop_assert!(s.percentile(100.0) <= s.max() + 1e-12);
    }

    /// Streaming merge is equivalent to streaming over the concatenation.
    #[test]
    fn streaming_merge_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ys in proptest::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut a = Streaming::new();
        for &x in &xs { a.add(x); }
        let mut b = Streaming::new();
        for &y in &ys { b.add(y); }
        a.merge(&b);
        let mut all = Streaming::new();
        for &x in xs.iter().chain(&ys) { all.add(x); }
        prop_assert_eq!(a.count(), all.count());
        if all.count() > 0 {
            prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
            prop_assert!((a.variance() - all.variance()).abs() < 1e-4);
        }
    }

    /// Zipf pmf sums to 1 and is non-increasing in rank.
    #[test]
    fn zipf_pmf_valid(n in 1usize..500, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    /// The P² estimator stays within the observed range.
    #[test]
    fn p2_within_range(
        xs in proptest::collection::vec(-1e3f64..1e3, 5..300),
        q in 0.01f64..0.99,
    ) {
        let mut p2 = P2Quantile::new(q);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            p2.add(x);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let e = p2.estimate();
        prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "e={} not in [{},{}]", e, lo, hi);
    }

    /// Deterministic RNG: same seed, same stream; and below() respects its
    /// bound.
    #[test]
    fn rng_determinism_and_bounds(seed: u64, n in 1u64..1_000_000) {
        let mut a = Rng64::new(seed);
        let mut b = Rng64::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..50 {
            prop_assert!(a.below(n) < n);
        }
    }
}

proptest! {
    /// STM: sequential transactions always commit and reads see the last
    /// write (single-threaded linearizability).
    #[test]
    fn stm_sequential_semantics(
        ops in proptest::collection::vec((0usize..16, 0u64..1000), 1..100),
    ) {
        use xxi::stack::stm::TxArray;
        let arr = TxArray::new(16);
        let mut model = [0u64; 16];
        for (i, v) in ops {
            arr.run(|tx| {
                let old = tx.read(i)?;
                tx.write(i, old.wrapping_add(v));
                Ok(())
            });
            model[i] = model[i].wrapping_add(v);
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(arr.read_direct(i), m);
        }
        prop_assert_eq!(arr.aborts(), 0, "no concurrency, no aborts");
    }

    /// DIFT: taint is never forged — a program with no In instructions can
    /// never trap, regardless of its shape.
    #[test]
    fn dift_no_input_no_taint(
        prog_spec in proptest::collection::vec((0u8..5, 0u8..8, 0u8..8, 0u64..64), 1..50),
    ) {
        use xxi::sec::ift::{Instr, Machine, Outcome, Policy};
        let mut prog: Vec<Instr> = prog_spec
            .into_iter()
            .map(|(op, a, b, imm)| match op {
                0 => Instr::Const { d: a, imm },
                1 => Instr::Add { d: a, a: b, b: a },
                2 => Instr::Load { d: a, a: b },
                3 => Instr::Store { a, v: b },
                _ => Instr::Out { v: a },
            })
            .collect();
        prog.push(Instr::Halt);
        let mut m = Machine::new(Policy::confidentiality(), 64, vec![]);
        match m.run(&prog, 1_000) {
            Outcome::Finished(_) => {}
            Outcome::Trapped { kind, pc } => {
                prop_assert!(false, "clean program trapped: {kind:?} at {pc}");
            }
        }
    }

    /// Protection: an access is allowed iff the exact permission was
    /// granted on the containing region.
    #[test]
    fn protection_matrix_is_exact(
        grants in proptest::collection::vec((0u32..4, 0u32..4, 0u8..8), 0..20),
        probe_domain in 0u32..4,
        probe_region in 0u32..4,
        probe_kind in 0u8..3,
    ) {
        use xxi::sec::protection::{AccessKind, DomainId, Perms, ProtectionMatrix, RegionId};
        let mut pm = ProtectionMatrix::new();
        for r in 0..4u32 {
            pm.define_region(RegionId(r), (r as usize) * 100, 100).unwrap();
        }
        let mut expected = std::collections::HashMap::new();
        for (d, r, bits) in grants {
            pm.grant(DomainId(d), RegionId(r), Perms(bits & 7));
            expected.insert((d, r), bits & 7);
        }
        let kind = match probe_kind {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => AccessKind::Execute,
        };
        let need = match kind {
            AccessKind::Read => 1u8,
            AccessKind::Write => 2,
            AccessKind::Execute => 4,
        };
        let addr = probe_region as usize * 100 + 50;
        let allowed = pm
            .check(DomainId(probe_domain), addr, kind)
            .is_ok();
        let granted = expected
            .get(&(probe_domain, probe_region))
            .map(|&b| b & need != 0)
            .unwrap_or(false);
        prop_assert_eq!(allowed, granted);
    }

    /// TLB: miss count equals the number of distinct-page transitions an
    /// LRU stack of the configured depth cannot hold — bounded by unique
    /// pages below capacity.
    #[test]
    fn tlb_cold_misses_bounded_by_unique_pages(
        pages in proptest::collection::vec(0u64..32, 1..300),
    ) {
        use xxi::mem::tlb::{Tlb, TlbConfig};
        // 64-entry TLB, ≤32 distinct pages: every miss is a cold miss.
        let mut tlb = Tlb::new(TlbConfig::dtlb_4k());
        for &p in &pages {
            tlb.translate(p * 4096);
        }
        let unique: std::collections::HashSet<u64> = pages.iter().copied().collect();
        prop_assert_eq!(tlb.metrics.counter("misses"), unique.len() as u64);
    }

    /// Tolerant memoization respects the Lipschitz error bound for sin.
    #[test]
    fn memo_error_bound_property(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..200),
        tol in 0.001f64..0.5,
    ) {
        use xxi::approx::memo::TolerantMemo;
        let mut m = TolerantMemo::new(|x: f64| x.sin(), tol, 1 << 16);
        for &x in &xs {
            let err = (m.call(x) - x.sin()).abs();
            prop_assert!(err <= tol + 1e-12, "err={err} tol={tol}");
        }
    }

    /// Thermal: more power never lowers any junction temperature
    /// (monotonicity of the fixed point), and the sink layer is coolest.
    #[test]
    fn thermal_monotone_in_power(
        p1 in 1.0f64..40.0,
        extra in 0.1f64..20.0,
        layers in 1usize..4,
    ) {
        use xxi::tech::ThermalModel;
        use xxi::core::units::Power;
        let m = ThermalModel::air_cooled();
        let lo = m.solve(&vec![Power(p1); layers]);
        let hi = m.solve(&vec![Power(p1 + extra); layers]);
        if let (Some(lo), Some(hi)) = (lo, hi) {
            for (a, b) in lo.iter().zip(&hi) {
                prop_assert!(b >= a, "hotter input, cooler output?");
            }
            for w in lo.windows(2) {
                prop_assert!(w[1] >= w[0], "sink layer must be coolest");
            }
        }
    }
}
