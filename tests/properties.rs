//! Property-based tests on the workspace's core invariants.
//!
//! The build environment is offline, so instead of `proptest` these are
//! driven by the workspace's own deterministic [`Rng64`]: each test runs
//! `CASES` randomized trials from fixed per-test seeds. Failures print the
//! case seed so a trial can be replayed exactly.

use xxi::core::obs::LogHistogram;
use xxi::core::rng::{Rng64, Zipf};
use xxi::core::stats::{P2Quantile, Streaming, Summary};
use xxi::cpu::hillmarty::{speedup_amdahl, speedup_asymmetric, speedup_dynamic, speedup_symmetric};
use xxi::mem::cache::{AccessKind, Cache, CacheConfig, Replacement};
use xxi::mem::coherence::CoherentSystem;
use xxi::mem::nvm::{NvmDevice, NvmTech};
use xxi::mem::wear::StartGap;
use xxi::rel::ecc::{decode, encode, flip, DecodeResult};

/// Randomized trials per property. Each trial gets its own derived seed.
const CASES: u64 = 64;

/// Run `body` for `CASES` deterministic seeds; `salt` keeps the streams of
/// different tests independent.
fn cases(salt: u64, mut body: impl FnMut(&mut Rng64)) {
    for case in 0..CASES {
        let seed = salt
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(case + 1);
        let mut rng = Rng64::new(seed);
        body(&mut rng);
    }
}

fn random_vec(rng: &mut Rng64, len_lo: u64, len_hi: u64, lo: f64, hi: f64) -> Vec<f64> {
    let n = rng.range_u64(len_lo, len_hi);
    (0..n).map(|_| rng.range_f64(lo, hi)).collect()
}

/// SECDED corrects any single flip of any data word.
#[test]
fn ecc_corrects_any_single_flip() {
    cases(1, |rng| {
        let data = rng.next_u64();
        let pos = rng.range_u64(1, 72) as u32;
        let cw = encode(data);
        let out = decode(flip(cw, pos));
        assert_eq!(out.data(), Some(data), "data={data:#x} pos={pos}");
    });
}

/// SECDED detects (and never silently mis-corrects) any double flip.
#[test]
fn ecc_detects_any_double_flip() {
    cases(2, |rng| {
        let data = rng.next_u64();
        let a = rng.range_u64(1, 72) as u32;
        let mut b = rng.range_u64(1, 72) as u32;
        if a == b {
            b = if b == 72 { 1 } else { b + 1 };
        }
        let out = decode(flip(flip(encode(data), a), b));
        assert_eq!(out, DecodeResult::DoubleError, "data={data:#x} a={a} b={b}");
    });
}

/// Start-Gap's logical→physical map stays a bijection under any write
/// workload.
#[test]
fn start_gap_stays_bijective() {
    cases(3, |rng| {
        let n = rng.range_u64(2, 60) as usize;
        let psi = rng.range_u64(1, 20);
        let writes = rng.range_u64(0, 300);
        let mut sg = StartGap::new(NvmDevice::new(NvmTech::Pcm, n + 1), psi);
        for _ in 0..writes {
            sg.write(rng.below(1000) as usize % n);
            let mut seen = std::collections::HashSet::new();
            for la in 0..n {
                assert!(seen.insert(sg.translate(la)), "collision (n={n} psi={psi})");
            }
        }
    });
}

/// Cache occupancy never exceeds capacity and hits never exceed accesses,
/// for any trace and any replacement policy.
#[test]
fn cache_conservation() {
    let policies = [
        Replacement::Lru,
        Replacement::Fifo,
        Replacement::Random,
        Replacement::TreePlru,
    ];
    cases(4, |rng| {
        let policy = *rng.choose(&policies);
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
            replacement: policy,
            write_allocate: true,
        })
        .unwrap();
        let n = rng.range_u64(1, 500);
        for i in 0..n {
            let a = rng.below(100_000);
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            c.access(a, kind);
        }
        assert!(c.occupancy() as u64 <= 4096 / 64);
        let m = &c.metrics;
        assert_eq!(
            m.counter("hits") + m.counter("misses"),
            m.counter("accesses")
        );
        assert!(m.counter("writebacks") <= m.counter("evictions"));
    });
}

/// MESI keeps single-writer/multiple-reader under arbitrary op sequences.
#[test]
fn mesi_swmr_under_arbitrary_ops() {
    cases(5, |rng| {
        let mut sys = CoherentSystem::new(4);
        let n = rng.below(400);
        for _ in 0..n {
            let cache = rng.below(4) as usize;
            let line = rng.below(16);
            match rng.below(3) {
                0 => sys.read(cache, line * 64),
                1 => sys.write(cache, line * 64),
                _ => sys.evict(cache, line * 64),
            };
        }
        assert!(sys.holds_swmr_everywhere());
    });
}

/// Hill–Marty speedups are bounded below by 1 (when r=1 exists) and above
/// by ideal, and symmetric ≤ asymmetric ≤ dynamic.
#[test]
fn hillmarty_ordering_and_bounds() {
    cases(6, |rng| {
        let f = rng.next_f64();
        let n_exp = rng.range_u64(2, 9) as u32;
        let r_exp = (rng.below(8) as u32).min(n_exp);
        let n = 2f64.powi(n_exp as i32);
        let r = 2f64.powi(r_exp as i32);
        let s = speedup_symmetric(f, n, r);
        let a = speedup_asymmetric(f, n, r);
        let d = speedup_dynamic(f, n, r);
        assert!(s <= a + 1e-9, "f={f} n={n} r={r}: sym {s} > asym {a}");
        assert!(a <= d + 1e-9, "f={f} n={n} r={r}: asym {a} > dyn {d}");
        assert!(d <= n + n.sqrt() + 1e-9);
        assert!(s > 0.0);
        // Amdahl with unit cores is the r=1 symmetric special case.
        assert!((speedup_symmetric(f, n, 1.0) - speedup_amdahl(f, n)).abs() < 1e-9);
    });
}

/// Summary percentiles are monotone in p and bounded by min/max.
#[test]
fn summary_percentiles_monotone() {
    cases(7, |rng| {
        let xs = random_vec(rng, 1, 200, -1e6, 1e6);
        let s = Summary::from_slice(&xs);
        let (p1, p2) = (rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0));
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        assert!(s.percentile(lo) <= s.percentile(hi));
        assert!(s.percentile(0.0) >= s.min() - 1e-12);
        assert!(s.percentile(100.0) <= s.max() + 1e-12);
    });
}

/// Streaming merge is equivalent to streaming over the concatenation.
#[test]
fn streaming_merge_associative() {
    cases(8, |rng| {
        let xs = random_vec(rng, 0, 100, -1e3, 1e3);
        let ys = random_vec(rng, 0, 100, -1e3, 1e3);
        let mut a = Streaming::new();
        for &x in &xs {
            a.add(x);
        }
        let mut b = Streaming::new();
        for &y in &ys {
            b.add(y);
        }
        a.merge(&b);
        let mut all = Streaming::new();
        for &x in xs.iter().chain(&ys) {
            all.add(x);
        }
        assert_eq!(a.count(), all.count());
        if all.count() > 0 {
            assert!((a.mean() - all.mean()).abs() < 1e-6);
            assert!((a.variance() - all.variance()).abs() < 1e-4);
        }
    });
}

/// Zipf pmf sums to 1 and is non-increasing in rank.
#[test]
fn zipf_pmf_valid() {
    cases(9, |rng| {
        let n = rng.range_u64(1, 500) as usize;
        let s = rng.range_f64(0.0, 3.0);
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    });
}

/// The P² estimator stays within the observed range.
#[test]
fn p2_within_range() {
    cases(10, |rng| {
        let xs = random_vec(rng, 5, 300, -1e3, 1e3);
        let q = rng.range_f64(0.01, 0.99);
        let mut p2 = P2Quantile::new(q);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            p2.add(x);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let e = p2.estimate();
        assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "e={e} not in [{lo},{hi}]");
    });
}

/// Deterministic RNG: same seed, same stream; and below() respects its
/// bound.
#[test]
fn rng_determinism_and_bounds() {
    cases(11, |rng| {
        let seed = rng.next_u64();
        let n = rng.range_u64(1, 1_000_000);
        let mut a = Rng64::new(seed);
        let mut b = Rng64::new(seed);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..50 {
            assert!(a.below(n) < n);
        }
    });
}

/// The observability quantile estimators agree with ground truth: on
/// random positive inputs both [`LogHistogram`] (within its documented
/// relative bucket error) and [`P2Quantile`] (a looser streaming bound)
/// track the exact `Summary::percentile`.
#[test]
fn histogram_and_p2_track_exact_percentiles() {
    cases(12, |rng| {
        // Mix of distributions so both mid-range and tail shapes appear.
        let n = rng.range_u64(2_000, 20_000);
        let heavy = rng.chance(0.5);
        let xs: Vec<f64> = (0..n)
            .map(|_| {
                if heavy {
                    rng.pareto(1e-3, 1.2)
                } else {
                    rng.lognormal(0.0, 1.5)
                }
            })
            .collect();
        let mut hist = LogHistogram::new();
        let mut p2_median = P2Quantile::new(0.5);
        for &x in &xs {
            hist.add(x);
            p2_median.add(x);
        }
        let exact = Summary::from_slice(&xs);
        for p in [10.0, 50.0, 90.0, 99.0] {
            let truth = exact.percentile(p);
            let est = hist.percentile(p);
            let rel = (est - truth).abs() / truth.abs().max(1e-300);
            // One bucket of slack past the documented per-bucket error
            // covers rank-rounding differences at distribution knees.
            let tol = 2.0 * LogHistogram::MAX_REL_ERROR;
            assert!(
                rel <= tol,
                "p{p}: hist {est} vs exact {truth} (rel {rel:.4} > {tol})"
            );
        }
        // P² is a 5-marker heuristic: hold it to a loose-but-real bound on
        // the median, where it is most reliable.
        let truth = exact.percentile(50.0);
        let est = p2_median.estimate();
        let rel = (est - truth).abs() / truth.abs().max(1e-300);
        assert!(rel <= 0.25, "p50: P2 {est} vs exact {truth} (rel {rel:.4})");
        // And the histogram never leaves the observed range.
        assert!(hist.min() >= exact.min() && hist.max() <= exact.max());
    });
}

/// Merging shard histograms is equivalent to one histogram over the
/// concatenated stream — the property that makes per-shard collection
/// sound.
#[test]
fn histogram_merge_matches_concatenation() {
    cases(13, |rng| {
        let xs = random_vec(rng, 0, 500, 1e-6, 1e6);
        let ys = random_vec(rng, 0, 500, 1e-6, 1e6);
        let mut a = LogHistogram::new();
        for &x in &xs {
            a.add(x);
        }
        let mut b = LogHistogram::new();
        for &y in &ys {
            b.add(y);
        }
        a.merge(&b);
        let mut all = LogHistogram::new();
        for &x in xs.iter().chain(&ys) {
            all.add(x);
        }
        assert_eq!(a.count(), all.count());
        if !all.is_empty() {
            for p in [1.0, 25.0, 50.0, 75.0, 99.0] {
                assert_eq!(a.percentile(p), all.percentile(p), "p{p}");
            }
            assert_eq!(a.min(), all.min());
            assert_eq!(a.max(), all.max());
        }
    });
}

/// STM: sequential transactions always commit and reads see the last
/// write (single-threaded linearizability).
#[test]
fn stm_sequential_semantics() {
    use xxi::stack::stm::TxArray;
    cases(14, |rng| {
        let arr = TxArray::new(16);
        let mut model = [0u64; 16];
        let n = rng.range_u64(1, 100);
        for _ in 0..n {
            let i = rng.below(16) as usize;
            let v = rng.below(1000);
            arr.run(|tx| {
                let old = tx.read(i)?;
                tx.write(i, old.wrapping_add(v));
                Ok(())
            });
            model[i] = model[i].wrapping_add(v);
        }
        for (i, &m) in model.iter().enumerate() {
            assert_eq!(arr.read_direct(i), m);
        }
        assert_eq!(arr.aborts(), 0, "no concurrency, no aborts");
    });
}

/// DIFT: taint is never forged — a program with no In instructions can
/// never trap, regardless of its shape.
#[test]
fn dift_no_input_no_taint() {
    use xxi::sec::ift::{Instr, Machine, Outcome, Policy};
    cases(15, |rng| {
        let n = rng.range_u64(1, 50);
        let mut prog: Vec<Instr> = (0..n)
            .map(|_| {
                let a = rng.below(8) as u8;
                let b = rng.below(8) as u8;
                match rng.below(5) {
                    0 => Instr::Const {
                        d: a,
                        imm: rng.below(64),
                    },
                    1 => Instr::Add { d: a, a: b, b: a },
                    2 => Instr::Load { d: a, a: b },
                    3 => Instr::Store { a, v: b },
                    _ => Instr::Out { v: a },
                }
            })
            .collect();
        prog.push(Instr::Halt);
        let mut m = Machine::new(Policy::confidentiality(), 64, vec![]);
        match m.run(&prog, 1_000) {
            Outcome::Finished(_) => {}
            Outcome::Trapped { kind, pc } => {
                panic!("clean program trapped: {kind:?} at {pc}");
            }
        }
    });
}

/// Protection: an access is allowed iff the exact permission was granted
/// on the containing region.
#[test]
fn protection_matrix_is_exact() {
    use xxi::sec::protection::{AccessKind, DomainId, Perms, ProtectionMatrix, RegionId};
    cases(16, |rng| {
        let mut pm = ProtectionMatrix::new();
        for r in 0..4u32 {
            pm.define_region(RegionId(r), (r as usize) * 100, 100)
                .unwrap();
        }
        let mut expected = std::collections::HashMap::new();
        let n = rng.below(20);
        for _ in 0..n {
            let d = rng.below(4) as u32;
            let r = rng.below(4) as u32;
            let bits = (rng.below(8) as u8) & 7;
            pm.grant(DomainId(d), RegionId(r), Perms(bits));
            expected.insert((d, r), bits);
        }
        let probe_domain = rng.below(4) as u32;
        let probe_region = rng.below(4) as u32;
        let (kind, need) = match rng.below(3) {
            0 => (AccessKind::Read, 1u8),
            1 => (AccessKind::Write, 2),
            _ => (AccessKind::Execute, 4),
        };
        let addr = probe_region as usize * 100 + 50;
        let allowed = pm.check(DomainId(probe_domain), addr, kind).is_ok();
        let granted = expected
            .get(&(probe_domain, probe_region))
            .map(|&b| b & need != 0)
            .unwrap_or(false);
        assert_eq!(allowed, granted);
    });
}

/// TLB: with fewer distinct pages than TLB entries, every miss is a cold
/// miss, so misses == unique pages.
#[test]
fn tlb_cold_misses_bounded_by_unique_pages() {
    use xxi::mem::tlb::{Tlb, TlbConfig};
    cases(17, |rng| {
        // 64-entry TLB, ≤32 distinct pages: every miss is a cold miss.
        let mut tlb = Tlb::new(TlbConfig::dtlb_4k());
        let n = rng.range_u64(1, 300);
        let mut unique = std::collections::HashSet::new();
        for _ in 0..n {
            let p = rng.below(32);
            unique.insert(p);
            tlb.translate(p * 4096);
        }
        assert_eq!(tlb.metrics.counter("misses"), unique.len() as u64);
    });
}

/// Tolerant memoization respects the Lipschitz error bound for sin.
#[test]
fn memo_error_bound_property() {
    use xxi::approx::memo::TolerantMemo;
    cases(18, |rng| {
        let tol = rng.range_f64(0.001, 0.5);
        let mut m = TolerantMemo::new(|x: f64| x.sin(), tol, 1 << 16);
        let n = rng.range_u64(1, 200);
        for _ in 0..n {
            let x = rng.range_f64(-100.0, 100.0);
            let err = (m.call(x) - x.sin()).abs();
            assert!(err <= tol + 1e-12, "err={err} tol={tol}");
        }
    });
}

/// Thermal: more power never lowers any junction temperature
/// (monotonicity of the fixed point), and the sink layer is coolest.
#[test]
fn thermal_monotone_in_power() {
    use xxi::core::units::Power;
    use xxi::tech::ThermalModel;
    cases(19, |rng| {
        let p1 = rng.range_f64(1.0, 40.0);
        let extra = rng.range_f64(0.1, 20.0);
        let layers = rng.range_u64(1, 4) as usize;
        let m = ThermalModel::air_cooled();
        let lo = m.solve(&vec![Power(p1); layers]);
        let hi = m.solve(&vec![Power(p1 + extra); layers]);
        if let (Some(lo), Some(hi)) = (lo, hi) {
            for (a, b) in lo.iter().zip(&hi) {
                assert!(b >= a, "hotter input, cooler output?");
            }
            for w in lo.windows(2) {
                assert!(w[1] >= w[0], "sink layer must be coolest");
            }
        }
    });
}

/// Build a random vector clock by ticking random components.
fn random_vclock(rng: &mut xxi::core::rng::Rng64, threads: u64) -> xxi::check::vclock::VClock {
    let mut c = xxi::check::vclock::VClock::new();
    for _ in 0..rng.range_u64(0, 12) {
        c.tick(rng.below(threads) as usize);
    }
    c
}

/// Vector clocks: `join` is the least upper bound — it dominates both
/// inputs, is commutative, idempotent, and adds nothing beyond the
/// pointwise max.
#[test]
fn vclock_join_is_least_upper_bound() {
    cases(20, |rng| {
        let a = random_vclock(rng, 4);
        let b = random_vclock(rng, 4);
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert!(a.le(&ab) && b.le(&ab), "join must dominate both inputs");
        assert_eq!(ab, ba, "join must be commutative");
        let mut twice = ab.clone();
        twice.join(&b);
        assert_eq!(twice, ab, "join must be idempotent");
        for tid in 0..4 {
            assert_eq!(ab.get(tid), a.get(tid).max(b.get(tid)), "pointwise max");
        }
    });
}

/// Vector clocks: the happens-before relation is a partial order —
/// reflexive, antisymmetric, transitive — and `concurrent` is exactly
/// its incomparability.
#[test]
fn vclock_happens_before_is_a_partial_order() {
    use std::cmp::Ordering as CmpOrdering;
    cases(21, |rng| {
        let a = random_vclock(rng, 4);
        let b = random_vclock(rng, 4);
        let c = random_vclock(rng, 4);
        assert!(a.le(&a), "reflexive");
        if a.le(&b) && b.le(&a) {
            assert_eq!(a, b, "antisymmetric");
        }
        if a.le(&b) && b.le(&c) {
            assert!(a.le(&c), "transitive");
        }
        assert_eq!(
            a.concurrent(&b),
            a.partial_cmp(&b).is_none(),
            "concurrent == incomparable"
        );
        assert_eq!(
            a.concurrent(&b),
            b.concurrent(&a),
            "concurrent is symmetric"
        );
        match a.partial_cmp(&b) {
            Some(CmpOrdering::Less) => assert!(a.lt(&b) && !b.lt(&a)),
            Some(CmpOrdering::Greater) => assert!(b.lt(&a) && !a.lt(&b)),
            Some(CmpOrdering::Equal) => assert_eq!(a, b),
            None => assert!(!a.lt(&b) && !b.lt(&a)),
        }
    });
}

/// Vector clocks: a message hand-off (`join` then `tick`) puts the sender
/// strictly before the receiver, and a third party that never
/// synchronizes stays concurrent with both.
#[test]
fn vclock_message_passing_orders_sender_before_receiver() {
    cases(22, |rng| {
        let mut sender = random_vclock(rng, 2);
        sender.tick(0);
        let mut receiver = random_vclock(rng, 2);
        receiver.join(&sender);
        receiver.tick(1);
        assert!(sender.lt(&receiver), "send must happen-before receive");
        let mut loner = xxi::check::vclock::VClock::new();
        loner.tick(3);
        assert!(loner.concurrent(&sender) && loner.concurrent(&receiver));
    });
}

/// Build a metrics registry with random counters, gauges, and histogram
/// samples over a small shared name pool (so merges actually collide).
fn random_metrics(rng: &mut Rng64) -> xxi::core::metrics::Metrics {
    const NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];
    let mut m = xxi::core::metrics::Metrics::new();
    for _ in 0..rng.range_u64(1, 14) {
        let name = NAMES[rng.below(NAMES.len() as u64) as usize];
        match rng.below(3) {
            0 => m.count(name, rng.below(1_000)),
            1 => m.gauge(name, rng.range_f64(-10.0, 10.0)),
            _ => m.observe(name, rng.range_f64(0.01, 1e4)),
        }
    }
    m
}

/// Histogram equality for merge laws: bucket-derived quantiles and exact
/// extremes must match exactly (integer bucket counts, min/max via
/// fmin/fmax); the mean may differ by float-summation order only.
fn assert_metrics_hists_match(x: &xxi::core::metrics::Metrics, y: &xxi::core::metrics::Metrics) {
    let xs: Vec<_> = x.hists().collect();
    let ys: Vec<_> = y.hists().collect();
    assert_eq!(
        xs.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        ys.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );
    for ((k, hx), (_, hy)) in xs.iter().zip(&ys) {
        assert_eq!(hx.count(), hy.count(), "{k}: counts");
        assert_eq!(hx.min(), hy.min(), "{k}: min");
        assert_eq!(hx.max(), hy.max(), "{k}: max");
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(hx.quantile(q), hy.quantile(q), "{k}: q{q}");
        }
        let tol = 1e-9 * hx.mean().abs().max(1.0);
        assert!((hx.mean() - hy.mean()).abs() <= tol, "{k}: means");
    }
}

/// Metrics::merge commutes on counters and histograms: shard roll-up
/// order cannot change totals or distributions. (Gauges are exempt by
/// contract — last write wins; see the dedicated property below.)
#[test]
fn metrics_merge_counters_and_hists_commute() {
    cases(23, |rng| {
        let a = random_metrics(rng);
        let b = random_metrics(rng);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            ab.counters().collect::<Vec<_>>(),
            ba.counters().collect::<Vec<_>>()
        );
        for (name, v) in ab.counters() {
            assert_eq!(v, a.counter(name) + b.counter(name), "{name}: sums");
        }
        assert_metrics_hists_match(&ab, &ba);
    });
}

/// Metrics::merge is associative across all three kinds — merging shards
/// pairwise or in one pass lands on the same registry (gauges resolve to
/// the rightmost writer either way).
#[test]
fn metrics_merge_is_associative() {
    cases(24, |rng| {
        let a = random_metrics(rng);
        let b = random_metrics(rng);
        let c = random_metrics(rng);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(
            left.counters().collect::<Vec<_>>(),
            right.counters().collect::<Vec<_>>()
        );
        let lg: Vec<_> = left.gauges().collect();
        let rg: Vec<_> = right.gauges().collect();
        assert_eq!(lg, rg, "gauges resolve identically");
        assert_metrics_hists_match(&left, &right);
    });
}

/// Gauges are last-write-wins by contract: whichever operand of the merge
/// is `other` supplies the surviving value.
#[test]
fn metrics_merge_gauges_take_the_latest_writer() {
    cases(25, |rng| {
        let va = rng.next_f64();
        let vb = rng.next_f64();
        let mut a = xxi::core::metrics::Metrics::new();
        a.gauge("g", va);
        let mut b = xxi::core::metrics::Metrics::new();
        b.gauge("g", vb);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.gauge_value("g"), vb);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ba.gauge_value("g"), va);
    });
}

/// The fault-injection seam's accounting invariant: every planned fault is
/// eventually either fired or cancelled — never both, never lost — no
/// matter how the model slices its `advance` calls.
#[test]
fn fault_injector_accounting_conserved_under_any_advance_schedule() {
    use xxi::core::des::fault::{FaultInjector, FaultMix, FaultPlan};
    use xxi::core::time::SimTime;
    cases(26, |rng| {
        let comps = rng.range_u64(1, 40) as u32;
        let rate = rng.next_f64();
        let horizon = SimTime::from_ms(rng.range_u64(1, 2_000));
        let mix = if rng.chance(0.5) {
            FaultMix::kills_only()
        } else {
            FaultMix::gray()
        };
        let plan = FaultPlan::seeded(rng.next_u64(), horizon, comps, rate, mix);
        let mut inj = FaultInjector::new(&plan, comps);
        let mut now = SimTime::ZERO;
        for _ in 0..rng.range_u64(1, 50) {
            // Random increments, including zero-width re-advances.
            now = now.saturating_add(SimTime::from_ps(rng.below(horizon.ps() / 8 + 1)));
            inj.advance(now);
            assert!(inj.fired() + inj.cancelled() <= inj.scheduled());
        }
        inj.advance(SimTime::MAX);
        assert_eq!(inj.scheduled(), plan.len() as u64);
        assert_eq!(
            inj.scheduled(),
            inj.fired() + inj.cancelled(),
            "rate={rate} comps={comps}"
        );
    });
}

/// Seeded fault plans are pure functions of their arguments: replaying
/// the same (seed, horizon, components, rate, mix) reproduces the exact
/// fault schedule, event by event.
#[test]
fn seeded_fault_plans_replay_identically() {
    use xxi::core::des::fault::{FaultMix, FaultPlan};
    use xxi::core::time::SimTime;
    cases(27, |rng| {
        let seed = rng.next_u64();
        let comps = rng.range_u64(1, 60) as u32;
        let rate = rng.next_f64();
        let horizon = SimTime::from_ms(rng.range_u64(1, 500));
        let a = FaultPlan::seeded(seed, horizon, comps, rate, FaultMix::gray());
        let b = FaultPlan::seeded(seed, horizon, comps, rate, FaultMix::gray());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.comp, y.comp);
            assert_eq!(x.fault, y.fault);
        }
    });
}

/// Correlated plans are scope blasts: every drawn fault expands to the
/// full membership of one scope, every member struck at the same instant
/// with the same fault, and nothing else sneaks into the plan.
#[test]
fn correlated_fault_plans_blast_whole_scopes_at_one_instant() {
    use xxi::core::des::fault::{FaultMix, FaultPlan, Topology};
    use xxi::core::time::SimTime;
    cases(28, |rng| {
        let comps = rng.range_u64(2, 80) as u32;
        let scopes = rng.range_u64(1, comps as u64) as u32;
        let topo = if rng.chance(0.5) {
            Topology::striped(comps, scopes)
        } else {
            Topology::blocks(comps, comps.div_ceil(scopes))
        };
        let rate = rng.next_f64();
        let horizon = SimTime::from_ms(rng.range_u64(1, 2_000));
        let mix = if rng.chance(0.5) {
            FaultMix::kills_only()
        } else {
            FaultMix::gray()
        };
        let plan = FaultPlan::correlated(rng.next_u64(), horizon, &topo, rate, mix);
        let draws = (rate * topo.scopes() as f64).ceil() as usize * usize::from(rate > 0.0);
        let events = plan.events();
        let mut idx = 0;
        for _ in 0..draws {
            let scope = topo.scope_of(events[idx].comp);
            let members = topo.members(scope);
            let blast = &events[idx..idx + members.len()];
            for (e, m) in blast.iter().zip(&members) {
                assert_eq!(e.comp, *m, "a blast covers its whole scope in order");
                assert_eq!(e.at, blast[0].at, "scope members share the instant");
                assert_eq!(e.fault, blast[0].fault, "and the fault");
            }
            idx += members.len();
        }
        assert_eq!(idx, events.len(), "every event belongs to some blast");
    });
}
