//! Integration tests spanning crates: the cross-layer stories the paper
//! tells must hold when the models are composed, not just in isolation.

use xxi::accel::ladder::{efficiency_factor, ImplKind, Kernel};
use xxi::core::units::{gops_per_watt, Power, Seconds, Volts};
use xxi::cpu::chip::{Chip, ChipConfig};
use xxi::cpu::CoreKind;
use xxi::mem::energy::MemEnergyTable;
use xxi::stack::intent::{Intent, Platform};
use xxi::tech::ops::OpEnergies;
use xxi::tech::{DarkSilicon, NodeDb, NtvModel};

/// §2.2's three levers — parallelism (small cores), specialization, and
/// NTV — must each improve energy efficiency on the same 22 nm substrate,
/// and must compose into an order-of-magnitude gain.
#[test]
fn the_three_levers_compose() {
    let db = NodeDb::standard();
    let node = db.by_name("22nm").unwrap();

    // Lever 1: small cores vs big cores on a full chip.
    let big = Chip::compose(ChipConfig::desktop(node.clone(), CoreKind::OoOBig)).unwrap();
    let small = Chip::compose(ChipConfig::desktop(node.clone(), CoreKind::InOrderSmall)).unwrap();
    let parallelism_gain = small.efficiency() / big.efficiency();
    assert!(
        parallelism_gain > 2.0,
        "parallelism gain {parallelism_gain}"
    );

    // Lever 2: specialization on a regular kernel.
    let specialization_gain = efficiency_factor(node, ImplKind::FixedFunction, Kernel::Fir);
    assert!(specialization_gain > 20.0);

    // Lever 3: NTV on the same node.
    let ntv = NtvModel::new(
        node.clone(),
        xxi::core::units::Energy::from_pj(10.0),
        Power::from_mw(50.0),
    );
    let (mep_v, mep_e) = ntv.minimum_energy_point();
    let ntv_gain = ntv.e_op(node.vdd).value() / mep_e.value();
    assert!(ntv_gain > 2.0, "NTV gain {ntv_gain}");
    assert!(mep_v.value() < node.vdd.value());

    // Composition (multiplicative in this model space — the paper's
    // "two-to-three orders of magnitude" roadmap).
    assert!(parallelism_gain * specialization_gain > 100.0);
}

/// The mobile-efficiency anchor: the paper says today's (2012) devices do
/// ~10 GOPS/W and the tera-op@10 W tier needs 100. Our 22 nm chip model
/// must land near the first number, and the gap to the second must be
/// roughly 10×.
#[test]
fn mobile_efficiency_anchor_and_gap() {
    let db = NodeDb::standard();
    let node = db.by_name("22nm").unwrap();
    let chip = Chip::compose(ChipConfig {
        node: node.clone(),
        die: xxi::core::units::Area(80.0),
        uncore_frac: 0.4,
        tdp: Power(2.0), // phone-class sustained
        core_kind: CoreKind::OoOMedium,
    })
    .unwrap();
    // Calibration: one Hill–Marty perf unit ≈ 8 Gops (a 2-wide base core
    // at ~2 GHz effective mobile clocks, 2 ops/instruction SIMD-ish mix).
    let gops = chip.throughput() * 8.0;
    let eff = gops_per_watt(xxi::core::units::Frequency(gops * 1e9), chip.power());
    assert!(
        (2.0..50.0).contains(&eff),
        "2012-class mobile efficiency should be ~10 GOPS/W, got {eff}"
    );
    let target = 1e12 / 10.0 / 1e9; // tera-op @ 10 W = 100 GOPS/W
    let gap = target / eff;
    assert!((2.0..50.0).contains(&gap), "gap to the pyramid tier: {gap}");
}

/// Dark silicon must be consistent between the two independent models that
/// compute it: the technology-level DarkSilicon calculator (pessimistic:
/// every transistor switches every cycle) and the chip-composer's
/// powered-core accounting (realistic core activity). Both must darken
/// monotonically with scaling and agree that late nodes are power-bound.
#[test]
fn dark_silicon_models_agree_qualitatively() {
    let db = NodeDb::standard();
    let calc = DarkSilicon::new(140.0, Power(76.0)); // chip composer's usable area/power
    let mut prev_tech = 1.0f64;
    let mut prev_chip = 1.0f64;
    for name in ["90nm", "22nm", "7nm"] {
        let node = db.by_name(name).unwrap();
        let tech_active = calc.active_fraction(&db, node);
        let chip =
            Chip::compose(ChipConfig::desktop(node.clone(), CoreKind::InOrderSmall)).unwrap();
        let chip_active = chip.cores_powered as f64 / chip.cores_fit as f64;
        assert!(tech_active <= prev_tech + 1e-9, "{name}: tech not monotone");
        assert!(chip_active <= prev_chip + 1e-9, "{name}: chip not monotone");
        // The full-switching model is always at least as pessimistic.
        assert!(
            tech_active <= chip_active + 1e-9,
            "{name}: tech={tech_active} chip={chip_active}"
        );
        prev_tech = tech_active;
        prev_chip = chip_active;
    }
    // And at 7 nm both agree the chip is mostly dark under full activity /
    // substantially power-bound under realistic activity.
    let n7 = db.by_name("7nm").unwrap();
    assert!(calc.active_fraction(&db, n7) < 0.2);
    let chip7 = Chip::compose(ChipConfig::desktop(n7.clone(), CoreKind::InOrderSmall)).unwrap();
    assert!((chip7.cores_powered as f64) < 0.8 * chip7.cores_fit as f64);
}

/// The intent compiler's chosen DVFS point must actually satisfy the
/// deadline *and* cost less power than the top rung, using real ladder
/// physics from xxi-tech.
#[test]
fn intent_plan_is_feasible_and_cheaper() {
    let db = NodeDb::standard();
    let platform = Platform {
        node: db.by_name("14nm").unwrap().clone(),
        nominal_power: Power(5.0),
        mtbf: Seconds::from_hours(1000.0),
        checkpoint_cost: Seconds(10.0),
        replica_availability: 0.995,
    };
    let intent = Intent {
        cycles_per_period: 1e6,
        period: Seconds(1e-3),
        availability_target: 0.9999,
        error_tolerant: true,
    };
    let plan = intent.compile(&platform).expect("feasible");
    assert!(intent.cycles_per_period / plan.op.f.value() <= intent.period.value());
    assert!(plan.op.power.value() < 5.0, "picked {:?}", plan.op);
    assert!(plan.replicas >= 2);
    assert!(plan.ntv_allowed);
    // The checkpoint interval is sane: between the cost and the MTBF.
    assert!(plan.checkpoint_interval.value() > platform.checkpoint_cost.value());
    assert!(plan.checkpoint_interval.value() < platform.mtbf.value());
}

/// Memory-ladder energies and compute energies must stay mutually
/// consistent across every node: the paper's operand-fetch claim is a
/// *relationship*, not a point value.
#[test]
fn operand_fetch_claim_holds_on_every_node() {
    let db = NodeDb::standard();
    for node in db.all() {
        let mem = MemEnergyTable::at(node);
        let ops = OpEnergies::at(node);
        let ratio = mem.dram_to_fma_ratio(&ops);
        assert!(
            ratio > 10.0,
            "{}: operand fetch must dwarf compute (ratio {ratio})",
            node.name
        );
    }
    // And at 45 nm specifically, the published 1-2 orders of magnitude.
    let node = db.by_name("45nm").unwrap();
    let r = MemEnergyTable::at(node).dram_to_fma_ratio(&OpEnergies::at(node));
    assert!((100.0..1000.0).contains(&r));
}

/// NTV + the SER model: dropping voltage to the minimum-energy point must
/// raise the soft-error rate substantially — the coupled claim behind
/// "resiliency-centered design".
#[test]
fn ntv_and_ser_couple() {
    let db = NodeDb::standard();
    let node = db.by_name("22nm").unwrap();
    let ntv = NtvModel::new(
        node.clone(),
        xxi::core::units::Energy::from_pj(10.0),
        Power::from_mw(50.0),
    );
    let (mep_v, _) = ntv.minimum_energy_point();
    let ser = xxi::tech::SoftErrorModel::new(node.clone(), 10.0);
    let boost = ser.fit_chip(mep_v) / ser.fit_chip(node.vdd);
    assert!(boost > 2.0, "SER at MEP must be much worse: {boost}");
    // But resilient execution still nets an energy win.
    let (res_v, res_e) = ntv.resilient_optimum();
    assert!(res_e.value() < ntv.e_op_resilient(node.vdd, 0.05).value());
    assert!(res_v.value() <= node.vdd.value());
    let _ = Volts(0.0); // silence unused-import lint paths on some configs
}

/// 3D stacking is a system decision, not a wire decision: the NoC says
/// stack (fewer hops), the thermal model says the stack's power budget
/// shrinks. A consistent story requires both — this test composes
/// xxi-noc, xxi-tech::thermal, and xxi-cpu to check the trade exists.
#[test]
fn stacking_trades_hops_against_thermal_budget() {
    use xxi::noc::topology::Mesh;
    use xxi::tech::ThermalModel;

    // Communication: 4-high stack cuts mean distance ~29%.
    let planar = Mesh::new_2d(8, 8);
    let stacked = Mesh::new_3d(4, 4, 4);
    let hop_gain = 1.0 - stacked.mean_hops_uniform() / planar.mean_hops_uniform();
    assert!(hop_gain > 0.2, "hop gain {hop_gain}");

    // Thermal: the same stack height divides the per-layer power budget by
    // much more than 4 under air cooling.
    let air = ThermalModel::air_cooled();
    let p1 = air.max_power_per_layer(1).value();
    let p4 = air.max_power_per_layer(4).value();
    assert!(p4 < p1 / 4.0, "p1={p1} p4={p4}");

    // Microfluidic cooling (the §2.3 integration ask) restores enough
    // budget that the total stack power exceeds the planar die's budget.
    let fluid = ThermalModel::microfluidic();
    let p4f = fluid.max_power_per_layer(4).value();
    assert!(
        4.0 * p4f > p1,
        "cooled stack total {} must beat planar {p1}",
        4.0 * p4f
    );
}

/// The specialization ladder and the FPGA gap must be mutually consistent:
/// FPGA(soft) < CPU-parity < FPGA(DSP-heavy) < ASIC in energy efficiency —
/// pure LUT floating point loses to the CPU (the Kuon-Rose 13× energy
/// gap), DSP-block mapping wins, full custom wins more.
#[test]
fn fpga_slots_into_the_ladder() {
    use xxi::accel::fpga::fpga_vs_cpu_factor;
    use xxi::accel::ladder::{efficiency_factor, ImplKind, Kernel};

    let db = NodeDb::standard();
    let node = db.by_name("45nm").unwrap();
    let asic = efficiency_factor(node, ImplKind::FixedFunction, Kernel::Fir);
    let soft = fpga_vs_cpu_factor(node, 0.0);
    let dsp = fpga_vs_cpu_factor(node, 0.8);
    assert!(soft < 1.0, "soft={soft}");
    assert!(dsp > 1.0 && dsp < asic, "{soft} < 1 < {dsp} < {asic}");
}
