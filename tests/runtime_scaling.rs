//! The real runtime vs the analytic model: xxi-stack's work-stealing pool
//! must scale the way xxi-cpu's Hill–Marty model predicts (qualitatively),
//! closing the loop between the paper's parallelism *models* and actual
//! parallel *code*.

use std::sync::Arc;

use xxi::cpu::hillmarty::speedup_amdahl;
use xxi::stack::Pool;

fn timed<F: FnOnce()>(f: F) -> f64 {
    let t0 = std::time::Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn cpu_bound_kernel(i: usize) -> f64 {
    let mut x = i as f64 + 1.0;
    for _ in 0..3_000 {
        x = (x * 1.0000001).sqrt() + 0.25;
    }
    x
}

#[test]
fn pool_scaling_is_amdahl_shaped() {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if hw < 4 {
        eprintln!("skipping: needs >=4 hardware threads, have {hw}");
        return;
    }
    let n = 120_000usize;
    let p1 = Pool::new(1);
    let p4 = Pool::new(4);
    // Warmup.
    p1.parallel_sum(1000, cpu_bound_kernel);
    p4.parallel_sum(1000, cpu_bound_kernel);

    let t1 = timed(|| {
        p1.parallel_sum(n, cpu_bound_kernel);
    });
    let t4 = timed(|| {
        p4.parallel_sum(n, cpu_bound_kernel);
    });
    let measured = t1 / t4;
    // Fully parallel workload: Amdahl predicts ~4; accept ≥2 for noisy CI
    // machines, and it must never exceed the ideal bound.
    let ideal = speedup_amdahl(1.0, 4.0);
    assert!(
        measured > 2.0,
        "4-thread speedup {measured} too low (t1={t1:.3}s t4={t4:.3}s)"
    );
    assert!(
        measured < ideal * 1.3,
        "speedup {measured} exceeds ideal {ideal}"
    );
}

#[test]
fn pool_handles_serial_fraction_like_amdahl() {
    // A workload with a serial section: run serial part on one task, then
    // the parallel part; speedup must be visibly below the fully-parallel
    // case, in Amdahl's direction.
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if hw < 4 {
        eprintln!("skipping: needs >=4 hardware threads");
        return;
    }
    let n = 60_000usize;
    let serial_n = 30_000usize; // f = 2/3 parallel by work count

    let run = |threads: usize| {
        let pool = Pool::new(threads);
        pool.parallel_sum(1000, cpu_bound_kernel); // warm
        timed(|| {
            // Serial section (single task).
            let acc = Arc::new(std::sync::Mutex::new(0.0f64));
            let acc2 = Arc::clone(&acc);
            pool.spawn(move || {
                let mut s = 0.0;
                for i in 0..serial_n {
                    s += cpu_bound_kernel(i);
                }
                *acc2.lock().unwrap() += s;
            });
            pool.wait();
            // Parallel section.
            pool.parallel_sum(n, cpu_bound_kernel);
        })
    };

    let t1 = run(1);
    let t4 = run(4);
    let measured = t1 / t4;
    let f = n as f64 / (n + serial_n) as f64;
    let predicted = speedup_amdahl(f, 4.0);
    // Same regime: between 1 and the fully-parallel ideal, near Amdahl.
    assert!(measured > 1.2, "measured {measured}");
    assert!(
        measured < 4.0,
        "serial fraction must cap speedup: {measured}"
    );
    assert!(
        (measured / predicted) > 0.5 && (measured / predicted) < 2.0,
        "measured {measured} vs Amdahl {predicted}"
    );
}

#[test]
fn pool_correctness_under_load() {
    let pool = Pool::new(4);
    // Many waves of small tasks with interleaved waits.
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    for wave in 0..20 {
        for _ in 0..500 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::SeqCst),
            (wave + 1) * 500
        );
    }
}
