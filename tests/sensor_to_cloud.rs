//! End-to-end "sensors to clouds" pipeline (§1.2's "architecture as
//! infrastructure"): a fleet of wearable sensors filters locally, uplinks
//! anomalies through the offload planner's network model, and the cloud
//! serves the analytics queries with bounded tail latency. The test checks
//! the *composed* system meets targets no single crate states.

use xxi::cloud::fanout::fanout_latency;
use xxi::cloud::hedge::hedge_experiment;
use xxi::cloud::latency::LatencyDist;
use xxi::core::units::{Energy, Seconds};
use xxi::sensor::mcu::Mcu;
use xxi::sensor::node::{NodePolicy, SensorNode, SensorNodeConfig};
use xxi::sensor::power::Battery;
use xxi::sensor::radio::{Radio, RadioTech};
use xxi::stack::offload::{plan_offload, AppProfile, DeviceModel, Uplink};

/// Run `fleet` wearables and return (average recall, worst lifetime in s).
fn run_fleet(fleet: u64) -> (f64, f64) {
    let node = SensorNode::new(
        SensorNodeConfig::default(),
        Mcu::cortex_m_class(),
        Radio::new(RadioTech::BleClass),
    );
    let horizon = Seconds::from_hours(10_000.0);
    let mut total_recall = 0.0;
    let mut min_lifetime = f64::INFINITY;
    for seed in 0..fleet {
        let out = node.run(
            NodePolicy::FilterThenSend,
            Battery::new(Energy(1.0)),
            horizon,
            seed,
        );
        total_recall += out.recall;
        min_lifetime = min_lifetime.min(out.lifetime.value());
    }
    (total_recall / fleet as f64, min_lifetime)
}

/// The full 20-seed fleet sweep takes ~1 minute in debug builds, and the
/// 3-seed version below exercises the same composed pipeline, so this one
/// is `#[ignore]`d; run it explicitly (`cargo test -- --ignored`) or in a
/// nightly CI job.
#[test]
#[ignore = "full fleet sweep (~1 min debug); the 3-seed test covers the pipeline"]
fn full_wearable_fleet_meets_lifetime() {
    let (avg_recall, min_lifetime) = run_fleet(20);
    assert!(avg_recall > 0.85, "fleet recall {avg_recall}");
    assert!(
        min_lifetime > 86_400.0 * 0.5,
        "worst lifetime {min_lifetime}s"
    );
}

#[test]
fn wearable_fleet_meets_lifetime_and_the_cloud_meets_latency() {
    // --- Edge: simulated wearables on small energy budgets --------------
    // (3 seeds here; the `#[ignore]`d test above sweeps all 20.)
    let (avg_recall, min_lifetime) = run_fleet(3);
    assert!(avg_recall > 0.85, "fleet recall {avg_recall}");
    // 1 J must last ≥ 1 day with filtering (a coin cell ⇒ years).
    assert!(
        min_lifetime > 86_400.0 * 0.5,
        "worst lifetime {min_lifetime}s"
    );

    // --- Uplink: the planner must choose to keep filtering local --------
    // Filtering is data-heavy relative to its compute: shipping raw ECG to
    // the cloud must lose.
    let filter_stage = AppProfile {
        ops: 1e6,           // cheap threshold filter
        input_bytes: 375e3, // 250 Hz × 12 bit × 1000 s of signal
        output_bytes: 4e3,  // detected events only
        split_bytes: 100e3,
    };
    let plan = plan_offload(
        &filter_stage,
        &DeviceModel::phone_vs_rack(),
        &Uplink {
            bps: 2e6,
            rtt: Seconds::from_ms(80.0),
        },
        1.0, // battery matters on a wearable
    );
    assert_eq!(
        plan.decision,
        xxi::stack::offload::Decision::Local,
        "raw-signal shipping must lose: {plan:?}"
    );

    // --- Cloud: population-scale analytics query over 100 leaves --------
    let leaf = LatencyDist::typical_leaf();
    let no_mitigation = fanout_latency(leaf, 100, 20_000, 99);
    // Most requests hit the leaf tail…
    assert!(no_mitigation.frac_hit_by_leaf_p99 > 0.6);
    // …but hedging at p95 restores a usable interactive p99.
    let hedged = hedge_experiment(leaf, 0.95, 200_000, 100);
    assert!(
        hedged.p999 < 60.0,
        "hedged p999 {} must be interactive",
        hedged.p999
    );
    assert!(hedged.extra_load < 0.07);
}

#[test]
fn compress_policy_is_never_the_best_of_both_worlds() {
    // A consistency check across the three policies: filtering dominates
    // compression on lifetime, compression dominates raw on lifetime, and
    // both non-filtering policies have perfect recall by construction.
    let node = SensorNode::new(
        SensorNodeConfig::default(),
        Mcu::cortex_m_class(),
        Radio::new(RadioTech::ZigbeeClass),
    );
    let horizon = Seconds::from_hours(10_000.0);
    let b = || Battery::new(Energy(1.0));
    let raw = node.run(NodePolicy::SendRaw, b(), horizon, 5);
    let comp = node.run(NodePolicy::CompressThenSend, b(), horizon, 5);
    let filt = node.run(NodePolicy::FilterThenSend, b(), horizon, 5);
    assert!(raw.lifetime.value() < comp.lifetime.value());
    assert!(comp.lifetime.value() < filt.lifetime.value());
    assert_eq!(raw.recall, 1.0);
    assert_eq!(comp.recall, 1.0);
}
