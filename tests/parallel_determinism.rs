//! Parallel Monte Carlo must be *byte-identical* to serial.
//!
//! The experiment loops in `xxi-cloud` run on the `xxi_core::par`
//! executor seam with fixed-grain chunking and per-chunk RNG substreams;
//! `xxi-stack`'s pool is the multi-threaded implementation. These tests
//! pin the whole contract: every number an experiment prints is the same
//! for `Serial` and for pools of any size — the thread count changes the
//! wall clock and nothing else.

use xxi::cloud::cluster::{cluster_sweep_on, ClusterConfig, Hedging, Routing};
use xxi::cloud::fanout::{fanout_latency_on, fanout_sweep_on};
use xxi::cloud::hedge::{hedge_experiment_on, tied_experiment_on};
use xxi::cloud::latency::LatencyDist;
use xxi::cloud::queueing::{mg1_sweep_on, MG1Queue};
use xxi::core::des::fault::FaultMix;
use xxi::core::par::Serial;
use xxi::stack::Pool;

#[test]
fn fanout_pool_matches_serial_bit_for_bit() {
    let dist = LatencyDist::typical_leaf();
    let serial = fanout_latency_on(dist, 50, 30_000, 42, &Serial);
    for threads in [1, 4] {
        let pool = Pool::new(threads);
        let par = fanout_latency_on(dist, 50, 30_000, 42, &pool);
        assert_eq!(par.p50.to_bits(), serial.p50.to_bits());
        assert_eq!(par.p99.to_bits(), serial.p99.to_bits());
        assert_eq!(par.mean.to_bits(), serial.mean.to_bits());
        assert_eq!(par.frac_hit_by_leaf_p99, serial.frac_hit_by_leaf_p99);
    }
}

#[test]
fn fanout_sweep_pool_matches_serial_bit_for_bit() {
    let dist = LatencyDist::typical_leaf();
    let fanouts = [1u32, 10, 100];
    let serial = fanout_sweep_on(dist, &fanouts, 10_000, 7, &Serial);
    let pool = Pool::new(4);
    let par = fanout_sweep_on(dist, &fanouts, 10_000, 7, &pool);
    assert_eq!(serial.len(), par.len());
    for (s, p) in serial.iter().zip(&par) {
        assert_eq!(s.fanout, p.fanout);
        assert_eq!(s.p50.to_bits(), p.p50.to_bits());
        assert_eq!(s.p99.to_bits(), p.p99.to_bits());
    }
}

#[test]
fn hedge_and_tied_pool_match_serial_bit_for_bit() {
    let dist = LatencyDist::typical_leaf();
    let hs = hedge_experiment_on(dist, 0.95, 50_000, 10, &Serial);
    let ts = tied_experiment_on(dist, 4.0, 1.0, 50_000, 8, &Serial);
    let pool = Pool::new(4);
    let hp = hedge_experiment_on(dist, 0.95, 50_000, 10, &pool);
    let tp = tied_experiment_on(dist, 4.0, 1.0, 50_000, 8, &pool);
    assert_eq!(hs.deadline_ms.to_bits(), hp.deadline_ms.to_bits());
    assert_eq!(hs.p50.to_bits(), hp.p50.to_bits());
    assert_eq!(hs.p99.to_bits(), hp.p99.to_bits());
    assert_eq!(hs.p999.to_bits(), hp.p999.to_bits());
    assert_eq!(hs.extra_load, hp.extra_load);
    assert_eq!(ts.0.to_bits(), tp.0.to_bits());
    assert_eq!(ts.1.to_bits(), tp.1.to_bits());
    assert_eq!(ts.2.to_bits(), tp.2.to_bits());
}

#[test]
fn mg1_sweep_pool_matches_serial_bit_for_bit() {
    let queues: Vec<MG1Queue> = [0.3, 0.6, 0.85]
        .iter()
        .map(|&rho| MG1Queue {
            lambda_per_ms: rho,
            service: LatencyDist::Exp { mean_ms: 1.0 },
        })
        .collect();
    let serial = mg1_sweep_on(&queues, 30_000, 8, &Serial);
    let pool = Pool::new(4);
    let par = mg1_sweep_on(&queues, 30_000, 8, &pool);
    for (s, p) in serial.iter().zip(&par) {
        assert_eq!(s.rho.to_bits(), p.rho.to_bits());
        assert_eq!(s.mean_ms.to_bits(), p.mean_ms.to_bits());
        assert_eq!(s.p99.to_bits(), p.p99.to_bits());
        assert_eq!(s.completed, p.completed);
    }
}

#[test]
fn cluster_sweep_pool_matches_serial_bit_for_bit() {
    // The fault-injected serving sweep: each rate's DES run (including
    // its seeded fault plan) is a pure function of the sweep seed, so
    // pool scheduling can reorder the points but not change a bit.
    let base = ClusterConfig {
        requests: 500,
        ..ClusterConfig::default()
    };
    let rates = [0.0, 0.02, 0.1];
    let serial = cluster_sweep_on(&base, &rates, FaultMix::gray(), &Serial);
    for threads in [2, 8] {
        let pool = Pool::new(threads);
        let par = cluster_sweep_on(&base, &rates, FaultMix::gray(), &pool);
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.p50.to_bits(), p.p50.to_bits());
            assert_eq!(s.p999.to_bits(), p.p999.to_bits());
            assert_eq!(s.goodput_rps.to_bits(), p.goodput_rps.to_bits());
            assert_eq!((s.full, s.partial, s.failed), (p.full, p.partial, p.failed));
            assert_eq!(
                s.metrics.counter("cluster.attempts"),
                p.metrics.counter("cluster.attempts")
            );
            assert_eq!(
                s.metrics.counter("fault.fired"),
                p.metrics.counter("fault.fired")
            );
        }
    }
}

#[test]
fn timer_cancellation_is_thread_count_invariant() {
    // First-class cancellation lives entirely inside each DES run: the
    // number of timers reaped (`des.cancelled`), the events that still
    // fired, and the stale-fire tripwire are pure functions of the sweep
    // seed, whatever pool runs the sweep. Power-of-two routing rides
    // along: its probes come from a dedicated substream, not anything
    // executor-ordered.
    let base = ClusterConfig {
        requests: 500,
        routing: Routing::PowerOfTwo,
        hedging: Hedging::adaptive_capped(0.80),
        ..ClusterConfig::default()
    };
    let rates = [0.0, 0.02, 0.1];
    let serial = cluster_sweep_on(&base, &rates, FaultMix::gray(), &Serial);
    for s in &serial {
        assert_eq!(s.metrics.counter("cluster.stale_fires"), 0);
    }
    for threads in [2, 8] {
        let pool = Pool::new(threads);
        let par = cluster_sweep_on(&base, &rates, FaultMix::gray(), &pool);
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.p999.to_bits(), p.p999.to_bits());
            assert_eq!(
                s.metrics.counter("des.events_fired"),
                p.metrics.counter("des.events_fired")
            );
            assert_eq!(
                s.metrics.counter("des.cancelled"),
                p.metrics.counter("des.cancelled")
            );
            assert!(p.metrics.counter("des.cancelled") > 0);
            assert_eq!(p.metrics.counter("cluster.stale_fires"), 0);
            assert_eq!(
                s.metrics.counter("des.arena_high_water"),
                p.metrics.counter("des.arena_high_water")
            );
        }
    }
}

#[test]
fn trial_prefix_property_of_fixed_grain_chunks() {
    // Fixed-grain substreams mean a longer run's first chunks equal a
    // shorter run's chunks: growing an experiment never rewrites history.
    use xxi::core::par::{mc_chunks, MC_GRAIN};
    let long = mc_chunks(&Serial, 3 * MC_GRAIN, 5, |r, rng| {
        r.map(|_| rng.next_u64()).collect::<Vec<u64>>()
    });
    let short = mc_chunks(&Serial, 2 * MC_GRAIN, 5, |r, rng| {
        r.map(|_| rng.next_u64()).collect::<Vec<u64>>()
    });
    assert_eq!(long[..2], short[..]);
}

#[test]
fn policy_grid_cluster_sweep_pool_matches_serial_bit_for_bit() {
    // The new policy seams must not leak executor state into the DES:
    // least-outstanding routing reads per-replica in-flight counters and
    // adaptive hedging reads a per-shard latency digest, both inside the
    // single-threaded simulation — the sweep fan-out around them cannot
    // change a bit.
    let base = ClusterConfig {
        requests: 500,
        routing: Routing::LeastOutstanding,
        hedging: Hedging::adaptive(0.95),
        ..ClusterConfig::default()
    };
    let rates = [0.0, 0.02, 0.1];
    let serial = cluster_sweep_on(&base, &rates, FaultMix::gray(), &Serial);
    for threads in [2, 8] {
        let pool = Pool::new(threads);
        let par = cluster_sweep_on(&base, &rates, FaultMix::gray(), &pool);
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.p50.to_bits(), p.p50.to_bits());
            assert_eq!(s.p99.to_bits(), p.p99.to_bits());
            assert_eq!(s.p999.to_bits(), p.p999.to_bits());
            assert_eq!(s.goodput_rps.to_bits(), p.goodput_rps.to_bits());
            assert_eq!((s.full, s.partial, s.failed), (p.full, p.partial, p.failed));
            assert_eq!(
                s.metrics.counter("cluster.hedges"),
                p.metrics.counter("cluster.hedges")
            );
            assert_eq!(
                s.metrics.counter("cluster.retries"),
                p.metrics.counter("cluster.retries")
            );
        }
    }
}
