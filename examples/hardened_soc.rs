//! A hardened medical SoC: the §2.4 "llities" composed into one device.
//!
//! The paper's implantable-device scenario requires, on one chip:
//! information-flow tracking (pacemaker hacking is its example!),
//! compartmentalized firmware, a blinded cache, failsafe operation, and
//! ECC-protected state — each demonstrated here in sequence on the same
//! models the test suite verifies.
//!
//! Run with: `cargo run --example hardened_soc`

use xxi::mem::cache::{Cache, CacheConfig, Replacement};
use xxi::rel::ecc::{decode, encode, flip, DecodeResult};
use xxi::rel::failsafe::{FailsafeMachine, Mode};
use xxi::sec::ift::{Instr, Machine, Policy};
use xxi::sec::protection::{AccessKind, DomainId, Perms, ProtectionMatrix, RegionId};
use xxi::sec::sidechannel::{prime_probe_attack, prime_probe_attack_partitioned, PartitionedCache};

fn cache_cfg() -> CacheConfig {
    CacheConfig {
        size_bytes: 16 * 1024,
        line_bytes: 64,
        ways: 4,
        replacement: Replacement::Lru,
        write_allocate: true,
    }
}

fn main() {
    println!("== 1. DIFT: the telemetry parser cannot hijack the pacing loop ==\n");
    // Untrusted telemetry flows toward an indirect jump; the monitor traps.
    let mut m = Machine::new(Policy::integrity(), 32, vec![0x4141_4141]);
    let firmware = [
        Instr::In { d: 0 }, // radio packet (untrusted)
        Instr::Const { d: 1, imm: 16 },
        Instr::Add { d: 2, a: 0, b: 1 }, // attacker-derived "handler"
        Instr::JmpReg { a: 2 },
        Instr::Halt,
    ];
    println!("malicious packet -> jump: {:?}\n", m.run(&firmware, 100));

    println!("== 2. Compartments: telemetry code cannot read dosage tables ==\n");
    let mut pm = ProtectionMatrix::new();
    let pacing = DomainId(1);
    let telemetry = DomainId(2);
    pm.define_region(RegionId(1), 0, 128).unwrap(); // dosage/pacing params
    pm.define_region(RegionId(2), 128, 512).unwrap(); // radio buffers
    pm.grant(pacing, RegionId(1), Perms::RW);
    pm.grant(telemetry, RegionId(2), Perms::RW);
    pm.add_gate(telemetry, pacing);
    println!(
        "telemetry reads pacing params: {:?}",
        pm.check(telemetry, 10, AccessKind::Read)
            .err()
            .map(|e| e.to_string())
    );
    println!(
        "telemetry -> pacing via gate:  {:?}\n",
        pm.call(telemetry, pacing).is_ok()
    );

    println!("== 3. Cache: the shared L1 leaks the patient-key index; partitioned doesn't ==\n");
    let secret = 42;
    let mut shared = Cache::new(cache_cfg()).unwrap();
    let leak = prime_probe_attack(&mut shared, secret);
    let mut part = PartitionedCache::new(cache_cfg(), 2);
    let blind = prime_probe_attack_partitioned(&mut part, secret);
    println!(
        "shared cache:      attacker infers set {} ({} probe misses)",
        leak.inferred_set, leak.signal_misses
    );
    println!(
        "partitioned cache: attacker sees {} probe misses — blind\n",
        blind.signal_misses
    );

    println!("== 4. ECC: a radiation flip in the pacing interval is corrected ==\n");
    let interval_ms: u64 = 857; // pacing interval
    let stored = encode(interval_ms);
    let struck = flip(stored, 23);
    match decode(struck) {
        DecodeResult::Corrected(v, pos) => {
            println!("bit {pos} flipped in storage; corrected value = {v} ms (intact)\n")
        }
        other => println!("unexpected: {other:?}\n"),
    }

    println!("== 5. Failsafe: accumulating faults degrade, never kill, pacing ==\n");
    let mut fsm = FailsafeMachine::new(3, 2, 10);
    let mut log = Vec::new();
    for event in ["ok", "err", "ok", "err", "err", "err", "err"] {
        match event {
            "ok" => fsm.ok(),
            _ => fsm.error(),
        }
        log.push(format!("{event} -> {:?}", fsm.mode()));
    }
    for l in &log {
        println!("  {l}");
    }
    assert_eq!(fsm.mode(), Mode::Safe);
    println!("\nDevice ends in Safe mode: fixed-rate pacing, clinician service required");
    println!("to exit — no automatic re-entry into a faulty mode.");
}
