//! Design a 21st-century chip: parallelism + specialization + dark silicon.
//!
//! Walks the §2.2 design space for a fixed 200 mm² / 95 W desktop socket
//! across technology nodes: how many cores fit vs how many can be powered
//! (dark silicon), which core size wins at which parallel fraction
//! (Hill–Marty), and what an accelerator does to the energy story.
//!
//! Run with: `cargo run --example chip_designer`

use xxi::accel::ladder::{efficiency_factor, ImplKind, Kernel};
use xxi::accel::offload::{offload_energy, OffloadConfig};
use xxi::core::table::{fnum, xfactor};
use xxi::core::units::{Energy, Seconds};
use xxi::core::Table;
use xxi::cpu::chip::{Chip, ChipConfig};
use xxi::cpu::CoreKind;
use xxi::tech::NodeDb;

fn main() {
    let db = NodeDb::standard();

    // ---- Dark silicon across nodes --------------------------------------
    println!("== A 200 mm^2 / 95 W socket across nodes (big OoO cores) ==\n");
    let mut t = Table::new(&["node", "cores fit", "cores powered", "dark fraction"]);
    for name in ["90nm", "45nm", "22nm", "14nm", "7nm"] {
        let chip = Chip::compose(ChipConfig::desktop(
            db.by_name(name).unwrap().clone(),
            CoreKind::OoOBig,
        ))
        .unwrap();
        t.row(&[
            name.to_string(),
            chip.cores_fit.to_string(),
            chip.cores_powered.to_string(),
            fnum(chip.dark_fraction()),
        ]);
    }
    t.print();

    // ---- Core-size choice vs parallel fraction ---------------------------
    println!("\n== Hill-Marty at 22nm: which core size wins? ==\n");
    let mut t = Table::new(&[
        "parallel fraction",
        "small cores",
        "medium cores",
        "big cores",
    ]);
    let chips: Vec<Chip> = [
        CoreKind::InOrderSmall,
        CoreKind::OoOMedium,
        CoreKind::OoOBig,
    ]
    .into_iter()
    .map(|k| Chip::compose(ChipConfig::desktop(db.by_name("22nm").unwrap().clone(), k)).unwrap())
    .collect();
    for f in [0.5, 0.9, 0.975, 0.99, 0.999] {
        let s: Vec<f64> = chips.iter().map(|c| c.speedup(f)).collect();
        t.row(&[fnum(f), fnum(s[0]), fnum(s[1]), fnum(s[2])]);
    }
    t.print();
    println!("(speedup relative to one base core; big cores win serial code,");
    println!(" small cores win \"big data = big parallelism\")");

    // ---- Specialization ladder -------------------------------------------
    println!("\n== The specialization ladder at 45nm (energy-efficiency factors) ==\n");
    let node = db.by_name("45nm").unwrap();
    let mut t = Table::new(&[
        "kernel",
        "in-order",
        "SIMDx16",
        "GPU warp32",
        "fixed-function",
    ]);
    for k in [
        Kernel::Fir,
        Kernel::AesRound,
        Kernel::Fft,
        Kernel::Stencil,
        Kernel::Irregular,
    ] {
        t.row(&[
            format!("{k:?}"),
            xfactor(efficiency_factor(node, ImplKind::ScalarInOrder, k)),
            xfactor(efficiency_factor(node, ImplKind::Simd { lanes: 16 }, k)),
            xfactor(efficiency_factor(node, ImplKind::Manycore { warp: 32 }, k)),
            xfactor(efficiency_factor(node, ImplKind::FixedFunction, k)),
        ]);
    }
    t.print();
    println!("(vs a big OoO core; the paper's \"100x\" is the fixed-function column)");

    // ---- But coverage caps the system win --------------------------------
    println!("\n== Amdahl bites back: system energy vs accelerator coverage ==\n");
    let mut t = Table::new(&["coverage", "system energy gain (100x accel)"]);
    for c in [0.3, 0.5, 0.8, 0.95, 0.99] {
        let cfg = OffloadConfig {
            coverage: c,
            speedup: 50.0,
            efficiency: 100.0,
            invoke_overhead: Seconds::from_us(10.0),
            invocations: 100,
        };
        let ratio = offload_energy(&cfg, Energy(1.0), Energy::ZERO);
        t.row(&[fnum(c), xfactor(1.0 / ratio)]);
    }
    t.print();
    println!("\nA 100x accelerator covering half the work saves 2x — hence §2.2's call");
    println!("to \"broaden the class of applicable problems\".");
}
