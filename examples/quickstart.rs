//! Quickstart: a five-minute tour of the framework.
//!
//! Reproduces, in one screen of output, the paper's three headline
//! quantitative claims: the end of Dennard scaling (Table 1), the ~80×
//! architecture contribution since 1985 (§1), and the 63% fan-out tail
//! claim (§2.1).
//!
//! Run with: `cargo run --example quickstart`

use xxi::cloud::fanout::{analytic_straggler_prob, fanout_latency};
use xxi::cloud::latency::LatencyDist;
use xxi::core::table::{fnum, xfactor};
use xxi::core::Table;
use xxi::cpu::cpudb;
use xxi::tech::{NodeDb, ScalingRule, ScalingTrajectory};

fn main() {
    let db = NodeDb::standard();

    // ---- Claim 1: "Dennard Scaling — Gone" (Table 1) -------------------
    println!("== Table 1, rows 1-2: Moore continues, Dennard is gone ==\n");
    let dennard = ScalingTrajectory::compute(&db, ScalingRule::Dennard);
    let real = ScalingTrajectory::compute(&db, ScalingRule::PostDennard);
    let mut t = Table::new(&[
        "node",
        "year",
        "transistors",
        "P/chip (Dennard rules)",
        "P/chip (observed)",
    ]);
    for (d, r) in dennard.points.iter().zip(&real.points) {
        t.row(&[
            d.node.to_string(),
            d.year.to_string(),
            xfactor(d.transistors_rel),
            xfactor(d.full_power_rel),
            xfactor(r.full_power_rel),
        ]);
    }
    t.print();
    println!(
        "\nFull-die power at 7nm would be {} the 180nm level — \"not viable\".\n",
        xfactor(real.final_power_growth())
    );

    // ---- Claim 2: architecture credited with ~80× since 1985 (§1) ------
    println!("== §1: CPU-DB attribution, 1985 -> 2012 ==\n");
    let a = cpudb::overall();
    println!(
        "total single-thread growth: {}   technology (gate speed): {}   architecture: {}",
        xfactor(a.total),
        xfactor(a.technology),
        xfactor(a.architecture)
    );
    println!("(paper: \"architecture credited with ~80x improvement since 1985\")\n");

    // ---- Claim 3: the 63% tail claim (§2.1) ----------------------------
    println!("== §2.1: \"63% of requests will incur the 99-percentile delay\" ==\n");
    let mut t = Table::new(&[
        "fan-out",
        "analytic 1-0.99^n",
        "simulated",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    for n in [1u32, 10, 100, 1000] {
        let analytic = analytic_straggler_prob(n, 0.99);
        let r = fanout_latency(LatencyDist::typical_leaf(), n, 20_000, 42);
        t.row(&[
            n.to_string(),
            fnum(analytic),
            fnum(r.frac_hit_by_leaf_p99),
            fnum(r.p50),
            fnum(r.p99),
        ]);
    }
    t.print();
    println!("\nAt fan-out 100 the simulated fraction matches 1 - 0.99^100 = 0.634.");
}
