//! Data-centric personalized healthcare (Table A.1, scenario 1).
//!
//! A wearable ECG-class monitor on a coin cell must get clinically
//! relevant events to the phone/cloud. The paper's §2.1 claim: computing
//! on-sensor beats transmitting raw data, because radio bits cost orders
//! of magnitude more than MCU ops. This example sizes that decision for
//! four radio technologies and three processing policies.
//!
//! Run with: `cargo run --example wearable_monitor`

use xxi::core::table::fnum;
use xxi::core::units::{Energy, Seconds};
use xxi::core::Table;
use xxi::sensor::intermittent::IntermittentTask;
use xxi::sensor::mcu::Mcu;
use xxi::sensor::node::{NodePolicy, SensorNode, SensorNodeConfig};
use xxi::sensor::power::Battery;
use xxi::sensor::radio::{Radio, RadioTech};

fn main() {
    println!("== Wearable health monitor: policy x radio -> battery life ==\n");
    let horizon = Seconds::from_hours(24.0 * 365.0);
    let mut t = Table::new(&[
        "radio",
        "send-raw (days)",
        "compress (days)",
        "filter (days)",
        "filter recall",
    ]);
    for tech in [
        RadioTech::BleClass,
        RadioTech::ZigbeeClass,
        RadioTech::LoraClass,
        RadioTech::WifiClass,
    ] {
        let node = SensorNode::new(
            SensorNodeConfig::default(),
            Mcu::cortex_m_class(),
            Radio::new(tech),
        );
        // A 1%-of-coin-cell budget keeps the simulation quick; lifetimes
        // scale linearly with capacity.
        let budget = || Battery::new(Energy(24.3));
        let scale = 100.0; // scale back to a full coin cell
        let raw = node.run(NodePolicy::SendRaw, budget(), horizon, 1);
        let comp = node.run(NodePolicy::CompressThenSend, budget(), horizon, 1);
        let filt = node.run(NodePolicy::FilterThenSend, budget(), horizon, 1);
        let days = |s: Seconds| fnum(s.value() * scale / 86_400.0);
        t.row(&[
            format!("{tech:?}"),
            days(raw.lifetime),
            days(comp.lifetime),
            days(filt.lifetime),
            fnum(filt.recall),
        ]);
    }
    t.print();

    println!("\n== The same device on harvested power (no battery at all) ==\n");
    // An intermittently-powered version checkpoints its analysis to NVM.
    let task = IntermittentTask {
        total_steps: 50_000,
        e_step: Energy::from_uj(1.0),
        e_checkpoint: Energy::from_uj(20.0),
        interval: 200,
        burst_energy: Energy::from_mj(2.0),
    };
    let with_ckpt = task.run(1_000, 7);
    let without = IntermittentTask {
        interval: 0,
        ..task
    }
    .run(1_000, 7);
    println!(
        "with NVM checkpoints : finished={} bursts={} re-executed {}% extra work",
        with_ckpt.finished,
        with_ckpt.bursts,
        fnum((with_ckpt.steps_executed as f64 / 50_000.0 - 1.0) * 100.0)
    );
    println!(
        "without checkpoints  : finished={} after {} bursts ({} steps burned)",
        without.finished, without.bursts, without.steps_executed
    );
    println!("\nOn-sensor filtering extends life by ~an order of magnitude, and");
    println!("checkpointing turns intermittent power from Sisyphus into progress.");
}
