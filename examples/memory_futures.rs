//! Rethinking the memory/storage stack (§2.3).
//!
//! Three demonstrations on one synthetic "big data" workload (Zipf-skewed
//! page accesses, 30% writes):
//!
//! 1. the per-access **energy ladder** that makes data movement the budget
//!    (Table 1 row 4),
//! 2. a **hybrid DRAM+PCM** main memory vs the incumbent all-DRAM design,
//! 3. **Start-Gap wear leveling** turning PCM's endurance from a bug into
//!    a parameter.
//!
//! Run with: `cargo run --example memory_futures`

use xxi::core::table::{fnum, xfactor};
use xxi::core::Table;
use xxi::mem::energy::MemEnergyTable;
use xxi::mem::hybrid::{HybridConfig, HybridMemory};
use xxi::mem::nvm::{NvmDevice, NvmTech};
use xxi::mem::trace::TraceGen;
use xxi::mem::wear::StartGap;
use xxi::tech::ops::OpEnergies;
use xxi::tech::NodeDb;

fn main() {
    let db = NodeDb::standard();

    // ---- 1. The energy ladder -------------------------------------------
    println!("== Per-64-bit-access energy vs one FMA, across nodes ==\n");
    let mut t = Table::new(&[
        "node",
        "FMA (pJ)",
        "L1 (pJ)",
        "L3 (pJ)",
        "DRAM (pJ)",
        "DRAM/FMA",
    ]);
    for name in ["90nm", "45nm", "22nm", "7nm"] {
        let node = db.by_name(name).unwrap();
        let e = MemEnergyTable::at(node);
        let ops = OpEnergies::at(node);
        t.row(&[
            name.to_string(),
            fnum(ops.fp_fma.pj()),
            fnum(e.l1.pj()),
            fnum(e.l3.pj()),
            fnum(e.dram.pj()),
            xfactor(e.dram_to_fma_ratio(&ops)),
        ]);
    }
    t.print();
    println!("(the gap widens every node: communication buys the lunch)");

    // ---- 2. Hybrid main memory -------------------------------------------
    println!("\n== Hybrid DRAM+PCM vs all-DRAM on a Zipf page workload ==\n");
    let mut gen = TraceGen::new(7);
    let trace = gen.zipf(400_000, 0, 100_000, 4096, 1.1, 0.3);

    let mut hybrid = HybridMemory::new(HybridConfig::default());
    hybrid.run(&trace);

    // All-DRAM baseline: every access at DRAM cost.
    let dram_lat_ns = 60.0;
    let hybrid_lat_ns = hybrid.avg_latency().value() * 1e9;
    let mut t = Table::new(&[
        "design",
        "avg latency (ns)",
        "standing power",
        "capacity tier",
    ]);
    t.row(&[
        "all-DRAM (64 GiB)".into(),
        fnum(dram_lat_ns),
        "3.2 W refresh".into(),
        "volatile".into(),
    ]);
    t.row(&[
        "DRAM 4 MiB + PCM".into(),
        fnum(hybrid_lat_ns),
        format!("{:.2} W refresh", hybrid.dram_standing_power().value()),
        "non-volatile".into(),
    ]);
    t.print();
    println!(
        "hybrid DRAM hit rate: {:.0}%  (hot Zipf head lives in DRAM)",
        hybrid.dram_hit_rate() * 100.0
    );

    // ---- 3. Start-Gap wear leveling ---------------------------------------
    println!("\n== PCM endurance: hotspot writes with and without Start-Gap ==\n");
    let lines = 256;
    let writes = 2_000_000u64;
    let mut hot = TraceGen::new(8);
    let hot_trace: Vec<usize> = hot
        .zipf(writes as usize, 0, lines, 1, 1.2, 1.0)
        .iter()
        .map(|a| a.addr as usize)
        .collect();

    let mut raw = NvmDevice::new(NvmTech::Pcm, lines + 1);
    for &l in &hot_trace {
        raw.write(l);
    }
    let mut leveled = StartGap::new(NvmDevice::new(NvmTech::Pcm, lines + 1), 100);
    for &l in &hot_trace {
        leveled.write(l);
    }

    let mut t = Table::new(&["design", "max/mean wear", "projected lifetime vs ideal"]);
    let ideal = 1.0;
    for (name, imb) in [
        ("no leveling", raw.wear_imbalance()),
        ("Start-Gap (psi=100)", leveled.device().wear_imbalance()),
    ] {
        t.row(&[
            name.to_string(),
            fnum(imb),
            format!("{:.0}%", ideal / imb * 100.0),
        ]);
    }
    t.print();
    println!("\nStart-Gap costs 1% extra writes and recovers most of the device's");
    println!("endurance budget — \"device wear out\" becomes an engineering margin.");
}
