//! Human network analytics at warehouse scale (Table A.1, scenario 3).
//!
//! An interactive graph-analytics frontend fans each query out to 100 leaf
//! servers. This example walks the whole §2.1 cloud story: run the leaves
//! hotter → queueing inflates their tail → fan-out amplifies it into most
//! requests → hedged requests buy the tail back for ~5% extra load.
//!
//! Run with: `cargo run --example search_frontend`

use xxi::cloud::fanout::fanout_latency;
use xxi::cloud::hedge::hedge_experiment;
use xxi::cloud::latency::LatencyDist;
use xxi::cloud::qos::Colocation;
use xxi::cloud::queueing::MG1Queue;
use xxi::core::table::fnum;
use xxi::core::Table;

fn main() {
    // ---- Step 1: utilization inflates the leaf tail ---------------------
    println!("== Leaf server tail vs utilization (M/G/1, straggler service) ==\n");
    let service = LatencyDist::typical_leaf();
    let mean_ms = {
        let mut rng = xxi::core::Rng64::new(1);
        service.sample_summary(100_000, &mut rng).mean()
    };
    let mut t = Table::new(&["utilization", "mean (ms)", "p50 (ms)", "p99 (ms)"]);
    for rho in [0.3, 0.5, 0.7, 0.85] {
        let q = MG1Queue {
            lambda_per_ms: rho / mean_ms,
            service,
        };
        let r = q.run(120_000, 11);
        t.row(&[fnum(rho), fnum(r.mean_ms), fnum(r.p50), fnum(r.p99)]);
    }
    t.print();

    // ---- Step 2: fan-out amplifies the tail ------------------------------
    println!("\n== Query latency vs fan-out (unloaded leaves) ==\n");
    let mut t = Table::new(&["fan-out", "p50 (ms)", "p99 (ms)", "frac > leaf p99"]);
    for n in [1u32, 10, 50, 100, 500] {
        let r = fanout_latency(service, n, 20_000, 21);
        t.row(&[
            n.to_string(),
            fnum(r.p50),
            fnum(r.p99),
            fnum(r.frac_hit_by_leaf_p99),
        ]);
    }
    t.print();

    // ---- Step 3: hedged requests buy the tail back -----------------------
    println!("\n== Hedged requests (duplicate after the p95 deadline) ==\n");
    let mut rng = xxi::core::Rng64::new(31);
    let base = service.sample_summary(300_000, &mut rng);
    let hedged = hedge_experiment(service, 0.95, 300_000, 32);
    let mut t = Table::new(&["metric", "no hedge", "hedged", "change"]);
    let rows: [(&str, f64, f64); 3] = [
        ("p50 (ms)", base.median(), hedged.p50),
        ("p99 (ms)", base.percentile(99.0), hedged.p99),
        ("p99.9 (ms)", base.percentile(99.9), hedged.p999),
    ];
    for (name, before, after) in rows {
        t.row(&[
            name.to_string(),
            fnum(before),
            fnum(after),
            format!("{:+.0}%", (after / before - 1.0) * 100.0),
        ]);
    }
    t.print();
    println!("extra load from hedging: {:.1}%", hedged.extra_load * 100.0);

    // ---- Step 4: what colocation does to the SLO -------------------------
    println!("\n== Batch colocation under a latency SLO (§2.4 QoS interface) ==\n");
    let colo = Colocation::typical();
    let mut t = Table::new(&["LC SLO (ms)", "max batch occupancy", "LC p99 at that point"]);
    for slo in [11.0, 15.0, 20.0, 25.0] {
        let b = colo.max_batch_under_slo(slo);
        t.row(&[fnum(slo), fnum(b), fnum(colo.lc_p99(b))]);
    }
    t.print();
    println!("\nLesson: the tail is a systems property — queueing creates it, fan-out");
    println!("amplifies it, hedging and QoS-aware colocation manage it.");
}
