//! `xxi bench` and `xxi compare`: per-experiment wall-clock measurement
//! and the perf-regression gate.
//!
//! `run_bench` times whole experiment runs (`Experiment::run` under a
//! reused [`RunCtx`], so the pool is warm and its stats can be windowed
//! with [`PoolStats::since`]) and emits a stable hand-rolled JSON schema —
//! the generator of the repo's `BENCH_*.json` trajectory. `compare` diffs
//! two such files by median wall time and flags regressions past a
//! threshold; CI runs it against `tests/bench/baseline.json`.
//!
//! Wall-clock numbers are inherently volatile, which is exactly why they
//! live here and not in the golden reports: the bench file pins the
//! *schema*, the baseline comparison pins the *trend*.

// xxi-allow-file: determinism -- whole-experiment wall timing and host
// metadata are this module's purpose; results are volatile by schema.
use std::time::{Instant, SystemTime};

use xxi_core::report::json::{self, Json};
use xxi_core::Table;
use xxi_stack::pool::PoolStats;

use crate::experiments::{Experiment, RunCtx};
use crate::harness::fmt_secs;

/// Version of the bench JSON layout. Bump on any breaking change.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Bench run configuration (`xxi bench` flags).
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Measured iterations per experiment (`--iters`, >= 1).
    pub iters: u64,
    /// Discarded warm-up iterations per experiment (`--warmup`).
    pub warmup: u64,
    /// Worker threads for the run context (`--threads`).
    pub threads: usize,
    /// `--seed` override, forwarded to the experiments.
    pub seed: Option<u64>,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            iters: 5,
            warmup: 1,
            threads: 1,
            seed: None,
        }
    }
}

/// Order statistics over the measured per-iteration wall times (seconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WallStats {
    pub min_s: f64,
    pub p50_s: f64,
    pub mean_s: f64,
    pub max_s: f64,
}

impl WallStats {
    /// Summarize a non-empty sample set. The median is the lower-middle
    /// sample (deterministic, no interpolation).
    pub fn of(samples: &[f64]) -> WallStats {
        assert!(!samples.is_empty(), "WallStats of an empty sample set");
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        WallStats {
            min_s: s[0],
            p50_s: s[(s.len() - 1) / 2],
            mean_s: s.iter().sum::<f64>() / s.len() as f64,
            max_s: s[s.len() - 1],
        }
    }
}

/// One experiment's bench outcome.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Experiment id (`"e9"`).
    pub id: String,
    /// Experiment title, for human readers of the JSON.
    pub title: String,
    /// Wall-time stats over the measured iterations.
    pub wall: WallStats,
    /// `(unit, units/s at the median)` when the experiment declares
    /// [`Experiment::work_units`].
    pub throughput: Option<(String, f64)>,
    /// Scheduler stats windowed over the measured iterations (absent at
    /// `threads = 1`, where no pool runs).
    pub pool: Option<PoolStats>,
}

/// A full bench run: host/config metadata plus per-experiment results.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Seconds since the Unix epoch when the run started.
    pub created_unix: u64,
    /// `std::env::consts::OS` / `::ARCH`.
    pub os: String,
    pub arch: String,
    /// Host logical CPU count (0 when undetectable).
    pub cpus: usize,
    pub config: BenchConfig,
    pub results: Vec<BenchResult>,
}

/// Time `iters` runs of each experiment (after `warmup` discarded runs),
/// reusing one context per experiment so pool workers stay warm.
/// `progress` receives one line per finished experiment (pass
/// `|_| {}` to silence).
pub fn run_bench(
    exps: &[&dyn Experiment],
    cfg: BenchConfig,
    mut progress: impl FnMut(&str),
) -> BenchRun {
    assert!(cfg.iters >= 1, "bench needs at least one iteration");
    let mut results = Vec::with_capacity(exps.len());
    for e in exps {
        let ctx = RunCtx::new(cfg.seed, cfg.threads, None);
        // `Experiment::run` drains the metrics sink itself, so iterations
        // don't leak counters into each other.
        for _ in 0..cfg.warmup {
            std::hint::black_box(e.run(&ctx));
        }
        let pool_before = ctx.pool().map(|p| p.stats());
        let mut samples = Vec::with_capacity(cfg.iters as usize);
        for _ in 0..cfg.iters {
            let t0 = Instant::now();
            std::hint::black_box(e.run(&ctx));
            samples.push(t0.elapsed().as_secs_f64());
        }
        let wall = WallStats::of(&samples);
        let r = BenchResult {
            id: e.id().to_string(),
            title: e.title().to_string(),
            throughput: e
                .work_units()
                .map(|(unit, n)| (unit.to_string(), n / wall.p50_s)),
            pool: ctx
                .pool()
                .map(|p| p.stats().since(&pool_before.expect("pool existed before"))), // xxi-allow: panic-path -- see the expect message
            wall,
        };
        progress(&format!(
            "{:<5} p50 {}  ({} iters)",
            r.id,
            fmt_secs(wall.p50_s),
            cfg.iters
        ));
        results.push(r);
    }
    BenchRun {
        created_unix: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
        cpus: std::thread::available_parallelism().map_or(0, |n| n.get()),
        config: cfg,
        results,
    }
}

impl BenchRun {
    /// Render the stable bench JSON document (one object, single line).
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bench_schema_version\":{BENCH_SCHEMA_VERSION},\"created_unix\":{},\
             \"os\":\"{}\",\"arch\":\"{}\",\"cpus\":{},\"threads\":{},\"iters\":{},\
             \"warmup\":{},\"seed\":{},\"results\":[",
            self.created_unix,
            json::escape(&self.os),
            json::escape(&self.arch),
            self.cpus,
            self.config.threads,
            self.config.iters,
            self.config.warmup,
            match self.config.seed {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            },
        );
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"experiment\":\"{}\",\"title\":\"{}\",\"wall_s\":{{\"min\":{},\
                 \"p50\":{},\"mean\":{},\"max\":{}}}",
                json::escape(&r.id),
                json::escape(&r.title),
                json::number(r.wall.min_s),
                json::number(r.wall.p50_s),
                json::number(r.wall.mean_s),
                json::number(r.wall.max_s),
            );
            match &r.throughput {
                None => s.push_str(",\"throughput\":null"),
                Some((unit, rate)) => {
                    let _ = write!(
                        s,
                        ",\"throughput\":{{\"unit\":\"{}\",\"units_per_sec\":{}}}",
                        json::escape(unit),
                        json::number(*rate)
                    );
                }
            }
            match &r.pool {
                None => s.push_str(",\"pool\":null}"),
                Some(p) => {
                    let _ = write!(
                        s,
                        ",\"pool\":{{\"threads\":{},\"executed\":{},\"local_pops\":{},\
                         \"steals\":{},\"failed_steals\":{},\"injector_pushes\":{},\
                         \"injector_pops\":{},\"parks\":{},\"wakeups\":{},\"scope_helps\":{}}}}}",
                        p.threads,
                        p.executed,
                        p.local_pops,
                        p.steals,
                        p.failed_steals,
                        p.injector_pushes,
                        p.injector_pops,
                        p.parks,
                        p.wakeups,
                        p.scope_helps,
                    );
                }
            }
        }
        s.push_str("]}");
        s
    }

    /// Parse a bench JSON document (everything `compare` and the tests
    /// need; unknown members are ignored for forward compatibility).
    pub fn parse_json(text: &str) -> Result<BenchRun, String> {
        let v = json::parse(text)?;
        let obj = v.as_object().ok_or("bench: expected an object")?;
        let version = json::get(obj, "bench_schema_version")?
            .as_u64()
            .ok_or("bench_schema_version: expected a number")?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported bench_schema_version {version} (expected {BENCH_SCHEMA_VERSION})"
            ));
        }
        let u64_of = |key: &str| -> Result<u64, String> {
            json::get(obj, key)?
                .as_u64()
                .ok_or_else(|| format!("{key}: expected a u64"))
        };
        let mut run = BenchRun {
            created_unix: u64_of("created_unix")?,
            os: json::get_str(obj, "os")?,
            arch: json::get_str(obj, "arch")?,
            cpus: u64_of("cpus")? as usize,
            config: BenchConfig {
                iters: u64_of("iters")?,
                warmup: u64_of("warmup")?,
                threads: u64_of("threads")? as usize,
                seed: json::get(obj, "seed")?.as_u64(),
            },
            results: Vec::new(),
        };
        for r in json::get(obj, "results")?
            .as_array()
            .ok_or("results: expected an array")?
        {
            let ro = r.as_object().ok_or("result: expected an object")?;
            let wo = json::get(ro, "wall_s")?
                .as_object()
                .ok_or("wall_s: expected an object")?;
            let wall_num = |key: &str| -> Result<f64, String> {
                json::get(wo, key)?
                    .as_f64()
                    .ok_or_else(|| format!("wall_s.{key}: expected a number"))
            };
            let throughput = match json::get(ro, "throughput")? {
                Json::Null => None,
                t => {
                    let to = t.as_object().ok_or("throughput: expected an object")?;
                    Some((
                        json::get_str(to, "unit")?,
                        json::get(to, "units_per_sec")?
                            .as_f64()
                            .ok_or("units_per_sec: expected a number")?,
                    ))
                }
            };
            let pool = match json::get(ro, "pool")? {
                Json::Null => None,
                p => {
                    let po = p.as_object().ok_or("pool: expected an object")?;
                    let c = |key: &str| -> Result<u64, String> {
                        json::get(po, key)?
                            .as_u64()
                            .ok_or_else(|| format!("pool.{key}: expected a u64"))
                    };
                    Some(PoolStats {
                        threads: c("threads")? as usize,
                        executed: c("executed")?,
                        local_pops: c("local_pops")?,
                        steals: c("steals")?,
                        failed_steals: c("failed_steals")?,
                        injector_pushes: c("injector_pushes")?,
                        injector_pops: c("injector_pops")?,
                        parks: c("parks")?,
                        wakeups: c("wakeups")?,
                        scope_helps: c("scope_helps")?,
                    })
                }
            };
            run.results.push(BenchResult {
                id: json::get_str(ro, "experiment")?,
                title: json::get_str(ro, "title")?,
                wall: WallStats {
                    min_s: wall_num("min")?,
                    p50_s: wall_num("p50")?,
                    mean_s: wall_num("mean")?,
                    max_s: wall_num("max")?,
                },
                throughput,
                pool,
            });
        }
        Ok(run)
    }
}

/// The verdict of one `compare` row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Median wall time moved by less than the threshold either way.
    Ok,
    /// New median is faster than base by more than the threshold.
    Faster,
    /// New median is slower than base by more than the threshold.
    Regressed,
    /// Experiment present in only one of the two files (never a failure).
    Unmatched,
}

/// One row of the comparison: experiment id, base/new medians, and the
/// relative delta (`None` when unmatched).
#[derive(Clone, Debug)]
pub struct CompareRow {
    pub id: String,
    pub base_p50_s: Option<f64>,
    pub new_p50_s: Option<f64>,
    pub delta_pct: Option<f64>,
    pub verdict: Verdict,
}

/// The full comparison of two bench runs.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub rows: Vec<CompareRow>,
    pub threshold_pct: f64,
}

/// Diff two bench runs by median wall time. A row regresses when the new
/// median is more than `threshold_pct` percent above the base median;
/// experiments present in only one file are reported but never fail the
/// gate.
pub fn compare(base: &BenchRun, new: &BenchRun, threshold_pct: f64) -> Comparison {
    assert!(threshold_pct >= 0.0, "threshold must be non-negative");
    let mut rows = Vec::new();
    for n in &new.results {
        let b = base.results.iter().find(|b| b.id == n.id);
        match b {
            None => rows.push(CompareRow {
                id: n.id.clone(),
                base_p50_s: None,
                new_p50_s: Some(n.wall.p50_s),
                delta_pct: None,
                verdict: Verdict::Unmatched,
            }),
            Some(b) => {
                // A zero-time base (sub-resolution run) can't express a
                // relative change; treat it as 0% rather than dividing.
                let delta = if b.wall.p50_s > 0.0 {
                    (n.wall.p50_s - b.wall.p50_s) / b.wall.p50_s * 100.0
                } else {
                    0.0
                };
                let verdict = if delta > threshold_pct {
                    Verdict::Regressed
                } else if delta < -threshold_pct {
                    Verdict::Faster
                } else {
                    Verdict::Ok
                };
                rows.push(CompareRow {
                    id: n.id.clone(),
                    base_p50_s: Some(b.wall.p50_s),
                    new_p50_s: Some(n.wall.p50_s),
                    delta_pct: Some(delta),
                    verdict,
                });
            }
        }
    }
    for b in &base.results {
        if !new.results.iter().any(|n| n.id == b.id) {
            rows.push(CompareRow {
                id: b.id.clone(),
                base_p50_s: Some(b.wall.p50_s),
                new_p50_s: None,
                delta_pct: None,
                verdict: Verdict::Unmatched,
            });
        }
    }
    Comparison {
        rows,
        threshold_pct,
    }
}

impl Comparison {
    /// True when any matched experiment regressed past the threshold.
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.verdict == Verdict::Regressed)
    }

    /// The human-readable regression table plus a one-line verdict.
    pub fn render_text(&self) -> String {
        let mut t = Table::new(&["experiment", "base p50", "new p50", "delta", "status"]);
        for r in &self.rows {
            let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), fmt_secs);
            t.row(&[
                r.id.clone(),
                fmt_opt(r.base_p50_s),
                fmt_opt(r.new_p50_s),
                r.delta_pct.map_or("-".to_string(), |d| format!("{d:+.1}%")),
                match r.verdict {
                    Verdict::Ok => "ok".to_string(),
                    Verdict::Faster => "faster".to_string(),
                    Verdict::Regressed => "REGRESSED".to_string(),
                    Verdict::Unmatched => "unmatched".to_string(),
                },
            ]);
        }
        let mut out = t.render();
        let regs = self
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regressed)
            .count();
        if regs > 0 {
            out.push_str(&format!(
                "\n{regs} experiment(s) regressed past {:.1}% on median wall time\n",
                self.threshold_pct
            ));
        } else {
            out.push_str(&format!(
                "\nno regressions past {:.1}% on median wall time\n",
                self.threshold_pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Experiment, RunCtx};
    use xxi_core::Report;

    struct Fast;
    impl Experiment for Fast {
        fn id(&self) -> &'static str {
            "e0"
        }
        fn title(&self) -> &'static str {
            "fast probe"
        }
        fn paper_claim(&self) -> &'static str {
            "claim"
        }
        fn work_units(&self) -> Option<(&'static str, f64)> {
            Some(("units", 100.0))
        }
        fn fill(&self, ctx: &RunCtx, _r: &mut Report) {
            ctx.exec().for_tasks(16, &|_| {
                std::hint::black_box((0..100).sum::<u64>());
            });
        }
    }

    #[test]
    fn wall_stats_order_statistics() {
        let w = WallStats::of(&[3.0, 1.0, 2.0]);
        assert_eq!(w.min_s, 1.0);
        assert_eq!(w.p50_s, 2.0);
        assert_eq!(w.max_s, 3.0);
        assert!((w.mean_s - 2.0).abs() < 1e-12);
        // Even count: lower-middle median, deterministically.
        assert_eq!(WallStats::of(&[4.0, 1.0, 2.0, 3.0]).p50_s, 2.0);
    }

    #[test]
    fn bench_json_round_trips_serial_and_parallel() {
        for threads in [1, 2] {
            let cfg = BenchConfig {
                iters: 3,
                warmup: 1,
                threads,
                seed: None,
            };
            let run = run_bench(&[&Fast], cfg, |_| {});
            assert_eq!(run.results.len(), 1);
            let r = &run.results[0];
            assert!(r.wall.min_s <= r.wall.p50_s && r.wall.p50_s <= r.wall.max_s);
            let (unit, rate) = r.throughput.clone().expect("work units declared");
            assert_eq!(unit, "units");
            assert!(rate > 0.0);
            assert_eq!(r.pool.is_some(), threads > 1);
            if let Some(p) = &r.pool {
                assert!(p.executed > 0, "measured window saw pool work: {p:?}");
            }

            let back = BenchRun::parse_json(&run.render_json()).expect("parses");
            assert_eq!(back.results[0].id, "e0");
            assert_eq!(back.results[0].wall, r.wall);
            assert_eq!(back.results[0].pool, r.pool);
            assert_eq!(back.config.threads, threads);
        }
    }

    #[test]
    fn parse_rejects_wrong_bench_schema() {
        let run = run_bench(&[&Fast], BenchConfig::default(), |_| {});
        let doc = run.render_json().replacen(
            "\"bench_schema_version\":1",
            "\"bench_schema_version\":9",
            1,
        );
        assert!(BenchRun::parse_json(&doc).is_err());
    }

    fn run_with_p50(id: &str, p50: f64) -> BenchRun {
        BenchRun {
            created_unix: 0,
            os: "linux".into(),
            arch: "x86_64".into(),
            cpus: 1,
            config: BenchConfig::default(),
            results: vec![BenchResult {
                id: id.into(),
                title: "t".into(),
                wall: WallStats {
                    min_s: p50,
                    p50_s: p50,
                    mean_s: p50,
                    max_s: p50,
                },
                throughput: None,
                pool: None,
            }],
        }
    }

    #[test]
    fn compare_flags_regressions_past_threshold_only() {
        let base = run_with_p50("e9", 1.0);
        let same = compare(&base, &run_with_p50("e9", 1.05), 10.0);
        assert!(!same.regressed());
        assert_eq!(same.rows[0].verdict, Verdict::Ok);

        let slow = compare(&base, &run_with_p50("e9", 1.5), 10.0);
        assert!(slow.regressed());
        assert!(slow.render_text().contains("REGRESSED"));
        assert!(slow.render_text().contains("+50.0%"));

        let fast = compare(&base, &run_with_p50("e9", 0.5), 10.0);
        assert!(!fast.regressed(), "speedups never fail the gate");
        assert_eq!(fast.rows[0].verdict, Verdict::Faster);
    }

    #[test]
    fn compare_reports_unmatched_without_failing() {
        let c = compare(&run_with_p50("e1", 1.0), &run_with_p50("e2", 1.0), 10.0);
        assert!(!c.regressed());
        assert_eq!(c.rows.len(), 2);
        assert!(c.rows.iter().all(|r| r.verdict == Verdict::Unmatched));
        assert!(c.render_text().contains("unmatched"));
    }

    #[test]
    fn identical_files_always_pass_even_at_zero_threshold() {
        let base = run_with_p50("e9", 1.0);
        assert!(!compare(&base, &base.clone(), 0.0).regressed());
    }
}
