//! Shared helpers for the experiment binaries (`exp_e1` … `exp_e18`).
//!
//! Every binary regenerates one experiment from DESIGN.md's index and
//! prints paper-style tables; EXPERIMENTS.md records the outputs. Keep the
//! binaries deterministic: fixed seeds only.

/// Print a section header in a consistent style.
pub fn section(title: &str) {
    println!("\n== {title} ==\n");
}

/// Print the experiment banner.
pub fn banner(id: &str, anchor: &str) {
    println!("######################################################################");
    println!("# Experiment {id}");
    println!("# Paper anchor: {anchor}");
    println!("######################################################################");
}
