//! The experiment suite: every experiment from DESIGN.md's index behind
//! the [`experiments::Experiment`] trait, the unified [`cli`], and the
//! `xxi` driver binary (`xxi list` / `xxi run` / `xxi validate` /
//! `xxi bench` / `xxi compare`).
//!
//! The per-experiment `exp_*` binaries are thin shims over
//! [`cli::run_shim`]; their stdout is byte-identical to the historical
//! stand-alone implementations and is pinned by `tests/golden.rs`. Keep
//! experiments deterministic: canonical seeds via `RunCtx::seed_or`.

use xxi_core::obs::LogHistogram;
use xxi_core::table::fnum;
use xxi_core::Table;

pub mod bench;
pub mod cli;
pub mod experiments;
pub mod harness;
pub use harness::Bench;

/// One table row of tail quantiles from a [`LogHistogram`]:
/// `[label, n, mean, p50, p90, p99, p99.9, max]`.
pub fn quantile_row(label: &str, h: &LogHistogram) -> Vec<String> {
    vec![
        label.to_string(),
        h.count().to_string(),
        fnum(h.mean()),
        fnum(h.p50()),
        fnum(h.p90()),
        fnum(h.p99()),
        fnum(h.p999()),
        fnum(h.max()),
    ]
}

/// A table pre-labelled with quantile columns; pair with [`quantile_row`].
pub fn quantile_table(value_label: &str) -> Table {
    Table::new(&[
        value_label,
        "n",
        "mean",
        "p50",
        "p90",
        "p99",
        "p99.9",
        "max",
    ])
}
