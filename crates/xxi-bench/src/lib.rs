//! Shared helpers for the experiment binaries (`exp_e1` … `exp_e18`).
//!
//! Every binary regenerates one experiment from DESIGN.md's index and
//! prints paper-style tables; EXPERIMENTS.md records the outputs. Keep the
//! binaries deterministic: fixed seeds only.

use std::path::PathBuf;

use xxi_core::obs::{LogHistogram, Trace};
use xxi_core::table::fnum;
use xxi_core::Table;

pub mod harness;
pub use harness::Bench;

/// Print a section header in a consistent style.
pub fn section(title: &str) {
    println!("\n== {title} ==\n");
}

/// Parse `--trace <path>` (or `--trace=<path>`) from the command line.
/// Returns `None` when absent; exits with usage on a missing value.
pub fn trace_arg() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            match args.next() {
                Some(p) => return Some(PathBuf::from(p)),
                None => {
                    eprintln!("usage: --trace <path>   (write a Chrome trace_event JSON file)");
                    std::process::exit(2);
                }
            }
        } else if let Some(p) = a.strip_prefix("--trace=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Parse `--threads <N>` (or `--threads=<N>`) from the command line.
/// Returns 1 when absent; exits with usage on a missing or invalid value.
///
/// Experiment output is byte-identical for every thread count (fixed
/// Monte Carlo grain + per-chunk RNG substreams); `--threads` only
/// changes the wall clock.
pub fn threads_arg() -> usize {
    fn parse(v: &str) -> usize {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("usage: --threads <N>   (N >= 1 worker threads; output is identical)");
                std::process::exit(2);
            }
        }
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            match args.next() {
                Some(v) => return parse(&v),
                None => {
                    eprintln!(
                        "usage: --threads <N>   (N >= 1 worker threads; output is identical)"
                    );
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            return parse(v);
        }
    }
    1
}

/// The executor for `threads` workers: the work-stealing pool when
/// parallelism was requested, [`xxi_core::par::Serial`] otherwise.
pub fn executor(threads: usize) -> Box<dyn xxi_core::par::Parallelism> {
    if threads > 1 {
        Box::new(xxi_stack::pool::Pool::new(threads))
    } else {
        Box::new(xxi_core::par::Serial)
    }
}

/// Write `trace` as Chrome `trace_event` JSON and print a confirmation.
/// Load the file in chrome://tracing or https://ui.perfetto.dev.
pub fn save_trace(trace: &Trace, path: &PathBuf) {
    match trace.save_chrome_json(path) {
        Ok(()) => {
            print!(
                "\ntrace: {} events -> {} (chrome://tracing)",
                trace.len(),
                path.display()
            );
            if trace.dropped() > 0 {
                print!("  [{} events dropped at the cap]", trace.dropped());
            }
            println!();
        }
        Err(e) => {
            eprintln!("failed to write trace {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// One table row of tail quantiles from a [`LogHistogram`]:
/// `[label, n, mean, p50, p90, p99, p99.9, max]`.
pub fn quantile_row(label: &str, h: &LogHistogram) -> Vec<String> {
    vec![
        label.to_string(),
        h.count().to_string(),
        fnum(h.mean()),
        fnum(h.p50()),
        fnum(h.p90()),
        fnum(h.p99()),
        fnum(h.p999()),
        fnum(h.max()),
    ]
}

/// A table pre-labelled with quantile columns; pair with [`quantile_row`].
pub fn quantile_table(value_label: &str) -> Table {
    Table::new(&[
        value_label,
        "n",
        "mean",
        "p50",
        "p90",
        "p99",
        "p99.9",
        "max",
    ])
}

/// Print the experiment banner.
pub fn banner(id: &str, anchor: &str) {
    println!("######################################################################");
    println!("# Experiment {id}");
    println!("# Paper anchor: {anchor}");
    println!("######################################################################");
}
