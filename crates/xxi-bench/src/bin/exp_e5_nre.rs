//! Experiment E5, as a shim over the registry:
//! `exp_e5_nre [flags]` is `xxi run e5 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e5");
}
