//! Experiment E6, as a shim over the registry:
//! `exp_e6_multicore [flags]` is `xxi run e6 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e6");
}
