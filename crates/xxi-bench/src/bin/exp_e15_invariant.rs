//! E15 — §2.4: "lower-overhead approaches that employ dynamic (hardware)
//! checking of invariants supplied by software" vs full redundancy.

use xxi_bench::{banner, section};
use xxi_core::rng::Rng64;
use xxi_core::table::fnum;
use xxi_core::units::Energy;
use xxi_core::Table;
use xxi_rel::invariant::{dmr_coverage_and_overhead, CheckedRegion, CheckerConfig};

fn run_with_period(period: u64) -> (f64, f64, f64) {
    let cfg = CheckerConfig {
        check_period: period,
        e_update: Energy::from_pj(100.0),
        e_check: Energy::from_pj(150.0),
    };
    let mut r = CheckedRegion::new(64, cfg, 15);
    let mut rng = Rng64::new(16);
    let rounds = 400;
    for round in 0..rounds {
        // Corrupt state the app will not overwrite, once per window.
        r.corrupt(50 + (round % 14), 1 << (round % 60));
        for i in 0..60 {
            r.update(i % 50, rng.next_u64());
        }
    }
    (
        r.detected() as f64 / r.injected() as f64,
        r.energy_overhead(),
        r.mean_detection_latency(),
    )
}

fn main() {
    banner(
        "E15",
        "§2.4: 'dynamic (hardware) checking of invariants supplied by software'",
    );

    section("Invariant checker vs DMR: coverage per joule");
    let mut t = Table::new(&[
        "design",
        "fault coverage",
        "energy overhead",
        "detect latency (updates)",
    ]);
    let (dmr_cov, dmr_oh) = dmr_coverage_and_overhead();
    t.row(&[
        "DMR (full redundancy)".into(),
        fnum(dmr_cov),
        format!("{:.0}%", dmr_oh * 100.0),
        "~1".into(),
    ]);
    for period in [5u64, 10, 20, 50, 100] {
        let (cov, oh, lat) = run_with_period(period);
        t.row(&[
            format!("checker, period {period}"),
            fnum(cov),
            format!("{:.1}%", oh * 100.0),
            fnum(lat),
        ]);
    }
    t.print();

    println!("\nHeadline: software-supplied invariants checked every 10-50 updates reach");
    println!("~100% coverage of state corruption at 3-15% energy overhead vs DMR's");
    println!("100% — a 7-30x cheaper detection channel, with bounded (not unit)");
    println!("detection latency as the price; stretching the period to 100 starts");
    println!("missing multi-corruption windows. Exactly the trade §2.4 recommends.");
}
