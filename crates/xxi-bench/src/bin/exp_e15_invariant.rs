//! Experiment E15, as a shim over the registry:
//! `exp_e15_invariant [flags]` is `xxi run e15 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e15");
}
