//! `xxi` — the experiment driver.
//!
//! ```text
//! xxi list                     every experiment: id, capabilities, title
//! xxi run <id>... [flags]      run experiments by id (e1 .. e20)
//! xxi run --all [flags]        run the whole registry in id order
//! xxi validate <file>          validate a JSON report file (one doc/line)
//! ```
//!
//! `xxi run e9` prints exactly what the historical `exp_e9_tail` binary
//! printed; `--format json` emits the schema-version-1 report documents.

use xxi_bench::cli::{self, FLAG_USAGE};
use xxi_bench::experiments;

const USAGE: &str = "\
usage: xxi <command> [args]

commands:
  list                 list all experiments
  run <id>... [flags]  run experiments by id (e1 .. e20)
  run --all [flags]    run every experiment in id order
  validate <file>      validate a JSON report file (one document per line)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("run") => run(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}\n{FLAG_USAGE}\n");
            0
        }
        Some(other) => {
            eprintln!("error: unknown command: {other}\n\n{USAGE}");
            2
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn list() -> i32 {
    println!("{:<5} {:<7} title", "id", "flags");
    for e in experiments::registry() {
        let mut caps = String::new();
        if e.parallel() {
            caps.push('P');
        }
        if e.emits_trace() {
            caps.push('T');
        }
        println!("{:<5} {:<7} {}", e.id(), caps, e.title());
    }
    println!("\nP = --threads speeds it up   T = accepts --trace <path>");
    0
}

fn run(args: &[String]) -> i32 {
    let flags = match cli::parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}\n{FLAG_USAGE}");
            return 2;
        }
    };
    let exps = match cli::select(&flags) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let rendered = cli::render_reports(&exps, &flags);
    cli::deliver(&rendered, &flags)
}

fn validate(args: &[String]) -> i32 {
    let [path] = args else {
        eprintln!("usage: xxi validate <file>");
        return 2;
    };
    let (ok, msg) = cli::validate_file(std::path::Path::new(path));
    if ok {
        println!("{msg}");
        0
    } else {
        eprintln!("error: {msg}");
        1
    }
}
