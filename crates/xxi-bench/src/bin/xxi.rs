//! `xxi` — the experiment driver.
//!
//! ```text
//! xxi list [--format json]     every experiment: id, capabilities, title
//! xxi run <id>... [flags]      run experiments by id (e1 .. e21)
//! xxi run --all [flags]        run the whole registry in id order
//! xxi validate <file|->        validate a JSON report file (one doc/line)
//! xxi bench <id>...|--all      time experiments, emit bench JSON
//! xxi compare <base> <new>     diff two bench files (the CI perf gate)
//! ```
//!
//! `xxi run e9` prints exactly what the historical `exp_e9_tail` binary
//! printed; `--format json` emits the schema-version-2 report documents.
//! Unknown commands and flags exit 2 with usage; `xxi compare` exits 3
//! when a regression exceeds the threshold.

use xxi_bench::bench::{self, BenchConfig};
use xxi_bench::cli::{self, FLAG_USAGE};
use xxi_bench::experiments;

const USAGE: &str = "\
usage: xxi <command> [args]

commands:
  list [--format json]          list all experiments
  run <id>... [flags]           run experiments by id (e1 .. e21)
  run --all [flags]             run every experiment in id order
  validate <file|->             validate a JSON report file (one document
                                per line); `-` reads stdin
  bench <id>...|--all [flags]   time experiments (--iters N, --warmup K,
                                --threads N, --seed S, --out bench.json);
                                also accepts the des-* scheduler
                                microbenches, and --all includes them
  compare <base> <new>          diff two bench JSON files by median wall
                                time; --threshold <pct> (default 10) sets
                                the regression gate (exit 3 when exceeded)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => list(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}\n{FLAG_USAGE}\n");
            0
        }
        Some(other) => {
            eprintln!("error: unknown command: {other}\n\n{USAGE}");
            2
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn list(args: &[String]) -> i32 {
    let flags = match cli::parse_flags(args) {
        Ok(f) if f.ids.is_empty() => f,
        Ok(_) => {
            eprintln!("error: xxi list takes no positional arguments\n\n{USAGE}");
            return 2;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return 2;
        }
    };
    match flags.format {
        cli::Format::Text => {
            println!("{:<5} {:<7} title", "id", "flags");
            for e in experiments::registry() {
                let mut caps = String::new();
                if e.parallel() {
                    caps.push('P');
                }
                if e.emits_trace() {
                    caps.push('T');
                }
                println!("{:<5} {:<7} {}", e.id(), caps, e.title());
            }
            println!("\nP = --threads speeds it up   T = accepts --trace <path>");
        }
        cli::Format::Json => {
            // One experiment object per line, like `xxi run --format json`.
            use xxi_core::report::json::escape;
            for e in experiments::registry() {
                println!(
                    "{{\"id\":\"{}\",\"title\":\"{}\",\"parallel\":{},\"trace\":{}}}",
                    escape(e.id()),
                    escape(e.title()),
                    e.parallel(),
                    e.emits_trace()
                );
            }
        }
    }
    0
}

fn run(args: &[String]) -> i32 {
    let flags = match cli::parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}\n{FLAG_USAGE}");
            return 2;
        }
    };
    if let Some(flag) = flags.bench_only_flag() {
        eprintln!("error: {flag} is only valid with `xxi bench`/`xxi compare`\n\n{USAGE}");
        return 2;
    }
    let exps = match cli::select(&flags) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let rendered = cli::render_reports(&exps, &flags);
    cli::deliver(&rendered, &flags)
}

fn validate(args: &[String]) -> i32 {
    let [path] = args else {
        eprintln!("usage: xxi validate <file|->");
        return 2;
    };
    let (ok, msg) = cli::validate_file(std::path::Path::new(path));
    if ok {
        println!("{msg}");
        0
    } else {
        eprintln!("error: {msg}");
        1
    }
}

fn run_bench(args: &[String]) -> i32 {
    let flags = match cli::parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return 2;
        }
    };
    if flags.trace.is_some() || flags.format != cli::Format::Text {
        eprintln!("error: xxi bench takes --iters/--warmup/--threads/--seed/--out only\n\n{USAGE}");
        return 2;
    }
    if flags.threshold.is_some() {
        eprintln!("error: --threshold is only valid with `xxi compare`\n\n{USAGE}");
        return 2;
    }
    let exps = match cli::select_bench(&flags) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let cfg = BenchConfig {
        iters: flags.iters.unwrap_or(5),
        warmup: flags.warmup.unwrap_or(1),
        threads: flags.threads,
        seed: flags.seed,
    };
    // Progress to stderr so stdout stays a clean JSON document when no
    // --out was given.
    let run = bench::run_bench(&exps, cfg, |line| eprintln!("{line}"));
    let doc = run.render_json();
    match &flags.out {
        None => {
            println!("{doc}");
            0
        }
        Some(path) => match std::fs::write(path, format!("{doc}\n")) {
            Ok(()) => {
                eprintln!(
                    "wrote {} result(s) -> {}",
                    run.results.len(),
                    path.display()
                );
                0
            }
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                1
            }
        },
    }
}

fn compare(args: &[String]) -> i32 {
    let flags = match cli::parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return 2;
        }
    };
    let [base_path, new_path] = flags.ids.as_slice() else {
        eprintln!("usage: xxi compare <base.json> <new.json> [--threshold <pct>]");
        return 2;
    };
    let load = |path: &str| -> Result<bench::BenchRun, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        bench::BenchRun::parse_json(text.trim()).map_err(|e| format!("{path}: {e}"))
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let threshold = flags.threshold.unwrap_or(10.0);
    let cmp = bench::compare(&base, &new, threshold);
    print!("{}", cmp.render_text());
    if cmp.regressed() {
        3
    } else {
        0
    }
}
