//! E20 — §2.4 programmability: transactional memory "seeks to
//! significantly simplify parallelization and synchronization … now
//! entering the commercial mainstream."

use std::sync::Arc;
use std::time::Instant;

use xxi_bench::{banner, section};
use xxi_core::rng::Rng64;
use xxi_core::table::fnum;
use xxi_core::Table;
use xxi_stack::stm::{transfer, TxArray};

fn run_bank(threads: usize, accounts: usize, transfers_per_thread: usize) -> (f64, u64, u64, bool) {
    let arr = Arc::new(TxArray::new(accounts));
    for i in 0..accounts {
        arr.write_direct(i, 1_000);
    }
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let arr = Arc::clone(&arr);
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng64::new(t as u64 + 1);
            for _ in 0..transfers_per_thread {
                let from = rng.below(accounts as u64) as usize;
                let mut to = rng.below(accounts as u64) as usize;
                if to == from {
                    to = (to + 1) % accounts;
                }
                transfer(&arr, from, to, rng.below(20) + 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let dt = t0.elapsed().as_secs_f64();
    let total: u64 = (0..accounts).map(|i| arr.read_direct(i)).sum();
    let conserved = total == 1_000 * accounts as u64;
    (dt, arr.commits(), arr.aborts(), conserved)
}

fn main() {
    banner(
        "E20",
        "§2.4: 'Transactional memory ... simplify parallelization and synchronization'",
    );

    section("Concurrent bank: throughput, aborts, and the conservation invariant");
    let transfers = 20_000usize;
    let mut t = Table::new(&[
        "threads",
        "accounts",
        "commits/s",
        "abort ratio",
        "money conserved",
    ]);
    for (threads, accounts) in [(1usize, 64usize), (2, 64), (4, 64), (4, 256)] {
        let (dt, commits, aborts, conserved) = run_bank(threads, accounts, transfers);
        t.row(&[
            threads.to_string(),
            accounts.to_string(),
            fnum(commits as f64 / dt),
            fnum(aborts as f64 / (commits + aborts).max(1) as f64),
            conserved.to_string(),
        ]);
    }
    t.print();

    section("No false conflicts: disjoint working sets");
    let arr = Arc::new(TxArray::new(64));
    let mut handles = Vec::new();
    for t in 0..2usize {
        let arr = Arc::clone(&arr);
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng64::new(t as u64 + 1);
            let base = t * 32;
            for _ in 0..20_000 {
                let from = base + rng.below(32) as usize;
                let to = base + ((from - base + 1 + rng.below(30) as usize) % 32);
                transfer(&arr, from, to, 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "2 threads on disjoint halves: commits={} aborts={} (a correct STM must\n\
         abort ONLY on genuine overlap)",
        arr.commits(),
        arr.aborts()
    );

    println!("\nHeadline: the invariant ('total money constant') holds at every thread");
    println!("count without one explicit lock in application code, and disjoint");
    println!("workloads run abort-free (no false conflicts). Aborts under sharing are");
    println!("the price of optimistic concurrency — and they are retries, never");
    println!("deadlocks or corruption. That is the programmability trade §2.4 credits");
    println!("TM with, measured.");
}
