//! Experiment E20, as a shim over the registry:
//! `exp_e20_tm [flags]` is `xxi run e20 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e20");
}
