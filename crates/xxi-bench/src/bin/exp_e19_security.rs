//! Experiment E19, as a shim over the registry:
//! `exp_e19_security [flags]` is `xxi run e19 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e19");
}
