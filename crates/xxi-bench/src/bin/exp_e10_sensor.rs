//! E10 — §2.1 sensors: "the energy required to communicate data often
//! outweighs that of computation."

use xxi_bench::{banner, section};
use xxi_core::table::fnum;
use xxi_core::units::{Energy, Seconds};
use xxi_core::Table;
use xxi_sensor::mcu::Mcu;
use xxi_sensor::node::{NodePolicy, SensorNode, SensorNodeConfig};
use xxi_sensor::power::Battery;
use xxi_sensor::radio::{Radio, RadioTech};

fn main() {
    banner("E10", "§2.1: 'energy required to communicate often outweighs computation'");

    section("The raw asymmetry (per bit vs per op)");
    let mcu = Mcu::cortex_m_class();
    let mut t = Table::new(&["cost item", "energy", "vs one MCU op"]);
    t.row(&[
        "MCU op".into(),
        format!("{} pJ", fnum(mcu.energy_per_op.pj())),
        "1x".into(),
    ]);
    for tech in [
        RadioTech::WifiClass,
        RadioTech::BleClass,
        RadioTech::ZigbeeClass,
        RadioTech::LoraClass,
    ] {
        let r = Radio::new(tech);
        t.row(&[
            format!("{tech:?} bit"),
            format!("{} nJ", fnum(r.tx_per_bit.nj())),
            format!("{}x", fnum(r.tx_per_bit.value() / mcu.energy_per_op.value())),
        ]);
    }
    t.print();

    section("Node lifetime: policy x radio (1 J budget; scale linearly for real cells)");
    let horizon = Seconds::from_hours(100_000.0);
    let mut t = Table::new(&[
        "radio",
        "send-raw (h)",
        "compress (h)",
        "filter (h)",
        "filter gain",
        "filter recall",
    ]);
    for tech in [
        RadioTech::BleClass,
        RadioTech::ZigbeeClass,
        RadioTech::LoraClass,
        RadioTech::WifiClass,
    ] {
        let node = SensorNode::new(
            SensorNodeConfig::default(),
            Mcu::cortex_m_class(),
            Radio::new(tech),
        );
        let b = || Battery::new(Energy(1.0));
        let raw = node.run(NodePolicy::SendRaw, b(), horizon, 1);
        let comp = node.run(NodePolicy::CompressThenSend, b(), horizon, 1);
        let filt = node.run(NodePolicy::FilterThenSend, b(), horizon, 1);
        t.row(&[
            format!("{tech:?}"),
            fnum(raw.lifetime.hours()),
            fnum(comp.lifetime.hours()),
            fnum(filt.lifetime.hours()),
            format!("{}x", fnum(filt.lifetime.value() / raw.lifetime.value())),
            fnum(filt.recall),
        ]);
    }
    t.print();

    section("Energy breakdown under send-raw (BLE)");
    let node = SensorNode::new(
        SensorNodeConfig::default(),
        Mcu::cortex_m_class(),
        Radio::new(RadioTech::BleClass),
    );
    let raw = node.run(
        NodePolicy::SendRaw,
        Battery::new(Energy(1.0)),
        horizon,
        2,
    );
    println!(
        "radio: {:.3} J   compute: {:.4} J   (radio is {:.0}x compute)",
        raw.radio_energy.value(),
        raw.compute_energy.value(),
        raw.radio_energy.value() / raw.compute_energy.value()
    );

    println!("\nHeadline: on-sensor filtering extends lifetime 3-40x depending on the");
    println!("radio, with >90% event recall — computing where the data is generated");
    println!("wins exactly as §2.1 asserts.");
}
