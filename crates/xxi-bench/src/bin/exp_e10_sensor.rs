//! Experiment E10, as a shim over the registry:
//! `exp_e10_sensor [flags]` is `xxi run e10 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e10");
}
