//! Experiment E14, as a shim over the registry:
//! `exp_e14_approx [flags]` is `xxi run e14 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e14");
}
