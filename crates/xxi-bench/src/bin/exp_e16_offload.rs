//! Experiment E16, as a shim over the registry:
//! `exp_e16_offload [flags]` is `xxi run e16 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e16");
}
