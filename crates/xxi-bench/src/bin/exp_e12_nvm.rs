//! Experiment E12, as a shim over the registry:
//! `exp_e12_nvm [flags]` is `xxi run e12 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e12");
}
