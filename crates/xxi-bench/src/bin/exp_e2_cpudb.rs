//! Experiment E2, as a shim over the registry:
//! `exp_e2_cpudb [flags]` is `xxi run e2 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e2");
}
