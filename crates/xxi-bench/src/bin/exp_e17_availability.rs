//! Experiment E17, as a shim over the registry:
//! `exp_e17_availability [flags]` is `xxi run e17 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e17");
}
