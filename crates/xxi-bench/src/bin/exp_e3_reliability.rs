//! Experiment E3, as a shim over the registry:
//! `exp_e3_reliability [flags]` is `xxi run e3 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e3");
}
