//! Experiment E4, as a shim over the registry:
//! `exp_e4_comm_energy [flags]` is `xxi run e4 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e4");
}
