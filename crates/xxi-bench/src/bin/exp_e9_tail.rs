//! E9 — §2.1: "if 100 systems must jointly respond, 63% of requests incur
//! the 99th-percentile delay" — plus why tails exist and how to cut them.

use xxi_bench::{banner, section};
use xxi_cloud::fanout::{analytic_straggler_prob, fanout_sweep};
use xxi_cloud::hedge::hedge_experiment;
use xxi_cloud::latency::LatencyDist;
use xxi_cloud::queueing::MG1Queue;
use xxi_core::table::fnum;
use xxi_core::Rng64;
use xxi_core::Table;

fn main() {
    banner(
        "E9",
        "§2.1: 'if 100 systems must jointly respond ... 63% of requests'",
    );

    let leaf = LatencyDist::typical_leaf();

    section("Fan-out amplification (Monte Carlo, 20k requests/row)");
    let mut t = Table::new(&[
        "fan-out",
        "analytic 1-0.99^n",
        "simulated",
        "p50 (ms)",
        "p99 (ms)",
        "mean (ms)",
    ]);
    for r in fanout_sweep(leaf, &[1, 10, 50, 100, 500, 1000], 20_000, 42) {
        t.row(&[
            r.fanout.to_string(),
            fnum(analytic_straggler_prob(r.fanout, 0.99)),
            fnum(r.frac_hit_by_leaf_p99),
            fnum(r.p50),
            fnum(r.p99),
            fnum(r.mean),
        ]);
    }
    t.print();

    section("Where the leaf tail comes from: utilization (M/G/1, straggler service)");
    let mut rng = Rng64::new(7);
    let mean_s = leaf.sample_summary(100_000, &mut rng).mean();
    let mut t = Table::new(&["utilization", "mean (ms)", "p99 (ms)"]);
    for rho in [0.3, 0.5, 0.7, 0.85] {
        let r = MG1Queue {
            lambda_per_ms: rho / mean_s,
            service: leaf,
        }
        .run(150_000, 8);
        t.row(&[fnum(rho), fnum(r.mean_ms), fnum(r.p99)]);
    }
    t.print();

    section("Mitigation: hedged requests (duplicate after a deadline quantile)");
    let mut rng = Rng64::new(9);
    let base = leaf.sample_summary(300_000, &mut rng);
    let mut t = Table::new(&["policy", "p50", "p99", "p99.9", "extra load"]);
    t.row(&[
        "no hedge".into(),
        fnum(base.median()),
        fnum(base.percentile(99.0)),
        fnum(base.percentile(99.9)),
        "0%".into(),
    ]);
    for q in [0.90, 0.95, 0.99] {
        let h = hedge_experiment(leaf, q, 300_000, 10);
        t.row(&[
            format!("hedge @ p{:.0}", q * 100.0),
            fnum(h.p50),
            fnum(h.p99),
            fnum(h.p999),
            format!("{:.1}%", h.extra_load * 100.0),
        ]);
    }
    t.print();

    println!("\nHeadline: the 63% claim reproduces exactly (0.634 analytic, ~0.63-0.65");
    println!("simulated); hedging at p95 collapses p99.9 by >3x for ~5% extra load —");
    println!("the Tail-at-Scale shape the paper's §2.1 agenda builds on.");
}
