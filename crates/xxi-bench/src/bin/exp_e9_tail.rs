//! Experiment E9, as a shim over the registry:
//! `exp_e9_tail [flags]` is `xxi run e9 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e9");
}
