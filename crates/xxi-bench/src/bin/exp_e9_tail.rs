//! E9 — §2.1: "if 100 systems must jointly respond, 63% of requests incur
//! the 99th-percentile delay" — plus why tails exist and how to cut them.
//!
//! Accepts `--threads <N>`: the Monte Carlo runs on the work-stealing
//! pool, and the printed tables are byte-identical for every `N`.

use xxi_bench::{banner, executor, section, threads_arg};
use xxi_cloud::fanout::{analytic_straggler_prob, fanout_sweep_on};
use xxi_cloud::hedge::hedge_experiment_on;
use xxi_cloud::latency::LatencyDist;
use xxi_cloud::queueing::{mg1_sweep_on, MG1Queue};
use xxi_core::table::fnum;
use xxi_core::Table;

fn main() {
    banner(
        "E9",
        "§2.1: 'if 100 systems must jointly respond ... 63% of requests'",
    );
    let exec = executor(threads_arg());
    let exec = &*exec;

    let leaf = LatencyDist::typical_leaf();

    section("Fan-out amplification (Monte Carlo, 20k requests/row)");
    let mut t = Table::new(&[
        "fan-out",
        "analytic 1-0.99^n",
        "simulated",
        "p50 (ms)",
        "p99 (ms)",
        "mean (ms)",
    ]);
    for r in fanout_sweep_on(leaf, &[1, 10, 50, 100, 500, 1000], 20_000, 42, exec) {
        t.row(&[
            r.fanout.to_string(),
            fnum(analytic_straggler_prob(r.fanout, 0.99)),
            fnum(r.frac_hit_by_leaf_p99),
            fnum(r.p50),
            fnum(r.p99),
            fnum(r.mean),
        ]);
    }
    t.print();

    section("Where the leaf tail comes from: utilization (M/G/1, straggler service)");
    let mean_s = leaf.sample_summary_on(100_000, 7, exec).mean();
    let queues: Vec<MG1Queue> = [0.3, 0.5, 0.7, 0.85]
        .iter()
        .map(|&rho| MG1Queue {
            lambda_per_ms: rho / mean_s,
            service: leaf,
        })
        .collect();
    let mut t = Table::new(&["utilization", "mean (ms)", "p99 (ms)"]);
    for (rho, r) in [0.3, 0.5, 0.7, 0.85]
        .iter()
        .zip(mg1_sweep_on(&queues, 150_000, 8, exec))
    {
        t.row(&[fnum(*rho), fnum(r.mean_ms), fnum(r.p99)]);
    }
    t.print();

    section("Mitigation: hedged requests (duplicate after a deadline quantile)");
    let base = leaf.sample_summary_on(300_000, 9, exec);
    let mut t = Table::new(&["policy", "p50", "p99", "p99.9", "extra load"]);
    t.row(&[
        "no hedge".into(),
        fnum(base.median()),
        fnum(base.percentile(99.0)),
        fnum(base.percentile(99.9)),
        "0%".into(),
    ]);
    for q in [0.90, 0.95, 0.99] {
        let h = hedge_experiment_on(leaf, q, 300_000, 10, exec);
        t.row(&[
            format!("hedge @ p{:.0}", q * 100.0),
            fnum(h.p50),
            fnum(h.p99),
            fnum(h.p999),
            format!("{:.1}%", h.extra_load * 100.0),
        ]);
    }
    t.print();

    println!("\nHeadline: the 63% claim reproduces exactly (0.634 analytic, ~0.63-0.65");
    println!("simulated); hedging at p95 collapses p99.9 by >3x for ~5% extra load —");
    println!("the Tail-at-Scale shape the paper's §2.1 agenda builds on.");
}
