//! Experiment E21, as a shim over the registry:
//! `exp_e21_faults [flags]` is `xxi run e21 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e21");
}
