//! Experiment E18, as a shim over the registry:
//! `exp_e18_scaling [flags]` is `xxi run e18 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e18");
}
