//! Experiment E1, as a shim over the registry:
//! `exp_e1_scaling [flags]` is `xxi run e1 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e1");
}
