//! Experiment E13, as a shim over the registry:
//! `exp_e13_noc [flags]` is `xxi run e13 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e13");
}
