//! Experiment E11, as a shim over the registry:
//! `exp_e11_ntv [flags]` is `xxi run e11 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e11");
}
