//! Experiment E7, as a shim over the registry:
//! `exp_e7_specialization [flags]` is `xxi run e7 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e7");
}
