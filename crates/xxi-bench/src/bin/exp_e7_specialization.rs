//! E7 — §2.2: "Specialization can give 100× higher energy efficiency."

use xxi_accel::cgra::{Cgra, DataflowGraph};
use xxi_accel::ladder::{efficiency_factor, ladder_energy_per_op, ImplKind, Kernel};
use xxi_bench::{banner, section};
use xxi_core::table::{fnum, xfactor};
use xxi_core::Table;
use xxi_tech::NodeDb;

fn main() {
    banner(
        "E7",
        "§2.2: 'Specialization can give 100x higher energy efficiency'",
    );

    let db = NodeDb::standard();
    let node = db.by_name("45nm").unwrap();

    section("Energy per useful op (pJ) on the specialization ladder, 45nm");
    let kernels = [
        Kernel::Fir,
        Kernel::AesRound,
        Kernel::Fft,
        Kernel::Stencil,
        Kernel::Irregular,
    ];
    let impls: [(&str, ImplKind); 5] = [
        ("OoO scalar", ImplKind::ScalarOoO),
        ("in-order scalar", ImplKind::ScalarInOrder),
        ("SIMD x16", ImplKind::Simd { lanes: 16 }),
        ("manycore w32", ImplKind::Manycore { warp: 32 }),
        ("fixed-function", ImplKind::FixedFunction),
    ];
    let mut t = Table::new(&[
        "kernel", impls[0].0, impls[1].0, impls[2].0, impls[3].0, impls[4].0,
    ]);
    for k in kernels {
        let cells: Vec<String> = impls
            .iter()
            .map(|(_, i)| fnum(ladder_energy_per_op(node, *i, k).pj()))
            .collect();
        let mut row = vec![format!("{k:?}")];
        row.extend(cells);
        t.row(&row);
    }
    t.print();

    section("Efficiency factors vs the OoO baseline");
    let mut t = Table::new(&[
        "kernel",
        "in-order",
        "SIMD x16",
        "manycore w32",
        "fixed-function",
    ]);
    for k in kernels {
        t.row(&[
            format!("{k:?}"),
            xfactor(efficiency_factor(node, ImplKind::ScalarInOrder, k)),
            xfactor(efficiency_factor(node, ImplKind::Simd { lanes: 16 }, k)),
            xfactor(efficiency_factor(node, ImplKind::Manycore { warp: 32 }, k)),
            xfactor(efficiency_factor(node, ImplKind::FixedFunction, k)),
        ]);
    }
    t.print();

    section("The middle ground: a CGRA (8x8 FUs) on a 32-input reduction");
    let cgra = Cgra::new(8, 8, node.clone());
    let g = DataflowGraph::reduction_tree(32);
    let m = cgra.map(&g).unwrap();
    let cpu = cgra.cpu_energy_per_execution(&g);
    let mut t = Table::new(&[
        "iterations of one config",
        "CGRA energy/exec (pJ)",
        "vs CPU",
    ]);
    for iters in [1u64, 10, 1_000, 100_000] {
        let e = cgra.energy_per_execution(&g, &m, iters);
        t.row(&[
            iters.to_string(),
            fnum(e.pj()),
            xfactor(cpu.value() / e.value()),
        ]);
    }
    t.print();
    println!("routing hops in the mapping: {}", m.total_hops);

    println!("\nHeadline: fixed-function reaches 26-105x on regular kernels (AES-like at");
    println!("the top, as published); SIMD/manycore land at 6-11x; a CGRA sits between");
    println!("once its configuration cost is amortized; irregular code defeats them all.");
}
