//! Experiment E8, as a shim over the registry:
//! `exp_e8_pyramid [flags]` is `xxi run e8 [flags]`.

fn main() {
    xxi_bench::cli::run_shim("e8");
}
