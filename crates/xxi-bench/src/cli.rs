//! The unified experiment CLI: one flag parser shared by the `xxi` driver
//! and every `exp_*` shim binary.
//!
//! All experiments accept the same flags:
//!
//! ```text
//! --seed <u64>          reseed every RNG stream (default: canonical seeds)
//! --threads <N>         worker threads, N >= 1 (output is byte-identical)
//! --trace <path>        Chrome trace_event JSON (e10/e17/e18 only)
//! --format <text|json>  report format (default: text)
//! --out <path>          write the report(s) to a file instead of stdout
//! ```
//!
//! Unknown flags are an error (exit 2 with usage) — historically
//! `exp_e9_tail --thraeds 8` would silently run serial; now it fails
//! loudly. `--trace` on an experiment that declares no trace capability
//! is likewise exit 2.

use std::path::PathBuf;

use xxi_core::report::json;
use xxi_core::Report;

use crate::experiments::{self, Experiment, RunCtx};

/// Output format for a rendered report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    Text,
    Json,
}

/// Parsed command-line flags (plus positional experiment ids).
#[derive(Debug)]
pub struct Flags {
    /// Positional arguments (experiment ids for `xxi run`).
    pub ids: Vec<String>,
    /// `--all`: run the whole registry (driver only).
    pub all: bool,
    pub seed: Option<u64>,
    pub threads: usize,
    pub trace: Option<PathBuf>,
    pub format: Format,
    pub out: Option<PathBuf>,
    /// `--iters` (xxi bench only; `None` = flag not given).
    pub iters: Option<u64>,
    /// `--warmup` (xxi bench only).
    pub warmup: Option<u64>,
    /// `--threshold` percent (xxi compare only).
    pub threshold: Option<f64>,
}

impl Default for Flags {
    fn default() -> Flags {
        Flags {
            ids: Vec::new(),
            all: false,
            seed: None,
            threads: 1,
            trace: None,
            format: Format::Text,
            out: None,
            iters: None,
            warmup: None,
            threshold: None,
        }
    }
}

impl Flags {
    /// The first bench/compare-only flag present, for contexts (`xxi run`,
    /// the shim binaries) that must reject them.
    pub fn bench_only_flag(&self) -> Option<&'static str> {
        if self.iters.is_some() {
            Some("--iters")
        } else if self.warmup.is_some() {
            Some("--warmup")
        } else if self.threshold.is_some() {
            Some("--threshold")
        } else {
            None
        }
    }
}

/// The flag block of the usage message (shared by driver and shims).
pub const FLAG_USAGE: &str = "\
flags:
  --seed <u64>          reseed every RNG stream (default: the canonical seeds)
  --threads <N>         worker threads, N >= 1; output is byte-identical
  --trace <path>        write a Chrome trace_event JSON file (e10/e17/e18)
  --format <text|json>  report format (default: text)
  --out <path>          write the report(s) to <path> instead of stdout";

/// Parse `args` (without the program name). Every `--flag value` also
/// accepts `--flag=value`. Returns an error message for unknown flags,
/// missing values, or unparsable values.
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let (name, inline) = match a.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (a.as_str(), None),
        };
        let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| match inline.clone() {
            Some(v) => Ok(v),
            None => it
                .next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}")),
        };
        match name {
            "--all" => f.all = true,
            "--seed" => {
                let v = value(&mut it)?;
                f.seed = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid value for --seed: {v} (need a u64)"))?,
                );
            }
            "--threads" => {
                let v = value(&mut it)?;
                f.threads = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(format!(
                            "invalid value for --threads: {v} (need an integer >= 1)"
                        ))
                    }
                };
            }
            "--trace" => f.trace = Some(PathBuf::from(value(&mut it)?)),
            "--iters" => {
                let v = value(&mut it)?;
                f.iters = match v.parse::<u64>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        return Err(format!(
                            "invalid value for --iters: {v} (need an integer >= 1)"
                        ))
                    }
                };
            }
            "--warmup" => {
                let v = value(&mut it)?;
                f.warmup = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid value for --warmup: {v} (need a u64)"))?,
                );
            }
            "--threshold" => {
                let v = value(&mut it)?;
                f.threshold = match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 && t.is_finite() => Some(t),
                    _ => {
                        return Err(format!(
                            "invalid value for --threshold: {v} (need a percentage >= 0)"
                        ))
                    }
                };
            }
            "--format" => {
                let v = value(&mut it)?;
                f.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    _ => return Err(format!("invalid value for --format: {v} (text or json)")),
                };
            }
            "--out" => f.out = Some(PathBuf::from(value(&mut it)?)),
            _ if name.starts_with('-') => return Err(format!("unknown flag: {name}")),
            _ => f.ids.push(a.clone()),
        }
    }
    Ok(f)
}

/// Resolve the experiments selected by `flags` (ids or `--all`) and check
/// the flag/capability contract. Returns an error message for unknown
/// ids, `--trace` on a non-tracing experiment, or `--trace` spread over
/// several experiments at once.
pub fn select(flags: &Flags) -> Result<Vec<&'static dyn Experiment>, String> {
    let exps: Vec<&dyn Experiment> = if flags.all {
        if !flags.ids.is_empty() {
            return Err("pass either --all or experiment ids, not both".into());
        }
        experiments::registry().to_vec()
    } else {
        if flags.ids.is_empty() {
            return Err("no experiment ids given (try `xxi list` or `xxi run --all`)".into());
        }
        let mut v = Vec::new();
        for id in &flags.ids {
            v.push(
                experiments::find(id)
                    .ok_or_else(|| format!("unknown experiment: {id} (see `xxi list`)"))?,
            );
        }
        v
    };
    if flags.trace.is_some() {
        if exps.len() != 1 {
            return Err("--trace requires exactly one experiment".into());
        }
        let e = exps[0];
        if !e.emits_trace() {
            return Err(format!("experiment {} does not emit traces", e.id()));
        }
    }
    Ok(exps)
}

/// Resolve the experiments `xxi bench` should time. Same id grammar as
/// [`select`], plus the `des-*` scheduler microbenches: ids resolve
/// against both registries, and `--all` means the full paper registry
/// followed by every microbench. The run/list/golden paths never see the
/// micro registry — benching is the only consumer.
pub fn select_bench(flags: &Flags) -> Result<Vec<&'static dyn Experiment>, String> {
    if flags.all {
        if !flags.ids.is_empty() {
            return Err("pass either --all or experiment ids, not both".into());
        }
        let mut v = experiments::registry().to_vec();
        v.extend_from_slice(experiments::micro_registry());
        return Ok(v);
    }
    if flags.ids.is_empty() {
        return Err("no experiment ids given (try `xxi bench --all`)".into());
    }
    let mut v = Vec::new();
    for id in &flags.ids {
        v.push(
            experiments::find(id)
                .or_else(|| experiments::find_micro(id))
                .ok_or_else(|| format!("unknown experiment: {id} (see `xxi list`)"))?,
        );
    }
    Ok(v)
}

/// Run `exps` under `flags` and render them in the requested format:
/// text reports are concatenated with a blank line between experiments
/// (one report is byte-identical to the historical binary); JSON is one
/// document per line.
pub fn render_reports(exps: &[&dyn Experiment], flags: &Flags) -> String {
    let mut out = String::new();
    for (i, e) in exps.iter().enumerate() {
        let ctx = RunCtx::new(flags.seed, flags.threads, flags.trace.clone());
        let report = e.run(&ctx);
        match flags.format {
            Format::Text => {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&report.render_text());
            }
            Format::Json => {
                out.push_str(&report.render_json());
                out.push('\n');
            }
        }
    }
    out
}

/// Deliver `rendered` to `--out` or stdout. Returns the process exit code.
pub fn deliver(rendered: &str, flags: &Flags) -> i32 {
    match &flags.out {
        None => {
            print!("{rendered}");
            0
        }
        Some(path) => match std::fs::write(path, rendered) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                1
            }
        },
    }
}

/// Validate a file of JSON reports (one document per line, as written by
/// `xxi run --format json`): each line must parse, round-trip, and carry
/// the current schema version. The path `-` reads the documents from
/// stdin (`xxi run --all --format json | xxi validate -`). Returns
/// (ok, message).
pub fn validate_file(path: &std::path::Path) -> (bool, String) {
    let (text, name) = if path == std::path::Path::new("-") {
        let mut buf = String::new();
        match std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf) {
            Ok(_) => (buf, "<stdin>".to_string()),
            Err(e) => return (false, format!("cannot read stdin: {e}")),
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => (t, path.display().to_string()),
            Err(e) => return (false, format!("cannot read {}: {e}", path.display())),
        }
    };
    let mut n = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let report = match Report::parse_json(line) {
            Ok(r) => r,
            Err(e) => return (false, format!("line {}: {e}", lineno + 1)),
        };
        // The emitter must agree with what we just parsed (stable schema).
        let re = Report::parse_json(&report.render_json());
        match re {
            Ok(r2) if r2 == report => {}
            Ok(_) => return (false, format!("line {}: unstable round-trip", lineno + 1)),
            Err(e) => return (false, format!("line {}: re-parse failed: {e}", lineno + 1)),
        }
        // And the document must carry the advertised schema version.
        match json::parse(line)
            .ok()
            .as_ref()
            .and_then(|v| v.as_object())
            .and_then(|o| json::find(o, "schema_version"))
            .and_then(|s| s.as_u64())
        {
            Some(v) if v == xxi_core::report::SCHEMA_VERSION => {}
            other => {
                return (
                    false,
                    format!("line {}: bad schema_version {:?}", lineno + 1, other),
                )
            }
        }
        n += 1;
    }
    if n == 0 {
        return (false, format!("{name}: no reports found"));
    }
    (
        true,
        format!(
            "{n} report(s) valid, schema version {}",
            xxi_core::report::SCHEMA_VERSION
        ),
    )
}

/// The whole main() of an `exp_*` shim binary: parse the unified flags,
/// run the one registered experiment, print/save the report. Never
/// returns.
pub fn run_shim(id: &str) -> ! {
    let exp = experiments::find(id).expect("shim id is registered"); // xxi-allow: panic-path -- see the expect message
    let prog = std::env::args()
        .next()
        .map(|p| {
            PathBuf::from(p)
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_else(|| "exp".into())
        })
        .unwrap_or_else(|| "exp".into());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\nusage: {prog} [flags]\n{FLAG_USAGE}");
            std::process::exit(2);
        }
    };
    if flags.all || !flags.ids.is_empty() {
        eprintln!(
            "error: {prog} runs exactly one experiment (use the `xxi` driver for sets)\n\n\
             usage: {prog} [flags]\n{FLAG_USAGE}"
        );
        std::process::exit(2);
    }
    if let Some(flag) = flags.bench_only_flag() {
        eprintln!(
            "error: {flag} is only valid with `xxi bench`/`xxi compare`\n\n\
             usage: {prog} [flags]\n{FLAG_USAGE}"
        );
        std::process::exit(2);
    }
    flags.ids = vec![exp.id().to_string()];
    let exps = match select(&flags) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let rendered = render_reports(&exps, &flags);
    std::process::exit(deliver(&rendered, &flags));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set() {
        let f = parse_flags(&args(&[
            "e9",
            "--seed",
            "7",
            "--threads=4",
            "--format",
            "json",
            "--out",
            "r.json",
        ]))
        .unwrap();
        assert_eq!(f.ids, ["e9"]);
        assert_eq!(f.seed, Some(7));
        assert_eq!(f.threads, 4);
        assert_eq!(f.format, Format::Json);
        assert_eq!(f.out.as_deref(), Some(std::path::Path::new("r.json")));
    }

    #[test]
    fn rejects_unknown_and_misspelled_flags() {
        assert!(parse_flags(&args(&["--thraeds", "8"]))
            .unwrap_err()
            .contains("unknown flag: --thraeds"));
        assert!(parse_flags(&args(&["--frmt=json"]))
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_flags(&args(&["--threads", "0"])).is_err());
        assert!(parse_flags(&args(&["--threads", "x"])).is_err());
        assert!(parse_flags(&args(&["--seed"])).is_err());
        assert!(parse_flags(&args(&["--format", "xml"])).is_err());
    }

    #[test]
    fn parses_and_fences_bench_only_flags() {
        let f = parse_flags(&args(&[
            "e9",
            "--iters",
            "7",
            "--warmup=2",
            "--threshold",
            "12.5",
        ]))
        .unwrap();
        assert_eq!(f.iters, Some(7));
        assert_eq!(f.warmup, Some(2));
        assert_eq!(f.threshold, Some(12.5));
        assert_eq!(f.bench_only_flag(), Some("--iters"));
        assert_eq!(parse_flags(&args(&["e9"])).unwrap().bench_only_flag(), None);
        assert!(parse_flags(&args(&["--iters", "0"])).is_err());
        assert!(parse_flags(&args(&["--warmup", "x"])).is_err());
        assert!(parse_flags(&args(&["--threshold", "-1"])).is_err());
    }

    #[test]
    fn select_enforces_the_trace_capability() {
        let mut f = parse_flags(&args(&["e1", "--trace", "t.json"])).unwrap();
        assert_eq!(
            select(&f).err().unwrap(),
            "experiment e1 does not emit traces"
        );
        f.ids = vec!["e10".into()];
        assert_eq!(select(&f).unwrap()[0].id(), "e10");
        f.ids = vec!["e10".into(), "e17".into()];
        assert!(select(&f).err().unwrap().contains("exactly one"));
    }

    #[test]
    fn select_resolves_all_and_rejects_unknown_ids() {
        let f = parse_flags(&args(&["--all"])).unwrap();
        assert_eq!(select(&f).unwrap().len(), 21);
        let f = parse_flags(&args(&["e99"])).unwrap();
        assert!(select(&f).err().unwrap().contains("unknown experiment"));
        let f = parse_flags(&args(&[])).unwrap();
        assert!(select(&f).is_err());
    }
}
