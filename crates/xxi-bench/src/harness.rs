//! A small benchmark harness for the `harness = false` bench targets.
//!
//! The build environment has no crates.io access, so instead of criterion
//! the benches drive this: warm up, time repeated calls, and report the
//! median/min per call plus element throughput. Per-sample times land in a
//! [`LogHistogram`] — the same estimator the simulators use — so the
//! benches exercise the observability path they exist to keep fast.
//!
//! Usage from a bench target:
//!
//! ```no_run
//! let mut b = xxi_bench::Bench::from_args();
//! let mut g = b.group("rng");
//! g.throughput(1_000_000);
//! g.bench("xoshiro_1m_u64", || { /* 1M next_u64() calls */ });
//! ```
//!
//! CLI: any free argument is a substring filter on `group/name`;
//! `--quick` runs a single sample per bench (used to smoke-test the
//! targets without paying full measurement time).

// xxi-allow-file: determinism -- the bench harness times host execution;
// nothing here feeds golden output.
use std::time::Instant;

use xxi_core::obs::LogHistogram;
use xxi_core::table::fnum;

/// Keep sampling until this much time is spent (unless `--quick`).
const BUDGET_SECS: f64 = 1.0;
/// Sample-count floor and ceiling around the time budget.
const MIN_SAMPLES: u64 = 5;
const MAX_SAMPLES: u64 = 50;

/// Top-level harness state: the CLI filter and run mode.
pub struct Bench {
    filter: Option<String>,
    quick: bool,
    ran: u64,
    skipped: u64,
}

impl Bench {
    /// Parse the bench CLI: free args filter by substring, `--quick`
    /// takes one sample per bench. Flags cargo passes (`--bench`) are
    /// ignored.
    pub fn from_args() -> Bench {
        let mut filter = None;
        let mut quick = false;
        for a in std::env::args().skip(1) {
            if a == "--quick" {
                quick = true;
            } else if !a.starts_with('-') {
                filter = Some(a);
            }
        }
        println!(
            "{:<38} {:>7} {:>11} {:>11} {:>11}",
            "benchmark", "samples", "median", "min", "throughput"
        );
        Bench {
            filter,
            quick,
            ran: 0,
            skipped: 0,
        }
    }

    /// Start a named group; benches print as `group/name`.
    pub fn group(&mut self, name: &'static str) -> Group<'_> {
        Group {
            bench: self,
            name,
            elements: None,
        }
    }

    /// Print the run/skip tally. Call last in `main`.
    pub fn finish(self) {
        println!(
            "\n{} benchmarks run, {} filtered out",
            self.ran, self.skipped
        );
    }
}

/// A group of related benches sharing a throughput denominator.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: &'static str,
    elements: Option<u64>,
}

impl Group<'_> {
    /// Declare how many logical elements one call processes, enabling the
    /// throughput column.
    pub fn throughput(&mut self, elements: u64) {
        self.elements = Some(elements);
    }

    /// Time `f` and print one result row. The return value is passed
    /// through [`std::hint::black_box`] so the work cannot be optimized
    /// away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.bench.filter {
            if !full.contains(filter.as_str()) {
                self.bench.skipped += 1;
                return;
            }
        }
        self.bench.ran += 1;

        let mut samples = LogHistogram::new();
        if self.bench.quick {
            samples.add(time_once(&mut f));
        } else {
            // Warm-up: fill caches and let frequency settle.
            let warm_t0 = Instant::now();
            let mut warmed = 0;
            while warmed < 2 && warm_t0.elapsed().as_secs_f64() < 0.25 {
                std::hint::black_box(f());
                warmed += 1;
            }
            let t0 = Instant::now();
            while samples.count() < MIN_SAMPLES
                || (t0.elapsed().as_secs_f64() < BUDGET_SECS && samples.count() < MAX_SAMPLES)
            {
                samples.add(time_once(&mut f));
            }
        }

        let median = samples.p50();
        let throughput = match self.elements {
            Some(e) => format!("{} Mel/s", fnum(e as f64 / median / 1e6)),
            None => "-".to_string(),
        };
        println!(
            "{:<38} {:>7} {:>11} {:>11} {:>11}",
            full,
            samples.count(),
            fmt_secs(median),
            fmt_secs(samples.min()),
            throughput
        );
    }
}

fn time_once<R>(f: &mut impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64()
}

/// Human-readable duration with an auto-picked unit (shared with
/// `xxi bench`'s progress lines and `xxi compare`'s table).
pub(crate) fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_secs;

    #[test]
    fn fmt_secs_picks_sane_units() {
        assert_eq!(fmt_secs(3.2e-9), "3.2 ns");
        assert_eq!(fmt_secs(4.5e-5), "45.00 us");
        assert_eq!(fmt_secs(0.012), "12.00 ms");
        assert_eq!(fmt_secs(2.5), "2.500 s");
    }
}
