//! E20 — §2.4 programmability: transactional memory "seeks to
//! significantly simplify parallelization and synchronization … now
//! entering the commercial mainstream."
//!
//! The bank table races real threads and reports wall-clock commit rates,
//! so it (and the disjoint-halves counter line) are marked volatile: the
//! golden harness pins their shape but not the machine-dependent numbers.

use std::sync::Arc;
use std::time::Instant;

use xxi_core::rng::Rng64;
use xxi_core::table::fnum;
use xxi_core::{Report, Table};
use xxi_stack::stm::{transfer, TxArray};

use super::{Experiment, RunCtx};

fn run_bank(
    threads: usize,
    accounts: usize,
    transfers_per_thread: usize,
    seeds: &[u64],
) -> (f64, u64, u64, bool) {
    let arr = Arc::new(TxArray::new(accounts));
    for i in 0..accounts {
        arr.write_direct(i, 1_000);
    }
    // xxi-allow: determinism -- measures real STM throughput; volatile output
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for &seed in seeds.iter().take(threads) {
        let arr = Arc::clone(&arr);
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng64::new(seed);
            for _ in 0..transfers_per_thread {
                let from = rng.below(accounts as u64) as usize;
                let mut to = rng.below(accounts as u64) as usize;
                if to == from {
                    to = (to + 1) % accounts;
                }
                transfer(&arr, from, to, rng.below(20) + 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let dt = t0.elapsed().as_secs_f64();
    let total: u64 = (0..accounts).map(|i| arr.read_direct(i)).sum();
    let conserved = total == 1_000 * accounts as u64;
    (dt, arr.commits(), arr.aborts(), conserved)
}

pub struct E20Tm;

impl Experiment for E20Tm {
    fn id(&self) -> &'static str {
        "e20"
    }

    fn title(&self) -> &'static str {
        "Transactional memory: invariants without locks"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.4: 'Transactional memory ... simplify parallelization and synchronization'"
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        r.section("Concurrent bank: throughput, aborts, and the conservation invariant");
        let transfers = 20_000usize;
        let mut t = Table::new(&[
            "threads",
            "accounts",
            "commits/s",
            "abort ratio",
            "money conserved",
        ]);
        let mut all_conserved = true;
        for (threads, accounts) in [(1usize, 64usize), (2, 64), (4, 64), (4, 256)] {
            let seeds: Vec<u64> = (0..threads).map(|t| ctx.seed_or(t as u64 + 1)).collect();
            let (dt, commits, aborts, conserved) = run_bank(threads, accounts, transfers, &seeds);
            all_conserved &= conserved;
            t.row(&[
                threads.to_string(),
                accounts.to_string(),
                fnum(commits as f64 / dt),
                fnum(aborts as f64 / (commits + aborts).max(1) as f64),
                conserved.to_string(),
            ]);
        }
        r.volatile_table(t);
        r.finding(
            "money_conserved",
            if all_conserved { 1.0 } else { 0.0 },
            "bool",
        );

        r.section("No false conflicts: disjoint working sets");
        let arr = Arc::new(TxArray::new(64));
        let mut handles = Vec::new();
        for t in 0..2usize {
            let arr = Arc::clone(&arr);
            let seed = ctx.seed_or(t as u64 + 1);
            handles.push(std::thread::spawn(move || {
                let mut rng = Rng64::new(seed);
                let base = t * 32;
                for _ in 0..20_000 {
                    let from = base + rng.below(32) as usize;
                    let to = base + ((from - base + 1 + rng.below(30) as usize) % 32);
                    transfer(&arr, from, to, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        r.volatile_text(format!(
            "2 threads on disjoint halves: commits={} aborts={} (a correct STM must\n\
         abort ONLY on genuine overlap)",
            arr.commits(),
            arr.aborts()
        ));

        r.text(
            "\nHeadline: the invariant ('total money constant') holds at every thread\n\
             count without one explicit lock in application code, and disjoint\n\
             workloads run abort-free (no false conflicts). Aborts under sharing are\n\
             the price of optimistic concurrency — and they are retries, never\n\
             deadlocks or corruption. That is the programmability trade §2.4 credits\n\
             TM with, measured.",
        );
    }
}
