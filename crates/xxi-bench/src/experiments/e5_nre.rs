//! E5 — Table 1 row 5: NRE costs growing, amortization squeezing
//! specialized-market platforms.

use xxi_accel::nre::{asic_over_fpga, asic_over_software, cheapest_style};
use xxi_core::table::fnum;
use xxi_core::{Report, Table};
use xxi_tech::nre::{cost_model, ImplStyle};
use xxi_tech::NodeDb;

use super::{Experiment, RunCtx};

pub struct E5Nre;

impl Experiment for E5Nre {
    fn id(&self) -> &'static str {
        "e5"
    }

    fn title(&self) -> &'static str {
        "NRE amortization: ASIC vs FPGA vs software breakevens"
    }

    fn paper_claim(&self) -> &'static str {
        "Table 1 row 5: 'Expensive to design, verify, fabricate, and test'"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        let db = NodeDb::standard();

        r.section("Cost per part (USD) vs volume, 22nm accelerator block");
        let node = db.by_name("22nm").unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
        let mut t = Table::new(&["volume", "software/CPU", "FPGA", "ASIC", "cheapest"]);
        for v in [
            1_000u64,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
        ] {
            let sw = cost_model(node, ImplStyle::CpuSoftware).cost_per_part(v);
            let fpga = cost_model(node, ImplStyle::Fpga).cost_per_part(v);
            let asic = cost_model(node, ImplStyle::Asic).cost_per_part(v);
            t.row(&[
                v.to_string(),
                fnum(sw),
                fnum(fpga),
                fnum(asic),
                format!("{:?}", cheapest_style(node, v)),
            ]);
        }
        r.table(t);

        r.section("Breakeven volumes per node (ASIC catches ...)");
        let mut t = Table::new(&[
            "node",
            "masks (M$)",
            "ASIC NRE (M$)",
            "vs FPGA",
            "vs software",
        ]);
        for node in db.all() {
            let asic = cost_model(node, ImplStyle::Asic);
            t.row(&[
                node.name.to_string(),
                fnum(node.mask_cost_musd),
                fnum(asic.nre_musd),
                asic_over_fpga(node)
                    .map(|v| v.to_string())
                    .unwrap_or("never".into()),
                asic_over_software(node)
                    .map(|v| v.to_string())
                    .unwrap_or("never".into()),
            ]);
        }
        r.table(t);

        r.text(
            "\nHeadline: the ASIC-over-FPGA breakeven rises from tens of thousands of\n\
             units (180nm) to millions (7nm) — exactly the squeeze that motivates the\n\
             paper's call for reconfigurable coarse-grain fabrics and better synthesis.",
        );
    }
}
