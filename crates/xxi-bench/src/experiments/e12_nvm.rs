//! E12 — §2.3: "rethinking the memory/storage stack" with emerging NVMs:
//! asymmetric latency, wear-out, and the Start-Gap remedy.

use xxi_core::table::{fnum, xfactor};
use xxi_core::{Report, Table};
use xxi_mem::hybrid::{HybridConfig, HybridMemory};
use xxi_mem::nvm::{NvmDevice, NvmTech};
use xxi_mem::trace::TraceGen;
use xxi_mem::wear::StartGap;

use super::{Experiment, RunCtx};

pub struct E12Nvm;

impl Experiment for E12Nvm {
    fn id(&self) -> &'static str {
        "e12"
    }

    fn title(&self) -> &'static str {
        "Emerging NVMs: hybrid placement and wear leveling"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.3: NVMs 'disrupt the memory/storage dichotomy ... device wear out'"
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        r.section("Device technologies (per 64 B line)");
        let mut t = Table::new(&[
            "tech",
            "read (ns)",
            "write (ns)",
            "read (nJ)",
            "write (nJ)",
            "endurance",
            "idle mW/GiB",
        ]);
        for tech in [
            NvmTech::SttRam,
            NvmTech::Memristor,
            NvmTech::Pcm,
            NvmTech::Flash,
        ] {
            let p = tech.params();
            t.row(&[
                format!("{tech:?}"),
                fnum(p.read_latency.value() * 1e9),
                fnum(p.write_latency.value() * 1e9),
                fnum(p.read_energy.nj()),
                fnum(p.write_energy.nj()),
                format!("{:.0e}", p.endurance as f64),
                fnum(p.idle_mw_per_gib),
            ]);
        }
        t.row(&[
            "DRAM (ref.)".into(),
            "~30".into(),
            "~30".into(),
            "~12".into(),
            "~12".into(),
            "inf".into(),
            "50 (refresh)".into(),
        ]);
        r.table(t);

        r.section("Hybrid DRAM+PCM vs the PCM-only strawman (Zipf page workload, 30% writes)");
        let mut t = Table::new(&[
            "design",
            "avg latency (ns)",
            "avg dyn energy (nJ)",
            "DRAM hit rate",
        ]);
        let mut hybrid_hit_rate = 0.0;
        for (name, dram_pages) in [
            ("PCM-only (1 page DRAM)", 1usize),
            ("hybrid (1k pages DRAM)", 1024),
        ] {
            let mut gen = TraceGen::new(ctx.seed_or(7));
            let trace = gen.zipf(300_000, 0, 100_000, 4096, 1.1, 0.3);
            let mut m = HybridMemory::new(HybridConfig {
                dram_pages,
                ..HybridConfig::default()
            });
            m.run(&trace);
            hybrid_hit_rate = m.dram_hit_rate();
            t.row(&[
                name.to_string(),
                fnum(m.avg_latency().value() * 1e9),
                fnum(m.avg_energy().nj()),
                fnum(m.dram_hit_rate()),
            ]);
        }
        r.table(t);
        r.finding("hybrid_dram_hit_rate", hybrid_hit_rate, "frac");

        r.section("Wear leveling: single-hot-line hammer, 256 lines, PCM");
        let writes = 1_000_000u64;
        let mut raw = NvmDevice::new(NvmTech::Pcm, 257);
        for _ in 0..writes {
            raw.write(0);
        }
        let mut sg = StartGap::new(NvmDevice::new(NvmTech::Pcm, 257), 100);
        for _ in 0..writes {
            sg.write(0);
        }
        let mut t = Table::new(&[
            "design",
            "max wear",
            "mean wear",
            "imbalance (max/mean)",
            "lifetime vs ideal",
        ]);
        for (name, dev, overhead) in [
            ("no leveling", &raw, 0.0),
            ("Start-Gap psi=100", sg.device(), 0.01),
        ] {
            let imb = dev.wear_imbalance();
            t.row(&[
                name.to_string(),
                dev.max_wear().to_string(),
                fnum(dev.mean_wear()),
                xfactor(imb),
                format!("{:.1}%", 100.0 / imb / (1.0 + overhead)),
            ]);
        }
        r.table(t);
        r.finding("startgap_imbalance", sg.device().wear_imbalance(), "x");

        r.text(
            "\nHeadline: hybrid placement hides PCM's write asymmetry behind a small\n\
             DRAM tier (73% hit rate on a Zipf head), and Start-Gap converts a\n\
             257x wear imbalance into ~3x for 1% write overhead — 'device wear out'\n\
             becomes a design parameter, as §2.3 demands.",
        );
    }
}
