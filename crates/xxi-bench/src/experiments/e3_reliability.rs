//! E3 — Table 1 row 3: transistor reliability worsening, "no longer easy
//! to hide" behind ECC.

use xxi_core::table::fnum;
use xxi_core::units::{Seconds, Volts};
use xxi_core::{Report, Table};
use xxi_rel::inject::FaultInjector;
use xxi_rel::scrub::ScrubModel;
use xxi_tech::{NodeDb, SoftErrorModel};

use super::{Experiment, RunCtx};

pub struct E3Reliability;

impl Experiment for E3Reliability {
    fn id(&self) -> &'static str {
        "e3"
    }

    fn title(&self) -> &'static str {
        "Soft-error rates, SECDED limits, and scrub-interval engineering"
    }

    fn paper_claim(&self) -> &'static str {
        "Table 1 row 3: 'Transistor reliability worsening, no longer easy to hide'"
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let db = NodeDb::standard();

        r.section("Per-chip soft-error rate for an equal-area die (100 mm^2, 10% SRAM)");
        let mut t = Table::new(&[
            "node",
            "SRAM (Mbit)",
            "chip FIT",
            "MTBU (days)",
            "MTBU at 0.7x Vdd (days)",
        ]);
        for n in db.all() {
            let mbits = n.transistors(100.0) * 0.1 / 6.0 / 1e6;
            let m = SoftErrorModel::new(n.clone(), mbits);
            let low_v = Volts(n.vdd.value() * 0.7);
            t.row(&[
                n.name.to_string(),
                fnum(mbits),
                fnum(m.fit_chip(n.vdd)),
                fnum(m.mtbu_hours(n.vdd) / 24.0),
                fnum(m.mtbu_hours(low_v) / 24.0),
            ]);
        }
        r.table(t);

        r.section("Can ECC still hide it? SECDED fault injection (4096 words)");
        let mut t = Table::new(&["injected flips", "corrected", "DUE", "SDC"]);
        for flips in [8u64, 64, 512, 4096] {
            let mut fi = FaultInjector::new(4096, ctx.seed_or(3));
            fi.inject(flips);
            let (_, corrected, due, sdc) = fi.scrub_pass();
            t.row(&[
                flips.to_string(),
                corrected.to_string(),
                due.to_string(),
                sdc.to_string(),
            ]);
        }
        r.table(t);
        r.text("(DUEs appear once multiple flips land in one word — density kills SECDED)");

        r.section("Scrub-interval engineering (22nm-class rates, elevated 1000x for flight/NTV)");
        let node22 = db.by_name("22nm").unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
        let per_bit_per_sec = node22.ser_fit_per_mbit / 1e6 / (1e9 * 3600.0) * 1000.0;
        let m = ScrubModel::secded(per_bit_per_sec);
        let mut t = Table::new(&[
            "scrub interval",
            "P(word DUE)/interval",
            "DUE rate (/word/s)",
        ]);
        for hours in [0.1, 1.0, 10.0, 100.0] {
            let iv = Seconds::from_hours(hours);
            t.row(&[
                format!("{hours} h"),
                fnum(m.p_due_per_interval(iv)),
                fnum(m.due_rate(iv)),
            ]);
        }
        r.table(t);

        r.text(
            "\nHeadline: per-chip upset rates climb every generation and explode at low\n\
             voltage; SECDED holds only with active scrubbing — reliability is now a\n\
             managed budget, not a free property.",
        );
    }
}
