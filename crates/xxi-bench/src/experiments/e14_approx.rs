//! E14 — §2.1/§2.4: approximate computing — "sensor data is inherently
//! approximate … significant energy savings."

use xxi_approx::pareto::{pareto_frontier, sweep_fir};
use xxi_core::table::{fnum, xfactor};
use xxi_core::{Report, Table};

use super::{Experiment, RunCtx};

pub struct E14Approx;

impl Experiment for E14Approx {
    fn id(&self) -> &'static str {
        "e14"
    }

    fn title(&self) -> &'static str {
        "Approximate computing: the energy-error Pareto frontier"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.1: approximate computing -> 'significant energy savings'"
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let points = sweep_fir(20_000, ctx.seed_or(14));
        let full = points
            .iter()
            .find(|p| p.bits == 52 && p.perforation == 1)
            .unwrap(); // xxi-allow: panic-path -- the 52-bit exact point is always swept

        r.section("Full (bits x perforation) sweep on the FIR workload");
        let mut t = Table::new(&["bits", "perforation", "energy vs exact", "RMSE"]);
        for p in &points {
            t.row(&[
                p.bits.to_string(),
                p.perforation.to_string(),
                fnum(p.energy.value() / full.energy.value()),
                fnum(p.error),
            ]);
        }
        r.table(t);

        r.section("Pareto frontier (energy vs error)");
        let frontier = pareto_frontier(&points);
        let mut t = Table::new(&["bits", "perforation", "energy saving", "RMSE"]);
        for p in &frontier {
            t.row(&[
                p.bits.to_string(),
                p.perforation.to_string(),
                xfactor(full.energy.value() / p.energy.value()),
                fnum(p.error),
            ]);
        }
        r.table(t);

        let cheap_good = points
            .iter()
            .filter(|p| p.error < 0.05)
            .max_by(|a, b| {
                (full.energy.value() / a.energy.value())
                    .partial_cmp(&(full.energy.value() / b.energy.value()))
                    .unwrap() // xxi-allow: panic-path -- energy ratios are finite
            })
            .unwrap(); // xxi-allow: panic-path -- the sweep is non-empty
        r.finding(
            "best_sub5pct_saving",
            full.energy.value() / cheap_good.energy.value(),
            "x",
        );
        r.text(format!(
            "\nHeadline: the best <5%-RMSE configuration ({} bits, perforation {}) saves {}\n\
         in kernel energy — graceful quality-energy trading, as the paper's\n\
         approximate-computing agenda claims.",
            cheap_good.bits,
            cheap_good.perforation,
            xfactor(full.energy.value() / cheap_good.energy.value())
        ));
    }
}
