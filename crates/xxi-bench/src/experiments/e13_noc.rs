//! E13 — §1.2/§2.3: photonics and 3D stacking "change communication costs
//! radically enough to affect the entire system design."

use xxi_core::table::fnum;
use xxi_core::units::Seconds;
use xxi_core::{Report, Table};
use xxi_noc::analysis::ideal_uniform_saturation;
use xxi_noc::link::{Link, LinkKind};
use xxi_noc::sim::load_sweep;
use xxi_noc::topology::Mesh;
use xxi_noc::traffic::Pattern;
use xxi_tech::NodeDb;

use super::{Experiment, RunCtx};

pub struct E13Noc;

impl Experiment for E13Noc {
    fn id(&self) -> &'static str {
        "e13"
    }

    fn title(&self) -> &'static str {
        "Interconnect: 3D stacking and photonic links"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.3: 'Photonics ... 3D chip stacking change communication costs radically'"
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let db = NodeDb::standard();
        let node = db.by_name("22nm").unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant

        r.section("64 nodes: planar 8x8 vs stacked 4x4x4 (uniform traffic)");
        let rates = [0.02, 0.1, 0.2, 0.3, 0.4];
        let planar = load_sweep(Mesh::new_2d(8, 8), Pattern::Uniform, &rates, ctx.seed_or(5));
        let stacked = load_sweep(
            Mesh::new_3d(4, 4, 4),
            Pattern::Uniform,
            &rates,
            ctx.seed_or(5),
        );
        let mut t = Table::new(&[
            "injection rate",
            "2D latency (cyc)",
            "3D latency (cyc)",
            "2D throughput",
            "3D throughput",
        ]);
        for ((r, l2, t2), (_, l3, t3)) in planar.iter().zip(&stacked) {
            t.row(&[fnum(*r), fnum(*l2), fnum(*l3), fnum(*t2), fnum(*t3)]);
        }
        r.table(t);
        r.text(format!(
            "mean hops: 2D {:.2} vs 3D {:.2}; bisection bound: 2D {:.2} vs 3D {:.2} flits/node/cyc",
            Mesh::new_2d(8, 8).mean_hops_uniform(),
            Mesh::new_3d(4, 4, 4).mean_hops_uniform(),
            ideal_uniform_saturation(&Mesh::new_2d(8, 8)),
            ideal_uniform_saturation(&Mesh::new_3d(4, 4, 4)),
        ));

        r.section("Traffic patterns on the 8x8 mesh at rate 0.25");
        let mut t = Table::new(&["pattern", "mean latency (cyc)", "throughput"]);
        for (name, p) in [
            ("uniform", Pattern::Uniform),
            ("neighbor", Pattern::Neighbor),
            ("transpose", Pattern::Transpose),
            (
                "hotspot 20%",
                Pattern::Hotspot {
                    node: 27,
                    permille: 200,
                },
            ),
        ] {
            let row = load_sweep(Mesh::new_2d(8, 8), p, &[0.25], ctx.seed_or(6))[0];
            t.row(&[name.to_string(), fnum(row.1), fnum(row.2)]);
        }
        r.table(t);

        r.section("Photonic vs electrical link energy (20 mm span, 22nm)");
        let photonic = Link::on(node, LinkKind::Photonic);
        let electrical = Link::on(node, LinkKind::Electrical { mm: 20.0 });
        let crossover = photonic
            .energy_crossover_bits_per_sec(&electrical)
            .expect("crossover exists"); // xxi-allow: panic-path -- see the expect message
        let mut t = Table::new(&[
            "utilization (Gb/s)",
            "electrical (mJ/s)",
            "photonic (mJ/s)",
            "winner",
        ]);
        for gbps in [0.1, 1.0, 5.0, 20.0, 100.0] {
            let bits = (gbps * 1e9) as u64;
            let e = electrical.total_energy(bits, Seconds(1.0)).mj();
            let p = photonic.total_energy(bits, Seconds(1.0)).mj();
            t.row(&[
                fnum(gbps),
                fnum(e),
                fnum(p),
                if p < e { "photonic" } else { "electrical" }.to_string(),
            ]);
        }
        r.table(t);
        r.text(format!("energy crossover: {:.2} Gb/s", crossover / 1e9));
        r.finding("photonic_crossover_gbps", crossover / 1e9, "Gb/s");

        r.text(
            "\nHeadline: stacking cuts mean hops 28% and raises the bisection bound 2x;\n\
             photonics wins long links only above a utilization threshold (standing\n\
             laser power) — both 'change the system design' rather than one number.",
        );
    }
}
