//! E16 — §2.1 eco-system architecture: "divide effort between the portable
//! platform and the cloud while responding dynamically to changes in the
//! … cloud uplink."

use xxi_core::table::fnum;
use xxi_core::units::Seconds;
use xxi_core::{Report, Table};
use xxi_stack::offload::{plan_offload, AppProfile, Decision, DeviceModel, Uplink};

use super::{Experiment, RunCtx};

fn decision_char(d: Decision) -> String {
    match d {
        Decision::Local => "L".into(),
        Decision::Remote => "R".into(),
        Decision::Split { local_fraction } => format!("S{:.0}", local_fraction * 10.0),
    }
}

pub struct E16Offload;

impl Experiment for E16Offload {
    fn id(&self) -> &'static str {
        "e16"
    }

    fn title(&self) -> &'static str {
        "Cloud offload: splitting work between device and datacenter"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.1: 'How should computation be split between the nodes and cloud?'"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        let dev = DeviceModel::phone_vs_rack();
        let bws = [0.2e6, 1e6, 5e6, 20e6, 100e6];
        let rtts = [10.0, 50.0, 200.0, 1000.0];

        for (name, app, lambda) in [
            (
                "compute-heavy stage (speech-class), latency objective",
                AppProfile::compute_heavy(),
                0.0,
            ),
            (
                "compute-heavy stage, battery-weighted objective",
                AppProfile::compute_heavy(),
                10.0,
            ),
            (
                "data-heavy stage (video-class), latency objective",
                AppProfile::data_heavy(),
                0.0,
            ),
        ] {
            r.section(format!(
                "Decision map: {name} (L=local, R=remote, S*=split)"
            ));
            let mut t = Table::new(&["bandwidth \\ RTT", "10 ms", "50 ms", "200 ms", "1000 ms"]);
            for &bps in &bws {
                let mut row = vec![format!("{} Mb/s", bps / 1e6)];
                for &rtt in &rtts {
                    let plan = plan_offload(
                        &app,
                        &dev,
                        &Uplink {
                            bps,
                            rtt: Seconds::from_ms(rtt),
                        },
                        lambda,
                    );
                    row.push(decision_char(plan.decision));
                }
                t.row(&row);
            }
            r.table(t);
        }

        r.section("Costed plans for the compute-heavy stage (latency objective)");
        let mut t = Table::new(&["uplink", "decision", "latency (ms)", "device energy (mJ)"]);
        for (name, bps, rtt) in [
            ("broadband", 100e6, 10.0),
            ("good LTE", 20e6, 50.0),
            ("edge of coverage", 0.5e6, 300.0),
        ] {
            let plan = plan_offload(
                &AppProfile::compute_heavy(),
                &dev,
                &Uplink {
                    bps,
                    rtt: Seconds::from_ms(rtt),
                },
                0.0,
            );
            t.row(&[
                name.to_string(),
                decision_char(plan.decision),
                fnum(plan.latency.ms()),
                fnum(plan.device_energy.mj()),
            ]);
        }
        r.table(t);

        r.text(
            "\nHeadline: the split flips from Remote to Local as bandwidth falls or RTT\n\
             rises, data-heavy stages never leave the device, and weighting battery\n\
             moves the boundary — the dynamic eco-system behaviour §2.1 asks for.",
        );
    }
}
