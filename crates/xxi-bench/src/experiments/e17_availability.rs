//! E17 — Table A.2 "Always Online": five-nines availability from
//! checkpoint/restart and replication, at what cost.
//!
//! The checkpoint interval sweep (5 intervals x 8 seeds, each a 100 h
//! simulated job) fans out on the executor from [`RunCtx`]; every number
//! is byte-identical for every `--threads` count.

use std::sync::Mutex;

use xxi_cloud::obs::ObservedFanout;
use xxi_core::obs::Trace;
use xxi_core::table::fnum;
use xxi_core::units::Seconds;
use xxi_core::{Report, Table};
use xxi_rel::checkpoint::{availability, efficiency, nines, young_daly_interval, CheckpointSim};

use crate::{quantile_row, quantile_table};

use super::{Experiment, RunCtx};

pub struct E17Availability;

impl Experiment for E17Availability {
    fn id(&self) -> &'static str {
        "e17"
    }

    fn title(&self) -> &'static str {
        "Always online: checkpointing, replication, observed fan-out"
    }

    fn paper_claim(&self) -> &'static str {
        "Table A.2: 'Always Online' — five 9s at every scale"
    }

    fn emits_trace(&self) -> bool {
        true
    }

    fn parallel(&self) -> bool {
        true
    }

    // 40 checkpoint sims x 100 simulated hours each dominate the run.
    fn work_units(&self) -> Option<(&'static str, f64)> {
        Some(("sim_hours", 4_000.0))
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let exec = ctx.exec();
        let delta = Seconds(30.0);
        let restart = Seconds(120.0);

        r.section("Young-Daly: optimal checkpoint interval vs MTBF (delta = 30 s)");
        let mut t = Table::new(&["MTBF", "tau* (min)", "analytic efficiency at tau*"]);
        for hours in [1.0, 4.0, 24.0, 24.0 * 7.0] {
            let mtbf = Seconds::from_hours(hours);
            let tau = young_daly_interval(delta, mtbf);
            t.row(&[
                format!("{hours} h"),
                fnum(tau.value() / 60.0),
                fnum(efficiency(tau, delta, restart, mtbf)),
            ]);
        }
        r.table(t);

        r.section("Simulated 100 h job, MTBF 4 h: interval sweep (8 seeds each)");
        let mtbf = Seconds::from_hours(4.0);
        let yd = young_daly_interval(delta, mtbf);
        let mut t = Table::new(&["tau / tau*", "efficiency", "failures survived"]);
        let mults = [0.0625, 0.25, 1.0, 4.0, 16.0];
        // All (interval, seed) pairs fan out together; each slot holds one
        // run's (efficiency, failures). Aggregation below walks the slots in
        // a fixed order, so the table is executor-independent.
        let seeds: Vec<u64> = (0..8).map(|s| ctx.seed_or(s)).collect();
        let slots: Vec<Mutex<Option<(f64, u64)>>> =
            (0..mults.len() * 8).map(|_| Mutex::new(None)).collect();
        exec.for_tasks(slots.len(), &|k| {
            let sim = CheckpointSim {
                tau: Seconds(yd.value() * mults[k / 8]),
                delta,
                restart,
                mtbf,
            };
            let o = sim.run(Seconds::from_hours(100.0), seeds[k % 8]);
            *slots[k].lock().unwrap() = Some((o.efficiency, o.failures));
        });
        ctx.count("ckpt.sims", slots.len() as u64);
        for (m, mult) in mults.iter().enumerate() {
            let mut eff = 0.0;
            let mut fails = 0u64;
            for s in 0..8 {
                let (e, f) = slots[m * 8 + s].lock().unwrap().expect("sweep task ran"); // xxi-allow: panic-path -- see the expect message
                eff += e / 8.0;
                fails += f / 8;
            }
            ctx.observe("ckpt.efficiency", eff);
            ctx.count("ckpt.failures_survived", fails);
            t.row(&[fnum(*mult), fnum(eff), fails.to_string()]);
        }
        r.table(t);

        r.section("Availability vs repair speed and replication");
        let mut t = Table::new(&[
            "configuration",
            "availability",
            "nines",
            "downtime/yr (min)",
        ]);
        for (name, a) in [
            (
                "1 replica, MTTR 4 h, MTBF 1000 h",
                availability(Seconds::from_hours(1000.0), Seconds::from_hours(4.0)),
            ),
            (
                "1 replica, MTTR 5 min (auto-restart)",
                availability(Seconds::from_hours(1000.0), Seconds(300.0)),
            ),
            ("2 replicas of 99.9%", 1.0 - (1.0 - 0.999f64).powi(2)),
            ("3 replicas of 99.9%", 1.0 - (1.0 - 0.999f64).powi(3)),
        ] {
            t.row(&[
                name.to_string(),
                format!("{a:.7}"),
                nines(a).to_string(),
                fnum((1.0 - a) * 365.25 * 24.0 * 60.0),
            ]);
        }
        r.table(t);

        r.section("Observed fan-out cluster: where an 'online' request's time and energy go");
        // The serving side of "always online": a 100-leaf fan-out on the DES
        // engine with per-request spans, leaf latency histograms, and an
        // energy ledger — with and without hedging at the leaf p95.
        let base = ObservedFanout {
            requests: 2_000,
            ..ObservedFanout::default()
        };
        let plain = base.run(Trace::disabled());
        let hedged_cfg = ObservedFanout {
            hedge_quantile: Some(0.95),
            ..base
        };
        // The trace captures the hedged run (requests, leaves, hedge instants).
        let hedged = hedged_cfg.run(ctx.trace());

        let mut t = quantile_table("request latency (ms)");
        t.row(&quantile_row("fan-out 100", &plain.request_latency));
        t.row(&quantile_row("  + hedge @p95", &hedged.request_latency));
        t.row(&quantile_row("single leaf", &hedged.leaf_latency));
        r.table(t);
        let extra_load = 100.0 * hedged.metrics.counter("hedges") as f64
            / hedged.metrics.counter("leaves") as f64;
        ctx.count("fanout.requests", 2 * 2_000);
        ctx.count("fanout.hedges", hedged.metrics.counter("hedges"));
        ctx.count("fanout.leaves", hedged.metrics.counter("leaves"));
        ctx.observe(
            "fanout.request_p99_ms",
            hedged.request_latency.percentile(99.0),
        );
        r.finding("hedge_extra_load_pct", extra_load, "%");
        r.text(format!(
            "hedges sent: {} ({:.1}% extra load)",
            hedged.metrics.counter("hedges"),
            extra_load
        ));

        r.section("Energy ledger, hedged run (per 2000 requests)");
        r.table(hedged.ledger.table());

        ctx.emit_trace(r, &hedged.trace);

        r.text(
            "\nHeadline: the Young-Daly interval maximizes machine efficiency (the\n\
             simulation's optimum sits at tau*, both shorter and longer lose); five\n\
             nines needs either minutes-scale repair or 3x replication — the paper's\n\
             point that 'this same availability at a few dollars' is a research gap;\n\
             and the observed cluster shows hedging buying back the p99.9 for ~5%\n\
             extra load while leaf compute dominates the request's energy bill.",
        );
    }
}
