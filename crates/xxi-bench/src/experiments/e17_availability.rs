//! E17 — Table A.2 "Always Online": five-nines availability from
//! checkpoint/restart and replication, at what cost.
//!
//! The checkpoint interval sweep (5 intervals x 8 seeds, each a 100 h
//! simulated job) fans out on the executor from [`RunCtx`]; every number
//! is byte-identical for every `--threads` count.

use std::sync::Mutex;

use xxi_cloud::obs::ObservedFanout;
use xxi_core::des::fault::{FaultMix, FaultPlan, Topology};
use xxi_core::obs::Trace;
use xxi_core::table::fnum;
use xxi_core::units::Seconds;
use xxi_core::{Report, SimTime, Table};
use xxi_rel::checkpoint::{availability, efficiency, nines, young_daly_interval, CheckpointSim};

use crate::{quantile_row, quantile_table};

use super::{Experiment, RunCtx};

pub struct E17Availability;

impl Experiment for E17Availability {
    fn id(&self) -> &'static str {
        "e17"
    }

    fn title(&self) -> &'static str {
        "Always online: checkpointing, replication, observed fan-out"
    }

    fn paper_claim(&self) -> &'static str {
        "Table A.2: 'Always Online' — five 9s at every scale"
    }

    fn emits_trace(&self) -> bool {
        true
    }

    fn parallel(&self) -> bool {
        true
    }

    // 40 checkpoint sims x 100 simulated hours each dominate the run,
    // plus the 2 planned (correlated vs independent) 100 h jobs.
    fn work_units(&self) -> Option<(&'static str, f64)> {
        Some(("sim_hours", 4_200.0))
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let exec = ctx.exec();
        let delta = Seconds(30.0);
        let restart = Seconds(120.0);

        r.section("Young-Daly: optimal checkpoint interval vs MTBF (delta = 30 s)");
        let mut t = Table::new(&["MTBF", "tau* (min)", "analytic efficiency at tau*"]);
        for hours in [1.0, 4.0, 24.0, 24.0 * 7.0] {
            let mtbf = Seconds::from_hours(hours);
            let tau = young_daly_interval(delta, mtbf);
            t.row(&[
                format!("{hours} h"),
                fnum(tau.value() / 60.0),
                fnum(efficiency(tau, delta, restart, mtbf)),
            ]);
        }
        r.table(t);

        r.section("Simulated 100 h job, MTBF 4 h: interval sweep (8 seeds each)");
        let mtbf = Seconds::from_hours(4.0);
        let yd = young_daly_interval(delta, mtbf);
        let mut t = Table::new(&["tau / tau*", "efficiency", "failures survived"]);
        let mults = [0.0625, 0.25, 1.0, 4.0, 16.0];
        // All (interval, seed) pairs fan out together; each slot holds one
        // run's (efficiency, failures). Aggregation below walks the slots in
        // a fixed order, so the table is executor-independent.
        let seeds: Vec<u64> = (0..8).map(|s| ctx.seed_or(s)).collect();
        let slots: Vec<Mutex<Option<(f64, u64)>>> =
            (0..mults.len() * 8).map(|_| Mutex::new(None)).collect();
        exec.for_tasks(slots.len(), &|k| {
            let sim = CheckpointSim {
                tau: Seconds(yd.value() * mults[k / 8]),
                delta,
                restart,
                mtbf,
            };
            let o = sim.run(Seconds::from_hours(100.0), seeds[k % 8]);
            *slots[k].lock().unwrap() = Some((o.efficiency, o.failures));
        });
        ctx.count("ckpt.sims", slots.len() as u64);
        for (m, mult) in mults.iter().enumerate() {
            let mut eff = 0.0;
            let mut fails = 0u64;
            for s in 0..8 {
                let (e, f) = slots[m * 8 + s].lock().unwrap().expect("sweep task ran"); // xxi-allow: panic-path -- see the expect message
                eff += e / 8.0;
                fails += f / 8;
            }
            ctx.observe("ckpt.efficiency", eff);
            ctx.count("ckpt.failures_survived", fails);
            t.row(&[fnum(*mult), fnum(eff), fails.to_string()]);
        }
        r.table(t);

        r.section("Correlated bursts vs independent failures (equal 32-kill budget)");
        // The same 100 h job on a 64-node machine, checkpointing at tau*,
        // against two planned fault processes with the SAME budget: 32
        // independent kills scattered over the horizon vs the same 32 kills
        // drawn as 4 rack-blasts (8 nodes each, striking at one instant).
        // A blast costs one restart however many nodes it takes out, so the
        // correlated machine loses less work — the blast-radius argument
        // for failure-domain-aware placement.
        let sim = CheckpointSim {
            tau: yd,
            delta,
            restart,
            mtbf,
        };
        let ckpt_horizon = SimTime::from_seconds(Seconds(400_000.0));
        let fp_seed = ctx.seed_or(13);
        let indep = FaultPlan::seeded(fp_seed, ckpt_horizon, 64, 0.5, FaultMix::kills_only());
        let corr = FaultPlan::correlated(
            fp_seed,
            ckpt_horizon,
            &Topology::blocks(64, 8),
            0.5,
            FaultMix::kills_only(),
        );
        let mut t = Table::new(&[
            "fault process",
            "kills",
            "outages",
            "failures hit",
            "efficiency",
            "wall (h)",
        ]);
        let mut accounting = Vec::new();
        let mut planned = Vec::new();
        for (name, plan) in [("independent", &indep), ("correlated (8 racks)", &corr)] {
            let o = sim.run_planned(Seconds::from_hours(100.0), plan, 64);
            ctx.count("ckpt.sims", 1);
            ctx.observe("ckpt.efficiency", o.outcome.efficiency);
            t.row(&[
                name.to_string(),
                plan.events().len().to_string(),
                o.outages.to_string(),
                o.outcome.failures.to_string(),
                fnum(o.outcome.efficiency),
                fnum(o.outcome.wall.hours()),
            ]);
            accounting.push(format!(
                "{name}: scheduled {} == fired {} + cancelled {}",
                o.metrics.counter("fault.scheduled"),
                o.metrics.counter("fault.fired"),
                o.metrics.counter("fault.cancelled"),
            ));
            planned.push(o);
        }
        r.table(t);
        r.text(format!("fault accounting: {}", accounting.join("; ")));
        r.finding(
            "correlated_efficiency_gain",
            planned[1].outcome.efficiency - planned[0].outcome.efficiency,
            "efficiency (correlated - independent, equal budget)",
        );

        r.section("Availability vs repair speed and replication");
        let mut t = Table::new(&[
            "configuration",
            "availability",
            "nines",
            "downtime/yr (min)",
        ]);
        for (name, a) in [
            (
                "1 replica, MTTR 4 h, MTBF 1000 h",
                availability(Seconds::from_hours(1000.0), Seconds::from_hours(4.0)),
            ),
            (
                "1 replica, MTTR 5 min (auto-restart)",
                availability(Seconds::from_hours(1000.0), Seconds(300.0)),
            ),
            ("2 replicas of 99.9%", 1.0 - (1.0 - 0.999f64).powi(2)),
            ("3 replicas of 99.9%", 1.0 - (1.0 - 0.999f64).powi(3)),
        ] {
            t.row(&[
                name.to_string(),
                format!("{a:.7}"),
                nines(a).to_string(),
                fnum((1.0 - a) * 365.25 * 24.0 * 60.0),
            ]);
        }
        r.table(t);

        r.section("Observed fan-out cluster: where an 'online' request's time and energy go");
        // The serving side of "always online": a 100-leaf fan-out on the DES
        // engine with per-request spans, leaf latency histograms, and an
        // energy ledger — with and without hedging at the leaf p95.
        let base = ObservedFanout {
            requests: 2_000,
            ..ObservedFanout::default()
        };
        let plain = base.run(Trace::disabled());
        let hedged_cfg = ObservedFanout {
            hedge_quantile: Some(0.95),
            ..base
        };
        // The trace captures the hedged run (requests, leaves, hedge instants).
        let hedged = hedged_cfg.run(ctx.trace());

        let mut t = quantile_table("request latency (ms)");
        t.row(&quantile_row("fan-out 100", &plain.request_latency));
        t.row(&quantile_row("  + hedge @p95", &hedged.request_latency));
        t.row(&quantile_row("single leaf", &hedged.leaf_latency));
        r.table(t);
        let extra_load = 100.0 * hedged.metrics.counter("hedges") as f64
            / hedged.metrics.counter("leaves") as f64;
        ctx.count("fanout.requests", 2 * 2_000);
        ctx.count("fanout.hedges", hedged.metrics.counter("hedges"));
        ctx.count("fanout.leaves", hedged.metrics.counter("leaves"));
        ctx.observe(
            "fanout.request_p99_ms",
            hedged.request_latency.percentile(99.0),
        );
        r.finding("hedge_extra_load_pct", extra_load, "%");
        r.text(format!(
            "hedges sent: {} ({:.1}% extra load)",
            hedged.metrics.counter("hedges"),
            extra_load
        ));

        r.section("Energy ledger, hedged run (per 2000 requests)");
        r.table(hedged.ledger.table());

        ctx.emit_trace(r, &hedged.trace);

        r.text(
            "\nHeadline: the Young-Daly interval maximizes machine efficiency (the\n\
             simulation's optimum sits at tau*, both shorter and longer lose); at an\n\
             equal kill budget, correlated rack-blasts cost fewer restarts than\n\
             independent failures — blast radius, not fault count, is what the\n\
             checkpoint interval has to amortize; five nines needs either\n\
             minutes-scale repair or 3x replication — the paper's point that 'this\n\
             same availability at a few dollars' is a research gap; and the observed\n\
             cluster shows hedging buying back the p99.9 for ~5% extra load while\n\
             leaf compute dominates the request's energy bill.",
        );
    }
}
