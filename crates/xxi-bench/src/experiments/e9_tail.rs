//! E9 — §2.1: "if 100 systems must jointly respond, 63% of requests incur
//! the 99th-percentile delay" — plus why tails exist and how to cut them.
//!
//! The Monte Carlo runs on the executor from [`RunCtx`]; the tables are
//! byte-identical for every `--threads` count.

use xxi_cloud::fanout::{analytic_straggler_prob, fanout_sweep_on};
use xxi_cloud::hedge::hedge_experiment_on;
use xxi_cloud::latency::LatencyDist;
use xxi_cloud::queueing::{mg1_sweep_on, MG1Queue};
use xxi_core::des::fault::{Fault, FaultPlan};
use xxi_core::table::fnum;
use xxi_core::{Report, SimTime, Table};

use super::{Experiment, RunCtx};

pub struct E9Tail;

fn ms_to_sim(ms: f64) -> SimTime {
    SimTime::from_ps((ms * 1e9).round().max(0.0) as u64)
}

impl Experiment for E9Tail {
    fn id(&self) -> &'static str {
        "e9"
    }

    fn title(&self) -> &'static str {
        "Tail at scale: fan-out amplification, M/G/1 tails, hedged requests"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.1: 'if 100 systems must jointly respond ... 63% of requests'"
    }

    fn parallel(&self) -> bool {
        true
    }

    // 120k fan-out + 100k calibration + 600k M/G/1 + 450k faulted M/G/1 +
    // 300k baseline + 900k hedged trials — the counters recorded in
    // `fill` sum to this.
    fn work_units(&self) -> Option<(&'static str, f64)> {
        Some(("mc_trials", 2_470_000.0))
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let exec = ctx.exec();
        let leaf = LatencyDist::typical_leaf();

        r.section("Fan-out amplification (Monte Carlo, 20k requests/row)");
        let mut t = Table::new(&[
            "fan-out",
            "analytic 1-0.99^n",
            "simulated",
            "p50 (ms)",
            "p99 (ms)",
            "mean (ms)",
        ]);
        for row in fanout_sweep_on(
            leaf,
            &[1, 10, 50, 100, 500, 1000],
            20_000,
            ctx.seed_or(42),
            exec,
        ) {
            ctx.count("mc.fanout_trials", 20_000);
            ctx.observe("fanout.p99_ms", row.p99);
            if row.fanout == 100 {
                r.finding(
                    "straggler_frac_fanout_100",
                    row.frac_hit_by_leaf_p99,
                    "frac",
                );
            }
            t.row(&[
                row.fanout.to_string(),
                fnum(analytic_straggler_prob(row.fanout, 0.99)),
                fnum(row.frac_hit_by_leaf_p99),
                fnum(row.p50),
                fnum(row.p99),
                fnum(row.mean),
            ]);
        }
        r.table(t);

        r.section("Where the leaf tail comes from: utilization (M/G/1, straggler service)");
        let mean_s = leaf.sample_summary_on(100_000, ctx.seed_or(7), exec).mean();
        ctx.count("mc.calibration_trials", 100_000);
        ctx.gauge("mg1.mean_service_ms", mean_s);
        let queues: Vec<MG1Queue> = [0.3, 0.5, 0.7, 0.85]
            .iter()
            .map(|&rho| MG1Queue {
                lambda_per_ms: rho / mean_s,
                service: leaf,
            })
            .collect();
        let mut t = Table::new(&["utilization", "mean (ms)", "p99 (ms)"]);
        for (rho, q) in
            [0.3, 0.5, 0.7, 0.85]
                .iter()
                .zip(mg1_sweep_on(&queues, 150_000, ctx.seed_or(8), exec))
        {
            ctx.count("mc.mg1_trials", 150_000);
            ctx.observe("mg1.p99_ms", q.p99);
            t.row(&[fnum(*rho), fnum(q.mean_ms), fnum(q.p99)]);
        }
        r.table(t);

        r.section(
            "Fault-injected M/G/1 (rho 0.85): a reboot wipes the queue, a crash refuses work",
        );
        // The same rho = 0.85 queue run through `run_faulted` (component 0 =
        // the server). A mid-run pause (a 30 s reboot) loses every resident
        // job and defers the backlog; a crash at 80% of the run refuses all
        // later arrivals. The empty plan is bit-identical to the fault-free
        // run above.
        let q = &queues[3];
        let end_ms = 150_000.0 / q.lambda_per_ms;
        let mut reboot = FaultPlan::new();
        reboot.at(
            ms_to_sim(end_ms * 0.5),
            0,
            Fault::Pause {
                for_time: ms_to_sim(30_000.0),
            },
        );
        let mut crash = FaultPlan::new();
        crash.at(ms_to_sim(end_ms * 0.8), 0, Fault::Kill);
        let empty = FaultPlan::new();
        let scenarios = [
            ("fault-free", &empty),
            ("reboot at 50% (30 s)", &reboot),
            ("crash at 80%", &crash),
        ];
        let mut t = Table::new(&[
            "scenario",
            "completed",
            "lost",
            "refused",
            "p50 (ms)",
            "p99 (ms)",
        ]);
        let mut accounting = Vec::new();
        for (name, plan) in scenarios {
            let f = q.run_faulted(150_000, ctx.seed_or(11), plan);
            ctx.count("mc.mg1_faulted_trials", 150_000);
            t.row(&[
                name.to_string(),
                f.result.completed.to_string(),
                f.lost.to_string(),
                f.refused.to_string(),
                fnum(f.result.p50),
                fnum(f.result.p99),
            ]);
            accounting.push(format!(
                "{name}: scheduled {} == fired {} + cancelled {}",
                f.metrics.counter("fault.scheduled"),
                f.metrics.counter("fault.fired"),
                f.metrics.counter("fault.cancelled"),
            ));
            if name.starts_with("reboot") {
                r.finding("mg1_reboot_lost_jobs", f.lost as f64, "jobs");
                r.finding("mg1_reboot_p99_ms", f.result.p99, "ms");
            }
        }
        r.table(t);
        r.text(format!("fault accounting: {}", accounting.join("; ")));

        r.section("Mitigation: hedged requests (duplicate after a deadline quantile)");
        let base = leaf.sample_summary_on(300_000, ctx.seed_or(9), exec);
        ctx.count("mc.hedge_trials", 300_000);
        let mut t = Table::new(&["policy", "p50", "p99", "p99.9", "extra load"]);
        t.row(&[
            "no hedge".into(),
            fnum(base.median()),
            fnum(base.percentile(99.0)),
            fnum(base.percentile(99.9)),
            "0%".into(),
        ]);
        for q in [0.90, 0.95, 0.99] {
            let h = hedge_experiment_on(leaf, q, 300_000, ctx.seed_or(10), exec);
            ctx.count("mc.hedge_trials", 300_000);
            ctx.observe("hedge.p999_ms", h.p999);
            t.row(&[
                format!("hedge @ p{:.0}", q * 100.0),
                fnum(h.p50),
                fnum(h.p99),
                fnum(h.p999),
                format!("{:.1}%", h.extra_load * 100.0),
            ]);
        }
        r.table(t);

        r.finding(
            "analytic_straggler_fanout_100",
            analytic_straggler_prob(100, 0.99),
            "frac",
        );
        r.text(
            "\nHeadline: the 63% claim reproduces exactly (0.634 analytic, ~0.63-0.65\n\
             simulated); hedging at p95 collapses p99.9 by >3x for ~5% extra load —\n\
             the Tail-at-Scale shape the paper's §2.1 agenda builds on.",
        );
    }
}
