//! E4 — Table 1 row 4 / §2.2: communication costs more than computation;
//! operand fetch is 1–2 orders of magnitude above the FP op.

use xxi_core::table::{fnum, xfactor};
use xxi_core::{Report, Table};
use xxi_mem::energy::MemEnergyTable;
use xxi_noc::link::{Link, LinkKind};
use xxi_tech::ops::OpEnergies;
use xxi_tech::NodeDb;

use super::{Experiment, RunCtx};

pub struct E4CommEnergy;

impl Experiment for E4CommEnergy {
    fn id(&self) -> &'static str {
        "e4"
    }

    fn title(&self) -> &'static str {
        "The energy ladder: operand fetch vs the FP op itself"
    }

    fn paper_claim(&self) -> &'static str {
        "Table 1 row 4: 'communication more expensive than computation'"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        let db = NodeDb::standard();

        r.section("The energy ladder per 64-bit access (pJ), across nodes");
        let mut t = Table::new(&[
            "node",
            "FMA",
            "RF",
            "L1",
            "L2",
            "L3",
            "10mm wire",
            "chip-to-chip",
            "DRAM",
        ]);
        for name in ["90nm", "45nm", "22nm", "14nm", "7nm"] {
            let node = db.by_name(name).unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
            let e = MemEnergyTable::at(node);
            let ops = OpEnergies::at(node);
            t.row(&[
                name.to_string(),
                fnum(ops.fp_fma.pj()),
                fnum(e.rf.pj()),
                fnum(e.l1.pj()),
                fnum(e.l2.pj()),
                fnum(e.l3.pj()),
                fnum(e.wire_10mm.pj()),
                fnum(e.chip_to_chip.pj()),
                fnum(e.dram.pj()),
            ]);
        }
        r.table(t);

        r.section("Operand fetch vs the operation itself (the §2.2 claim)");
        let mut t = Table::new(&["node", "DRAM/FMA ratio", "3-operand L2 traffic vs FMA"]);
        for node in db.all() {
            let e = MemEnergyTable::at(node);
            let ops = OpEnergies::at(node);
            t.row(&[
                node.name.to_string(),
                xfactor(e.dram_to_fma_ratio(&ops)),
                xfactor(e.operand_traffic(xxi_mem::energy::Level::L2).value() / ops.fp_fma.value()),
            ]);
        }
        r.table(t);

        r.section("Link technologies at 22nm (per bit)");
        let node = db.by_name("22nm").unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
        let mut t = Table::new(&["link", "pJ/bit", "standing power (mW)"]);
        for (name, kind) in [
            ("on-chip 1mm", LinkKind::Electrical { mm: 1.0 }),
            ("on-chip 10mm", LinkKind::Electrical { mm: 10.0 }),
            ("TSV (3D)", LinkKind::Tsv),
            ("photonic", LinkKind::Photonic),
            ("off-chip SerDes", LinkKind::OffChip),
        ] {
            let l = Link::on(node, kind);
            t.row(&[
                name.to_string(),
                fnum(l.energy_per_bit.pj()),
                fnum(l.standing_power.mw()),
            ]);
        }
        r.table(t);

        let node45 = db.by_name("45nm").unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
        r.finding(
            "dram_to_fma_45nm",
            MemEnergyTable::at(node45).dram_to_fma_ratio(&OpEnergies::at(node45)),
            "x",
        );
        r.text(
            "\nHeadline: at 45nm a DRAM operand fetch costs ~240x the FMA; the ratio\n\
             grows every node because logic scales (C*V^2) while wires and interfaces\n\
             barely do — the quantitative root of 'energy first'.",
        );
    }
}
