//! E21 — fault-tolerant serving: timeouts, retries, and failover keep the
//! tail bounded while replicas die.
//!
//! §2.1 asks for architectures that "guarantee strict worst-case latency
//! requirements"; §2.4 asks the same stack to stay dependable on
//! undependable parts. This experiment runs the fault-injected cluster
//! model (`xxi_cloud::cluster`) over a leaf-kill-rate sweep and shows the
//! serving policy (budgeted timeouts + jittered-backoff retries + replica
//! failover + hedging) holding p99.9 near the fault-free tail, while
//! naive single-attempt serving strands requests on dead replicas for as
//! long as its deadline allows. A gray-failure storm then exercises the
//! failsafe machine's graceful degradation to partial results. Finally a
//! 3×3 policy grid — {round-robin, least-outstanding, power-of-two}
//! routing × {fixed, adaptive, capped-adaptive} hedging — runs under a
//! correlated two-rack blast-radius plan, showing load-aware routing and
//! quantile-tracking hedging beating the static policies on p99.9 at
//! lower retry amplification, and the capped-adaptive guard repairing
//! the digest-poisoning regression that raw adaptive hedging suffers
//! under round-robin.
//!
//! Every sweep fans out on the executor from [`RunCtx`]; all numbers are
//! byte-identical at every `--threads` count. With `--trace`, the
//! winning grid cell re-runs with per-attempt spans (dispatch, retry,
//! hedge, and failover instants) on the Chrome timeline.

use std::sync::Mutex;

use xxi_cloud::cluster::{cluster_sweep_on, ClusterConfig, Hedging, RetryPolicy, Routing};
use xxi_cloud::qos::Budget;
use xxi_core::des::fault::{Fault, FaultMix, FaultPlan, Topology};
use xxi_core::table::fnum;
use xxi_core::Report;
use xxi_core::{SimTime, Table};

use super::{Experiment, RunCtx};

pub struct E21Faults;

fn ms_to_sim(ms: f64) -> SimTime {
    SimTime::from_ps((ms * 1e9).round().max(0.0) as u64)
}

/// The correlated two-rack blast: under the striped topology (rack `r` =
/// replica column `r` of every shard), rack 0's switch degrades — a
/// scope-wide 6× slowdown striking every member at the same instant — at
/// 20% of the horizon, then recovers; rack 1's does the same at 57.5%.
/// During each blast one of every shard's three replicas serves at 6×
/// (past the attempt timeout) and the policies must route around it.
fn two_rack_blast(cfg: &ClusterConfig) -> (Topology, FaultPlan) {
    let topo = Topology::striped(cfg.components(), cfg.replicas);
    let horizon = cfg.horizon_ms();
    let mut plan = FaultPlan::new();
    for (rack, start) in [(0, 0.20), (1, 0.575)] {
        plan.at_scope(
            ms_to_sim(horizon * start),
            &topo,
            rack,
            Fault::Slow {
                factor: 6.0,
                for_time: ms_to_sim(horizon * 0.35),
            },
        );
    }
    (topo, plan)
}

impl Experiment for E21Faults {
    fn id(&self) -> &'static str {
        "e21"
    }

    fn title(&self) -> &'static str {
        "Fault-tolerant serving: retries, failover, graceful degradation"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.1/§2.4: strict latency targets on undependable, fault-ridden parts"
    }

    fn parallel(&self) -> bool {
        true
    }

    fn emits_trace(&self) -> bool {
        true
    }

    // 2 sweeps x 5 rates x 1500 requests + the gray storm's 1200 + the
    // 3x3 policy grid x 1500.
    fn work_units(&self) -> Option<(&'static str, f64)> {
        Some(("requests", 29_700.0))
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let exec = ctx.exec();
        let rates = [0.0, 0.01, 0.02, 0.05, 0.1];

        // The disciplined policy: 60 ms deadline sliced into 18 ms
        // attempts, 3 attempts with jittered exponential backoff and
        // failover, hedge at 10 ms.
        let policy = ClusterConfig {
            requests: 1_500,
            seed: ctx.seed_or(23),
            ..ClusterConfig::default()
        };
        // Naive serving: one attempt, no hedge, and a deadline as slack
        // as its operators' patience (2 s) — requests stranded on dead
        // replicas wait all of it out.
        let naive = ClusterConfig {
            retry: RetryPolicy::none(),
            hedging: Hedging::None,
            budget: Budget::new(2_000.0, 2_000.0),
            seed: ctx.seed_or(41),
            ..policy
        };

        r.section("Cluster: 20 shards x 3 replicas, 1500 requests, 60 ms deadline");
        r.text(format!(
            "policy: {} attempts, {} ms base backoff x{} (jitter {}), {} routing, {}\n\
             naive:  1 attempt, no hedge, 2000 ms deadline",
            policy.retry.max_attempts,
            policy.retry.backoff_base_ms,
            policy.retry.backoff_mult,
            policy.retry.jitter,
            policy.routing.describe(),
            policy.hedging.describe(),
        ));

        r.section("Kill-rate sweep: retry+failover policy vs naive serving");
        let pol = cluster_sweep_on(&policy, &rates, FaultMix::kills_only(), exec);
        let nai = cluster_sweep_on(&naive, &rates, FaultMix::kills_only(), exec);
        let mut t = Table::new(&[
            "kill rate",
            "p99 (ms)",
            "p99.9 (ms)",
            "full %",
            "retry amp",
            "naive p99 (ms)",
            "naive full %",
        ]);
        for (i, rate) in rates.iter().enumerate() {
            let p = &pol[i];
            let n = &nai[i];
            let full = 100.0 * p.full as f64 / p.requests as f64;
            let n_full = 100.0 * n.full as f64 / n.requests as f64;
            t.row(&[
                format!("{:.1}%", rate * 100.0),
                fnum(p.p99),
                fnum(p.p999),
                format!("{full:.2}"),
                fnum(p.retry_amplification),
                fnum(n.p99),
                format!("{n_full:.2}"),
            ]);
            ctx.observe("cluster.policy_p999_ms", p.p999);
            ctx.observe("cluster.naive_p999_ms", n.p999);
            ctx.count("cluster.requests", (p.requests + n.requests) as u64);
            ctx.count("cluster.retries", p.metrics.counter("cluster.retries"));
            ctx.count("cluster.hedges", p.metrics.counter("cluster.hedges"));
            ctx.count("fault.scheduled", p.metrics.counter("fault.scheduled"));
            ctx.count("fault.fired", p.metrics.counter("fault.fired"));
            ctx.count("fault.cancelled", p.metrics.counter("fault.cancelled"));
        }
        r.table(t);

        let base_p999 = pol[0].p999;
        let at1 = &pol[1];
        let tail_ratio = at1.p999 / base_p999;
        ctx.gauge("cluster.goodput_rps_at_1pct", at1.goodput_rps);
        r.finding("policy_p999_over_faultfree_at_1pct_kills", tail_ratio, "x");
        r.finding("naive_p999_at_1pct_kills", nai[1].p999, "ms");
        r.finding(
            "retry_amplification_at_1pct_kills",
            at1.retry_amplification,
            "x",
        );

        r.section("Fault accounting (policy sweep): scheduled == fired + cancelled");
        let mut t = Table::new(&["kill rate", "scheduled", "fired", "cancelled"]);
        for (i, rate) in rates.iter().enumerate() {
            let m = &pol[i].metrics;
            t.row(&[
                format!("{:.1}%", rate * 100.0),
                m.counter("fault.scheduled").to_string(),
                m.counter("fault.fired").to_string(),
                m.counter("fault.cancelled").to_string(),
            ]);
        }
        r.table(t);

        r.section("Gray-failure storm: pauses + slowdowns + a two-shard blackout");
        // One fault per replica (mixed pauses/slows/kills), plus a forced
        // kill of every replica of shards 0 and 1 a quarter into the run:
        // full coverage becomes impossible and the failsafe machine must
        // degrade for requests to keep landing as partial results.
        let gray = ClusterConfig {
            requests: 1_200,
            seed: ctx.seed_or(59),
            ..ClusterConfig::default()
        };
        let mut plan = FaultPlan::seeded(
            gray.seed,
            ms_to_sim(gray.horizon_ms()),
            gray.components(),
            1.0,
            FaultMix::gray(),
        );
        let quarter = ms_to_sim(gray.horizon_ms() / 4.0);
        for comp in 0..2 * gray.replicas {
            plan.at(quarter, comp, Fault::Kill);
        }
        let storm = gray.run(&plan);
        let mut t = Table::new(&["outcome", "requests", "fraction"]);
        for (name, n) in [
            ("full", storm.full),
            ("partial", storm.partial),
            ("failed", storm.failed),
        ] {
            t.row(&[
                name.to_string(),
                n.to_string(),
                format!("{:.3}", n as f64 / storm.requests as f64),
            ]);
        }
        r.table(t);
        r.text(format!(
            "failsafe transitions: {}   degraded-mode accepts: {}   final mode gauge: {}",
            storm.metrics.counter("failsafe.transitions"),
            storm.metrics.counter("cluster.degraded_accepts"),
            storm.metrics.gauge_value("failsafe.final_mode"),
        ));
        ctx.count("cluster.requests", storm.requests as u64);
        ctx.count(
            "cluster.degraded_accepts",
            storm.metrics.counter("cluster.degraded_accepts"),
        );
        ctx.count(
            "failsafe.transitions",
            storm.metrics.counter("failsafe.transitions"),
        );
        r.finding(
            "gray_storm_partial_fraction",
            storm.partial_frac,
            "of answered",
        );

        r.section("Policy grid: routing x hedging under a correlated two-rack blast");
        // Same cluster, same seed, same plan for all four cells; only the
        // policies differ. The blast (see `two_rack_blast`) slows rack 0,
        // then rack 1 — every shard keeps two healthy replicas
        // throughout, so the grid isolates how well each policy routes
        // around the slow one.
        let grid_base = ClusterConfig {
            requests: 1_500,
            seed: ctx.seed_or(67),
            ..ClusterConfig::default()
        };
        let (topo, blast) = two_rack_blast(&grid_base);
        r.text(format!(
            "topology: {} replicas striped over {} racks; rack 0 slowed 6x \
             from 20% of the run, rack 1 from 57.5%, 35% of the run each",
            grid_base.components(),
            topo.scopes(),
        ));
        let cells = [
            (Routing::RoundRobin, Hedging::fixed(10.0)),
            (Routing::RoundRobin, Hedging::adaptive(0.80)),
            (Routing::RoundRobin, Hedging::adaptive_capped(0.80)),
            (Routing::LeastOutstanding, Hedging::fixed(10.0)),
            (Routing::LeastOutstanding, Hedging::adaptive(0.80)),
            (Routing::LeastOutstanding, Hedging::adaptive_capped(0.80)),
            (Routing::PowerOfTwo, Hedging::fixed(10.0)),
            (Routing::PowerOfTwo, Hedging::adaptive(0.80)),
            (Routing::PowerOfTwo, Hedging::adaptive_capped(0.80)),
        ];
        let slots: Vec<Mutex<Option<_>>> = cells.iter().map(|_| Mutex::new(None)).collect();
        exec.for_tasks(cells.len(), &|i| {
            let (routing, hedging) = cells[i];
            let cfg = ClusterConfig {
                routing,
                hedging,
                ..grid_base
            };
            *slots[i].lock().unwrap() = Some(cfg.run(&blast));
        });
        let grid: Vec<_> = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("grid cell completed")) // xxi-allow: panic-path -- see the expect message
            .collect();

        let mut t = Table::new(&[
            "routing",
            "hedging",
            "p99 (ms)",
            "p99.9 (ms)",
            "full %",
            "retry amp",
            "hedges",
            "timeouts",
        ]);
        for ((routing, hedging), out) in cells.iter().zip(&grid) {
            t.row(&[
                routing.describe().to_string(),
                hedging.describe().to_string(),
                fnum(out.p99),
                fnum(out.p999),
                format!("{:.2}", 100.0 * out.full as f64 / out.requests as f64),
                fnum(out.retry_amplification),
                out.metrics.counter("cluster.hedges").to_string(),
                out.metrics.counter("cluster.timeouts").to_string(),
            ]);
            ctx.count("cluster.requests", out.requests as u64);
            ctx.count("cluster.hedges", out.metrics.counter("cluster.hedges"));
            // DES engine telemetry: cancelled timers absorb what used to
            // fire as settled-attempt no-ops; the stale-fire tripwire
            // must stay zero.
            ctx.count("des.events_fired", out.metrics.counter("des.events_fired"));
            ctx.count("des.cancelled", out.metrics.counter("des.cancelled"));
            ctx.count(
                "cluster.stale_fires",
                out.metrics.counter("cluster.stale_fires"),
            );
        }
        r.table(t);

        r.section("Fault accounting (policy grid): scheduled == fired + cancelled");
        let m = &grid[0].metrics;
        r.text(format!(
            "blast plan: scheduled {} == fired {} + cancelled {} (identical across cells)",
            m.counter("fault.scheduled"),
            m.counter("fault.fired"),
            m.counter("fault.cancelled"),
        ));
        ctx.count("fault.scheduled", m.counter("fault.scheduled"));
        ctx.count("fault.fired", m.counter("fault.fired"));
        ctx.count("fault.cancelled", m.counter("fault.cancelled"));

        let rr_fixed = &grid[0];
        let rr_adaptive = &grid[1];
        let rr_capped = &grid[2];
        let lor_adaptive = &grid[4];
        r.finding("grid_rr_fixed_p999", rr_fixed.p999, "ms");
        r.finding("grid_lor_adaptive_p999", lor_adaptive.p999, "ms");
        // The digest-poisoning regression and its guard: under round-robin
        // the blast drags the online p80 past the attempt timeout, so raw
        // adaptive hedges arrive too late to rescue attempts; capping the
        // delay at the static fallback repairs the tail.
        r.finding("grid_rr_adaptive_p999", rr_adaptive.p999, "ms");
        r.finding(
            "grid_capped_hedge_rescue",
            rr_adaptive.p999 / rr_capped.p999,
            "x (round-robin adaptive over capped-adaptive)",
        );
        r.finding(
            "grid_p999_win",
            rr_fixed.p999 / lor_adaptive.p999,
            "x (round-robin+fixed over least-outstanding+adaptive)",
        );
        r.finding(
            "grid_retry_amp_delta",
            rr_fixed.retry_amplification - lor_adaptive.retry_amplification,
            "attempts/query saved",
        );

        // With --trace, re-run the winning cell recording per-attempt
        // spans: dispatch/outcome on track 1+shard, retry/hedge instants
        // alongside, request spans and deadline instants on track 0.
        if ctx.trace_path.is_some() {
            let winner = ClusterConfig {
                routing: Routing::LeastOutstanding,
                hedging: Hedging::adaptive(0.80),
                ..grid_base
            };
            let (_, trace) = winner.run_traced(&blast, ctx.trace());
            ctx.emit_trace(r, &trace);
        }

        r.text(format!(
            "\nHeadline: at a 1% leaf-kill rate the budgeted-retry+failover policy\n\
             holds p99.9 at {}x the fault-free tail ({} ms vs {} ms) for {}x\n\
             request amplification, while naive serving strands requests on dead\n\
             replicas until its 2 s deadline ({} ms p99.9); under a gray-failure\n\
             storm the failsafe machine degrades to partial results instead of\n\
             failing; and when two racks blast at once, load-aware routing plus\n\
             quantile-tracking hedging cut p99.9 from {} ms to {} ms while\n\
             *reducing* retry amplification — the paper's strict-tail and\n\
             dependability agendas only compose when the serving layer spends\n\
             its latency budget this way.",
            fnum(tail_ratio),
            fnum(at1.p999),
            fnum(base_p999),
            fnum(at1.retry_amplification),
            fnum(nai[1].p999),
            fnum(rr_fixed.p999),
            fnum(lor_adaptive.p999),
        ));
    }
}
