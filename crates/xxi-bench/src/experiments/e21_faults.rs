//! E21 — fault-tolerant serving: timeouts, retries, and failover keep the
//! tail bounded while replicas die.
//!
//! §2.1 asks for architectures that "guarantee strict worst-case latency
//! requirements"; §2.4 asks the same stack to stay dependable on
//! undependable parts. This experiment runs the fault-injected cluster
//! model (`xxi_cloud::cluster`) over a leaf-kill-rate sweep and shows the
//! serving policy (budgeted timeouts + jittered-backoff retries + replica
//! failover + hedging) holding p99.9 near the fault-free tail, while
//! naive single-attempt serving strands requests on dead replicas for as
//! long as its deadline allows. A gray-failure storm then exercises the
//! failsafe machine's graceful degradation to partial results.
//!
//! Every sweep fans out on the executor from [`RunCtx`]; all numbers are
//! byte-identical at every `--threads` count.

use xxi_cloud::cluster::{cluster_sweep_on, ClusterSim, RetryPolicy};
use xxi_cloud::qos::Budget;
use xxi_core::des::fault::{Fault, FaultMix, FaultPlan};
use xxi_core::table::fnum;
use xxi_core::Report;
use xxi_core::{SimTime, Table};

use super::{Experiment, RunCtx};

pub struct E21Faults;

fn ms_to_sim(ms: f64) -> SimTime {
    SimTime::from_ps((ms * 1e9).round().max(0.0) as u64)
}

impl Experiment for E21Faults {
    fn id(&self) -> &'static str {
        "e21"
    }

    fn title(&self) -> &'static str {
        "Fault-tolerant serving: retries, failover, graceful degradation"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.1/§2.4: strict latency targets on undependable, fault-ridden parts"
    }

    fn parallel(&self) -> bool {
        true
    }

    // 2 sweeps x 5 rates x 1500 requests + the gray storm's 1200.
    fn work_units(&self) -> Option<(&'static str, f64)> {
        Some(("requests", 16_200.0))
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let exec = ctx.exec();
        let rates = [0.0, 0.01, 0.02, 0.05, 0.1];

        // The disciplined policy: 60 ms deadline sliced into 18 ms
        // attempts, 3 attempts with jittered exponential backoff and
        // failover, hedge at 10 ms.
        let policy = ClusterSim {
            requests: 1_500,
            seed: ctx.seed_or(23),
            ..ClusterSim::default()
        };
        // Naive serving: one attempt, no hedge, and a deadline as slack
        // as its operators' patience (2 s) — requests stranded on dead
        // replicas wait all of it out.
        let naive = ClusterSim {
            retry: RetryPolicy::none(),
            budget: Budget::new(2_000.0, 2_000.0),
            seed: ctx.seed_or(41),
            ..policy
        };

        r.section("Cluster: 20 shards x 3 replicas, 1500 requests, 60 ms deadline");
        r.text(format!(
            "policy: {} attempts, {} ms base backoff x{} (jitter {}), hedge at {} ms\n\
             naive:  1 attempt, no hedge, 2000 ms deadline",
            policy.retry.max_attempts,
            policy.retry.backoff_base_ms,
            policy.retry.backoff_mult,
            policy.retry.jitter,
            policy.retry.hedge_after_ms.unwrap_or(f64::NAN),
        ));

        r.section("Kill-rate sweep: retry+failover policy vs naive serving");
        let pol = cluster_sweep_on(&policy, &rates, FaultMix::kills_only(), exec);
        let nai = cluster_sweep_on(&naive, &rates, FaultMix::kills_only(), exec);
        let mut t = Table::new(&[
            "kill rate",
            "p99 (ms)",
            "p99.9 (ms)",
            "full %",
            "retry amp",
            "naive p99 (ms)",
            "naive full %",
        ]);
        for (i, rate) in rates.iter().enumerate() {
            let p = &pol[i];
            let n = &nai[i];
            let full = 100.0 * p.full as f64 / p.requests as f64;
            let n_full = 100.0 * n.full as f64 / n.requests as f64;
            t.row(&[
                format!("{:.1}%", rate * 100.0),
                fnum(p.p99),
                fnum(p.p999),
                format!("{full:.2}"),
                fnum(p.retry_amplification),
                fnum(n.p99),
                format!("{n_full:.2}"),
            ]);
            ctx.observe("cluster.policy_p999_ms", p.p999);
            ctx.observe("cluster.naive_p999_ms", n.p999);
            ctx.count("cluster.requests", (p.requests + n.requests) as u64);
            ctx.count("cluster.retries", p.metrics.counter("cluster.retries"));
            ctx.count("cluster.hedges", p.metrics.counter("cluster.hedges"));
            ctx.count("fault.scheduled", p.metrics.counter("fault.scheduled"));
            ctx.count("fault.fired", p.metrics.counter("fault.fired"));
            ctx.count("fault.cancelled", p.metrics.counter("fault.cancelled"));
        }
        r.table(t);

        let base_p999 = pol[0].p999;
        let at1 = &pol[1];
        let tail_ratio = at1.p999 / base_p999;
        ctx.gauge("cluster.goodput_rps_at_1pct", at1.goodput_rps);
        r.finding("policy_p999_over_faultfree_at_1pct_kills", tail_ratio, "x");
        r.finding("naive_p999_at_1pct_kills", nai[1].p999, "ms");
        r.finding(
            "retry_amplification_at_1pct_kills",
            at1.retry_amplification,
            "x",
        );

        r.section("Fault accounting (policy sweep): scheduled == fired + cancelled");
        let mut t = Table::new(&["kill rate", "scheduled", "fired", "cancelled"]);
        for (i, rate) in rates.iter().enumerate() {
            let m = &pol[i].metrics;
            t.row(&[
                format!("{:.1}%", rate * 100.0),
                m.counter("fault.scheduled").to_string(),
                m.counter("fault.fired").to_string(),
                m.counter("fault.cancelled").to_string(),
            ]);
        }
        r.table(t);

        r.section("Gray-failure storm: pauses + slowdowns + a two-shard blackout");
        // One fault per replica (mixed pauses/slows/kills), plus a forced
        // kill of every replica of shards 0 and 1 a quarter into the run:
        // full coverage becomes impossible and the failsafe machine must
        // degrade for requests to keep landing as partial results.
        let gray = ClusterSim {
            requests: 1_200,
            seed: ctx.seed_or(59),
            ..ClusterSim::default()
        };
        let mut plan = FaultPlan::seeded(
            gray.seed,
            ms_to_sim(gray.horizon_ms()),
            gray.components(),
            1.0,
            FaultMix::gray(),
        );
        let quarter = ms_to_sim(gray.horizon_ms() / 4.0);
        for comp in 0..2 * gray.replicas {
            plan.at(quarter, comp, Fault::Kill);
        }
        let storm = gray.run(&plan);
        let mut t = Table::new(&["outcome", "requests", "fraction"]);
        for (name, n) in [
            ("full", storm.full),
            ("partial", storm.partial),
            ("failed", storm.failed),
        ] {
            t.row(&[
                name.to_string(),
                n.to_string(),
                format!("{:.3}", n as f64 / storm.requests as f64),
            ]);
        }
        r.table(t);
        r.text(format!(
            "failsafe transitions: {}   degraded-mode accepts: {}   final mode gauge: {}",
            storm.metrics.counter("failsafe.transitions"),
            storm.metrics.counter("cluster.degraded_accepts"),
            storm.metrics.gauge_value("failsafe.final_mode"),
        ));
        ctx.count("cluster.requests", storm.requests as u64);
        ctx.count(
            "cluster.degraded_accepts",
            storm.metrics.counter("cluster.degraded_accepts"),
        );
        ctx.count(
            "failsafe.transitions",
            storm.metrics.counter("failsafe.transitions"),
        );
        r.finding(
            "gray_storm_partial_fraction",
            storm.partial_frac,
            "of answered",
        );

        r.text(format!(
            "\nHeadline: at a 1% leaf-kill rate the budgeted-retry+failover policy\n\
             holds p99.9 at {}x the fault-free tail ({} ms vs {} ms) for {}x\n\
             request amplification, while naive serving strands requests on dead\n\
             replicas until its 2 s deadline ({} ms p99.9); under a gray-failure\n\
             storm the failsafe machine degrades to partial results instead of\n\
             failing — the paper's strict-tail and dependability agendas only\n\
             compose when the serving layer spends its latency budget this way.",
            fnum(tail_ratio),
            fnum(at1.p999),
            fnum(base_p999),
            fnum(at1.retry_amplification),
            fnum(nai[1].p999),
        ));
    }
}
