//! E2 — §1: "architecture credited with ~80× improvement since 1985"
//! (Danowitz et al., CPU DB).

use xxi_core::table::{fnum, xfactor};
use xxi_core::{Report, Table};
use xxi_cpu::cpudb::{attribution, overall, CPU_DB};

use super::{Experiment, RunCtx};

pub struct E2CpuDb;

impl Experiment for E2CpuDb {
    fn id(&self) -> &'static str {
        "e2"
    }

    fn title(&self) -> &'static str {
        "CPU DB: attributing 1985-2012 gains to technology vs architecture"
    }

    fn paper_claim(&self) -> &'static str {
        "§1: CPU DB apportions growth ~equally; architecture ~80x since 1985"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        r.section("The stylized generational table");
        let mut t = Table::new(&[
            "year",
            "design",
            "feature (nm)",
            "freq (MHz)",
            "IPC",
            "perf (rel)",
        ]);
        let base = CPU_DB[0].freq_mhz * CPU_DB[0].ipc;
        for e in CPU_DB {
            t.row(&[
                e.year.to_string(),
                e.name.to_string(),
                fnum(e.feature_nm),
                fnum(e.freq_mhz),
                fnum(e.ipc),
                xfactor(e.freq_mhz * e.ipc / base),
            ]);
        }
        r.table(t);

        r.section("Attribution per era (technology = gate speed; architecture = rest)");
        let mut t = Table::new(&["span", "total", "technology", "architecture"]);
        for w in CPU_DB.windows(2) {
            let a = attribution(&w[0], &w[1]);
            t.row(&[
                format!("{}-{}", w[0].year, w[1].year),
                xfactor(a.total),
                xfactor(a.technology),
                xfactor(a.architecture),
            ]);
        }
        let all = overall();
        t.row(&[
            "1985-2012 (total)".to_string(),
            xfactor(all.total),
            xfactor(all.technology),
            xfactor(all.architecture),
        ]);
        r.table(t);

        r.finding("architecture_factor", all.architecture, "x");
        r.finding("total_factor", all.total, "x");
        r.text(format!(
            "\nHeadline: architecture contributes {} vs the paper's '~80x'; the split\n\
             is 'roughly equal' in log terms (sqrt(total) = {}).",
            xfactor(all.architecture),
            xfactor(all.total.sqrt())
        ));
    }
}
