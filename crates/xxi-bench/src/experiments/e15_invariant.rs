//! E15 — §2.4: "lower-overhead approaches that employ dynamic (hardware)
//! checking of invariants supplied by software" vs full redundancy.

use xxi_core::rng::Rng64;
use xxi_core::table::fnum;
use xxi_core::units::Energy;
use xxi_core::{Report, Table};
use xxi_rel::invariant::{dmr_coverage_and_overhead, CheckedRegion, CheckerConfig};

use super::{Experiment, RunCtx};

fn run_with_period(period: u64, region_seed: u64, rng_seed: u64) -> (f64, f64, f64) {
    let cfg = CheckerConfig {
        check_period: period,
        e_update: Energy::from_pj(100.0),
        e_check: Energy::from_pj(150.0),
    };
    let mut region = CheckedRegion::new(64, cfg, region_seed);
    let mut rng = Rng64::new(rng_seed);
    let rounds = 400;
    for round in 0..rounds {
        // Corrupt state the app will not overwrite, once per window.
        region.corrupt(50 + (round % 14), 1 << (round % 60));
        for i in 0..60 {
            region.update(i % 50, rng.next_u64());
        }
    }
    (
        region.detected() as f64 / region.injected() as f64,
        region.energy_overhead(),
        region.mean_detection_latency(),
    )
}

pub struct E15Invariant;

impl Experiment for E15Invariant {
    fn id(&self) -> &'static str {
        "e15"
    }

    fn title(&self) -> &'static str {
        "Invariant checking vs dual-modular redundancy"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.4: 'dynamic (hardware) checking of invariants supplied by software'"
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        r.section("Invariant checker vs DMR: coverage per joule");
        let mut t = Table::new(&[
            "design",
            "fault coverage",
            "energy overhead",
            "detect latency (updates)",
        ]);
        let (dmr_cov, dmr_oh) = dmr_coverage_and_overhead();
        t.row(&[
            "DMR (full redundancy)".into(),
            fnum(dmr_cov),
            format!("{:.0}%", dmr_oh * 100.0),
            "~1".into(),
        ]);
        for period in [5u64, 10, 20, 50, 100] {
            let (cov, oh, lat) = run_with_period(period, ctx.seed_or(15), ctx.seed_or(16));
            t.row(&[
                format!("checker, period {period}"),
                fnum(cov),
                format!("{:.1}%", oh * 100.0),
                fnum(lat),
            ]);
        }
        r.table(t);
        r.finding("dmr_energy_overhead", dmr_oh, "frac");

        r.text(
            "\nHeadline: software-supplied invariants checked every 10-50 updates reach\n\
             ~100% coverage of state corruption at 3-15% energy overhead vs DMR's\n\
             100% — a 7-30x cheaper detection channel, with bounded (not unit)\n\
             detection latency as the price; stretching the period to 100 starts\n\
             missing multi-corruption windows. Exactly the trade §2.4 recommends.",
        );
    }
}
