//! E10 — §2.1 sensors: "the energy required to communicate data often
//! outweighs that of computation."

use xxi_core::des::fault::{Fault, FaultPlan};
use xxi_core::table::fnum;
use xxi_core::units::{Energy, Power, Seconds};
use xxi_core::{Report, SimTime, Table};
use xxi_sensor::mcu::Mcu;
use xxi_sensor::node::{NodePolicy, SensorNode, SensorNodeConfig};
use xxi_sensor::power::{Battery, HarvestProfile, Harvester};
use xxi_sensor::radio::{Radio, RadioTech};

use crate::{quantile_row, quantile_table};

use super::{Experiment, RunCtx};

pub struct E10Sensor;

impl Experiment for E10Sensor {
    fn id(&self) -> &'static str {
        "e10"
    }

    fn title(&self) -> &'static str {
        "Sensor nodes: radio energy vs compute, on-sensor filtering"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.1: 'energy required to communicate often outweighs computation'"
    }

    fn emits_trace(&self) -> bool {
        true
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        r.section("The raw asymmetry (per bit vs per op)");
        let mcu = Mcu::cortex_m_class();
        let mut t = Table::new(&["cost item", "energy", "vs one MCU op"]);
        t.row(&[
            "MCU op".into(),
            format!("{} pJ", fnum(mcu.energy_per_op.pj())),
            "1x".into(),
        ]);
        for tech in [
            RadioTech::WifiClass,
            RadioTech::BleClass,
            RadioTech::ZigbeeClass,
            RadioTech::LoraClass,
        ] {
            let radio = Radio::new(tech);
            t.row(&[
                format!("{tech:?} bit"),
                format!("{} nJ", fnum(radio.tx_per_bit.nj())),
                format!(
                    "{}x",
                    fnum(radio.tx_per_bit.value() / mcu.energy_per_op.value())
                ),
            ]);
        }
        r.table(t);

        r.section("Node lifetime: policy x radio (1 J budget; scale linearly for real cells)");
        let horizon = Seconds::from_hours(100_000.0);
        let mut t = Table::new(&[
            "radio",
            "send-raw (h)",
            "compress (h)",
            "filter (h)",
            "filter gain",
            "filter recall",
        ]);
        for tech in [
            RadioTech::BleClass,
            RadioTech::ZigbeeClass,
            RadioTech::LoraClass,
            RadioTech::WifiClass,
        ] {
            let node = SensorNode::new(
                SensorNodeConfig::default(),
                Mcu::cortex_m_class(),
                Radio::new(tech),
            );
            let b = || Battery::new(Energy(1.0));
            let raw = node.run(NodePolicy::SendRaw, b(), horizon, ctx.seed_or(1));
            let comp = node.run(NodePolicy::CompressThenSend, b(), horizon, ctx.seed_or(1));
            let filt = node.run(NodePolicy::FilterThenSend, b(), horizon, ctx.seed_or(1));
            t.row(&[
                format!("{tech:?}"),
                fnum(raw.lifetime.hours()),
                fnum(comp.lifetime.hours()),
                fnum(filt.lifetime.hours()),
                format!("{}x", fnum(filt.lifetime.value() / raw.lifetime.value())),
                fnum(filt.recall),
            ]);
        }
        r.table(t);

        r.section("Energy breakdown under send-raw (BLE)");
        let node = SensorNode::new(
            SensorNodeConfig::default(),
            Mcu::cortex_m_class(),
            Radio::new(RadioTech::BleClass),
        );
        let raw = node.run(
            NodePolicy::SendRaw,
            Battery::new(Energy(1.0)),
            horizon,
            ctx.seed_or(2),
        );
        r.finding(
            "radio_vs_compute",
            raw.radio_energy.value() / raw.compute_energy.value(),
            "x",
        );
        r.text(format!(
            "radio: {:.3} J   compute: {:.4} J   (radio is {:.0}x compute)",
            raw.radio_energy.value(),
            raw.compute_energy.value(),
            raw.radio_energy.value() / raw.compute_energy.value()
        ));

        r.section("Radio brownouts (BLE, filter policy): store-and-forward vs a dead radio");
        // The same node with its radio (component 0) exposed to a
        // `FaultPlan`: during a brownout the payload is buffered, a probe
        // burst per epoch checks for recovery, and the backlog (bits and
        // pending anomaly reports) flushes when the radio returns. A killed
        // radio strands the backlog instead. The empty plan is bit-identical
        // to the fault-free run.
        let fp_seed = ctx.seed_or(4);
        let b = || Battery::new(Energy(1.0));
        let free = node.run_faulted(
            NodePolicy::FilterThenSend,
            b(),
            horizon,
            fp_seed,
            &FaultPlan::new(),
        );
        let life = free.outcome.lifetime.value();
        let mut brown = FaultPlan::new();
        for frac in [0.2, 0.4] {
            brown.at(
                SimTime::from_seconds(Seconds(life * frac)),
                0,
                Fault::Pause {
                    for_time: SimTime::from_seconds(Seconds(life * 0.05)),
                },
            );
        }
        let mut dead = FaultPlan::new();
        dead.at(SimTime::from_seconds(Seconds(life * 0.5)), 0, Fault::Kill);
        let browned = node.run_faulted(NodePolicy::FilterThenSend, b(), horizon, fp_seed, &brown);
        let killed = node.run_faulted(NodePolicy::FilterThenSend, b(), horizon, fp_seed, &dead);
        let mut t = Table::new(&[
            "scenario",
            "lifetime (h)",
            "bits sent",
            "recall",
            "deferred epochs",
            "probe (mJ)",
        ]);
        let mut accounting = Vec::new();
        for (name, f) in [
            ("fault-free", &free),
            ("2 brownouts (5% each)", &browned),
            ("radio dies at 50%", &killed),
        ] {
            t.row(&[
                name.to_string(),
                fnum(f.outcome.lifetime.hours()),
                f.outcome.bits_sent.to_string(),
                fnum(f.outcome.recall),
                f.deferred_epochs.to_string(),
                fnum(f.probe_energy.value() * 1e3),
            ]);
            accounting.push(format!(
                "{name}: scheduled {} == fired {} + cancelled {}",
                f.metrics.counter("fault.scheduled"),
                f.metrics.counter("fault.fired"),
                f.metrics.counter("fault.cancelled"),
            ));
        }
        r.table(t);
        r.text(format!("fault accounting: {}", accounting.join("; ")));
        r.finding("brownout_recall", browned.outcome.recall, "frac");
        r.finding(
            "brownout_deferred_epochs",
            browned.deferred_epochs as f64,
            "epochs",
        );

        r.section("Observed node (BLE, filter policy, solar harvesting): energy ledger");
        // The same node with full telemetry: every epoch charged to a ledger
        // (harvest income vs compute/radio/sleep spend) and a per-epoch energy
        // histogram; --trace adds epoch spans + tx instants on the sim clock.
        let cfg = SensorNodeConfig::default();
        let epoch_dt = Seconds(cfg.epoch_samples as f64 / cfg.sample_hz);
        let node = SensorNode::new(cfg, Mcu::cortex_m_class(), Radio::new(RadioTech::BleClass));
        // A small indoor-solar cell: 150 uW peak on a 24 h cycle.
        let day_epochs = (24.0 * 3600.0 / epoch_dt.value()) as u64;
        let harvester = Harvester::new(
            HarvestProfile::Solar,
            Power::from_uw(150.0),
            day_epochs.max(1),
            ctx.seed_or(3),
        );
        let (out, obs) = node.run_observed(
            NodePolicy::FilterThenSend,
            Battery::new(Energy(1.0)),
            Some(harvester),
            Seconds::from_hours(500.0),
            ctx.seed_or(3),
            ctx.trace(),
        );
        r.text(format!(
            "lifetime {} h (500 h horizon), recall {}",
            fnum(out.lifetime.hours()),
            fnum(out.recall)
        ));
        r.table(obs.ledger.table());
        let mut t = quantile_table("epoch energy (J)");
        t.row(&quantile_row("per-epoch draw", &obs.epoch_energy));
        r.table(t);

        ctx.emit_trace(r, &obs.trace);

        r.text(
            "\nHeadline: on-sensor filtering extends lifetime 3-40x depending on the\n\
             radio, with >90% event recall — computing where the data is generated\n\
             wins exactly as §2.1 asserts; the ledger shows the sleep floor and the\n\
             radio, not the MCU's ops, are what the harvester has to pay for. Under\n\
             radio brownouts, store-and-forward keeps recall within 0.2% of the\n\
             fault-free run, but per-epoch recovery probes pay the radio's startup\n\
             cost each time — the same communicate-vs-compute asymmetry taxes even\n\
             *checking* the link.",
        );
    }
}
