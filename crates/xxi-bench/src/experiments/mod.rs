//! The experiment registry: every experiment from DESIGN.md's index as an
//! [`Experiment`] implementation producing a structured
//! [`Report`], plus the [`RunCtx`] that carries the unified run
//! configuration (seed, threads/executor, tracing) to all of them.
//!
//! The `xxi` driver binary (`xxi list` / `xxi run`) and the per-experiment
//! shim binaries (`exp_e1_scaling` …) are both thin wrappers over this
//! module; the golden-output tests run it in-process.

use std::path::PathBuf;
use std::sync::Mutex;

use xxi_core::metrics::Metrics;
use xxi_core::obs::Trace;
use xxi_core::par::Parallelism;
use xxi_core::Report;
use xxi_stack::pool::Pool;

mod des_micro;
mod e10_sensor;
mod e11_ntv;
mod e12_nvm;
mod e13_noc;
mod e14_approx;
mod e15_invariant;
mod e16_offload;
mod e17_availability;
mod e18_scaling;
mod e19_security;
mod e1_scaling;
mod e20_tm;
mod e21_faults;
mod e2_cpudb;
mod e3_reliability;
mod e4_comm_energy;
mod e5_nre;
mod e6_multicore;
mod e7_specialization;
mod e8_pyramid;
mod e9_tail;

/// Run configuration shared by every experiment: deterministic seeding,
/// the executor seam, tracing, and the run's metrics sink, parsed once by
/// the unified CLI.
pub struct RunCtx {
    /// `--seed` override; `None` means each call site's canonical seed
    /// (the values all EXPERIMENTS.md numbers were produced with).
    pub seed: Option<u64>,
    /// `--threads` worker count (1 = serial). Experiment output is
    /// byte-identical at every thread count; only the wall clock changes.
    pub threads: usize,
    /// `--trace` output path, for experiments that declare
    /// [`Experiment::emits_trace`].
    pub trace_path: Option<PathBuf>,
    /// The work-stealing pool behind [`RunCtx::exec`] when `threads > 1` —
    /// kept concrete so its scheduler stats are reachable.
    pool: Option<Pool>,
    /// Metrics recorded by the experiment's `fill` (interior-mutable
    /// because `fill` takes `&RunCtx`; contention is nil — experiments
    /// record from the driving thread, between parallel regions).
    metrics: Mutex<Metrics>,
}

impl RunCtx {
    /// Build a context; spins up the work-stealing pool when `threads > 1`.
    pub fn new(seed: Option<u64>, threads: usize, trace_path: Option<PathBuf>) -> RunCtx {
        RunCtx {
            seed,
            threads,
            trace_path,
            pool: (threads > 1).then(|| Pool::new(threads)),
            metrics: Mutex::new(Metrics::new()),
        }
    }

    /// The executor for Monte Carlo fan-out: the pool when `--threads N>1`
    /// was given, [`xxi_core::par::Serial`] otherwise.
    pub fn exec(&self) -> &dyn Parallelism {
        match &self.pool {
            Some(p) => p,
            None => &xxi_core::par::Serial,
        }
    }

    /// The work-stealing pool, when one exists ([`Pool::stats`] is the
    /// scheduler-stats source for reports and `xxi bench`).
    pub fn pool(&self) -> Option<&Pool> {
        self.pool.as_ref()
    }

    /// Add `n` to run counter `name` (creating it at zero).
    pub fn count(&self, name: &'static str, n: u64) {
        self.metrics.lock().unwrap().count(name, n);
    }

    /// Increment run counter `name` by one.
    pub fn incr(&self, name: &'static str) {
        self.count(name, 1);
    }

    /// Set run gauge `name` (keep it finite; see
    /// [`xxi_core::report::RunMetrics`]).
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.metrics.lock().unwrap().gauge(name, value);
    }

    /// Record sample `x` into run histogram `name`.
    pub fn observe(&self, name: &'static str, x: f64) {
        self.metrics.lock().unwrap().observe(name, x);
    }

    /// Drain the metrics recorded since the last take (used by
    /// [`Experiment::run`] to build the report's Runtime section, and by
    /// `xxi bench` to reset between iterations).
    pub fn take_metrics(&self) -> Metrics {
        std::mem::take(&mut *self.metrics.lock().unwrap())
    }

    /// The seed for a call site whose canonical seed is `default`.
    ///
    /// Without `--seed`, returns `default` unchanged so output stays
    /// byte-identical to the historical binaries. With `--seed s`, derives
    /// a per-call-site substream by mixing `s` with `default` (splitmix64
    /// finalizer), so one override reseeds every stream without
    /// correlating them.
    pub fn seed_or(&self, default: u64) -> u64 {
        match self.seed {
            None => default,
            Some(s) => {
                let mut z = s
                    .wrapping_add(default.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        }
    }

    /// A trace recorder: enabled iff `--trace` was given.
    pub fn trace(&self) -> Trace {
        if self.trace_path.is_some() {
            Trace::enabled()
        } else {
            Trace::disabled()
        }
    }

    /// Save `trace` to the `--trace` path (no-op when tracing is off) and
    /// append the confirmation line to the report, exactly where and how
    /// the historical binaries printed it.
    pub fn emit_trace(&self, r: &mut Report, trace: &Trace) {
        let Some(path) = &self.trace_path else {
            return;
        };
        if let Err(e) = trace.save_chrome_json(path) {
            eprintln!("failed to write trace {}: {e}", path.display());
            std::process::exit(1);
        }
        let mut line = format!(
            "\ntrace: {} events -> {} (chrome://tracing)",
            trace.len(),
            path.display()
        );
        if trace.dropped() > 0 {
            line.push_str(&format!(
                "  [{} events dropped at the cap]",
                trace.dropped()
            ));
        }
        r.text(line);
    }
}

/// One registered experiment. `run` has a provided implementation that
/// stamps the report header (id, claim, seed, params) and delegates to
/// [`Experiment::fill`] for the content.
pub trait Experiment: Sync {
    /// Stable lowercase id (`"e9"`), the name used by `xxi run`.
    fn id(&self) -> &'static str;

    /// One-line human title, shown by `xxi list`.
    fn title(&self) -> &'static str;

    /// The paper claim this experiment reproduces (the banner anchor).
    fn paper_claim(&self) -> &'static str;

    /// True when the experiment can emit a Chrome trace (`--trace`).
    /// The driver rejects `--trace` for experiments that return false.
    fn emits_trace(&self) -> bool {
        false
    }

    /// True when the experiment has a parallel Monte Carlo hot path that
    /// `--threads` actually speeds up (all experiments accept the flag).
    fn parallel(&self) -> bool {
        false
    }

    /// Throughput declaration for `xxi bench`: the unit name and how many
    /// units one `fill` completes (e.g. Monte Carlo trials), or `None`
    /// when wall-clock is the only meaningful number.
    fn work_units(&self) -> Option<(&'static str, f64)> {
        None
    }

    /// Append the experiment's sections, tables, text, and findings.
    fn fill(&self, ctx: &RunCtx, r: &mut Report);

    /// Run the experiment under `ctx`, producing a structured report. The
    /// metrics `fill` recorded through `ctx`, plus the pool's scheduler
    /// stats when one is running, become the report's Runtime section.
    fn run(&self, ctx: &RunCtx) -> Report {
        let mut r = Report::new(self.id(), self.paper_claim());
        r.seed = ctx.seed.unwrap_or(0);
        r.param("threads", ctx.threads.to_string());
        if let Some(p) = &ctx.trace_path {
            r.param("trace", p.display().to_string());
        }
        self.fill(ctx, &mut r);
        let mut m = ctx.take_metrics();
        if let Some(pool) = ctx.pool() {
            // Cumulative over the context's lifetime; windowed views are
            // `xxi bench`'s job (PoolStats::since).
            pool.stats().record(&mut m);
        }
        r.set_runtime(&m);
        r
    }
}

/// All experiments, in id order.
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 21] = [
        &e1_scaling::E1Scaling,
        &e2_cpudb::E2CpuDb,
        &e3_reliability::E3Reliability,
        &e4_comm_energy::E4CommEnergy,
        &e5_nre::E5Nre,
        &e6_multicore::E6Multicore,
        &e7_specialization::E7Specialization,
        &e8_pyramid::E8Pyramid,
        &e9_tail::E9Tail,
        &e10_sensor::E10Sensor,
        &e11_ntv::E11Ntv,
        &e12_nvm::E12Nvm,
        &e13_noc::E13Noc,
        &e14_approx::E14Approx,
        &e15_invariant::E15Invariant,
        &e16_offload::E16Offload,
        &e17_availability::E17Availability,
        &e18_scaling::E18Scaling,
        &e19_security::E19Security,
        &e20_tm::E20Tm,
        &e21_faults::E21Faults,
    ];
    &REGISTRY
}

/// Look up an experiment by id, case-insensitively (`e9` or `E9`).
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    registry()
        .iter()
        .copied()
        .find(|e| e.id().eq_ignore_ascii_case(id))
}

/// The `des-*` scheduler microbenches, in fixed order. A separate
/// registry on purpose: `xxi run`/`xxi list` and the golden suite stay
/// pinned to the 21 paper experiments; only the bench path
/// ([`crate::cli::select_bench`]) reaches these.
pub fn micro_registry() -> &'static [&'static dyn Experiment] {
    static MICRO: [&dyn Experiment; 4] = [
        &des_micro::DesHold,
        &des_micro::DesChurn,
        &des_micro::DesCancel,
        &des_micro::DesDrain,
    ];
    &MICRO
}

/// Look up a microbench by id, case-insensitively (`des-hold`).
pub fn find_micro(id: &str) -> Option<&'static dyn Experiment> {
    micro_registry()
        .iter()
        .copied()
        .find(|e| e.id().eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_ordered_and_resolvable() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        assert_eq!(ids.len(), 21);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*id, format!("e{}", i + 1));
            assert!(find(id).is_some());
            assert!(find(&id.to_uppercase()).is_some());
        }
        assert!(find("e22").is_none());
    }

    #[test]
    fn trace_capability_matches_the_instrumented_set() {
        let tracing: Vec<&str> = registry()
            .iter()
            .filter(|e| e.emits_trace())
            .map(|e| e.id())
            .collect();
        assert_eq!(tracing, ["e10", "e17", "e18", "e21"]);
        let par: Vec<&str> = registry()
            .iter()
            .filter(|e| e.parallel())
            .map(|e| e.id())
            .collect();
        assert_eq!(par, ["e9", "e17", "e21"]);
    }

    #[test]
    fn run_attaches_recorded_metrics_and_pool_stats() {
        struct Probe;
        impl Experiment for Probe {
            fn id(&self) -> &'static str {
                "e0"
            }
            fn title(&self) -> &'static str {
                "probe"
            }
            fn paper_claim(&self) -> &'static str {
                "claim"
            }
            fn fill(&self, ctx: &RunCtx, _r: &mut Report) {
                ctx.incr("probe.calls");
                ctx.count("probe.items", 7);
                ctx.observe("probe.x", 2.0);
                ctx.exec().for_tasks(64, &|_| {});
            }
        }
        let serial = Probe.run(&RunCtx::new(None, 1, None));
        let rt = serial.runtime.expect("recorded metrics attach");
        assert_eq!(rt.counter("probe.calls"), 1);
        assert_eq!(rt.counter("probe.items"), 7);
        assert_eq!(
            rt.counter("pool.tasks_executed"),
            0,
            "no pool stats at --threads 1"
        );

        let parallel = Probe.run(&RunCtx::new(None, 2, None));
        let rt = parallel.runtime.expect("recorded metrics attach");
        assert!(
            rt.counter("pool.tasks_executed") > 0,
            "pool stats folded in: {rt:?}"
        );
        assert!(rt
            .gauges
            .iter()
            .any(|(k, v)| k == "pool.threads" && *v == 2.0));
    }

    #[test]
    fn take_metrics_drains_the_sink() {
        let ctx = RunCtx::new(None, 1, None);
        ctx.incr("a");
        assert_eq!(ctx.take_metrics().counter("a"), 1);
        assert!(ctx.take_metrics().is_empty(), "second take sees a reset");
    }

    #[test]
    fn seed_or_is_identity_without_override_and_mixes_with_one() {
        let base = RunCtx::new(None, 1, None);
        assert_eq!(base.seed_or(42), 42);
        let over = RunCtx::new(Some(1), 1, None);
        assert_ne!(over.seed_or(42), 42);
        assert_ne!(
            over.seed_or(42),
            over.seed_or(43),
            "call sites decorrelated"
        );
        assert_eq!(over.seed_or(42), over.seed_or(42), "deterministic");
    }
}
