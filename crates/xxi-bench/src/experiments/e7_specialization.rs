//! E7 — §2.2: "Specialization can give 100× higher energy efficiency."

use xxi_accel::cgra::{Cgra, DataflowGraph};
use xxi_accel::ladder::{efficiency_factor, ladder_energy_per_op, ImplKind, Kernel};
use xxi_core::table::{fnum, xfactor};
use xxi_core::{Report, Table};
use xxi_tech::NodeDb;

use super::{Experiment, RunCtx};

pub struct E7Specialization;

impl Experiment for E7Specialization {
    fn id(&self) -> &'static str {
        "e7"
    }

    fn title(&self) -> &'static str {
        "The specialization ladder: scalar to SIMD to fixed-function to CGRA"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.2: 'Specialization can give 100x higher energy efficiency'"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        let db = NodeDb::standard();
        let node = db.by_name("45nm").unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant

        r.section("Energy per useful op (pJ) on the specialization ladder, 45nm");
        let kernels = [
            Kernel::Fir,
            Kernel::AesRound,
            Kernel::Fft,
            Kernel::Stencil,
            Kernel::Irregular,
        ];
        let impls: [(&str, ImplKind); 5] = [
            ("OoO scalar", ImplKind::ScalarOoO),
            ("in-order scalar", ImplKind::ScalarInOrder),
            ("SIMD x16", ImplKind::Simd { lanes: 16 }),
            ("manycore w32", ImplKind::Manycore { warp: 32 }),
            ("fixed-function", ImplKind::FixedFunction),
        ];
        let mut t = Table::new(&[
            "kernel", impls[0].0, impls[1].0, impls[2].0, impls[3].0, impls[4].0,
        ]);
        for k in kernels {
            let cells: Vec<String> = impls
                .iter()
                .map(|(_, i)| fnum(ladder_energy_per_op(node, *i, k).pj()))
                .collect();
            let mut row = vec![format!("{k:?}")];
            row.extend(cells);
            t.row(&row);
        }
        r.table(t);

        r.section("Efficiency factors vs the OoO baseline");
        let mut t = Table::new(&[
            "kernel",
            "in-order",
            "SIMD x16",
            "manycore w32",
            "fixed-function",
        ]);
        for k in kernels {
            t.row(&[
                format!("{k:?}"),
                xfactor(efficiency_factor(node, ImplKind::ScalarInOrder, k)),
                xfactor(efficiency_factor(node, ImplKind::Simd { lanes: 16 }, k)),
                xfactor(efficiency_factor(node, ImplKind::Manycore { warp: 32 }, k)),
                xfactor(efficiency_factor(node, ImplKind::FixedFunction, k)),
            ]);
        }
        r.table(t);

        r.section("The middle ground: a CGRA (8x8 FUs) on a 32-input reduction");
        let cgra = Cgra::new(8, 8, node.clone());
        let g = DataflowGraph::reduction_tree(32);
        let m = cgra.map(&g).unwrap(); // xxi-allow: panic-path -- the benchmark graph fits the fabric
        let cpu = cgra.cpu_energy_per_execution(&g);
        let mut t = Table::new(&[
            "iterations of one config",
            "CGRA energy/exec (pJ)",
            "vs CPU",
        ]);
        for iters in [1u64, 10, 1_000, 100_000] {
            let e = cgra.energy_per_execution(&g, &m, iters);
            t.row(&[
                iters.to_string(),
                fnum(e.pj()),
                xfactor(cpu.value() / e.value()),
            ]);
        }
        r.table(t);
        r.text(format!("routing hops in the mapping: {}", m.total_hops));

        r.finding(
            "fixed_function_aes_factor",
            efficiency_factor(node, ImplKind::FixedFunction, Kernel::AesRound),
            "x",
        );
        r.text(
            "\nHeadline: fixed-function reaches 26-105x on regular kernels (AES-like at\n\
             the top, as published); SIMD/manycore land at 6-11x; a CGRA sits between\n\
             once its configuration cost is amortized; irregular code defeats them all.",
        );
    }
}
