//! The `des-*` scheduler microbenches: synthetic event patterns that
//! isolate the DES core (timer wheel + event arena + cancellation) from
//! any model physics. They live in a separate micro registry reachable
//! only from `xxi bench` — `xxi run`/`xxi list` stay pinned to the 21
//! paper experiments — and their committed baselines in
//! `tests/bench/baseline.json` put the scheduler itself under the
//! `xxi compare` CI gate.
//!
//! The four patterns bracket the engine's regimes:
//!
//! * `des-hold` — a fixed population of self-rescheduling timers, the
//!   classic steady-state "timer hold" loop: level-0 wheel hits and
//!   arena recycling, no cancellation.
//! * `des-churn` — burst-schedule a horizon-spanning batch, drain it,
//!   repeat: insert/cascade/far-heap migration under churn.
//! * `des-cancel` — the cluster-shaped pattern: every request arms a
//!   hedge, a timeout, and a deadline guard, and settling the request
//!   reaps all three — three of every four scheduled events cancel.
//! * `des-drain` — one huge pre-scheduled backlog (with same-tick
//!   bursts) drained to empty: pop/batch-sort throughput.
//!
//! All four run the identical seeded schedule every time; only the wall
//! clock is interesting, which is why their reports carry event counts
//! and the bench harness turns them into events/s.

use xxi_core::{Report, Rng64, Sim, SimTime};

use super::{Experiment, RunCtx};

/// Per-event delay scale (ps). Big enough to spread events across wheel
/// levels, small enough that a run never leaves the first far block.
const US: u64 = 1_000_000;

fn finish(sim: Sim<Rng64>, ctx: &RunCtx, r: &mut Report) {
    let stats = sim.stats();
    ctx.count("des.events_fired", stats.events_fired);
    ctx.count("des.cancelled", stats.cancelled);
    ctx.count("des.arena_high_water", stats.arena.high_water);
    ctx.count("des.arena_recycled", stats.arena.recycled);
    ctx.count("des.inline_events", stats.arena.inline_events);
    ctx.count("des.boxed_events", stats.arena.boxed_events);
    r.finding("events_fired", stats.events_fired as f64, "events");
    r.finding("timers_cancelled", stats.cancelled as f64, "events");
    r.finding("arena_high_water", stats.arena.high_water as f64, "slots");
    assert_eq!(
        stats.arena.boxed_events, 0,
        "microbench closures must stay on the inline arena path"
    );
}

/// `des-hold`: `POPULATION` self-rescheduling timers, run until
/// `EVENTS` have fired.
pub struct DesHold;

impl DesHold {
    const POPULATION: u64 = 16_384;
    const EVENTS: u64 = 2_000_000;
}

impl Experiment for DesHold {
    fn id(&self) -> &'static str {
        "des-hold"
    }

    fn title(&self) -> &'static str {
        "DES micro: steady-state timer hold (self-rescheduling population)"
    }

    fn paper_claim(&self) -> &'static str {
        "scheduler microbench: wheel level-0 + arena recycling steady state"
    }

    fn work_units(&self) -> Option<(&'static str, f64)> {
        Some(("events", Self::EVENTS as f64))
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        fn hold(sim: &mut Sim<Rng64>) {
            let delay = 1 + sim.state.below(64 * US);
            sim.schedule_in(SimTime::from_ps(delay), hold);
        }
        let mut sim = Sim::new(Rng64::new(ctx.seed_or(0xD0_11)));
        for _ in 0..Self::POPULATION {
            let delay = 1 + sim.state.below(64 * US);
            sim.schedule_in(SimTime::from_ps(delay), hold);
        }
        let fired = sim.run_events(Self::EVENTS);
        r.section("Steady-state hold");
        r.text(format!(
            "{} timers held, {fired} events fired, clock at {} ps",
            Self::POPULATION,
            sim.now().ps()
        ));
        finish(sim, ctx, r);
    }
}

/// `des-churn`: burst-schedule `BATCH` timers across a horizon that
/// spans every wheel level and the far heap, drain, repeat `ROUNDS`x.
pub struct DesChurn;

impl DesChurn {
    const BATCH: u64 = 250_000;
    const ROUNDS: u64 = 4;
}

impl Experiment for DesChurn {
    fn id(&self) -> &'static str {
        "des-churn"
    }

    fn title(&self) -> &'static str {
        "DES micro: burst churn across wheel levels and the far heap"
    }

    fn paper_claim(&self) -> &'static str {
        "scheduler microbench: insert/cascade/far-migration under churn"
    }

    fn work_units(&self) -> Option<(&'static str, f64)> {
        Some(("events", (Self::BATCH * Self::ROUNDS) as f64))
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let mut sim = Sim::new(Rng64::new(ctx.seed_or(0xC4_42)));
        for _ in 0..Self::ROUNDS {
            for _ in 0..Self::BATCH {
                // Log-uniform delays: most land in the low levels, a
                // long tail reaches past the 2^48 ps wheel span into the
                // far heap (shift up to 2^53 ps).
                let shift = sim.state.below(34);
                let delay = (1 + sim.state.below(1 << 20)) << shift;
                sim.schedule_in(SimTime::from_ps(delay), |_| {});
            }
            sim.run();
        }
        r.section("Burst churn");
        r.text(format!(
            "{} rounds x {} timers, clock at {} ps",
            Self::ROUNDS,
            Self::BATCH,
            sim.now().ps()
        ));
        finish(sim, ctx, r);
    }
}

/// `des-cancel`: the cluster-shaped cancel-heavy pattern, mirroring the
/// `xxi-cloud` request lifecycle: each request arms a hedge, a timeout,
/// and a deadline guard, and settling the request reaps all three — so
/// three of every four scheduled events are cancelled instead of fired.
pub struct DesCancel;

impl DesCancel {
    const REQUESTS: u64 = 589_824;
}

impl Experiment for DesCancel {
    fn id(&self) -> &'static str {
        "des-cancel"
    }

    fn title(&self) -> &'static str {
        "DES micro: cancel-heavy cluster shape (hedge/timeout/deadline reaped)"
    }

    fn paper_claim(&self) -> &'static str {
        "scheduler microbench: generation-checked cancellation off the hot path"
    }

    fn work_units(&self) -> Option<(&'static str, f64)> {
        // Scheduled events: completion + hedge + timeout + deadline.
        Some(("events", (4 * Self::REQUESTS) as f64))
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let mut sim = Sim::new(Rng64::new(ctx.seed_or(0xCA_9C)));
        // A rolling open window, like a cluster under steady load: each
        // arrival arms its guard timers exactly as `xxi-cloud::cluster`
        // does (hedge at +6 us, attempt timeout at +18 us, deadline at
        // +40 us), the work settles at +1..4 us and reaps all three.
        fn arrive(sim: &mut Sim<Rng64>, remaining: u64) {
            let work = 1 + sim.state.below(4 * US);
            let hedge = sim.schedule_in_handle(SimTime::from_ps(6 * US), |_| {});
            let timeout = sim.schedule_in_handle(SimTime::from_ps(18 * US), |_| {});
            let deadline = sim.schedule_in_handle(SimTime::from_ps(40 * US), |_| {});
            sim.schedule_in(SimTime::from_ps(work), move |sim| {
                let reaped = sim.cancel(hedge) && sim.cancel(timeout) && sim.cancel(deadline);
                assert!(reaped, "guard timers were still pending");
                if remaining > 0 {
                    arrive(sim, remaining - 1);
                }
            });
        }
        const OPEN: u64 = 4_096;
        let per_chain = DesCancel::REQUESTS / OPEN;
        for _ in 0..OPEN {
            arrive(&mut sim, per_chain - 1);
        }
        sim.run();
        r.section("Cancel-heavy serving shape");
        r.text(format!(
            "{} requests ({} open), 3 guards reaped each, clock at {} ps",
            OPEN * per_chain,
            OPEN,
            sim.now().ps()
        ));
        assert_eq!(sim.cancelled(), 3 * OPEN * per_chain, "every guard reaped");
        finish(sim, ctx, r);
    }
}

/// `des-drain`: pre-schedule one huge backlog (with same-tick bursts),
/// then drain it to empty.
pub struct DesDrain;

impl DesDrain {
    const EVENTS: u64 = 1_000_000;
}

impl Experiment for DesDrain {
    fn id(&self) -> &'static str {
        "des-drain"
    }

    fn title(&self) -> &'static str {
        "DES micro: drain a pre-scheduled backlog with same-tick bursts"
    }

    fn paper_claim(&self) -> &'static str {
        "scheduler microbench: pop/batch-sort throughput at high occupancy"
    }

    fn work_units(&self) -> Option<(&'static str, f64)> {
        Some(("events", Self::EVENTS as f64))
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        let mut sim = Sim::new(Rng64::new(ctx.seed_or(0xD7_A1)));
        for _ in 0..Self::EVENTS {
            // Coarse ticks force same-tick FIFO bursts (~4 events/tick).
            let at = sim.state.below(Self::EVENTS / 4) * US;
            sim.schedule_at(SimTime::from_ps(at), |_| {});
        }
        let fired = sim.run();
        r.section("Backlog drain");
        r.text(format!(
            "{fired} events drained, clock at {} ps",
            sim.now().ps()
        ));
        assert_eq!(fired, Self::EVENTS);
        finish(sim, ctx, r);
    }
}
