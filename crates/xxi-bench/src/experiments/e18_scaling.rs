//! E18 — §2.2: "1,000-way parallelism … communication energy will outgrow
//! computation energy." Real scaling on the work-stealing runtime, plus
//! the modeled 1000-way energy balance.
//!
//! The strong-scaling table reports wall-clock times on real threads, so
//! it is marked volatile: the golden harness pins its shape but not its
//! machine-dependent numbers.

use xxi_core::table::fnum;
use xxi_core::{Report, Table};
use xxi_mem::energy::MemEnergyTable;
use xxi_noc::link::{Link, LinkKind};
use xxi_noc::sim::{NocConfig, NocSim};
use xxi_noc::topology::Mesh;
use xxi_noc::traffic::Pattern;
use xxi_stack::Pool;
use xxi_tech::ops::OpEnergies;
use xxi_tech::NodeDb;

use crate::{quantile_row, quantile_table};

use super::{Experiment, RunCtx};

fn kernel(i: usize) -> f64 {
    let mut x = i as f64 + 1.0;
    for _ in 0..1_500 {
        x = (x * 1.0000001).sqrt() + 0.25;
    }
    x
}

pub struct E18Scaling;

impl Experiment for E18Scaling {
    fn id(&self) -> &'static str {
        "e18"
    }

    fn title(&self) -> &'static str {
        "1000-way parallelism: real scaling and the communication-energy wall"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.2: 'communication energy will outgrow computation energy'"
    }

    fn emits_trace(&self) -> bool {
        true
    }

    fn fill(&self, ctx: &RunCtx, r: &mut Report) {
        r.section("Real strong scaling on the work-stealing pool (this machine)");
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let n = 150_000usize;
        let base = {
            let pool = Pool::new(1);
            pool.parallel_sum(1000, kernel);
            // xxi-allow: determinism -- measures real speedup; reported as volatile
            let t0 = std::time::Instant::now();
            pool.parallel_sum(n, kernel);
            t0.elapsed().as_secs_f64()
        };
        let mut t = Table::new(&["threads", "time (s)", "speedup", "efficiency"]);
        let mut threads = 1usize;
        while threads <= hw.min(16) {
            let pool = Pool::new(threads);
            pool.parallel_sum(1000, kernel);
            // xxi-allow: determinism -- measures real speedup; reported as volatile
            let t0 = std::time::Instant::now();
            pool.parallel_sum(n, kernel);
            let dt = t0.elapsed().as_secs_f64();
            t.row(&[
                threads.to_string(),
                fnum(dt),
                fnum(base / dt),
                fnum(base / dt / threads as f64),
            ]);
            threads *= 2;
        }
        r.volatile_table(t);

        r.section("Modeled 1000-way stencil: compute vs communication energy per sweep");
        // A 1000-core 22nm chip runs a 2D stencil: each core owns a tile of
        // 256x256 points (f64), computes 5 FMA/point, and exchanges halos
        // (4 edges x 256 points x 8 B) with neighbors each sweep.
        let db = NodeDb::standard();
        let mut t = Table::new(&[
            "node",
            "compute/core (uJ)",
            "halo comms/core (uJ)",
            "comm/compute",
        ]);
        let mesh = Mesh::new_2d(32, 32); // ~1000 cores
        for name in ["90nm", "45nm", "22nm", "7nm"] {
            let node = db.by_name(name).unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
            let ops = OpEnergies::at(node);
            let compute = ops.fp_fma * (256.0 * 256.0 * 5.0);
            // Halo exchange crosses ~1 mesh hop of 2 mm wire per neighbor.
            let link = Link::on(node, LinkKind::Electrical { mm: 2.0 });
            let halo_bits = 4.0 * 256.0 * 8.0 * 8.0;
            let comm = link.transfer_energy(halo_bits as u64) * mesh.mean_hops_uniform().max(1.0);
            t.row(&[
                name.to_string(),
                fnum(compute.value() * 1e6),
                fnum(comm.value() * 1e6),
                fnum(comm.value() / compute.value()),
            ]);
        }
        r.table(t);
        r.text(
            "(halo traffic priced at mean-hop distance; a locality-aware mapping\n \
             from xxi-stack::locality pays 1 hop instead — see the ablation bench)",
        );

        r.section("All-to-all instead of neighbor halos (the locality-hostile case)");
        let node = db.by_name("22nm").unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
        let ops = OpEnergies::at(node);
        let l3 = MemEnergyTable::at(node).l3;
        let compute = ops.fp_fma * (256.0 * 256.0 * 5.0);
        let shuffle_bytes = 256.0 * 256.0 * 8.0; // whole tile shuffled
        let link = Link::on(node, LinkKind::Electrical { mm: 2.0 });
        let comm = link.transfer_energy((shuffle_bytes * 8.0) as u64)
            * Mesh::new_2d(32, 32).mean_hops_uniform()
            + l3 * (shuffle_bytes / 8.0);
        r.finding(
            "all_to_all_comm_ratio_22nm",
            comm.value() / compute.value(),
            "x",
        );
        r.text(format!(
            "22nm: compute {:.1} uJ vs all-to-all comm {:.1} uJ — ratio {:.1}",
            compute.value() * 1e6,
            comm.value() * 1e6,
            comm.value() / compute.value()
        ));

        r.section("Observed 8x8 mesh under the halo traffic: packet-latency tail + energy");
        // The fabric carrying those halos, observed: per-packet latency
        // histograms at a moderate and a near-saturation load, link/router
        // energy on the ledger.
        let mut t = quantile_table("packet latency (cycles)");
        let mut traced = None;
        for rate in [0.1, 0.4] {
            let mut sim = NocSim::new(NocConfig::mesh8x8(Pattern::Uniform, rate, ctx.seed_or(18)));
            // Trace the heavier load (the interesting one to look at).
            if rate > 0.3 {
                sim.trace = ctx.trace();
            }
            let obs = sim.run_observed(2_000, 8_000);
            t.row(&quantile_row(&format!("load {rate}"), &obs.latency));
            if rate > 0.3 {
                traced = Some(obs);
            }
        }
        r.table(t);
        let heavy = traced.expect("0.4 run present"); // xxi-allow: panic-path -- see the expect message
        r.text(format!(
            "throughput at load 0.4: {} flits/node/cycle; throttled injections: {}",
            fnum(heavy.result.throughput),
            heavy.result.throttled
        ));
        r.section("NoC energy ledger (measured phase, load 0.4)");
        r.table(heavy.ledger.table());

        ctx.emit_trace(r, &heavy.trace);

        r.text(
            "\nHeadline: the runtime scales near-linearly on real cores; in the model,\n\
             neighbor-only communication stays affordable but its share grows every\n\
             node, and communication-oblivious (all-to-all) patterns already cost\n\
             multiples of compute at 22nm — 'rethink how we design for 1,000-way\n\
             parallelism' is an energy statement, not a scheduling one.",
        );
    }
}
