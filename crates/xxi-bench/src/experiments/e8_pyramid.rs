//! E8 — §2.2: the energy pyramid. "an exa-op data center in 10 MW, a
//! peta-op departmental server in 10 kW, a tera-op portable in 10 W, a
//! giga-op sensor in 10 mW" — all four tiers demand 10^11 ops/J.

use xxi_accel::ladder::{efficiency_factor, ImplKind, Kernel};
use xxi_cloud::power::{DatacenterPower, ServerPower};
use xxi_core::table::{fnum, xfactor};
use xxi_core::units::{Energy, Power};
use xxi_core::{Report, Table};
use xxi_tech::ops::OpEnergies;
use xxi_tech::{NodeDb, NtvModel};

use super::{Experiment, RunCtx};

pub struct E8Pyramid;

impl Experiment for E8Pyramid {
    fn id(&self) -> &'static str {
        "e8"
    }

    fn title(&self) -> &'static str {
        "The energy pyramid: every tier demands 1e11 ops/J"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.2: exa-op @ 10 MW ... giga-op @ 10 mW (a uniform 1e11 ops/J)"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        r.section("The four tiers and the uniform requirement");
        let mut t = Table::new(&[
            "tier",
            "throughput (ops/s)",
            "power budget",
            "required ops/J",
        ]);
        for (tier, ops, pw, pstr) in [
            ("exa-op datacenter", 1e18, 10e6, "10 MW"),
            ("peta-op server", 1e15, 10e3, "10 kW"),
            ("tera-op portable", 1e12, 10.0, "10 W"),
            ("giga-op sensor", 1e9, 10e-3, "10 mW"),
        ] {
            t.row(&[
                tier.to_string(),
                fnum(ops),
                pstr.to_string(),
                fnum(ops / pw),
            ]);
        }
        r.table(t);

        r.section("What 2012-era technology achieves (ops/J)");
        let db = NodeDb::standard();
        let node = db.by_name("22nm").unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
        let ops22 = OpEnergies::at(node);

        // A commodity datacenter.
        let dc = DatacenterPower {
            server: ServerPower::commodity_2012(),
            servers: 50_000,
            pue: 1.6,
        };
        // A general-purpose core: 1 / (energy per OoO instruction).
        let general = 1.0 / ops22.fma_instruction_ooo().value();
        // SIMD on a modern core.
        let simd = general * efficiency_factor(node, ImplKind::Simd { lanes: 16 }, Kernel::Fir);
        // A fixed-function accelerator.
        let asic = general * efficiency_factor(node, ImplKind::FixedFunction, Kernel::Fir);
        // NTV on top of the accelerator (energy/op scales with the NTV gain).
        let ntv = NtvModel::new(node.clone(), Energy::from_pj(10.0), Power::from_mw(50.0));
        let (_, mep) = ntv.minimum_energy_point();
        let ntv_gain = ntv.e_op(node.vdd).value() / mep.value();
        let asic_ntv = asic * ntv_gain;

        let required: f64 = 1e11;
        let mut t = Table::new(&["system", "ops/J", "gap to 1e11 ops/J"]);
        for (name, achieved) in [
            ("commodity datacenter (facility)", dc.ops_per_joule(1.0)),
            ("22nm OoO core (compute only)", general),
            ("+ SIMD x16", simd),
            ("+ fixed-function accel", asic),
            ("+ NTV operation", asic_ntv),
        ] {
            t.row(&[
                name.to_string(),
                fnum(achieved),
                xfactor(required / achieved),
            ]);
        }
        r.table(t);

        r.finding("commodity_gap", required / dc.ops_per_joule(1.0), "x");
        r.text(
            "\nHeadline: the pyramid asks for two-to-three orders of magnitude; the\n\
             commodity path is ~100x short, and the paper's whole lever stack —\n\
             simple cores + specialization + NTV — is what closes it (compute-only;\n\
             the memory ladder of E4 then becomes the next wall).",
        );
    }
}
