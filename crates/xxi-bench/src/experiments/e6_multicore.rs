//! E6 — §2.2 parallelism: Hill–Marty multicore speedup (symmetric /
//! asymmetric / dynamic) and the dark-silicon variant.

use xxi_core::table::fnum;
use xxi_core::units::Power;
use xxi_core::{Report, Table};
use xxi_cpu::chip::{Chip, ChipConfig};
use xxi_cpu::hillmarty::{
    best_symmetric_r, speedup_asymmetric, speedup_dynamic, speedup_symmetric,
    speedup_symmetric_power_limited,
};
use xxi_cpu::CoreKind;
use xxi_tech::{DarkSilicon, NodeDb};

use super::{Experiment, RunCtx};

pub struct E6Multicore;

impl Experiment for E6Multicore {
    fn id(&self) -> &'static str {
        "e6"
    }

    fn title(&self) -> &'static str {
        "Hill-Marty multicore speedup under dark silicon"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.2: 'massive on-chip parallelism with simpler, low-power cores'"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        r.section("Hill-Marty speedup, n = 256 BCE, vs core size r (f = 0.975)");
        let n = 256.0;
        let f = 0.975;
        let mut t = Table::new(&["r (BCE/core)", "symmetric", "asymmetric", "dynamic"]);
        for rr in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0] {
            t.row(&[
                fnum(rr),
                fnum(speedup_symmetric(f, n, rr)),
                fnum(speedup_asymmetric(f, n, rr)),
                fnum(speedup_dynamic(f, n, rr)),
            ]);
        }
        r.table(t);
        r.text(format!(
            "best symmetric r at f=0.975: {} (paper's figure peaks near r≈7, S≈51)",
            best_symmetric_r(f, n)
        ));

        r.section("Optimal core size vs parallel fraction (symmetric, n = 256)");
        let mut t = Table::new(&["f", "best r", "speedup at best r"]);
        for f in [0.5, 0.9, 0.95, 0.975, 0.99, 0.999] {
            let rr = best_symmetric_r(f, n);
            t.row(&[fnum(f), fnum(rr), fnum(speedup_symmetric(f, n, rr))]);
        }
        r.table(t);

        r.section("Dark silicon erodes the parallel term (f = 0.99, r = 1)");
        let db = NodeDb::standard();
        let calc = DarkSilicon::new(200.0, Power(100.0));
        let mut t = Table::new(&[
            "node",
            "active fraction",
            "speedup (powered)",
            "speedup (if fully lit)",
        ]);
        for name in ["90nm", "45nm", "22nm", "7nm"] {
            let node = db.by_name(name).unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
            let active = calc.active_fraction(&db, node);
            t.row(&[
                name.to_string(),
                fnum(active),
                fnum(speedup_symmetric_power_limited(0.99, n, 1.0, active)),
                fnum(speedup_symmetric(0.99, n, 1.0)),
            ]);
        }
        r.table(t);

        r.section("Composed chips at 22nm (200 mm^2 / 95 W): core-mix shootout");
        let mut t = Table::new(&[
            "core kind",
            "fit",
            "powered",
            "S(f=0.5)",
            "S(f=0.99)",
            "throughput/W",
        ]);
        for kind in [
            CoreKind::InOrderSmall,
            CoreKind::OoOMedium,
            CoreKind::OoOBig,
        ] {
            let chip = Chip::compose(ChipConfig::desktop(
                db.by_name("22nm").unwrap().clone(), // xxi-allow: panic-path -- ladder name is a fixed constant
                kind,
            ))
            .unwrap(); // xxi-allow: panic-path -- desktop composition is valid for every ladder node
            t.row(&[
                format!("{kind:?}"),
                chip.cores_fit.to_string(),
                chip.cores_powered.to_string(),
                fnum(chip.speedup(0.5)),
                fnum(chip.speedup(0.99)),
                fnum(chip.efficiency()),
            ]);
        }
        r.table(t);

        r.text(
            "\nHeadline: serial code wants one big core, parallel code wants many small\n\
             ones, and dark silicon taxes everything — the quantitative case for the\n\
             paper's heterogeneous 'clusters of simple cores + custom units'.",
        );
    }
}
