//! E11 — §2.3: near-threshold voltage: "tremendous potential to reduce
//! power but at the cost of reliability, driving … resiliency-centered
//! design."

use xxi_core::table::{fnum, xfactor};
use xxi_core::units::{Energy, Power};
use xxi_core::{Report, Table};
use xxi_tech::{NodeDb, NtvModel, SoftErrorModel};

use super::{Experiment, RunCtx};

pub struct E11Ntv;

impl Experiment for E11Ntv {
    fn id(&self) -> &'static str {
        "e11"
    }

    fn title(&self) -> &'static str {
        "Near-threshold voltage: the minimum-energy point vs resilience"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.3: NTV 'tremendous potential ... at the cost of reliability'"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        let db = NodeDb::standard();
        let node = db.by_name("22nm").unwrap(); // xxi-allow: panic-path -- ladder name is a fixed constant
        let m = NtvModel::new(node.clone(), Energy::from_pj(10.0), Power::from_mw(50.0));
        let ser = SoftErrorModel::new(node.clone(), 10.0);

        r.section("Voltage sweep (22nm block: 10 pJ/op dynamic, 50 mW leak at nominal)");
        let mut t = Table::new(&[
            "Vdd (V)",
            "f (GHz)",
            "E/op (pJ)",
            "timing err rate",
            "E/op resilient (pJ)",
            "SER boost",
        ]);
        for p in m.sweep(12) {
            t.row(&[
                fnum(p.v.value()),
                fnum(p.freq_ghz),
                fnum(p.e_op.pj()),
                fnum(p.error_rate),
                fnum(p.e_op_resilient.pj()),
                xfactor(ser.fit_chip(p.v) / ser.fit_chip(node.vdd)),
            ]);
        }
        r.table(t);

        r.section("Optima");
        let (mep_v, mep_e) = m.minimum_energy_point();
        let (res_v, res_e) = m.resilient_optimum();
        let e_nom = m.e_op(node.vdd);
        let mut t = Table::new(&[
            "operating point",
            "Vdd (V)",
            "E/op (pJ)",
            "saving vs nominal",
        ]);
        t.row(&[
            "nominal".into(),
            fnum(node.vdd.value()),
            fnum(e_nom.pj()),
            "1.00x".into(),
        ]);
        t.row(&[
            "raw minimum-energy point".into(),
            fnum(mep_v.value()),
            fnum(mep_e.pj()),
            xfactor(e_nom.value() / mep_e.value()),
        ]);
        t.row(&[
            "resilient optimum (detect+re-exec)".into(),
            fnum(res_v.value()),
            fnum(res_e.pj()),
            xfactor(m.e_op_resilient(node.vdd, 0.05).value() / res_e.value()),
        ]);
        r.table(t);

        r.finding("raw_mep_saving", e_nom.value() / mep_e.value(), "x");
        r.finding(
            "resilient_saving",
            m.e_op_resilient(node.vdd, 0.05).value() / res_e.value(),
            "x",
        );
        r.text(
            "\nHeadline: the raw MEP sits near threshold but is unusable (error rates\n\
             percent-level, SER boosted); pricing in detection + re-execution moves\n\
             the optimum up in voltage yet still nets a multi-x energy win — the\n\
             quantitative content of 'resiliency-centered design'.",
        );
    }
}
