//! E1 — Table 1 rows 1–2: Moore continues, Dennard is gone.

use xxi_core::table::{fnum, xfactor};
use xxi_core::units::Power;
use xxi_core::{Report, Table};
use xxi_tech::{DarkSilicon, NodeDb, ScalingRule, ScalingTrajectory};

use super::{Experiment, RunCtx};

pub struct E1Scaling;

impl Experiment for E1Scaling {
    fn id(&self) -> &'static str {
        "e1"
    }

    fn title(&self) -> &'static str {
        "Moore continues, Dennard is gone"
    }

    fn paper_claim(&self) -> &'static str {
        "Table 1: 'Transistor count still 2x every 18-24 months' / 'Dennard: Gone'"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        let db = NodeDb::standard();
        let dennard = ScalingTrajectory::compute(&db, ScalingRule::Dennard);
        let real = ScalingTrajectory::compute(&db, ScalingRule::PostDennard);

        r.section("Generational scaling for a fixed-area die (relative to 180nm)");
        let mut t = Table::new(&[
            "node",
            "year",
            "transistors",
            "freq (Dennard)",
            "freq (obs)",
            "P/chip (Dennard)",
            "P/chip (obs)",
            "E/gate (obs)",
        ]);
        for (d, o) in dennard.points.iter().zip(&real.points) {
            t.row(&[
                d.node.to_string(),
                d.year.to_string(),
                xfactor(d.transistors_rel),
                xfactor(d.freq_rel),
                xfactor(o.freq_rel),
                xfactor(d.full_power_rel),
                xfactor(o.full_power_rel),
                fnum(o.gate_energy_rel),
            ]);
        }
        r.table(t);

        r.section("Consequence: dark silicon (200 mm^2 die, 100 W package)");
        let calc = DarkSilicon::new(200.0, Power(100.0));
        let mut t = Table::new(&[
            "node",
            "full-die power (W)",
            "active fraction",
            "dark fraction",
        ]);
        for p in calc.sweep(&db) {
            t.row(&[
                p.node.to_string(),
                fnum(p.full_power.value()),
                fnum(p.active_fraction),
                fnum(p.dark_fraction),
            ]);
        }
        r.table(t);

        r.finding("full_die_power_growth", real.final_power_growth(), "x");
        r.text(format!(
            "\nHeadline: powering a full 7nm die at nominal V/f needs {} the 180nm\n\
             power — Table 1's 'not viable for power/chip to double' made concrete.",
            xfactor(real.final_power_growth())
        ));
    }
}
