//! E19 — §2.4: security "from the ground up": information-flow tracking,
//! fine-grain protection, and the cache side channel those defenses target.

use xxi_core::table::fnum;
use xxi_core::{Report, Table};
use xxi_mem::cache::{Cache, CacheConfig, Replacement};
use xxi_sec::ift::{Instr, Machine, Policy};
use xxi_sec::protection::{AccessKind, DomainId, Perms, ProtectionMatrix, RegionId};
use xxi_sec::sidechannel::{prime_probe_attack, prime_probe_attack_partitioned, PartitionedCache};

use super::{Experiment, RunCtx};

fn shared_cfg() -> CacheConfig {
    CacheConfig {
        size_bytes: 32 * 1024,
        line_bytes: 64,
        ways: 8,
        replacement: Replacement::Lru,
        write_allocate: true,
    }
}

pub struct E19Security;

impl Experiment for E19Security {
    fn id(&self) -> &'static str {
        "e19"
    }

    fn title(&self) -> &'static str {
        "Security from the ground up: DIFT, side channels, compartments"
    }

    fn paper_claim(&self) -> &'static str {
        "§2.4: 'information flow tracking (reducing side-channel attacks)' + fine-grain protection"
    }

    fn fill(&self, _ctx: &RunCtx, r: &mut Report) {
        r.section("DIFT: attack programs vs the tracking policy");
        let mut t = Table::new(&["scenario", "policy", "outcome"]);
        // Control-flow hijack.
        let mut m = Machine::new(Policy::integrity(), 16, vec![0xDEAD]);
        let hijack = [
            Instr::In { d: 0 },
            Instr::Const { d: 1, imm: 4 },
            Instr::Add { d: 2, a: 0, b: 1 },
            Instr::JmpReg { a: 2 },
            Instr::Halt,
        ];
        t.row(&[
            "input -> jump target".into(),
            "integrity".into(),
            format!("{:?}", m.run(&hijack, 100)),
        ]);
        // Exfiltration through memory.
        let mut m = Machine::new(Policy::confidentiality(), 16, vec![42]);
        let leak = [
            Instr::In { d: 0 },
            Instr::Const { d: 1, imm: 3 },
            Instr::Store { a: 1, v: 0 },
            Instr::Load { d: 2, a: 1 },
            Instr::Out { v: 2 },
            Instr::Halt,
        ];
        t.row(&[
            "secret -> memory -> output".into(),
            "confidentiality".into(),
            format!("{:?}", m.run(&leak, 100)),
        ]);
        // Sanctioned declassification.
        let mut m = Machine::new(Policy::confidentiality(), 16, vec![42]);
        let ok = [
            Instr::In { d: 0 },
            Instr::Declassify { v: 0 },
            Instr::Out { v: 0 },
            Instr::Halt,
        ];
        t.row(&[
            "secret -> declassify -> output".into(),
            "confidentiality".into(),
            format!("{:?}", m.run(&ok, 100)),
        ]);
        r.table(t);

        r.section("Prime+probe against a shared 32 KiB L1 (secret = table index)");
        let mut t = Table::new(&["secret set", "inferred (shared)", "inferred (partitioned)"]);
        for secret in [3usize, 17, 42, 63] {
            let mut shared = Cache::new(shared_cfg()).unwrap(); // xxi-allow: panic-path -- shared_cfg is a valid fixed geometry
            let atk = prime_probe_attack(&mut shared, secret);
            let mut pc = PartitionedCache::new(shared_cfg(), 2);
            let rp = prime_probe_attack_partitioned(&mut pc, secret);
            t.row(&[
                secret.to_string(),
                format!("{} ({} miss)", atk.inferred_set, atk.signal_misses),
                format!(
                    "{} ({} miss)",
                    if rp.signal_misses == 0 {
                        "blind".to_string()
                    } else {
                        rp.inferred_set.to_string()
                    },
                    rp.signal_misses
                ),
            ]);
        }
        r.table(t);

        r.section("Fine-grain protection: crypto/parser compartment demo");
        let mut pm = ProtectionMatrix::new();
        let crypto = DomainId(1);
        let parser = DomainId(2);
        pm.define_region(RegionId(10), 0, 64).unwrap(); // keys // xxi-allow: panic-path -- region args are fixed and valid
        pm.define_region(RegionId(11), 64, 256).unwrap(); // input // xxi-allow: panic-path -- region args are fixed and valid
        pm.grant(crypto, RegionId(10), Perms::RW);
        pm.grant(parser, RegionId(11), Perms::RW);
        let mut t = Table::new(&["access", "verdict"]);
        for (name, dom, addr) in [
            ("crypto reads keys", crypto, 5usize),
            ("parser reads input", parser, 100),
            ("parser reads KEYS", parser, 5),
            ("crypto reads raw input", crypto, 100),
        ] {
            let verdict = match pm.check(dom, addr, AccessKind::Read) {
                Ok(()) => "allowed".to_string(),
                Err(_) => "FAULT".to_string(),
            };
            t.row(&[name.to_string(), verdict]);
        }
        r.table(t);
        let check_uj = pm.check_energy().value() * 1e6 * 1_000_000.0 / 4.0;
        r.finding("protection_check_uj_per_mload", check_uj, "uJ");
        r.text(format!(
            "protection-check energy for 1M checked loads: {} uJ (vs ~100 uJ of work: <1%)",
            fnum(check_uj)
        ));

        r.text(
            "\nHeadline: DIFT stops both canonical attacks and admits audited\n\
             declassification; prime+probe recovers the secret set bit-exactly from a\n\
             shared cache and is fully blinded by way-partitioning (at a measured\n\
             capacity cost); word-granular compartments fault the Heartbleed-shaped\n\
             access for sub-1% checking energy — §2.4's mechanisms, demonstrated.",
        );
    }
}
