//! Golden-output regression tests: every experiment's text report is
//! pinned byte-for-byte against `tests/golden/<id>.txt`.
//!
//! The goldens hold [`Report::render_text_golden`] output: identical to
//! the stdout of `xxi run <id>` (and the historical `exp_*` binaries)
//! except that items an experiment marks *volatile* — wall-clock timings
//! in e18, real-thread STM races in e20 — are replaced by a placeholder
//! that still pins their caption/headers/shape.
//!
//! Regenerate after an intentional output change with:
//!
//! ```text
//! XXI_BLESS=1 cargo test --release -p xxi-bench --test golden -- --include-ignored
//! ```
//!
//! Each test also pins the structured side of the tentpole contract: the
//! JSON document round-trips losslessly, and every non-volatile table's
//! classic `Table::render` text appears verbatim inside `render_text`
//! (i.e. the Report layer changed nothing about how tables print).
//!
//! The three slowest experiments (e9's Monte Carlo, e10's 100k-hour
//! sensor horizon, e18's real scaling measurement) are `#[ignore]`d in
//! debug builds to keep `cargo test -q` inside the tier-1 budget; the CI
//! experiments job runs the full suite in release with
//! `--include-ignored`.

use std::fs;
use std::path::PathBuf;

use xxi_bench::experiments::{self, RunCtx};
use xxi_core::Report;

fn golden_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{id}.txt"))
}

/// First line where `a` and `b` disagree, for a readable failure.
fn first_diff(a: &str, b: &str) -> String {
    for (n, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}:\n  golden: {la}\n  actual: {lb}", n + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs actual {}",
        a.lines().count(),
        b.lines().count()
    )
}

fn check(id: &str) {
    let exp = experiments::find(id).expect("registered experiment");
    let ctx = RunCtx::new(None, 1, None);
    let report = exp.run(&ctx);

    // The Report layer must not reformat tables: every non-volatile
    // table's classic render appears verbatim in the text output.
    let text = report.render_text();
    for (t, volatile) in report.tables() {
        if !volatile {
            assert!(
                text.contains(&t.render()),
                "{id}: a table's Table::render text is not embedded verbatim"
            );
        }
    }

    // The JSON document is lossless: parse(render) == report, and the
    // reconstruction renders the same text.
    let back = Report::parse_json(&report.render_json())
        .unwrap_or_else(|e| panic!("{id}: JSON round-trip failed to parse: {e}"));
    assert_eq!(back, report, "{id}: JSON round-trip changed the report");
    assert_eq!(
        back.render_text(),
        text,
        "{id}: JSON round-trip changed the text rendering"
    );

    // The golden comparison itself (volatile items masked).
    let golden = report.render_text_golden();
    let path = golden_path(id);
    if std::env::var_os("XXI_BLESS").is_some() {
        fs::write(&path, &golden)
            .unwrap_or_else(|e| panic!("{id}: cannot write {}: {e}", path.display()));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{id}: missing golden {} ({e}); regenerate with XXI_BLESS=1",
            path.display()
        )
    });
    assert!(
        expected == golden,
        "{id}: output drifted from {} — if intentional, rebless with XXI_BLESS=1\n{}",
        path.display(),
        first_diff(&expected, &golden)
    );
}

macro_rules! golden {
    ($name:ident, $id:literal) => {
        #[test]
        fn $name() {
            check($id);
        }
    };
    ($name:ident, $id:literal, slow) => {
        #[test]
        #[cfg_attr(
            debug_assertions,
            ignore = "slow in debug; CI runs it in release with --include-ignored"
        )]
        fn $name() {
            check($id);
        }
    };
}

golden!(golden_e1, "e1");
golden!(golden_e2, "e2");
golden!(golden_e3, "e3");
golden!(golden_e4, "e4");
golden!(golden_e5, "e5");
golden!(golden_e6, "e6");
golden!(golden_e7, "e7");
golden!(golden_e8, "e8");
golden!(golden_e9, "e9", slow);
golden!(golden_e10, "e10", slow);
golden!(golden_e11, "e11");
golden!(golden_e12, "e12");
golden!(golden_e13, "e13");
golden!(golden_e14, "e14");
golden!(golden_e15, "e15");
golden!(golden_e16, "e16");
golden!(golden_e17, "e17");
golden!(golden_e18, "e18", slow);
golden!(golden_e19, "e19");
golden!(golden_e20, "e20");
golden!(golden_e21, "e21");

/// The golden directory holds exactly the registry: no stale files for
/// renamed/removed experiments, none missing (unless blessing is off and
/// a new experiment landed — then the per-id test fails with the hint).
#[test]
fn golden_dir_matches_registry() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut on_disk: Vec<String> = fs::read_dir(dir)
        .expect("tests/golden exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".txt").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut ids: Vec<String> = experiments::registry()
        .iter()
        .map(|e| e.id().to_string())
        .collect();
    ids.sort();
    assert_eq!(on_disk, ids);
}
