//! End-to-end tests of the `xxi` driver binary: exit-code contract,
//! machine-readable `list`, stdin validation, and the bench -> compare
//! perf-gate loop, all through the real executable
//! (`CARGO_BIN_EXE_xxi`).

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

use xxi_bench::bench::BenchRun;
use xxi_core::report::json;

fn xxi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xxi"))
        .args(args)
        .output()
        .expect("xxi runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A per-test scratch file that cleans up after itself.
struct TempFile(PathBuf);

impl TempFile {
    fn new(name: &str) -> TempFile {
        TempFile(std::env::temp_dir().join(format!("xxi-cli-{}-{name}", std::process::id())))
    }
    fn path(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_2() {
    let out = xxi(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("unknown command: frobnicate"), "{err}");
    assert!(err.contains("usage: xxi <command>"), "{err}");
    assert!(
        err.contains("compare <base> <new>"),
        "usage lists it: {err}"
    );

    let none = xxi(&[]);
    assert_eq!(none.status.code(), Some(2));
    assert!(stderr_of(&none).contains("usage: xxi <command>"));
}

#[test]
fn bench_only_flags_are_rejected_outside_bench() {
    let out = xxi(&["run", "e1", "--iters", "3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--iters is only valid"));

    let out = xxi(&["bench", "e1", "--threshold", "5"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--threshold is only valid"));
}

#[test]
fn list_format_json_emits_one_document_per_experiment() {
    let out = xxi(&["list", "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout_of(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 21);
    for line in &lines {
        let v = json::parse(line).expect("each line is a JSON document");
        let obj = v.as_object().unwrap();
        assert!(json::get_str(obj, "id").is_ok());
        assert!(json::get_str(obj, "title").is_ok());
        assert!(json::get(obj, "parallel").unwrap().as_bool().is_some());
        assert!(json::get(obj, "trace").unwrap().as_bool().is_some());
    }
    assert!(lines[8].contains("\"id\":\"e9\""));
    assert!(lines[8].contains("\"parallel\":true"));
}

#[test]
fn validate_dash_reads_reports_from_stdin() {
    let report = stdout_of(&xxi(&["run", "e1", "--format", "json"]));
    let mut child = Command::new(env!("CARGO_BIN_EXE_xxi"))
        .args(["validate", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("xxi spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(report.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert!(stdout_of(&out).contains("1 report(s) valid"));

    // Garbage on stdin fails with the stdin name, not a file error.
    let mut child = Command::new(env!("CARGO_BIN_EXE_xxi"))
        .args(["validate", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(b"").unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("<stdin>"));
}

#[test]
fn bench_then_self_compare_passes_and_doctored_regression_fails() {
    let bench_file = TempFile::new("bench.json");
    let out = xxi(&[
        "bench",
        "e1",
        "--iters",
        "3",
        "--warmup",
        "0",
        "--out",
        bench_file.path(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));

    let text = std::fs::read_to_string(bench_file.path()).unwrap();
    let run = BenchRun::parse_json(text.trim()).expect("bench file parses");
    assert_eq!(run.results.len(), 1);
    assert_eq!(run.results[0].id, "e1");
    assert!(run.results[0].wall.min_s <= run.results[0].wall.max_s);

    // Identical files: no regression, exit 0.
    let same = xxi(&["compare", bench_file.path(), bench_file.path()]);
    assert_eq!(same.status.code(), Some(0), "{}", stderr_of(&same));
    assert!(stdout_of(&same).contains("no regressions"));

    // Doctor a 10x slowdown into a copy; the gate must trip (exit 3).
    let mut slow = run.clone();
    for r in &mut slow.results {
        r.wall.p50_s *= 10.0;
    }
    let doctored = TempFile::new("doctored.json");
    std::fs::write(doctored.path(), slow.render_json()).unwrap();
    let reg = xxi(&[
        "compare",
        bench_file.path(),
        doctored.path(),
        "--threshold",
        "50",
    ]);
    assert_eq!(reg.status.code(), Some(3), "{}", stderr_of(&reg));
    assert!(stdout_of(&reg).contains("REGRESSED"));

    // The same doctored file passes under a huge threshold.
    let loose = xxi(&[
        "compare",
        bench_file.path(),
        doctored.path(),
        "--threshold",
        "100000",
    ]);
    assert_eq!(loose.status.code(), Some(0));
}

#[test]
fn bench_without_out_prints_json_to_stdout() {
    let out = xxi(&["bench", "e1", "--iters", "1", "--warmup", "0"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let doc = stdout_of(&out);
    let run = BenchRun::parse_json(doc.trim()).expect("stdout is one bench document");
    assert_eq!(run.config.iters, 1);
    // Progress lines went to stderr, keeping stdout machine-clean.
    assert!(stderr_of(&out).contains("e1"));
}
