//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the lock-free deque vs a mutex-guarded queue (why build Chase–Lev);
//! * work stealing vs a single shared queue at 4 threads;
//! * P² streaming quantiles vs retain-and-sort (why the simulators can
//!   afford per-event percentile tracking);
//! * cache replacement policy cost (tree-PLRU's hardware rationale shows
//!   up as software speed too).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use xxi_core::rng::Rng64;
use xxi_core::stats::{P2Quantile, Summary};
use xxi_stack::deque::deque;
use xxi_stack::Pool;

fn bench_deque_vs_mutex(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque_vs_mutex");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("chase_lev_push_pop_100k", |b| {
        b.iter_batched(
            || deque::<u64>(1 << 18).0,
            |w| {
                for i in 0..100_000u64 {
                    w.push(i).unwrap();
                }
                let mut acc = 0u64;
                while let Some(v) = w.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("mutex_vecdeque_push_pop_100k", |b| {
        b.iter_batched(
            || Arc::new(Mutex::new(VecDeque::<u64>::new())),
            |q| {
                for i in 0..100_000u64 {
                    q.lock().unwrap().push_back(i);
                }
                let mut acc = 0u64;
                while let Some(v) = q.lock().unwrap().pop_back() {
                    acc = acc.wrapping_add(v);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_pool_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_scaling");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    fn kernel(i: usize) -> f64 {
        let mut x = i as f64 + 1.0;
        for _ in 0..500 {
            x = (x * 1.0000001).sqrt() + 0.25;
        }
        x
    }
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("parallel_sum_60k_t{threads}"), |b| {
            let pool = Pool::new(threads);
            pool.parallel_sum(1_000, kernel); // warm
            b.iter(|| pool.parallel_sum(60_000, kernel))
        });
    }
    g.finish();
}

fn bench_quantiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantiles");
    g.throughput(Throughput::Elements(200_000));
    let mut rng = Rng64::new(1);
    let xs: Vec<f64> = (0..200_000).map(|_| rng.lognormal(0.0, 0.5)).collect();
    g.bench_function("p2_streaming_200k", |b| {
        b.iter(|| {
            let mut p2 = P2Quantile::new(0.99);
            for &x in &xs {
                p2.add(x);
            }
            p2.estimate()
        })
    });
    g.bench_function("retain_and_sort_200k", |b| {
        b.iter(|| Summary::from_slice(&xs).percentile(99.0))
    });
    g.finish();
}

fn bench_replacement_policies(c: &mut Criterion) {
    use xxi_mem::cache::{AccessKind, Cache, CacheConfig, Replacement};
    use xxi_mem::trace::TraceGen;
    let mut g = c.benchmark_group("replacement_cost");
    g.throughput(Throughput::Elements(200_000));
    let mut gen = TraceGen::new(2);
    let trace = gen.zipf(200_000, 0, 1 << 15, 64, 0.8, 0.0);
    for (name, policy) in [
        ("lru", Replacement::Lru),
        ("fifo", Replacement::Fifo),
        ("tree_plru", Replacement::TreePlru),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    Cache::new(CacheConfig {
                        replacement: policy,
                        ..CacheConfig::l2()
                    })
                    .unwrap()
                },
                |mut cache| {
                    for a in &trace {
                        cache.access(a.addr, AccessKind::Read);
                    }
                    cache.hit_rate()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_stm_vs_mutex(c: &mut Criterion) {
    use xxi_stack::stm::TxArray;
    let mut g = c.benchmark_group("stm_vs_mutex");
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("stm_counter_50k_single_thread", |b| {
        b.iter_batched(
            || TxArray::new(4),
            |arr| {
                for _ in 0..50_000 {
                    arr.run(|tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1);
                        Ok(())
                    });
                }
                arr.read_direct(0)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("mutex_counter_50k_single_thread", |b| {
        b.iter_batched(
            || Mutex::new(0u64),
            |m| {
                for _ in 0..50_000 {
                    *m.lock().unwrap() += 1;
                }
                *m.lock().unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_dift_overhead(c: &mut Criterion) {
    use xxi_sec::ift::{Instr, Machine, Policy};
    let mut g = c.benchmark_group("dift");
    // A tight arithmetic loop: the taint machinery's interpretive cost.
    let prog = [
        Instr::Const { d: 0, imm: 50_000 },
        Instr::Const { d: 1, imm: 0 },
        Instr::Const { d: 2, imm: u64::MAX },
        Instr::Add { d: 1, a: 1, b: 0 },
        Instr::Add { d: 0, a: 0, b: 2 },
        Instr::Bnz { c: 0, target: 3 },
        Instr::Halt,
    ];
    g.throughput(Throughput::Elements(150_000));
    g.bench_function("tracked_loop_150k_instr", |b| {
        b.iter(|| {
            let mut m = Machine::new(Policy::integrity(), 16, vec![]);
            m.run(&prog, 1_000_000)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_deque_vs_mutex,
    bench_pool_scaling,
    bench_quantiles,
    bench_replacement_policies,
    bench_stm_vs_mutex,
    bench_dift_overhead
);
criterion_main!(benches);
