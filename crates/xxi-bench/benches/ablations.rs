//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the lock-free deque vs a mutex-guarded queue (why build Chase–Lev);
//! * work stealing vs a single shared queue at 4 threads;
//! * P² streaming quantiles and the log-bucketed histogram vs
//!   retain-and-sort (why the simulators can afford per-event percentile
//!   tracking);
//! * cache replacement policy cost (tree-PLRU's hardware rationale shows
//!   up as software speed too).
//!
//! Run with `cargo bench --bench ablations` (optionally a substring
//! filter).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use xxi_bench::Bench;
use xxi_core::obs::LogHistogram;
use xxi_core::rng::Rng64;
use xxi_core::stats::{P2Quantile, Summary};
use xxi_stack::deque::deque;
use xxi_stack::Pool;

fn bench_deque_vs_mutex(h: &mut Bench) {
    let mut g = h.group("deque_vs_mutex");
    g.throughput(100_000);
    g.bench("chase_lev_push_pop_100k", || {
        let (w, _s) = deque::<u64>(1 << 18);
        for i in 0..100_000u64 {
            w.push(i).unwrap();
        }
        let mut acc = 0u64;
        while let Some(v) = w.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
    g.bench("mutex_vecdeque_push_pop_100k", || {
        let q = Arc::new(Mutex::new(VecDeque::<u64>::new()));
        for i in 0..100_000u64 {
            q.lock().unwrap().push_back(i);
        }
        let mut acc = 0u64;
        while let Some(v) = q.lock().unwrap().pop_back() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
}

fn bench_pool_scaling(h: &mut Bench) {
    fn kernel(i: usize) -> f64 {
        let mut x = i as f64 + 1.0;
        for _ in 0..500 {
            x = (x * 1.0000001).sqrt() + 0.25;
        }
        x
    }
    let mut g = h.group("pool_scaling");
    for threads in [1usize, 2, 4] {
        let pool = Pool::new(threads);
        pool.parallel_sum(1_000, kernel); // warm
        g.bench(&format!("parallel_sum_60k_t{threads}"), || {
            pool.parallel_sum(60_000, kernel)
        });
    }
}

fn bench_quantiles(h: &mut Bench) {
    let mut rng = Rng64::new(1);
    let xs: Vec<f64> = (0..200_000).map(|_| rng.lognormal(0.0, 0.5)).collect();
    let mut g = h.group("quantiles");
    g.throughput(200_000);
    g.bench("p2_streaming_200k", || {
        let mut p2 = P2Quantile::new(0.99);
        for &x in &xs {
            p2.add(x);
        }
        p2.estimate()
    });
    g.bench("log_histogram_200k", || {
        let mut hist = LogHistogram::new();
        for &x in &xs {
            hist.add(x);
        }
        hist.p99()
    });
    g.bench("retain_and_sort_200k", || {
        Summary::from_slice(&xs).percentile(99.0)
    });
}

fn bench_replacement_policies(h: &mut Bench) {
    use xxi_mem::cache::{AccessKind, Cache, CacheConfig, Replacement};
    use xxi_mem::trace::TraceGen;
    let mut gen = TraceGen::new(2);
    let trace = gen.zipf(200_000, 0, 1 << 15, 64, 0.8, 0.0);
    let mut g = h.group("replacement_cost");
    g.throughput(200_000);
    for (name, policy) in [
        ("lru", Replacement::Lru),
        ("fifo", Replacement::Fifo),
        ("tree_plru", Replacement::TreePlru),
    ] {
        g.bench(name, || {
            let mut cache = Cache::new(CacheConfig {
                replacement: policy,
                ..CacheConfig::l2()
            })
            .unwrap();
            for a in &trace {
                cache.access(a.addr, AccessKind::Read);
            }
            cache.hit_rate()
        });
    }
}

fn bench_stm_vs_mutex(h: &mut Bench) {
    use xxi_stack::stm::TxArray;
    let mut g = h.group("stm_vs_mutex");
    g.throughput(50_000);
    g.bench("stm_counter_50k_single_thread", || {
        let arr = TxArray::new(4);
        for _ in 0..50_000 {
            arr.run(|tx| {
                let v = tx.read(0)?;
                tx.write(0, v + 1);
                Ok(())
            });
        }
        arr.read_direct(0)
    });
    g.bench("mutex_counter_50k_single_thread", || {
        let m = Mutex::new(0u64);
        for _ in 0..50_000 {
            *m.lock().unwrap() += 1;
        }
        let v = *m.lock().unwrap();
        v
    });
}

fn bench_dift_overhead(h: &mut Bench) {
    use xxi_sec::ift::{Instr, Machine, Policy};
    // A tight arithmetic loop: the taint machinery's interpretive cost.
    let prog = [
        Instr::Const { d: 0, imm: 50_000 },
        Instr::Const { d: 1, imm: 0 },
        Instr::Const {
            d: 2,
            imm: u64::MAX,
        },
        Instr::Add { d: 1, a: 1, b: 0 },
        Instr::Add { d: 0, a: 0, b: 2 },
        Instr::Bnz { c: 0, target: 3 },
        Instr::Halt,
    ];
    let mut g = h.group("dift");
    g.throughput(150_000);
    g.bench("tracked_loop_150k_instr", || {
        let mut m = Machine::new(Policy::integrity(), 16, vec![]);
        m.run(&prog, 1_000_000)
    });
}

fn main() {
    let mut h = Bench::from_args();
    bench_deque_vs_mutex(&mut h);
    bench_pool_scaling(&mut h);
    bench_quantiles(&mut h);
    bench_replacement_policies(&mut h);
    bench_stm_vs_mutex(&mut h);
    bench_dift_overhead(&mut h);
    h.finish();
}
