//! Criterion benches for the simulator kernels: these are the inner loops
//! every experiment pays for, so their throughput bounds experiment scale.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use xxi_cloud::latency::LatencyDist;
use xxi_cloud::queueing::MG1Queue;
use xxi_core::des::Sim;
use xxi_core::rng::Rng64;
use xxi_core::time::SimTime;
use xxi_mem::cache::{AccessKind, Cache, CacheConfig, Replacement};
use xxi_mem::dram::{Dram, DramConfig};
use xxi_mem::trace::TraceGen;
use xxi_noc::sim::{NocConfig, NocSim};
use xxi_noc::topology::Mesh;
use xxi_noc::traffic::Pattern;

fn bench_des_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("event_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            fn ev(sim: &mut Sim<u64>) {
                sim.state += 1;
                if sim.state < 100_000 {
                    sim.schedule_in(SimTime::from_ps(13), ev);
                }
            }
            sim.schedule_at(SimTime::ZERO, ev);
            sim.run();
            assert_eq!(sim.state, 100_000);
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(100_000));
    let mut gen = TraceGen::new(1);
    let trace = gen.zipf(100_000, 0, 1 << 14, 64, 0.9, 0.2);
    for (name, policy) in [
        ("lru", Replacement::Lru),
        ("plru", Replacement::TreePlru),
        ("random", Replacement::Random),
    ] {
        g.bench_function(format!("l1_zipf_{name}"), |b| {
            b.iter_batched(
                || {
                    Cache::new(CacheConfig {
                        replacement: policy,
                        ..CacheConfig::l1()
                    })
                    .unwrap()
                },
                |mut cache| {
                    for a in &trace {
                        let kind = if a.write {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        };
                        cache.access(a.addr, kind);
                    }
                    cache.hit_rate()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(100_000));
    let mut gen = TraceGen::new(2);
    let seq = gen.sequential(100_000, 0, 64, 0.0);
    let rand = gen.uniform(100_000, 0, 1 << 28, 64, 0.0);
    for (name, trace) in [("sequential", &seq), ("random", &rand)] {
        g.bench_function(name.to_string(), |b| {
            b.iter_batched(
                || Dram::new(DramConfig::default()),
                |mut dram| {
                    for a in trace {
                        dram.access(a.addr);
                    }
                    dram.row_hit_rate()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_noc(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(6));
    g.bench_function("mesh8x8_5k_cycles_rate0.2", |b| {
        b.iter(|| {
            let cfg = NocConfig {
                mesh: Mesh::new_2d(8, 8),
                queue_depth: 4,
                pattern: Pattern::Uniform,
                injection_rate: 0.2,
                seed: 3,
            };
            NocSim::new(cfg).run(1_000, 4_000).delivered
        })
    });
    g.finish();
}

fn bench_queueing(c: &mut Criterion) {
    let mut g = c.benchmark_group("queueing");
    g.sample_size(10);
    g.bench_function("mg1_50k_requests", |b| {
        b.iter(|| {
            MG1Queue {
                lambda_per_ms: 0.7,
                service: LatencyDist::Exp { mean_ms: 1.0 },
            }
            .run(50_000, 4)
            .completed
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("xoshiro_1m_u64", |b| {
        let mut rng = Rng64::new(5);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });
    g.bench_function("lognormal_1m", |b| {
        let mut rng = Rng64::new(6);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000_000 {
                acc += rng.lognormal(0.0, 0.5);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_des_engine,
    bench_cache,
    bench_dram,
    bench_noc,
    bench_queueing,
    bench_rng
);
criterion_main!(benches);
