//! Benches for the simulator kernels: these are the inner loops every
//! experiment pays for, so their throughput bounds experiment scale. Run
//! with `cargo bench --bench simulators` (optionally a substring filter).

use xxi_bench::Bench;
use xxi_cloud::latency::LatencyDist;
use xxi_cloud::queueing::MG1Queue;
use xxi_core::des::Sim;
use xxi_core::obs::Trace;
use xxi_core::rng::Rng64;
use xxi_core::time::SimTime;
use xxi_mem::cache::{AccessKind, Cache, CacheConfig, Replacement};
use xxi_mem::dram::{Dram, DramConfig};
use xxi_mem::trace::TraceGen;
use xxi_noc::sim::{NocConfig, NocSim};
use xxi_noc::topology::Mesh;
use xxi_noc::traffic::Pattern;

fn bench_des_engine(h: &mut Bench) {
    let mut g = h.group("des");
    g.throughput(100_000);
    g.bench("event_chain_100k", || {
        let mut sim = Sim::new(0u64);
        fn ev(sim: &mut Sim<u64>) {
            sim.state += 1;
            if sim.state < 100_000 {
                sim.schedule_in(SimTime::from_ps(13), ev);
            }
        }
        sim.schedule_at(SimTime::ZERO, ev);
        sim.run();
        assert_eq!(sim.state, 100_000);
        sim.state
    });
}

/// The observability acceptance check: an event chain that *calls* the
/// span API every event, with tracing disabled vs enabled. The disabled
/// row must match `des/event_chain_100k` (the single-branch fast path),
/// and the assertion guards the stronger claim that a disabled trace
/// never allocates even under 100k record calls.
fn bench_des_trace_overhead(h: &mut Bench) {
    let mut g = h.group("des_trace");
    g.throughput(100_000);
    fn ev(sim: &mut Sim<u64>) {
        let span = sim.trace_begin("ev", "des", 0);
        sim.state += 1;
        if sim.state < 100_000 {
            sim.schedule_in(SimTime::from_ps(13), ev);
        }
        sim.trace_end(span);
    }
    g.bench("spans_disabled_100k", || {
        let mut sim = Sim::new(0u64);
        sim.schedule_at(SimTime::ZERO, ev);
        sim.run();
        assert_eq!(
            sim.trace.events_capacity(),
            0,
            "disabled tracing must not allocate"
        );
        sim.state
    });
    g.bench("spans_enabled_100k", || {
        let mut sim = Sim::with_trace(0u64, Trace::enabled());
        sim.schedule_at(SimTime::ZERO, ev);
        sim.run();
        assert_eq!(sim.trace.len(), 100_000);
        sim.state
    });
}

fn bench_cache(h: &mut Bench) {
    let mut gen = TraceGen::new(1);
    let trace = gen.zipf(100_000, 0, 1 << 14, 64, 0.9, 0.2);
    let mut g = h.group("cache");
    g.throughput(100_000);
    for (name, policy) in [
        ("lru", Replacement::Lru),
        ("plru", Replacement::TreePlru),
        ("random", Replacement::Random),
    ] {
        g.bench(&format!("l1_zipf_{name}"), || {
            let mut cache = Cache::new(CacheConfig {
                replacement: policy,
                ..CacheConfig::l1()
            })
            .unwrap();
            for a in &trace {
                let kind = if a.write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                cache.access(a.addr, kind);
            }
            cache.hit_rate()
        });
    }
}

fn bench_dram(h: &mut Bench) {
    let mut gen = TraceGen::new(2);
    let seq = gen.sequential(100_000, 0, 64, 0.0);
    let rand = gen.uniform(100_000, 0, 1 << 28, 64, 0.0);
    let mut g = h.group("dram");
    g.throughput(100_000);
    for (name, trace) in [("sequential", &seq), ("random", &rand)] {
        g.bench(name, || {
            let mut dram = Dram::new(DramConfig::default());
            for a in trace {
                dram.access(a.addr);
            }
            dram.row_hit_rate()
        });
    }
}

fn bench_noc(h: &mut Bench) {
    let mut g = h.group("noc");
    g.bench("mesh8x8_5k_cycles_rate0.2", || {
        let cfg = NocConfig {
            mesh: Mesh::new_2d(8, 8),
            queue_depth: 4,
            pattern: Pattern::Uniform,
            injection_rate: 0.2,
            seed: 3,
        };
        NocSim::new(cfg).run(1_000, 4_000).delivered
    });
}

fn bench_queueing(h: &mut Bench) {
    let mut g = h.group("queueing");
    g.bench("mg1_50k_requests", || {
        MG1Queue {
            lambda_per_ms: 0.7,
            service: LatencyDist::Exp { mean_ms: 1.0 },
        }
        .run(50_000, 4)
        .completed
    });
}

fn bench_rng(h: &mut Bench) {
    let mut g = h.group("rng");
    g.throughput(1_000_000);
    let mut rng = Rng64::new(5);
    g.bench("xoshiro_1m_u64", || {
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(rng.next_u64());
        }
        acc
    });
    let mut rng = Rng64::new(6);
    g.bench("lognormal_1m", || {
        let mut acc = 0.0;
        for _ in 0..1_000_000 {
            acc += rng.lognormal(0.0, 0.5);
        }
        acc
    });
}

fn main() {
    let mut h = Bench::from_args();
    bench_des_engine(&mut h);
    bench_des_trace_overhead(&mut h);
    bench_cache(&mut h);
    bench_dram(&mut h);
    bench_noc(&mut h);
    bench_queueing(&mut h);
    bench_rng(&mut h);
    h.finish();
}
