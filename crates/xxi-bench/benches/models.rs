//! Benches for the analytic models and codecs: ECC, wear leveling,
//! compression, Hill–Marty, fan-out Monte Carlo. Run with
//! `cargo bench --bench models` (optionally a substring filter).

use xxi_bench::Bench;
use xxi_cloud::fanout::fanout_latency;
use xxi_cloud::latency::LatencyDist;
use xxi_core::rng::{Rng64, Zipf};
use xxi_cpu::hillmarty::{best_symmetric_r, speedup_symmetric};
use xxi_mem::compress::{compressed_bits, Line};
use xxi_mem::nvm::{NvmDevice, NvmTech};
use xxi_mem::wear::StartGap;
use xxi_rel::ecc::{decode, encode, flip};

fn bench_ecc(h: &mut Bench) {
    let mut g = h.group("ecc");
    g.throughput(10_000);
    let mut rng = Rng64::new(1);
    let data: Vec<u64> = (0..10_000).map(|_| rng.next_u64()).collect();
    g.bench("encode_10k", || {
        let mut acc = 0u128;
        for &d in &data {
            acc ^= encode(d).0;
        }
        acc
    });
    let mut rng = Rng64::new(2);
    let words: Vec<_> = (0..10_000)
        .map(|_| flip(encode(rng.next_u64()), rng.range_u64(1, 72) as u32))
        .collect();
    g.bench("decode_corrupted_10k", || {
        let mut fixed = 0u64;
        for &w in &words {
            if decode(w).data().is_some() {
                fixed += 1;
            }
        }
        fixed
    });
}

fn bench_wear_leveling(h: &mut Bench) {
    let mut g = h.group("wear");
    g.throughput(100_000);
    g.bench("start_gap_100k_writes", || {
        let mut sg = StartGap::new(NvmDevice::new(NvmTech::Pcm, 4097), 100);
        for i in 0..100_000usize {
            sg.write(i % 4096);
        }
        sg.gap_moves()
    });
    g.bench("raw_nvm_100k_writes", || {
        let mut dev = NvmDevice::new(NvmTech::Pcm, 4097);
        for i in 0..100_000usize {
            dev.write(i % 4096);
        }
        dev.max_wear()
    });
}

fn bench_compression(h: &mut Bench) {
    let mut rng = Rng64::new(3);
    let lines: Vec<Line> = (0..10_000)
        .map(|i| {
            let mut l = [0u32; 16];
            for (j, w) in l.iter_mut().enumerate() {
                *w = match i % 3 {
                    0 => (j as u32) % 5,        // compressible
                    1 => rng.next_u64() as u32, // random
                    _ => 0,                     // zeros
                };
            }
            l
        })
        .collect();
    let mut g = h.group("compress");
    g.throughput(10_000);
    g.bench("fpc_10k_lines", || {
        let mut bits = 0u64;
        for l in &lines {
            bits += compressed_bits(l) as u64;
        }
        bits
    });
}

fn bench_hillmarty(h: &mut Bench) {
    let mut g = h.group("hillmarty");
    g.bench("best_r_scan_n4096", || best_symmetric_r(0.975, 4096.0));
    g.bench("speedup_grid_100x100", || {
        let mut acc = 0.0;
        for fi in 1..=100 {
            let f = fi as f64 / 101.0;
            for ri in 1..=100 {
                acc += speedup_symmetric(f, 256.0, ri as f64 * 2.56);
            }
        }
        acc
    });
}

fn bench_fanout(h: &mut Bench) {
    let mut g = h.group("fanout");
    g.bench("mc_fanout100_5k_trials", || {
        fanout_latency(LatencyDist::typical_leaf(), 100, 5_000, 7).p99
    });
}

fn bench_zipf(h: &mut Bench) {
    let mut g = h.group("zipf");
    g.throughput(1_000_000);
    let z = Zipf::new(100_000, 0.99);
    let mut rng = Rng64::new(8);
    g.bench("sample_1m_over_100k", || {
        let mut acc = 0usize;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(z.sample(&mut rng));
        }
        acc
    });
}

fn main() {
    let mut h = Bench::from_args();
    bench_ecc(&mut h);
    bench_wear_leveling(&mut h);
    bench_compression(&mut h);
    bench_hillmarty(&mut h);
    bench_fanout(&mut h);
    bench_zipf(&mut h);
    h.finish();
}
