//! Criterion benches for the analytic models and codecs: ECC, wear
//! leveling, compression, Hill–Marty, fan-out Monte Carlo.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use xxi_cloud::fanout::fanout_latency;
use xxi_cloud::latency::LatencyDist;
use xxi_core::rng::{Rng64, Zipf};
use xxi_cpu::hillmarty::{best_symmetric_r, speedup_symmetric};
use xxi_mem::compress::{compressed_bits, Line};
use xxi_mem::nvm::{NvmDevice, NvmTech};
use xxi_mem::wear::StartGap;
use xxi_rel::ecc::{decode, encode, flip};

fn bench_ecc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("encode_10k", |b| {
        let mut rng = Rng64::new(1);
        let data: Vec<u64> = (0..10_000).map(|_| rng.next_u64()).collect();
        b.iter(|| {
            let mut acc = 0u128;
            for &d in &data {
                acc ^= encode(d).0;
            }
            acc
        })
    });
    g.bench_function("decode_corrupted_10k", |b| {
        let mut rng = Rng64::new(2);
        let words: Vec<_> = (0..10_000)
            .map(|_| flip(encode(rng.next_u64()), rng.range_u64(1, 72) as u32))
            .collect();
        b.iter(|| {
            let mut fixed = 0u64;
            for &w in &words {
                if decode(w).data().is_some() {
                    fixed += 1;
                }
            }
            fixed
        })
    });
    g.finish();
}

fn bench_wear_leveling(c: &mut Criterion) {
    let mut g = c.benchmark_group("wear");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("start_gap_100k_writes", |b| {
        b.iter_batched(
            || StartGap::new(NvmDevice::new(NvmTech::Pcm, 4097), 100),
            |mut sg| {
                for i in 0..100_000usize {
                    sg.write(i % 4096);
                }
                sg.gap_moves()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("raw_nvm_100k_writes", |b| {
        b.iter_batched(
            || NvmDevice::new(NvmTech::Pcm, 4097),
            |mut dev| {
                for i in 0..100_000usize {
                    dev.write(i % 4096);
                }
                dev.max_wear()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress");
    let mut rng = Rng64::new(3);
    let lines: Vec<Line> = (0..10_000)
        .map(|i| {
            let mut l = [0u32; 16];
            for (j, w) in l.iter_mut().enumerate() {
                *w = match i % 3 {
                    0 => (j as u32) % 5,                    // compressible
                    1 => rng.next_u64() as u32,             // random
                    _ => 0,                                 // zeros
                };
            }
            l
        })
        .collect();
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("fpc_10k_lines", |b| {
        b.iter(|| {
            let mut bits = 0u64;
            for l in &lines {
                bits += compressed_bits(l) as u64;
            }
            bits
        })
    });
    g.finish();
}

fn bench_hillmarty(c: &mut Criterion) {
    let mut g = c.benchmark_group("hillmarty");
    g.bench_function("best_r_scan_n4096", |b| {
        b.iter(|| best_symmetric_r(0.975, 4096.0))
    });
    g.bench_function("speedup_grid_100x100", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for fi in 1..=100 {
                let f = fi as f64 / 101.0;
                for ri in 1..=100 {
                    acc += speedup_symmetric(f, 256.0, ri as f64 * 2.56);
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("fanout");
    g.sample_size(10);
    g.bench_function("mc_fanout100_5k_trials", |b| {
        b.iter(|| fanout_latency(LatencyDist::typical_leaf(), 100, 5_000, 7).p99)
    });
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("sample_1m_over_100k", |b| {
        let z = Zipf::new(100_000, 0.99);
        let mut rng = Rng64::new(8);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ecc,
    bench_wear_leveling,
    bench_compression,
    bench_hillmarty,
    bench_fanout,
    bench_zipf
);
criterion_main!(benches);
