//! Loop perforation.
//!
//! Execute only every `k`-th loop iteration and interpolate the rest — the
//! classic compiler-level approximation (Sidiroglou et al., 2011). For
//! smooth kernels (filters, reductions over redundant data) quality decays
//! gracefully while work drops by `1/k` — the shape experiment E14 sweeps.

/// A moving-mean filter of window `w` over `signal`, perforated by factor
/// `k`: the filter is evaluated on every `k`-th sample and intermediate
/// outputs are linearly interpolated. `k = 1` is the exact filter.
/// Returns `(output, evaluations)` where `evaluations` counts actual
/// window computations (the work metric).
pub fn perforated_mean_filter(signal: &[f64], w: usize, k: usize) -> (Vec<f64>, u64) {
    assert!(w >= 1 && k >= 1 && !signal.is_empty());
    let n = signal.len();
    let eval = |i: usize| -> f64 {
        let lo = i.saturating_sub(w - 1);
        let window = &signal[lo..=i];
        window.iter().sum::<f64>() / window.len() as f64
    };
    let mut out = vec![0.0; n];
    let mut evals = 0u64;
    let mut anchors: Vec<usize> = (0..n).step_by(k).collect();
    // xxi-allow: panic-path -- anchors always contains 0
    if *anchors.last().unwrap() != n - 1 {
        anchors.push(n - 1);
    }
    for &i in &anchors {
        out[i] = eval(i);
        evals += 1;
    }
    // Linear interpolation between anchors.
    for pair in anchors.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        for i in (a + 1)..b {
            let t = (i - a) as f64 / (b - a) as f64;
            out[i] = out[a] * (1.0 - t) + out[b] * t;
        }
    }
    (out, evals)
}

/// A perforated sum: sums every `k`-th element and scales by `k` (with an
/// exact tail correction for the remainder). Returns `(estimate, work)`.
pub fn perforated_sum(xs: &[f64], k: usize) -> (f64, u64) {
    assert!(k >= 1);
    if xs.is_empty() {
        return (0.0, 0);
    }
    let sampled: Vec<f64> = xs.iter().step_by(k).copied().collect();
    let estimate = sampled.iter().sum::<f64>() * (xs.len() as f64 / sampled.len() as f64);
    (estimate, sampled.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::rmse;
    use crate::signal::SignalGen;

    #[test]
    fn k1_is_exact() {
        let (s, _) = SignalGen::default().generate(1000, 1);
        let (exact, evals) = perforated_mean_filter(&s, 8, 1);
        assert_eq!(evals, 1000);
        // Spot-check one window by hand.
        let manual: f64 = s[0..=7].iter().sum::<f64>() / 8.0;
        assert!((exact[7] - manual).abs() < 1e-12);
    }

    #[test]
    fn work_drops_as_one_over_k() {
        let (s, _) = SignalGen::default().generate(10_000, 2);
        let (_, e1) = perforated_mean_filter(&s, 8, 1);
        let (_, e4) = perforated_mean_filter(&s, 8, 4);
        let (_, e16) = perforated_mean_filter(&s, 8, 16);
        assert!((e1 as f64 / e4 as f64 - 4.0).abs() < 0.1);
        assert!((e1 as f64 / e16 as f64 - 16.0).abs() < 0.5);
    }

    #[test]
    fn quality_degrades_gracefully() {
        let (s, _) = SignalGen::default().generate(10_000, 3);
        let (exact, _) = perforated_mean_filter(&s, 8, 1);
        let (p2, _) = perforated_mean_filter(&s, 8, 2);
        let (p8, _) = perforated_mean_filter(&s, 8, 8);
        let e2 = rmse(&exact, &p2);
        let e8 = rmse(&exact, &p8);
        assert!(e2 < e8, "more perforation, more error");
        // Smooth kernel: even k=8 keeps RMSE well under the signal RMS.
        let sig_rms = (s.iter().map(|x| x * x).sum::<f64>() / s.len() as f64).sqrt();
        assert!(e8 < 0.5 * sig_rms, "e8={e8} rms={sig_rms}");
    }

    #[test]
    fn perforated_sum_unbiased_on_smooth_data() {
        let xs: Vec<f64> = (0..10_000)
            .map(|i| (i as f64 * 0.001).sin() + 2.0)
            .collect();
        let exact: f64 = xs.iter().sum();
        let (est, work) = perforated_sum(&xs, 10);
        assert_eq!(work, 1000);
        assert!(
            (est - exact).abs() / exact < 0.01,
            "est={est} exact={exact}"
        );
    }

    #[test]
    fn edge_cases() {
        let (out, evals) = perforated_mean_filter(&[5.0], 4, 8);
        assert_eq!(out, vec![5.0]);
        assert_eq!(evals, 1);
        assert_eq!(perforated_sum(&[], 3), (0.0, 0));
    }
}
