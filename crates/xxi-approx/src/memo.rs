//! Memoization with tolerance ("approximate memoization").
//!
//! An approximate-computing technique from the same family §2.1/§2.4
//! invoke: if a function is smooth and expensive, reuse the result of a
//! *nearby* previous input instead of recomputing. The cache quantizes
//! inputs into cells of width `tolerance`; hits return the stored result at
//! zero compute cost; the error is bounded by the function's Lipschitz
//! constant times the tolerance — an invariant the property-style tests
//! check against a known-Lipschitz kernel.

use std::collections::HashMap;

use xxi_core::metrics::Metrics;

/// A tolerance-based memo cache over `f: f64 -> f64`.
pub struct TolerantMemo<F: Fn(f64) -> f64> {
    f: F,
    tolerance: f64,
    cache: HashMap<i64, f64>,
    capacity: usize,
    /// `calls`, `hits`, `evaluations`.
    pub metrics: Metrics,
}

impl<F: Fn(f64) -> f64> TolerantMemo<F> {
    /// Memoize `f` with input-cell width `tolerance` and a bounded table.
    pub fn new(f: F, tolerance: f64, capacity: usize) -> Self {
        assert!(tolerance > 0.0 && capacity > 0);
        TolerantMemo {
            f,
            tolerance,
            cache: HashMap::new(),
            capacity,
            metrics: Metrics::new(),
        }
    }

    fn cell(&self, x: f64) -> i64 {
        (x / self.tolerance).floor() as i64
    }

    /// Evaluate (approximately): exact on the first visit to a cell,
    /// reused thereafter.
    pub fn call(&mut self, x: f64) -> f64 {
        self.metrics.incr("calls");
        let c = self.cell(x);
        if let Some(&v) = self.cache.get(&c) {
            self.metrics.incr("hits");
            return v;
        }
        self.metrics.incr("evaluations");
        let v = (self.f)(x);
        if self.cache.len() >= self.capacity {
            // Simple random-ish eviction: drop an arbitrary entry (bounded
            // tables in hardware use way-replacement; any victim works for
            // the accounting here).
            if let Some(&k) = self.cache.keys().next() {
                self.cache.remove(&k);
            }
        }
        self.cache.insert(c, v);
        v
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.metrics.ratio("hits", "calls")
    }

    /// Worst-case output error for an `l`-Lipschitz function: inputs in
    /// one cell differ by < tolerance, so outputs differ by < `l·tolerance`.
    pub fn error_bound(&self, lipschitz: f64) -> f64 {
        lipschitz * self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xxi_core::rng::Rng64;

    /// sin is 1-Lipschitz.
    fn kernel(x: f64) -> f64 {
        x.sin()
    }

    #[test]
    fn first_call_evaluates_second_reuses() {
        let mut m = TolerantMemo::new(kernel, 0.01, 1024);
        let a = m.call(1.000);
        let b = m.call(1.005); // same cell
        assert_eq!(a, b);
        assert_eq!(m.metrics.counter("evaluations"), 1);
        assert_eq!(m.metrics.counter("hits"), 1);
        let c = m.call(1.02); // next cell
        assert_ne!(a, c);
        assert_eq!(m.metrics.counter("evaluations"), 2);
    }

    #[test]
    fn error_stays_within_lipschitz_bound() {
        let tol = 0.05;
        let mut m = TolerantMemo::new(kernel, tol, 1 << 16);
        let mut rng = Rng64::new(1);
        let bound = m.error_bound(1.0);
        for _ in 0..100_000 {
            let x = rng.range_f64(-10.0, 10.0);
            let approx = m.call(x);
            let exact = kernel(x);
            assert!(
                (approx - exact).abs() <= bound + 1e-12,
                "x={x}: err {} > bound {bound}",
                (approx - exact).abs()
            );
        }
        assert!(m.hit_rate() > 0.9, "hit rate {}", m.hit_rate());
    }

    #[test]
    fn tighter_tolerance_lower_error_lower_hit_rate() {
        let mut rng = Rng64::new(2);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let run = |tol: f64| {
            let mut m = TolerantMemo::new(kernel, tol, 1 << 16);
            let mut worst: f64 = 0.0;
            for &x in &xs {
                worst = worst.max((m.call(x) - kernel(x)).abs());
            }
            (worst, m.hit_rate())
        };
        let (err_loose, hit_loose) = run(0.1);
        let (err_tight, hit_tight) = run(0.001);
        assert!(err_tight < err_loose);
        assert!(hit_tight < hit_loose);
        assert!(hit_loose > 0.99);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut m = TolerantMemo::new(kernel, 0.001, 100);
        let mut rng = Rng64::new(3);
        for _ in 0..10_000 {
            m.call(rng.range_f64(0.0, 100.0));
        }
        assert!(m.cache.len() <= 100);
    }

    #[test]
    fn work_saved_is_the_hit_rate() {
        let mut m = TolerantMemo::new(kernel, 0.01, 1 << 16);
        let mut rng = Rng64::new(4);
        let n = 20_000;
        for _ in 0..n {
            m.call(rng.range_f64(0.0, 2.0));
        }
        let evals = m.metrics.counter("evaluations");
        let calls = m.metrics.counter("calls");
        assert_eq!(calls, n);
        // Energy model: evaluations are the only compute.
        assert!((evals as f64 / calls as f64) < 0.05, "evals={evals}");
    }
}
