//! # xxi-approx
//!
//! Approximate computing for the `xxi-arch` framework.
//!
//! §2.1: *"given that sensor data is inherently approximate, it opens the
//! potential to effectively apply approximate computing techniques, which
//! can lead to significant energy savings"*; §2.4 lists "approximate data
//! types" among the hardware mechanisms new interfaces should expose.
//!
//! * [`quality`] — the quality metrics approximation is judged by: RMSE,
//!   PSNR, mean relative error.
//! * [`number`] — a tunable-precision real ([`number::ApproxReal`]):
//!   explicit mantissa-bit quantization with an energy model in which
//!   multiply energy scales quadratically and add energy linearly with
//!   mantissa width.
//! * [`perforation`] — loop perforation: execute every k-th iteration and
//!   extrapolate, the classic compiler-level approximation.
//! * [`signal`] — a synthetic biometric-like signal generator (the
//!   paper's on-sensor filtering scenario needs a ground-truth stream).
//! * [`pareto`] — energy-vs-quality sweeps over (precision, perforation)
//!   configurations and the Pareto frontier extraction used by
//!   experiment E14.

pub mod memo;
pub mod number;
pub mod pareto;
pub mod perforation;
pub mod quality;
pub mod signal;

pub use memo::TolerantMemo;
pub use number::ApproxReal;
pub use pareto::{pareto_frontier, sweep_fir, SweepPoint};
pub use perforation::perforated_mean_filter;
pub use quality::{psnr, relative_error, rmse};
pub use signal::SignalGen;
