//! Tunable-precision reals with an energy model.
//!
//! [`ApproxReal`] quantizes an `f64` to a chosen mantissa width by
//! truncating low-order mantissa bits — exactly what a reduced-precision
//! functional unit computes. The energy model follows standard datapath
//! scaling: a `b×b` multiplier array is O(b²) in switched capacitance, an
//! adder O(b). Halving precision therefore saves ~4× on multiplies — the
//! arithmetic behind "reduced … precision" in the paper's §2.2 list of
//! energy-efficient algorithmic approaches.

use serde::{Deserialize, Serialize};

use xxi_core::units::Energy;

/// An `f64` carried at reduced mantissa precision.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ApproxReal {
    value: f64,
    mantissa_bits: u32,
}

/// Quantize `x` to `bits` mantissa bits (1..=52).
fn quantize(x: f64, bits: u32) -> f64 {
    if !x.is_finite() || x == 0.0 {
        return x;
    }
    let raw = x.to_bits();
    let drop = 52 - bits;
    let mask = !((1u64 << drop) - 1);
    f64::from_bits(raw & mask)
}

impl ApproxReal {
    /// Wrap `x` at `mantissa_bits` of precision (1..=52; 52 = exact f64).
    pub fn new(x: f64, mantissa_bits: u32) -> ApproxReal {
        assert!((1..=52).contains(&mantissa_bits));
        ApproxReal {
            value: quantize(x, mantissa_bits),
            mantissa_bits,
        }
    }

    /// The (quantized) value.
    pub fn value(self) -> f64 {
        self.value
    }

    /// Mantissa width.
    pub fn bits(self) -> u32 {
        self.mantissa_bits
    }

    /// Worst-case relative quantization error at this precision: `2^-bits`.
    pub fn quantization_bound(self) -> f64 {
        2.0f64.powi(-(self.mantissa_bits as i32))
    }
}

/// Add: result carries the *minimum* precision of the operands.
impl std::ops::Add for ApproxReal {
    type Output = ApproxReal;
    fn add(self, rhs: ApproxReal) -> ApproxReal {
        let bits = self.mantissa_bits.min(rhs.mantissa_bits);
        ApproxReal::new(self.value + rhs.value, bits)
    }
}

/// Multiply at minimum operand precision.
impl std::ops::Mul for ApproxReal {
    type Output = ApproxReal;
    fn mul(self, rhs: ApproxReal) -> ApproxReal {
        let bits = self.mantissa_bits.min(rhs.mantissa_bits);
        ApproxReal::new(self.value * rhs.value, bits)
    }
}

/// Quantize a whole slice to `bits` mantissa bits.
pub fn quantize_slice(xs: &[f64], bits: u32) -> Vec<f64> {
    xs.iter()
        .map(|&x| ApproxReal::new(x, bits).value())
        .collect()
}

/// Energy of one multiply at `bits` mantissa width, normalized so a full
/// 52-bit multiply costs `full`: `E = full · (bits/52)²`.
pub fn mul_energy(bits: u32, full: Energy) -> Energy {
    assert!((1..=52).contains(&bits));
    let r = bits as f64 / 52.0;
    full * (r * r)
}

/// Energy of one add at `bits` width: `E = full · bits/52`.
pub fn add_energy(bits: u32, full: Energy) -> Energy {
    assert!((1..=52).contains(&bits));
    full * (bits as f64 / 52.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_precision_is_exact() {
        for x in [1.0, -3.5, 1e-30, 12345.6789] {
            assert_eq!(ApproxReal::new(x, 52).value(), x);
        }
    }

    #[test]
    fn quantization_error_within_bound() {
        for bits in [4u32, 8, 16, 23, 32] {
            for x in [1.234567890123, -98.7654321, 3.14159e7, 1.1e-8] {
                let a = ApproxReal::new(x, bits);
                let rel = ((a.value() - x) / x).abs();
                assert!(rel <= a.quantization_bound(), "bits={bits} x={x} rel={rel}");
            }
        }
    }

    #[test]
    fn fewer_bits_more_error() {
        let x = std::f64::consts::PI;
        let e4 = (ApproxReal::new(x, 4).value() - x).abs();
        let e16 = (ApproxReal::new(x, 16).value() - x).abs();
        let e40 = (ApproxReal::new(x, 40).value() - x).abs();
        assert!(e4 > e16);
        assert!(e16 > e40);
    }

    #[test]
    fn zero_and_nonfinite_pass_through() {
        assert_eq!(ApproxReal::new(0.0, 4).value(), 0.0);
        assert!(ApproxReal::new(f64::INFINITY, 4).value().is_infinite());
    }

    #[test]
    fn arithmetic_takes_minimum_precision() {
        let a = ApproxReal::new(1.5, 8);
        let b = ApproxReal::new(2.5, 20);
        assert_eq!((a + b).bits(), 8);
        assert_eq!((a * b).bits(), 8);
        // Values are near the exact result.
        assert!(((a + b).value() - 4.0).abs() < 0.05);
        assert!(((a * b).value() - 3.75).abs() < 0.05);
    }

    #[test]
    fn mul_energy_quadratic_add_linear() {
        let full = Energy::from_pj(50.0);
        assert!((mul_energy(26, full).value() / mul_energy(52, full).value() - 0.25).abs() < 1e-9);
        assert!((add_energy(26, full).value() / add_energy(52, full).value() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_bits_rejected() {
        ApproxReal::new(1.0, 0);
    }
}
