//! Energy-vs-quality sweeps and Pareto frontiers — experiment E14.
//!
//! Sweeps the two approximation knobs this crate implements — mantissa
//! precision and loop perforation — over the FIR workload, producing
//! `(energy, error)` points and extracting the Pareto-optimal set. The
//! experiment's claim (from the paper's approximate-computing agenda):
//! large energy savings are available at modest quality loss, and the
//! frontier is steep near full precision (the first 2× is nearly free).

use serde::Serialize;

use crate::number::{add_energy, mul_energy, quantize_slice};
use crate::perforation::perforated_mean_filter;
use crate::quality::rmse;
use crate::signal::SignalGen;
use xxi_core::units::Energy;

/// One configuration's outcome.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SweepPoint {
    /// Mantissa bits used.
    pub bits: u32,
    /// Perforation factor.
    pub perforation: usize,
    /// Total kernel energy.
    pub energy: Energy,
    /// RMSE against the exact full-precision output.
    pub error: f64,
}

/// Sweep (bits × perforation) on a mean-filter workload of `n` samples.
pub fn sweep_fir(n: usize, seed: u64) -> Vec<SweepPoint> {
    let (signal, _) = SignalGen::default().generate(n, seed);
    let w = 8;
    let (exact, _) = perforated_mean_filter(&signal, w, 1);
    let full_mul = Energy::from_pj(50.0);
    let full_add = Energy::from_pj(15.0);

    let mut points = Vec::new();
    for &bits in &[52u32, 32, 24, 16, 12, 8, 6] {
        for &k in &[1usize, 2, 4, 8, 16] {
            let quantized = quantize_slice(&signal, bits);
            let (out, evals) = perforated_mean_filter(&quantized, w, k);
            let error = rmse(&exact, &out);
            // Each window evaluation: w adds + 1 multiply (by 1/w).
            let energy =
                (add_energy(bits, full_add) * w as f64 + mul_energy(bits, full_mul)) * evals as f64;
            points.push(SweepPoint {
                bits,
                perforation: k,
                energy,
                error,
            });
        }
    }
    points
}

/// Extract the Pareto frontier (minimize energy AND error): points not
/// dominated by any other, sorted by energy.
pub fn pareto_frontier(points: &[SweepPoint]) -> Vec<SweepPoint> {
    let mut frontier: Vec<SweepPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                (q.energy.value() < p.energy.value() && q.error <= p.error)
                    || (q.energy.value() <= p.energy.value() && q.error < p.error)
            })
        })
        .copied()
        .collect();
    frontier.sort_by(|a, b| a.energy.value().partial_cmp(&b.energy.value()).unwrap()); // xxi-allow: panic-path -- energies are finite by construction
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_grid() {
        let pts = sweep_fir(2_000, 1);
        assert_eq!(pts.len(), 7 * 5);
        // The exact config has (near-)zero error.
        let exact = pts
            .iter()
            .find(|p| p.bits == 52 && p.perforation == 1)
            .unwrap();
        assert!(exact.error < 1e-12);
    }

    #[test]
    fn frontier_is_monotone() {
        let pts = sweep_fir(2_000, 2);
        let f = pareto_frontier(&pts);
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(w[1].energy.value() > w[0].energy.value());
            assert!(
                w[1].error <= w[0].error,
                "frontier must trade energy for quality"
            );
        }
    }

    #[test]
    fn frontier_members_are_undominated() {
        let pts = sweep_fir(2_000, 3);
        let f = pareto_frontier(&pts);
        for p in &f {
            for q in &pts {
                let dominates = q.energy.value() < p.energy.value() && q.error < p.error;
                assert!(!dominates, "{q:?} dominates frontier member {p:?}");
            }
        }
    }

    #[test]
    fn big_energy_savings_at_modest_error() {
        // The E14 headline: ≥5× energy saving at ≤10% of signal RMS error.
        let pts = sweep_fir(4_000, 4);
        let full = pts
            .iter()
            .find(|p| p.bits == 52 && p.perforation == 1)
            .unwrap();
        let good_cheap = pts
            .iter()
            .any(|p| p.energy.value() < full.energy.value() / 5.0 && p.error < 0.1);
        assert!(good_cheap, "no cheap high-quality configuration found");
    }
}
