//! Quality metrics for approximate computation.

/// Root-mean-square error between a reference and an approximation.
pub fn rmse(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(reference.len(), approx.len());
    assert!(!reference.is_empty());
    let sum: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a) * (r - a))
        .sum();
    (sum / reference.len() as f64).sqrt()
}

/// Peak signal-to-noise ratio in dB, with the reference's peak amplitude
/// as signal. Returns `+inf` for a perfect match.
pub fn psnr(reference: &[f64], approx: &[f64]) -> f64 {
    let peak = reference.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    let e = rmse(reference, approx);
    if e == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (peak / e).log10()
    }
}

/// Mean relative error `|r − a| / max(|r|, ε)`.
pub fn relative_error(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(reference.len(), approx.len());
    assert!(!reference.is_empty());
    let eps = 1e-12;
    reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a).abs() / r.abs().max(eps))
        .sum::<f64>()
        / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        let x = [1.0, -2.0, 3.0];
        assert_eq!(rmse(&x, &x), 0.0);
        assert_eq!(psnr(&x, &x), f64::INFINITY);
        assert_eq!(relative_error(&x, &x), 0.0);
    }

    #[test]
    fn rmse_known_case() {
        let r = [0.0, 0.0, 0.0, 0.0];
        let a = [1.0, -1.0, 1.0, -1.0];
        assert!((rmse(&r, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_drops_20db_per_10x_error() {
        let r = vec![10.0; 100];
        let a1: Vec<f64> = r.iter().map(|x| x + 0.01).collect();
        let a2: Vec<f64> = r.iter().map(|x| x + 0.1).collect();
        let p1 = psnr(&r, &a1);
        let p2 = psnr(&r, &a2);
        assert!((p1 - p2 - 20.0).abs() < 1e-9, "p1={p1} p2={p2}");
    }

    #[test]
    fn relative_error_scale_invariant() {
        let r1 = [1.0, 2.0, 4.0];
        let a1 = [1.1, 2.2, 4.4];
        let r2 = [10.0, 20.0, 40.0];
        let a2 = [11.0, 22.0, 44.0];
        assert!((relative_error(&r1, &a1) - relative_error(&r2, &a2)).abs() < 1e-12);
        assert!((relative_error(&r1, &a1) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
