//! Synthetic biometric-like signal generation.
//!
//! The paper's smart-sensor scenario (§2.1) filters "a nominal biometric
//! signal" for anomalies on-device. No public dataset ships with this
//! reproduction, so this generator synthesizes the equivalent: a periodic
//! carrier (heartbeat-like), Gaussian noise, baseline wander, and injected
//! anomaly events at known positions — giving the detection experiments a
//! labeled ground truth.

use serde::{Deserialize, Serialize};

use xxi_core::rng::Rng64;

/// Signal generator configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SignalGen {
    /// Samples per period of the carrier.
    pub period: usize,
    /// Carrier amplitude.
    pub amplitude: f64,
    /// Gaussian noise standard deviation.
    pub noise_sigma: f64,
    /// Probability per sample that an anomaly event begins.
    pub anomaly_rate: f64,
    /// Anomaly amplitude multiplier.
    pub anomaly_gain: f64,
    /// Anomaly duration in samples.
    pub anomaly_len: usize,
}

impl Default for SignalGen {
    fn default() -> SignalGen {
        SignalGen {
            period: 64,
            amplitude: 1.0,
            noise_sigma: 0.05,
            anomaly_rate: 0.002,
            anomaly_gain: 3.0,
            anomaly_len: 16,
        }
    }
}

impl SignalGen {
    /// Generate `n` samples; returns `(signal, anomaly_mask)` where the
    /// mask is true on samples inside an anomaly event.
    pub fn generate(&self, n: usize, seed: u64) -> (Vec<f64>, Vec<bool>) {
        let mut rng = Rng64::new(seed);
        let mut signal = Vec::with_capacity(n);
        let mut mask = vec![false; n];
        let mut anomaly_left = 0usize;
        for (i, anomalous) in mask.iter_mut().enumerate() {
            if anomaly_left == 0 && rng.chance(self.anomaly_rate) {
                anomaly_left = self.anomaly_len;
            }
            let phase = (i % self.period) as f64 / self.period as f64;
            let carrier = self.amplitude * (std::f64::consts::TAU * phase).sin();
            let gain = if anomaly_left > 0 {
                *anomalous = true;
                anomaly_left -= 1;
                self.anomaly_gain
            } else {
                1.0
            };
            signal.push(carrier * gain + rng.normal_with(0.0, self.noise_sigma));
        }
        (signal, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let g = SignalGen::default();
        assert_eq!(g.generate(1000, 5), g.generate(1000, 5));
        assert_ne!(g.generate(1000, 5).0, g.generate(1000, 6).0);
    }

    #[test]
    fn amplitude_roughly_matches() {
        let g = SignalGen {
            anomaly_rate: 0.0,
            noise_sigma: 0.0,
            ..SignalGen::default()
        };
        let (s, mask) = g.generate(640, 1);
        assert!(mask.iter().all(|&m| !m));
        let peak = s.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!((peak - 1.0).abs() < 0.01, "peak={peak}");
    }

    #[test]
    fn anomalies_are_bigger_and_marked() {
        let g = SignalGen {
            anomaly_rate: 0.01,
            ..SignalGen::default()
        };
        let (s, mask) = g.generate(50_000, 2);
        let n_anom = mask.iter().filter(|&&m| m).count();
        assert!(n_anom > 100, "need anomalies to compare: {n_anom}");
        let rms = |xs: Vec<f64>| (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt();
        let anom: Vec<f64> = s
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(x, _)| *x)
            .collect();
        let norm: Vec<f64> = s
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| !m)
            .map(|(x, _)| *x)
            .collect();
        assert!(rms(anom) > 1.5 * rms(norm));
    }

    #[test]
    fn anomaly_events_have_configured_length() {
        let g = SignalGen {
            anomaly_rate: 0.001,
            anomaly_len: 8,
            ..SignalGen::default()
        };
        let (_, mask) = g.generate(100_000, 3);
        // Count run lengths; all complete runs must be ≥8 (back-to-back
        // events can merge into longer runs).
        let mut runs = Vec::new();
        let mut len = 0;
        for &m in &mask {
            if m {
                len += 1;
            } else if len > 0 {
                runs.push(len);
                len = 0;
            }
        }
        assert!(!runs.is_empty());
        assert!(runs.iter().all(|&r| r >= 8), "short run found: {runs:?}");
    }
}
