//! Batteries and energy harvesters.

use serde::{Deserialize, Serialize};

use xxi_core::rng::Rng64;
use xxi_core::units::{Energy, Power, Seconds};

/// A finite energy store.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Battery {
    capacity: Energy,
    remaining: Energy,
}

impl Battery {
    /// A battery with the given capacity, fully charged.
    pub fn new(capacity: Energy) -> Battery {
        assert!(capacity.value() > 0.0);
        Battery {
            capacity,
            remaining: capacity,
        }
    }

    /// A CR2032-class coin cell: ~225 mAh at 3 V ≈ 2430 J.
    pub fn coin_cell() -> Battery {
        Battery::new(Energy(2430.0))
    }

    /// Remaining energy.
    pub fn remaining(&self) -> Energy {
        self.remaining
    }

    /// State of charge in [0, 1].
    pub fn soc(&self) -> f64 {
        self.remaining / self.capacity
    }

    /// Draw `e`; returns `false` (and empties) if insufficient.
    pub fn draw(&mut self, e: Energy) -> bool {
        assert!(e.value() >= 0.0);
        if e.value() <= self.remaining.value() {
            self.remaining -= e;
            true
        } else {
            self.remaining = Energy::ZERO;
            false
        }
    }

    /// Recharge by `e`, clamped at capacity.
    pub fn charge(&mut self, e: Energy) {
        assert!(e.value() >= 0.0);
        self.remaining = (self.remaining + e).min(self.capacity);
    }

    /// True once fully drained.
    pub fn dead(&self) -> bool {
        self.remaining.value() <= 0.0
    }
}

/// Harvester profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HarvestProfile {
    /// Solar-like: sinusoidal day/night cycle, zero at night.
    Solar,
    /// Vibration-like: bursty on/off (Markov) supply.
    Vibration,
    /// Constant trickle.
    Constant,
}

/// A stochastic energy harvester sampled at fixed steps.
#[derive(Clone, Debug)]
pub struct Harvester {
    profile: HarvestProfile,
    /// Peak harvest power.
    peak: Power,
    /// Period of the solar cycle (steps) / mean burst length (vibration).
    period: u64,
    rng: Rng64,
    step: u64,
    burst_on: bool,
}

impl Harvester {
    /// A harvester with `peak` power and characteristic `period` in steps.
    pub fn new(profile: HarvestProfile, peak: Power, period: u64, seed: u64) -> Harvester {
        assert!(peak.value() >= 0.0 && period > 0);
        Harvester {
            profile,
            peak,
            period,
            rng: Rng64::new(seed),
            step: 0,
            burst_on: false,
        }
    }

    /// Power available during the next step.
    pub fn next_power(&mut self) -> Power {
        let p = match self.profile {
            HarvestProfile::Constant => self.peak,
            HarvestProfile::Solar => {
                let phase = (self.step % self.period) as f64 / self.period as f64;
                let s = (std::f64::consts::TAU * phase).sin();
                // Daylight only (positive half of the cycle).
                self.peak * s.max(0.0)
            }
            HarvestProfile::Vibration => {
                // Two-state Markov chain with mean sojourn = period steps.
                if self.rng.chance(1.0 / self.period as f64) {
                    self.burst_on = !self.burst_on;
                }
                if self.burst_on {
                    self.peak
                } else {
                    Power::ZERO
                }
            }
        };
        self.step += 1;
        p
    }

    /// Energy harvested over one step of `dt`.
    pub fn harvest(&mut self, dt: Seconds) -> Energy {
        self.next_power() * dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_draw_and_charge() {
        let mut b = Battery::new(Energy(100.0));
        assert!(b.draw(Energy(30.0)));
        assert!((b.soc() - 0.7).abs() < 1e-12);
        b.charge(Energy(50.0));
        assert!(
            (b.remaining().value() - 100.0).abs() < 1e-12,
            "clamped at capacity"
        );
        assert!(b.draw(Energy(100.0)));
        assert!(b.dead());
        assert!(!b.draw(Energy(1.0)));
    }

    #[test]
    fn overdraw_empties_and_fails() {
        let mut b = Battery::new(Energy(10.0));
        assert!(!b.draw(Energy(11.0)));
        assert!(b.dead());
    }

    #[test]
    fn coin_cell_capacity_sane() {
        let b = Battery::coin_cell();
        assert!((b.remaining().value() - 2430.0).abs() < 1.0);
    }

    #[test]
    fn solar_cycles_between_zero_and_peak() {
        let mut h = Harvester::new(HarvestProfile::Solar, Power::from_mw(10.0), 100, 1);
        let ps: Vec<f64> = (0..200).map(|_| h.next_power().value()).collect();
        let max = ps.iter().cloned().fold(0.0f64, f64::max);
        let zeros = ps.iter().filter(|&&p| p == 0.0).count();
        assert!((max - 0.01).abs() < 1e-4, "max={max}");
        // Half the cycle is night.
        assert!((90..=110).contains(&zeros), "zeros={zeros}");
    }

    #[test]
    fn vibration_is_bursty_with_right_duty() {
        let mut h = Harvester::new(HarvestProfile::Vibration, Power::from_mw(5.0), 50, 2);
        let n = 100_000;
        let on = (0..n).filter(|_| h.next_power().value() > 0.0).count();
        let duty = on as f64 / n as f64;
        assert!((duty - 0.5).abs() < 0.05, "duty={duty}");
    }

    #[test]
    fn constant_profile_harvest_energy() {
        let mut h = Harvester::new(HarvestProfile::Constant, Power::from_mw(2.0), 1, 3);
        let e = h.harvest(Seconds(10.0));
        assert!((e.value() - 0.02).abs() < 1e-12);
    }
}
