//! # xxi-sensor
//!
//! Smart-sensor node simulation for the `xxi-arch` framework.
//!
//! §2.1 ("Smart Sensing and Computing"): *"the central requirement is to
//! compute within very tight energy, form-factor, and cost constraints …
//! the energy required to communicate data often outweighs that of
//! computation"*, with "intermittent power (e.g., from harvested energy)"
//! called out as a defining opportunity. Modules:
//!
//! * [`power`] — batteries (finite energy stores) and stochastic energy
//!   harvesters (solar-like day/night cycles, vibration bursts).
//! * [`radio`] — radio technologies with per-bit transmit energy, startup
//!   cost, and data rate (BLE-class, Zigbee-class, LoRa-class, WiFi-class).
//! * [`mcu`] — the microcontroller: active/sleep power, energy per op,
//!   duty cycling.
//! * [`node`] — the whole sensor node: sample → (optionally filter/
//!   compress) → transmit, under three policies; computes battery lifetime
//!   (experiment E10: on-sensor filtering vs send-raw).
//! * [`intermittent`] — intermittent computing on harvested power:
//!   checkpointing progress to NVM so work survives power failures, with
//!   the forward-progress guarantee tested (§2.1's "leverage intermittent
//!   power").

pub mod intermittent;
pub mod mcu;
pub mod node;
pub mod power;
pub mod radio;

pub use intermittent::{IntermittentTask, RunStats};
pub use mcu::Mcu;
pub use node::{FaultedNodeOutcome, NodeObservation, NodePolicy, SensorNode, SensorNodeConfig};
pub use power::{Battery, Harvester};
pub use radio::{Radio, RadioTech};
