//! Microcontroller energy model with duty cycling.

use serde::{Deserialize, Serialize};

use xxi_core::units::{Energy, Power, Seconds};

/// A sensor-node MCU.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Mcu {
    /// Power while actively computing.
    pub active_power: Power,
    /// Power while asleep (RAM retention + RTC).
    pub sleep_power: Power,
    /// Energy per executed operation.
    pub energy_per_op: Energy,
    /// Operations per second when active.
    pub ops_per_sec: f64,
}

impl Mcu {
    /// A Cortex-M-class MCU: 5 mW active at 50 Mops/s (100 pJ/op),
    /// 5 µW asleep.
    pub fn cortex_m_class() -> Mcu {
        Mcu {
            active_power: Power::from_mw(5.0),
            sleep_power: Power::from_uw(5.0),
            energy_per_op: Energy::from_pj(100.0),
            ops_per_sec: 50e6,
        }
    }

    /// Energy to execute `ops` operations.
    pub fn compute_energy(&self, ops: u64) -> Energy {
        self.energy_per_op * ops as f64
    }

    /// Time to execute `ops` operations.
    pub fn compute_time(&self, ops: u64) -> Seconds {
        Seconds(ops as f64 / self.ops_per_sec)
    }

    /// Energy over an interval where the MCU is active for `active` of
    /// `total` (sleeping the rest).
    pub fn duty_cycle_energy(&self, active: Seconds, total: Seconds) -> Energy {
        assert!(active.value() <= total.value());
        self.active_power * active + self.sleep_power * (total - active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_self_consistent() {
        // active_power ≈ energy_per_op × ops_per_sec.
        let m = Mcu::cortex_m_class();
        let implied = m.energy_per_op.value() * m.ops_per_sec;
        assert!((implied - m.active_power.value()).abs() / m.active_power.value() < 1e-9);
    }

    #[test]
    fn compute_energy_and_time() {
        let m = Mcu::cortex_m_class();
        let e = m.compute_energy(1_000_000);
        assert!((e.value() - 1e-4).abs() < 1e-12); // 1 Mop × 100 pJ = 100 µJ
        let t = m.compute_time(50_000_000);
        assert!((t.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duty_cycling_saves_orders_of_magnitude() {
        let m = Mcu::cortex_m_class();
        let always_on = m.duty_cycle_energy(Seconds(3600.0), Seconds(3600.0));
        let one_percent = m.duty_cycle_energy(Seconds(36.0), Seconds(3600.0));
        assert!(always_on.value() / one_percent.value() > 50.0);
    }

    #[test]
    #[should_panic]
    fn active_exceeding_total_rejected() {
        Mcu::cortex_m_class().duty_cycle_energy(Seconds(2.0), Seconds(1.0));
    }
}
