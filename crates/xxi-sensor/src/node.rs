//! The whole sensor node: sample → process → transmit — experiment E10.
//!
//! Three policies for a node that samples a biometric-like signal and must
//! get clinically relevant information to the uplink:
//!
//! * [`NodePolicy::SendRaw`] — transmit every sample. Radio-dominated.
//! * [`NodePolicy::FilterThenSend`] — run an on-node anomaly detector
//!   (moving-mean threshold) and transmit only anomalous windows. Trades
//!   MCU ops (pJ) for radio bits (nJ) — the paper's central sensor claim.
//! * [`NodePolicy::CompressThenSend`] — delta-encode and transmit
//!   everything (lossless middle ground, modeled with a calibrated
//!   compression ratio).
//!
//! The simulation marches a battery through sampling epochs and reports
//! lifetime, plus the detector's recall so the energy saving is shown not
//! to come from dropping the signal.

use serde::{Deserialize, Serialize};

use crate::mcu::Mcu;
use crate::power::Battery;
use crate::radio::Radio;
use xxi_approx::signal::SignalGen;
use xxi_core::units::{Energy, Seconds};

/// Processing/transmission policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodePolicy {
    /// Transmit every raw sample.
    SendRaw,
    /// Detect anomalies on-node; transmit only anomalous windows.
    FilterThenSend,
    /// Delta-compress and transmit everything.
    CompressThenSend,
}

/// Node configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SensorNodeConfig {
    /// Sampling rate in Hz.
    pub sample_hz: f64,
    /// Bits per raw sample.
    pub bits_per_sample: u32,
    /// Samples per processing/transmit epoch.
    pub epoch_samples: usize,
    /// Detection window for the moving-mean filter.
    pub window: usize,
    /// Detection threshold as a multiple of the running RMS.
    pub threshold: f64,
    /// Compression ratio for [`NodePolicy::CompressThenSend`].
    pub compression_ratio: f64,
    /// MCU operations per sample for filtering.
    pub ops_per_sample_filter: u64,
    /// MCU operations per sample for compression.
    pub ops_per_sample_compress: u64,
}

impl Default for SensorNodeConfig {
    fn default() -> SensorNodeConfig {
        SensorNodeConfig {
            sample_hz: 250.0, // ECG-class
            bits_per_sample: 12,
            epoch_samples: 250,
            window: 8,
            threshold: 1.8,
            compression_ratio: 3.0,
            ops_per_sample_filter: 50,
            ops_per_sample_compress: 200,
        }
    }
}

/// Result of simulating one node to battery exhaustion (or the horizon).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// Battery lifetime.
    pub lifetime: Seconds,
    /// Bits transmitted in total.
    pub bits_sent: u64,
    /// Fraction of true anomaly windows that were reported (recall);
    /// 1.0 for policies that send everything.
    pub recall: f64,
    /// Total energy spent in the radio.
    pub radio_energy: Energy,
    /// Total energy spent computing.
    pub compute_energy: Energy,
}

/// The node simulator.
pub struct SensorNode {
    /// Node configuration.
    pub cfg: SensorNodeConfig,
    /// MCU model.
    pub mcu: Mcu,
    /// Radio model.
    pub radio: Radio,
}

impl SensorNode {
    /// Build a node.
    pub fn new(cfg: SensorNodeConfig, mcu: Mcu, radio: Radio) -> SensorNode {
        assert!(cfg.epoch_samples > 0 && cfg.window > 0);
        SensorNode { cfg, mcu, radio }
    }

    /// Simulate under `policy` until `battery` dies or `horizon` elapses.
    pub fn run(
        &self,
        policy: NodePolicy,
        mut battery: Battery,
        horizon: Seconds,
        seed: u64,
    ) -> NodeOutcome {
        let cfg = &self.cfg;
        let epoch_dt = Seconds(cfg.epoch_samples as f64 / cfg.sample_hz);
        // Clinically interesting events are rare: ~5% of epochs.
        let gen = SignalGen {
            anomaly_rate: 0.0002,
            ..SignalGen::default()
        };
        let mut elapsed = 0.0f64;
        let mut bits_sent = 0u64;
        let mut radio_energy = Energy::ZERO;
        let mut compute_energy = Energy::ZERO;
        let mut anomaly_epochs = 0u64;
        let mut reported_anomaly_epochs = 0u64;
        let mut epoch_seed = seed;

        while elapsed < horizon.value() && !battery.dead() {
            epoch_seed = epoch_seed.wrapping_mul(6364136223846793005).wrapping_add(7);
            let (signal, mask) = gen.generate(cfg.epoch_samples, epoch_seed);
            let has_anomaly = mask.iter().any(|&m| m);
            if has_anomaly {
                anomaly_epochs += 1;
            }

            // Baseline sampling cost (ADC + store): 10 ops/sample.
            let mut ops = 10 * cfg.epoch_samples as u64;
            let mut bits = 0u64;
            let mut reported = false;

            match policy {
                NodePolicy::SendRaw => {
                    bits = cfg.epoch_samples as u64 * cfg.bits_per_sample as u64;
                    reported = has_anomaly;
                }
                NodePolicy::FilterThenSend => {
                    ops += cfg.ops_per_sample_filter * cfg.epoch_samples as u64;
                    if detect(&signal, cfg.window, cfg.threshold) {
                        bits = cfg.epoch_samples as u64 * cfg.bits_per_sample as u64;
                        reported = has_anomaly;
                    }
                }
                NodePolicy::CompressThenSend => {
                    ops += cfg.ops_per_sample_compress * cfg.epoch_samples as u64;
                    bits = (cfg.epoch_samples as f64 * cfg.bits_per_sample as f64
                        / cfg.compression_ratio) as u64;
                    reported = has_anomaly;
                }
            }

            let e_compute = self.mcu.compute_energy(ops);
            let e_radio = if bits > 0 {
                self.radio.tx_energy(bits)
            } else {
                Energy::ZERO
            };
            let e_sleep = self.mcu.sleep_power * epoch_dt;
            let e_total = e_compute + e_radio + e_sleep;
            if !battery.draw(e_total) {
                break;
            }
            compute_energy += e_compute;
            radio_energy += e_radio;
            bits_sent += bits;
            if reported && has_anomaly {
                reported_anomaly_epochs += 1;
            }
            elapsed += epoch_dt.value();
        }

        NodeOutcome {
            lifetime: Seconds(elapsed),
            bits_sent,
            recall: if anomaly_epochs == 0 {
                1.0
            } else {
                reported_anomaly_epochs as f64 / anomaly_epochs as f64
            },
            radio_energy,
            compute_energy,
        }
    }
}

/// Moving-mean-of-squares anomaly detector: fires when any window's RMS
/// exceeds `threshold ×` the epoch RMS baseline.
fn detect(signal: &[f64], window: usize, threshold: f64) -> bool {
    let epoch_ms = signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64;
    if epoch_ms == 0.0 {
        return false;
    }
    let mut acc = 0.0;
    for (i, x) in signal.iter().enumerate() {
        acc += x * x;
        if i >= window {
            acc -= signal[i - window] * signal[i - window];
        }
        let n = window.min(i + 1) as f64;
        if acc / n > threshold * threshold * epoch_ms {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::RadioTech;

    fn node() -> SensorNode {
        SensorNode::new(
            SensorNodeConfig::default(),
            Mcu::cortex_m_class(),
            Radio::new(RadioTech::BleClass),
        )
    }

    fn small_battery() -> Battery {
        Battery::new(Energy(1.0))
    }

    #[test]
    fn filtering_extends_lifetime_substantially() {
        // E10's headline: compute-then-send beats send-raw on lifetime.
        let n = node();
        let horizon = Seconds::from_hours(10_000.0);
        let raw = n.run(NodePolicy::SendRaw, small_battery(), horizon, 1);
        let filt = n.run(NodePolicy::FilterThenSend, small_battery(), horizon, 1);
        assert!(
            filt.lifetime.value() > 2.0 * raw.lifetime.value(),
            "filter {}h vs raw {}h",
            filt.lifetime.hours(),
            raw.lifetime.hours()
        );
        // And it's the radio that made the difference: bits per second of
        // lifetime drop by at least 5×.
        let raw_rate = raw.bits_sent as f64 / raw.lifetime.value();
        let filt_rate = filt.bits_sent as f64 / filt.lifetime.value();
        assert!(filt_rate < raw_rate / 5.0, "filt={filt_rate} raw={raw_rate}");
    }

    #[test]
    fn compression_lands_between() {
        let n = node();
        let horizon = Seconds::from_hours(10_000.0);
        let raw = n.run(NodePolicy::SendRaw, small_battery(), horizon, 2);
        let comp = n.run(NodePolicy::CompressThenSend, small_battery(), horizon, 2);
        let filt = n.run(NodePolicy::FilterThenSend, small_battery(), horizon, 2);
        assert!(comp.lifetime.value() > raw.lifetime.value());
        assert!(comp.lifetime.value() < filt.lifetime.value());
    }

    #[test]
    fn filtering_keeps_high_recall() {
        // The saving must not come from dropping the medical events.
        let n = node();
        let filt = n.run(
            NodePolicy::FilterThenSend,
            Battery::new(Energy(2.0)),
            Seconds::from_hours(10_000.0),
            3,
        );
        assert!(filt.recall > 0.9, "recall={}", filt.recall);
    }

    #[test]
    fn radio_dominates_raw_policy_energy() {
        let n = node();
        let raw = n.run(
            NodePolicy::SendRaw,
            small_battery(),
            Seconds::from_hours(10_000.0),
            4,
        );
        assert!(
            raw.radio_energy.value() > 3.0 * raw.compute_energy.value(),
            "radio={} compute={}",
            raw.radio_energy,
            raw.compute_energy
        );
    }

    #[test]
    fn horizon_caps_simulation() {
        let n = node();
        let out = n.run(
            NodePolicy::FilterThenSend,
            Battery::coin_cell(),
            Seconds(10.0),
            5,
        );
        assert!(out.lifetime.value() <= 10.0 + 1.1);
    }
}
