//! The whole sensor node: sample → process → transmit — experiment E10.
//!
//! Three policies for a node that samples a biometric-like signal and must
//! get clinically relevant information to the uplink:
//!
//! * [`NodePolicy::SendRaw`] — transmit every sample. Radio-dominated.
//! * [`NodePolicy::FilterThenSend`] — run an on-node anomaly detector
//!   (moving-mean threshold) and transmit only anomalous windows. Trades
//!   MCU ops (pJ) for radio bits (nJ) — the paper's central sensor claim.
//! * [`NodePolicy::CompressThenSend`] — delta-encode and transmit
//!   everything (lossless middle ground, modeled with a calibrated
//!   compression ratio).
//!
//! The simulation marches a battery through sampling epochs and reports
//! lifetime, plus the detector's recall so the energy saving is shown not
//! to come from dropping the signal.
//!
//! The node is also a fault-injection client ([`SensorNode::run_faulted`]):
//! component 0 of a [`FaultPlan`] is the radio. During a brownout (kill or
//! pause) the node buffers its payload, burns a short probe transmission
//! discovering the dead link, and flushes the backlog — bits *and* pending
//! anomaly reports — once the radio recovers; a slowdown stretches transmit
//! energy (link-layer retransmissions). [`SensorNode::run`] and
//! [`SensorNode::run_observed`] are the empty-plan special case,
//! bit-identical to the pre-fault-seam behavior.

use serde::{Deserialize, Serialize};

use crate::mcu::Mcu;
use crate::power::{Battery, Harvester};
use crate::radio::Radio;
use xxi_approx::signal::SignalGen;
use xxi_core::des::fault::{FaultInjector, FaultPlan};
use xxi_core::metrics::Metrics;
use xxi_core::obs::{EnergyLedger, Layer, LogHistogram, Trace};
use xxi_core::time::SimTime;
use xxi_core::units::{Energy, Seconds};

/// Processing/transmission policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodePolicy {
    /// Transmit every raw sample.
    SendRaw,
    /// Detect anomalies on-node; transmit only anomalous windows.
    FilterThenSend,
    /// Delta-compress and transmit everything.
    CompressThenSend,
}

/// Node configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SensorNodeConfig {
    /// Sampling rate in Hz.
    pub sample_hz: f64,
    /// Bits per raw sample.
    pub bits_per_sample: u32,
    /// Samples per processing/transmit epoch.
    pub epoch_samples: usize,
    /// Detection window for the moving-mean filter.
    pub window: usize,
    /// Detection threshold as a multiple of the running RMS.
    pub threshold: f64,
    /// Compression ratio for [`NodePolicy::CompressThenSend`].
    pub compression_ratio: f64,
    /// MCU operations per sample for filtering.
    pub ops_per_sample_filter: u64,
    /// MCU operations per sample for compression.
    pub ops_per_sample_compress: u64,
}

impl Default for SensorNodeConfig {
    fn default() -> SensorNodeConfig {
        SensorNodeConfig {
            sample_hz: 250.0, // ECG-class
            bits_per_sample: 12,
            epoch_samples: 250,
            window: 8,
            threshold: 1.8,
            compression_ratio: 3.0,
            ops_per_sample_filter: 50,
            ops_per_sample_compress: 200,
        }
    }
}

/// Result of simulating one node to battery exhaustion (or the horizon).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// Battery lifetime.
    pub lifetime: Seconds,
    /// Bits transmitted in total.
    pub bits_sent: u64,
    /// Fraction of true anomaly windows that were reported (recall);
    /// 1.0 for policies that send everything.
    pub recall: f64,
    /// Total energy spent in the radio.
    pub radio_energy: Energy,
    /// Total energy spent computing.
    pub compute_energy: Energy,
}

/// Telemetry from one [`SensorNode::run_observed`] simulation.
#[derive(Clone, Debug)]
pub struct NodeObservation {
    /// Energy attribution: `mcu_compute` (compute), `radio_tx` (network),
    /// `mcu_sleep` (idle), and `harvester` (harvest) when harvesting.
    pub ledger: EnergyLedger,
    /// Total joules drawn per epoch.
    pub epoch_energy: LogHistogram,
    /// One `epoch` span per epoch plus a `tx` instant per transmission.
    /// Trace timestamps saturate after ~200 simulated days (the `SimTime`
    /// horizon); histograms and the ledger are unaffected.
    pub trace: Trace,
}

/// Result of a fault-injected node run ([`SensorNode::run_faulted`]).
#[derive(Clone, Debug)]
pub struct FaultedNodeOutcome {
    /// Lifetime / bits / recall outcome, as for [`SensorNode::run`].
    pub outcome: NodeOutcome,
    /// Epochs whose transmission was deferred by a radio brownout.
    pub deferred_epochs: u64,
    /// Energy burned probing a browned-out radio (part of the battery
    /// draw, excluded from [`NodeOutcome::radio_energy`]'s useful bits).
    pub probe_energy: Energy,
    /// `sensor.*` counters plus the fault accounting
    /// (`fault.scheduled == fault.fired + fault.cancelled`).
    pub metrics: Metrics,
}

/// The radio is fault-plan component 0.
const RADIO: u32 = 0;

/// Bits in the probe frame a node wastes discovering a browned-out link.
const PROBE_BITS: u64 = 64;

/// The node simulator.
pub struct SensorNode {
    /// Node configuration.
    pub cfg: SensorNodeConfig,
    /// MCU model.
    pub mcu: Mcu,
    /// Radio model.
    pub radio: Radio,
}

impl SensorNode {
    /// Build a node.
    pub fn new(cfg: SensorNodeConfig, mcu: Mcu, radio: Radio) -> SensorNode {
        assert!(cfg.epoch_samples > 0 && cfg.window > 0);
        SensorNode { cfg, mcu, radio }
    }

    /// Simulate under `policy` until `battery` dies or `horizon` elapses.
    pub fn run(
        &self,
        policy: NodePolicy,
        battery: Battery,
        horizon: Seconds,
        seed: u64,
    ) -> NodeOutcome {
        self.run_observed(policy, battery, None, horizon, seed, Trace::disabled())
            .0
    }

    /// Like [`SensorNode::run`], but with full telemetry: an energy ledger
    /// across harvest/compute/transmit/idle, a per-epoch energy histogram,
    /// and (when `trace` is enabled) epoch spans and transmit instants on
    /// the simulated clock. An optional `harvester` recharges the battery
    /// each epoch, with the captured energy on the ledger's harvest layer.
    pub fn run_observed(
        &self,
        policy: NodePolicy,
        battery: Battery,
        harvester: Option<Harvester>,
        horizon: Seconds,
        seed: u64,
        trace: Trace,
    ) -> (NodeOutcome, NodeObservation) {
        let (out, obs, _) = self.run_inner(
            policy,
            battery,
            harvester,
            horizon,
            seed,
            trace,
            &FaultPlan::new(),
        );
        (out, obs)
    }

    /// [`SensorNode::run`] with the radio exposed to a [`FaultPlan`]
    /// (component 0 = the radio). During a brownout the payload is
    /// buffered, a [`PROBE_BITS`]-bit probe is wasted discovering the dead
    /// link, and the backlog — bits and pending anomaly reports — flushes
    /// once the radio recovers; a slowdown multiplies transmit energy.
    /// With an empty plan this is bit-identical to the fault-free run.
    /// Fault times must stay under the `SimTime` horizon (~200 days).
    pub fn run_faulted(
        &self,
        policy: NodePolicy,
        battery: Battery,
        horizon: Seconds,
        seed: u64,
        plan: &FaultPlan,
    ) -> FaultedNodeOutcome {
        let (outcome, _, stats) = self.run_inner(
            policy,
            battery,
            None,
            horizon,
            seed,
            Trace::disabled(),
            plan,
        );
        let mut metrics = Metrics::new();
        metrics.count("sensor.epochs", stats.epochs);
        metrics.count("sensor.deferred_epochs", stats.deferred);
        metrics.count("sensor.anomaly_epochs", stats.anomaly_epochs);
        metrics.count("sensor.reported_epochs", stats.reported_epochs);
        stats.faults.record(&mut metrics);
        FaultedNodeOutcome {
            outcome,
            deferred_epochs: stats.deferred,
            probe_energy: stats.probe_energy,
            metrics,
        }
    }

    #[allow(clippy::too_many_arguments)] // the one shared body behind run/run_observed/run_faulted
    fn run_inner(
        &self,
        policy: NodePolicy,
        mut battery: Battery,
        mut harvester: Option<Harvester>,
        horizon: Seconds,
        seed: u64,
        trace: Trace,
        plan: &FaultPlan,
    ) -> (NodeOutcome, NodeObservation, FaultStats) {
        let cfg = &self.cfg;
        let epoch_dt = Seconds(cfg.epoch_samples as f64 / cfg.sample_hz);
        // Clinically interesting events are rare: ~5% of epochs.
        let gen = SignalGen {
            anomaly_rate: 0.0002,
            ..SignalGen::default()
        };
        let mut elapsed = 0.0f64;
        let mut bits_sent = 0u64;
        let mut radio_energy = Energy::ZERO;
        let mut compute_energy = Energy::ZERO;
        let mut anomaly_epochs = 0u64;
        let mut reported_anomaly_epochs = 0u64;
        let mut epoch_seed = seed;
        let mut ledger = EnergyLedger::new();
        let mut epoch_energy = LogHistogram::new();
        let mut trace = trace;
        let mut faults = FaultInjector::new(plan, 1);
        let mut pending_bits = 0u64;
        let mut pending_reports = 0u64;
        let mut deferred = 0u64;
        let mut probe_energy = Energy::ZERO;
        let mut epochs = 0u64;

        while elapsed < horizon.value() && !battery.dead() {
            epochs += 1;
            if let Some(h) = harvester.as_mut() {
                let e_h = h.harvest(epoch_dt);
                battery.charge(e_h);
                ledger.charge("harvester", Layer::Harvest, e_h);
            }
            epoch_seed = epoch_seed.wrapping_mul(6364136223846793005).wrapping_add(7);
            let (signal, mask) = gen.generate(cfg.epoch_samples, epoch_seed);
            let has_anomaly = mask.iter().any(|&m| m);
            if has_anomaly {
                anomaly_epochs += 1;
            }

            // Baseline sampling cost (ADC + store): 10 ops/sample.
            let mut ops = 10 * cfg.epoch_samples as u64;
            let mut bits = 0u64;
            let mut reported = false;

            match policy {
                NodePolicy::SendRaw => {
                    bits = cfg.epoch_samples as u64 * cfg.bits_per_sample as u64;
                    reported = has_anomaly;
                }
                NodePolicy::FilterThenSend => {
                    ops += cfg.ops_per_sample_filter * cfg.epoch_samples as u64;
                    if detect(&signal, cfg.window, cfg.threshold) {
                        bits = cfg.epoch_samples as u64 * cfg.bits_per_sample as u64;
                        reported = has_anomaly;
                    }
                }
                NodePolicy::CompressThenSend => {
                    ops += cfg.ops_per_sample_compress * cfg.epoch_samples as u64;
                    bits = (cfg.epoch_samples as f64 * cfg.bits_per_sample as f64
                        / cfg.compression_ratio) as u64;
                    reported = has_anomaly;
                }
            }

            // Radio health at the epoch boundary; brownouts defer the
            // payload and cost a probe frame discovering the dead link.
            let now = SimTime::from_seconds(Seconds(elapsed));
            faults.advance(now);
            let radio_up = faults.is_up(RADIO, now);
            let mut tx_bits = 0u64;
            let mut e_probe = Energy::ZERO;
            if radio_up {
                tx_bits = bits + pending_bits;
                pending_bits = 0;
            } else if bits > 0 || pending_bits > 0 {
                pending_bits += bits;
                e_probe = self.radio.tx_energy(PROBE_BITS);
                deferred += 1;
            }

            let e_compute = self.mcu.compute_energy(ops);
            let e_radio = if tx_bits > 0 {
                self.radio.tx_energy(tx_bits) * faults.slowdown(RADIO, now)
            } else {
                Energy::ZERO
            };
            let e_sleep = self.mcu.sleep_power * epoch_dt;
            let e_total = e_compute + e_radio + e_sleep + e_probe;
            if !battery.draw(e_total) {
                break;
            }
            compute_energy += e_compute;
            radio_energy += e_radio;
            probe_energy += e_probe;
            bits_sent += tx_bits;
            if reported && has_anomaly {
                if radio_up {
                    reported_anomaly_epochs += 1;
                } else {
                    pending_reports += 1;
                }
            }
            if radio_up && pending_reports > 0 {
                // The backlog just flushed: its anomaly reports arrive now.
                reported_anomaly_epochs += pending_reports;
                pending_reports = 0;
            }

            ledger.charge("mcu_compute", Layer::Compute, e_compute);
            ledger.charge("mcu_sleep", Layer::Idle, e_sleep);
            if tx_bits > 0 {
                ledger.charge("radio_tx", Layer::Network, e_radio);
            }
            if e_probe.value() > 0.0 {
                ledger.charge("radio_probe", Layer::Network, e_probe);
            }
            epoch_energy.add(e_total.value());
            if trace.is_enabled() {
                let t0 = SimTime::from_seconds(Seconds(elapsed));
                let t1 = SimTime::from_seconds(Seconds(elapsed + epoch_dt.value()));
                trace.span_args("epoch", "sensor", 0, t0, t1, &[("soc", battery.soc())]);
                if tx_bits > 0 {
                    trace.instant_args("tx", "sensor", 1, t1, &[("bits", tx_bits as f64)]);
                }
            }

            elapsed += epoch_dt.value();
        }
        // Fire any plan remainder so the accounting covers the whole plan.
        faults.advance(SimTime::MAX);

        let outcome = NodeOutcome {
            lifetime: Seconds(elapsed),
            bits_sent,
            recall: if anomaly_epochs == 0 {
                1.0
            } else {
                reported_anomaly_epochs as f64 / anomaly_epochs as f64
            },
            radio_energy,
            compute_energy,
        };
        (
            outcome,
            NodeObservation {
                ledger,
                epoch_energy,
                trace,
            },
            FaultStats {
                epochs,
                deferred,
                anomaly_epochs,
                reported_epochs: reported_anomaly_epochs,
                probe_energy,
                faults,
            },
        )
    }
}

/// Fault-path bookkeeping threaded out of `run_inner`.
struct FaultStats {
    epochs: u64,
    deferred: u64,
    anomaly_epochs: u64,
    reported_epochs: u64,
    probe_energy: Energy,
    faults: FaultInjector,
}

/// Moving-mean-of-squares anomaly detector: fires when any window's RMS
/// exceeds `threshold ×` the epoch RMS baseline.
fn detect(signal: &[f64], window: usize, threshold: f64) -> bool {
    let epoch_ms = signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64;
    if epoch_ms == 0.0 {
        return false;
    }
    let mut acc = 0.0;
    for (i, x) in signal.iter().enumerate() {
        acc += x * x;
        if i >= window {
            acc -= signal[i - window] * signal[i - window];
        }
        let n = window.min(i + 1) as f64;
        if acc / n > threshold * threshold * epoch_ms {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::RadioTech;

    fn node() -> SensorNode {
        SensorNode::new(
            SensorNodeConfig::default(),
            Mcu::cortex_m_class(),
            Radio::new(RadioTech::BleClass),
        )
    }

    fn small_battery() -> Battery {
        Battery::new(Energy(1.0))
    }

    #[test]
    fn filtering_extends_lifetime_substantially() {
        // E10's headline: compute-then-send beats send-raw on lifetime.
        let n = node();
        let horizon = Seconds::from_hours(10_000.0);
        let raw = n.run(NodePolicy::SendRaw, small_battery(), horizon, 1);
        let filt = n.run(NodePolicy::FilterThenSend, small_battery(), horizon, 1);
        assert!(
            filt.lifetime.value() > 2.0 * raw.lifetime.value(),
            "filter {}h vs raw {}h",
            filt.lifetime.hours(),
            raw.lifetime.hours()
        );
        // And it's the radio that made the difference: bits per second of
        // lifetime drop by at least 5×.
        let raw_rate = raw.bits_sent as f64 / raw.lifetime.value();
        let filt_rate = filt.bits_sent as f64 / filt.lifetime.value();
        assert!(
            filt_rate < raw_rate / 5.0,
            "filt={filt_rate} raw={raw_rate}"
        );
    }

    #[test]
    fn compression_lands_between() {
        let n = node();
        let horizon = Seconds::from_hours(10_000.0);
        let raw = n.run(NodePolicy::SendRaw, small_battery(), horizon, 2);
        let comp = n.run(NodePolicy::CompressThenSend, small_battery(), horizon, 2);
        let filt = n.run(NodePolicy::FilterThenSend, small_battery(), horizon, 2);
        assert!(comp.lifetime.value() > raw.lifetime.value());
        assert!(comp.lifetime.value() < filt.lifetime.value());
    }

    #[test]
    fn filtering_keeps_high_recall() {
        // The saving must not come from dropping the medical events.
        let n = node();
        let filt = n.run(
            NodePolicy::FilterThenSend,
            Battery::new(Energy(2.0)),
            Seconds::from_hours(10_000.0),
            3,
        );
        assert!(filt.recall > 0.9, "recall={}", filt.recall);
    }

    #[test]
    fn radio_dominates_raw_policy_energy() {
        let n = node();
        let raw = n.run(
            NodePolicy::SendRaw,
            small_battery(),
            Seconds::from_hours(10_000.0),
            4,
        );
        assert!(
            raw.radio_energy.value() > 3.0 * raw.compute_energy.value(),
            "radio={} compute={}",
            raw.radio_energy,
            raw.compute_energy
        );
    }

    #[test]
    fn observed_run_matches_plain_run_and_accounts_energy() {
        let n = node();
        let horizon = Seconds::from_hours(1_000.0);
        let plain = n.run(NodePolicy::FilterThenSend, small_battery(), horizon, 6);
        let (out, obs) = n.run_observed(
            NodePolicy::FilterThenSend,
            small_battery(),
            None,
            horizon,
            6,
            Trace::disabled(),
        );
        // run() is run_observed() without a harvester: identical outcome.
        assert_eq!(out.lifetime.value(), plain.lifetime.value());
        assert_eq!(out.bits_sent, plain.bits_sent);
        // The ledger's compute/network layers equal the outcome's totals.
        assert!(
            (obs.ledger.layer_total(Layer::Compute).value() - out.compute_energy.value()).abs()
                < 1e-12
        );
        assert!(
            (obs.ledger.layer_total(Layer::Network).value() - out.radio_energy.value()).abs()
                < 1e-12
        );
        assert!(obs.ledger.layer_total(Layer::Idle).value() > 0.0);
        assert!(obs.epoch_energy.count() > 0);
    }

    #[test]
    fn harvesting_extends_lifetime_and_lands_on_the_ledger() {
        use crate::power::HarvestProfile;
        use xxi_core::units::Power;
        let n = node();
        let horizon = Seconds::from_hours(100.0);
        let (plain, _) = n.run_observed(
            NodePolicy::FilterThenSend,
            small_battery(),
            None,
            horizon,
            7,
            Trace::disabled(),
        );
        let h = Harvester::new(HarvestProfile::Constant, Power::from_uw(50.0), 100, 7);
        let (harvested, obs) = n.run_observed(
            NodePolicy::FilterThenSend,
            small_battery(),
            Some(h),
            horizon,
            7,
            Trace::disabled(),
        );
        assert!(harvested.lifetime.value() > plain.lifetime.value());
        assert!(obs.ledger.layer_total(Layer::Harvest).value() > 0.0);
        // Harvest is income: excluded from spend.
        assert!(obs.ledger.total_spent().value() > 0.0);
    }

    #[test]
    fn epoch_trace_has_spans_and_tx_instants() {
        let n = node();
        let (_, obs) = n.run_observed(
            NodePolicy::SendRaw,
            small_battery(),
            None,
            Seconds(100.0),
            8,
            Trace::enabled(),
        );
        assert!(!obs.trace.is_empty());
        let json = obs.trace.chrome_json();
        assert!(json.contains("\"epoch\""), "{json}");
        assert!(json.contains("\"tx\""), "{json}");
    }

    #[test]
    fn empty_plan_run_faulted_matches_run_bit_for_bit() {
        let n = node();
        let horizon = Seconds::from_hours(1_000.0);
        let plain = n.run(NodePolicy::FilterThenSend, small_battery(), horizon, 21);
        let faulted = n.run_faulted(
            NodePolicy::FilterThenSend,
            small_battery(),
            horizon,
            21,
            &FaultPlan::new(),
        );
        assert_eq!(
            plain.lifetime.value().to_bits(),
            faulted.outcome.lifetime.value().to_bits()
        );
        assert_eq!(plain.bits_sent, faulted.outcome.bits_sent);
        assert_eq!(
            plain.radio_energy.value().to_bits(),
            faulted.outcome.radio_energy.value().to_bits()
        );
        assert_eq!(faulted.deferred_epochs, 0);
        assert_eq!(faulted.probe_energy.value(), 0.0);
    }

    #[test]
    fn a_brownout_defers_bits_then_flushes_the_backlog() {
        use xxi_core::des::fault::Fault;
        let n = node();
        let horizon = Seconds(3_600.0);
        // Radio pauses (brownout) from t = 600 s for 1200 s.
        let mut plan = FaultPlan::new();
        plan.at(
            SimTime::from_seconds(Seconds(600.0)),
            0,
            Fault::Pause {
                for_time: SimTime::from_seconds(Seconds(1_200.0)),
            },
        );
        let free = n.run_faulted(
            NodePolicy::SendRaw,
            Battery::new(Energy(5.0)),
            horizon,
            22,
            &FaultPlan::new(),
        );
        let browned = n.run_faulted(
            NodePolicy::SendRaw,
            Battery::new(Energy(5.0)),
            horizon,
            22,
            &plan,
        );
        // SendRaw transmits every epoch, so every brownout epoch defers.
        assert!(browned.deferred_epochs > 100, "{}", browned.deferred_epochs);
        assert!(browned.probe_energy.value() > 0.0);
        // No bits are dropped — the backlog flushes after recovery — but
        // the probes drain the battery: same horizon, same bits, more
        // energy gone.
        assert_eq!(browned.outcome.bits_sent, free.outcome.bits_sent);
        assert_eq!(
            browned.metrics.counter("fault.scheduled"),
            browned.metrics.counter("fault.fired") + browned.metrics.counter("fault.cancelled")
        );
    }

    #[test]
    fn a_killed_radio_strands_the_backlog_and_recall() {
        use xxi_core::des::fault::Fault;
        let n = node();
        let horizon = Seconds::from_hours(100.0);
        let mut plan = FaultPlan::new();
        plan.at(SimTime::from_seconds(Seconds(60.0)), 0, Fault::Kill);
        let dead = n.run_faulted(
            NodePolicy::SendRaw,
            Battery::new(Energy(5.0)),
            horizon,
            23,
            &plan,
        );
        let free = n.run_faulted(
            NodePolicy::SendRaw,
            Battery::new(Energy(5.0)),
            horizon,
            23,
            &FaultPlan::new(),
        );
        // Everything after t=60 s is deferred forever.
        assert!(dead.outcome.bits_sent < free.outcome.bits_sent / 10);
        assert!(dead.deferred_epochs > 0);
        // Anomalies after the kill are never reported.
        assert!(
            dead.outcome.recall < 1.0 || dead.metrics.counter("sensor.anomaly_epochs") == 0,
            "recall={}",
            dead.outcome.recall
        );
    }

    #[test]
    fn horizon_caps_simulation() {
        let n = node();
        let out = n.run(
            NodePolicy::FilterThenSend,
            Battery::coin_cell(),
            Seconds(10.0),
            5,
        );
        assert!(out.lifetime.value() <= 10.0 + 1.1);
    }
}
