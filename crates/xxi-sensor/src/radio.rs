//! Radio models: the energy cost of getting a bit off the node.
//!
//! The §2.1 claim under test in experiment E10 — "the energy required to
//! communicate data often outweighs that of computation" — is a statement
//! about these numbers: tens to hundreds of nanojoules per transmitted bit
//! versus picojoules per MCU operation, a gap of 3–5 orders of magnitude.
//! Calibration is to published link budgets of each technology class.

use serde::{Deserialize, Serialize};

use xxi_core::units::{Energy, Seconds};

/// Radio technology class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioTech {
    /// Bluetooth-Low-Energy-class short-range radio.
    BleClass,
    /// 802.15.4/Zigbee-class mesh radio.
    ZigbeeClass,
    /// LoRa-class long-range low-rate radio.
    LoraClass,
    /// WiFi-class high-rate radio.
    WifiClass,
}

/// A radio instance.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Radio {
    /// Technology.
    pub tech: RadioTech,
    /// Transmit energy per bit.
    pub tx_per_bit: Energy,
    /// Fixed energy to wake the radio and acquire the link, per packet
    /// burst.
    pub startup: Energy,
    /// Data rate in bits/s.
    pub rate_bps: f64,
}

impl Radio {
    /// Calibrated parameters per class.
    pub fn new(tech: RadioTech) -> Radio {
        match tech {
            // BLE: ~10-30 nJ/bit at 1 Mb/s, small connection events.
            RadioTech::BleClass => Radio {
                tech,
                tx_per_bit: Energy::from_nj(20.0),
                startup: Energy::from_uj(50.0),
                rate_bps: 1e6,
            },
            // Zigbee: ~100-200 nJ/bit at 250 kb/s.
            RadioTech::ZigbeeClass => Radio {
                tech,
                tx_per_bit: Energy::from_nj(150.0),
                startup: Energy::from_uj(100.0),
                rate_bps: 250e3,
            },
            // LoRa: millijoules per small packet ⇒ ~5 µJ/bit at 5 kb/s.
            RadioTech::LoraClass => Radio {
                tech,
                tx_per_bit: Energy::from_uj(5.0),
                startup: Energy::from_uj(200.0),
                rate_bps: 5e3,
            },
            // WiFi: efficient per bit (~5 nJ) but heavy startup.
            RadioTech::WifiClass => Radio {
                tech,
                tx_per_bit: Energy::from_nj(5.0),
                startup: Energy::from_mj(2.0),
                rate_bps: 20e6,
            },
        }
    }

    /// Energy to transmit one burst of `bits`.
    pub fn tx_energy(&self, bits: u64) -> Energy {
        self.startup + self.tx_per_bit * bits as f64
    }

    /// Airtime of a burst of `bits`.
    pub fn tx_time(&self, bits: u64) -> Seconds {
        Seconds(bits as f64 / self.rate_bps)
    }

    /// The burst size (bits) above which this radio beats `other` per
    /// burst, if any: solves `startup + e·b = startup' + e'·b`.
    pub fn breakeven_bits(&self, other: &Radio) -> Option<u64> {
        let ds = self.startup.value() - other.startup.value();
        let de = other.tx_per_bit.value() - self.tx_per_bit.value();
        if ds <= 0.0 {
            return if de >= 0.0 { Some(0) } else { None };
        }
        if de <= 0.0 {
            return None;
        }
        Some((ds / de).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_bit_energy_ordering() {
        let ble = Radio::new(RadioTech::BleClass);
        let zig = Radio::new(RadioTech::ZigbeeClass);
        let lora = Radio::new(RadioTech::LoraClass);
        let wifi = Radio::new(RadioTech::WifiClass);
        assert!(wifi.tx_per_bit.value() < ble.tx_per_bit.value());
        assert!(ble.tx_per_bit.value() < zig.tx_per_bit.value());
        assert!(zig.tx_per_bit.value() < lora.tx_per_bit.value());
    }

    #[test]
    fn radio_bit_vs_compute_op_gap() {
        // The §2.1 energy argument: a BLE bit (20 nJ) vs an MCU op (~10 pJ
        // class): ≥3 orders of magnitude.
        let ble = Radio::new(RadioTech::BleClass);
        let mcu_op = Energy::from_pj(10.0);
        assert!(ble.tx_per_bit.value() / mcu_op.value() >= 1e3);
    }

    #[test]
    fn small_bursts_dominated_by_startup() {
        let wifi = Radio::new(RadioTech::WifiClass);
        let small = wifi.tx_energy(80); // 10 bytes
        assert!(small.value() / wifi.startup.value() < 1.01);
        let big = wifi.tx_energy(8_000_000); // 1 MB
        assert!(big.value() > 10.0 * wifi.startup.value());
    }

    #[test]
    fn wifi_beats_ble_only_for_big_bursts() {
        let wifi = Radio::new(RadioTech::WifiClass);
        let ble = Radio::new(RadioTech::BleClass);
        let b = wifi.breakeven_bits(&ble).expect("crossover exists");
        // (2 mJ − 50 µJ)/(20 nJ − 5 nJ) = 130 kbit.
        assert!((100_000..200_000).contains(&b), "b={b}");
        assert!(wifi.tx_energy(b + 1000).value() < ble.tx_energy(b + 1000).value());
        assert!(wifi.tx_energy(1_000).value() > ble.tx_energy(1_000).value());
    }

    #[test]
    fn airtime_matches_rate() {
        let zig = Radio::new(RadioTech::ZigbeeClass);
        let t = zig.tx_time(250_000);
        assert!((t.value() - 1.0).abs() < 1e-12);
    }
}
