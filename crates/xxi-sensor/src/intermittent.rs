//! Intermittent computing on harvested power.
//!
//! §2.1 names "systems that can leverage intermittent power (e.g., from
//! harvested energy)" as a new opportunity. The canonical problem: a task
//! must make progress across power failures that wipe volatile state. The
//! canonical solution: checkpoint progress to NVM (there is no battery to
//! flush caches with — state must already be durable when power dies).
//!
//! The model: a task of `total_steps` steps runs off a capacitor charged by
//! a bursty harvester. Each step costs energy; checkpointing every
//! `interval` steps costs extra (an NVM write). When the capacitor runs
//! dry mid-interval, volatile progress since the last checkpoint is lost.
//! Too-rare checkpoints risk **non-termination** (Sisyphus: each power-on
//! burst does less work than gets lost); too-frequent checkpoints waste
//! energy on NVM writes. The tests exhibit both regimes — this is the
//! forward-progress argument from the intermittent-computing literature
//! (Lucia & Ransford et al.) that the paper's sensor agenda builds on.

use serde::Serialize;

use xxi_core::rng::Rng64;
use xxi_core::units::Energy;

/// An intermittently-powered task.
#[derive(Clone, Debug, Serialize)]
pub struct IntermittentTask {
    /// Steps of work to complete.
    pub total_steps: u64,
    /// Energy per step of work.
    pub e_step: Energy,
    /// Energy per NVM checkpoint.
    pub e_checkpoint: Energy,
    /// Steps between checkpoints (`0` disables checkpointing).
    pub interval: u64,
    /// Capacitor capacity: the energy available per power-on burst.
    pub burst_energy: Energy,
}

/// Outcome of an intermittent run.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RunStats {
    /// Completed?
    pub finished: bool,
    /// Power-on bursts consumed.
    pub bursts: u64,
    /// Total steps executed (including re-executed lost work).
    pub steps_executed: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Total energy consumed.
    pub energy: Energy,
}

impl IntermittentTask {
    /// Run until completion or `max_bursts` power-on cycles.
    ///
    /// Burst sizes vary ±20% around `burst_energy` (harvester
    /// variability), seeded deterministically.
    pub fn run(&self, max_bursts: u64, seed: u64) -> RunStats {
        let mut rng = Rng64::new(seed);
        let mut durable_progress = 0u64; // checkpointed steps
        let mut bursts = 0u64;
        let mut steps_executed = 0u64;
        let mut checkpoints = 0u64;
        let mut energy = 0.0f64;

        while durable_progress < self.total_steps && bursts < max_bursts {
            bursts += 1;
            let mut budget = self.burst_energy.value() * rng.range_f64(0.8, 1.2);
            let mut volatile_progress = durable_progress;
            let mut since_ckpt = 0u64;

            while volatile_progress < self.total_steps {
                // One step of work.
                if budget < self.e_step.value() {
                    break; // power failure: volatile progress lost
                }
                budget -= self.e_step.value();
                energy += self.e_step.value();
                volatile_progress += 1;
                steps_executed += 1;
                since_ckpt += 1;

                let due = self.interval > 0 && since_ckpt >= self.interval;
                let done = volatile_progress == self.total_steps;
                if due || done {
                    if budget < self.e_checkpoint.value() {
                        break; // died during/before the checkpoint
                    }
                    budget -= self.e_checkpoint.value();
                    energy += self.e_checkpoint.value();
                    checkpoints += 1;
                    durable_progress = volatile_progress;
                    since_ckpt = 0;
                }
            }
        }

        RunStats {
            finished: durable_progress >= self.total_steps,
            bursts,
            steps_executed,
            checkpoints,
            energy: Energy(energy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(interval: u64) -> IntermittentTask {
        IntermittentTask {
            total_steps: 10_000,
            e_step: Energy::from_uj(1.0),
            e_checkpoint: Energy::from_uj(20.0),
            interval,
            burst_energy: Energy::from_mj(1.0), // ~1000 steps per burst
        }
    }

    #[test]
    fn checkpointing_guarantees_forward_progress() {
        let t = task(100);
        let out = t.run(100, 1);
        assert!(out.finished, "must finish: {out:?}");
        // ~10 bursts of ~1000 steps each.
        assert!(out.bursts >= 9 && out.bursts <= 20, "bursts={}", out.bursts);
        // Re-execution waste is bounded by interval per burst.
        assert!(out.steps_executed < 10_000 + 100 * out.bursts);
    }

    #[test]
    fn no_checkpointing_means_sisyphus() {
        // Without checkpoints (interval 0 ⇒ only the final step checkpoint
        // matters), a 10_000-step task cannot finish on ~1000-step bursts:
        // all volatile progress is lost every time.
        let t = task(0);
        let out = t.run(200, 2);
        assert!(!out.finished, "Sisyphus must not finish: {out:?}");
        // It burned energy re-executing the same prefix.
        assert!(out.steps_executed > 100_000);
        assert_eq!(out.checkpoints, 0);
    }

    #[test]
    fn too_frequent_checkpoints_waste_energy() {
        let sparse = task(500).run(300, 3);
        let dense = task(2).run(300, 3);
        assert!(sparse.finished && dense.finished);
        // Checkpoint every 2 steps: 10 µJ/step overhead vs 1 µJ/step work.
        assert!(
            dense.energy.value() > 3.0 * sparse.energy.value(),
            "dense={} sparse={}",
            dense.energy,
            sparse.energy
        );
    }

    #[test]
    fn bigger_bursts_fewer_cycles() {
        let small = task(100).run(1000, 4);
        let mut big = task(100);
        big.burst_energy = Energy::from_mj(5.0);
        let big_out = big.run(1000, 4);
        assert!(small.finished && big_out.finished);
        assert!(big_out.bursts < small.bursts);
    }

    #[test]
    fn energy_accounting_consistent() {
        let t = task(100);
        let out = t.run(100, 5);
        let expect = out.steps_executed as f64 * 1e-6 + out.checkpoints as f64 * 20e-6;
        assert!((out.energy.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn task_fitting_in_one_burst_needs_one() {
        let t = IntermittentTask {
            total_steps: 100,
            e_step: Energy::from_uj(1.0),
            e_checkpoint: Energy::from_uj(20.0),
            interval: 50,
            burst_energy: Energy::from_mj(1.0),
        };
        let out = t.run(10, 6);
        assert!(out.finished);
        assert_eq!(out.bursts, 1);
    }
}
