//! Stride prefetching.
//!
//! §2.1 (portable devices): ideas that bring human factors to design
//! include *"predicting and prefetching for what the user is likely to
//! do"*; at the microarchitecture level the workhorse predictor is the
//! **reference-prediction-table stride prefetcher** (Chen & Baer). Each
//! entry tracks `(last address, stride, confidence)` per access stream;
//! two confirmations arm it, and it then issues prefetches `degree` lines
//! ahead.
//!
//! The module wraps a [`Cache`] and reports the classic taxonomy: useful
//! prefetches (hit a prefetched line), useless (evicted unused — tracked
//! approximately), and demand misses avoided. Energy accounting charges
//! each prefetch a fill's worth of traffic so the coverage/accuracy trade
//! is visible — prefetching converts misses into bandwidth, which is
//! exactly the communication-vs-computation currency of Table 1 row 4.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::cache::{AccessKind, Cache};
use crate::trace::Access;
use xxi_core::metrics::Metrics;

/// Stride-prefetcher configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Streams tracked (reference prediction table entries).
    pub table_entries: usize,
    /// Prefetch distance in lines once armed.
    pub degree: u32,
    /// Confirmations required to arm a stream.
    pub threshold: u32,
}

impl Default for PrefetchConfig {
    fn default() -> PrefetchConfig {
        PrefetchConfig {
            table_entries: 64,
            degree: 2,
            threshold: 2,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    last_line: u64,
    stride: i64,
    confidence: u32,
    lru: u64,
}

/// A cache fronted by a stride prefetcher.
pub struct PrefetchingCache {
    /// The underlying cache.
    pub cache: Cache,
    cfg: PrefetchConfig,
    /// Keyed by stream id (here: upper address bits, standing in for PC).
    table: HashMap<u64, StreamEntry>,
    clock: u64,
    /// Lines currently resident because of a prefetch, not yet demanded.
    prefetched: HashMap<u64, ()>,
    /// `demand_accesses`, `demand_misses`, `prefetches_issued`,
    /// `useful_prefetches`.
    pub metrics: Metrics,
}

impl PrefetchingCache {
    /// Wrap `cache` with a prefetcher.
    pub fn new(cache: Cache, cfg: PrefetchConfig) -> PrefetchingCache {
        assert!(cfg.table_entries > 0 && cfg.degree >= 1 && cfg.threshold >= 1);
        PrefetchingCache {
            cache,
            cfg,
            table: HashMap::new(),
            clock: 0,
            prefetched: HashMap::new(),
            metrics: Metrics::new(),
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.cache.config().line_bytes
    }

    /// One demand access; trains the prefetcher and may issue prefetches.
    pub fn access(&mut self, a: Access) {
        self.clock += 1;
        self.metrics.incr("demand_accesses");
        let line = self.line_of(a.addr);
        let kind = if a.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let hit = self.cache.access(a.addr, kind).is_hit();
        if !hit {
            self.metrics.incr("demand_misses");
        } else if self.prefetched.remove(&line).is_some() {
            self.metrics.incr("useful_prefetches");
        }

        // Train: stream id = address bits above a 4 KiB region (page-like
        // streams; a real RPT keys on PC, which traces don't carry).
        let stream = a.addr >> 12;
        let line_bytes = self.cache.config().line_bytes;
        let entry = self.table.get(&stream).copied();
        let new_entry = match entry {
            None => StreamEntry {
                last_line: line,
                stride: 0,
                confidence: 0,
                lru: self.clock,
            },
            Some(e) => {
                let observed = line as i64 - e.last_line as i64;
                if observed != 0 && observed == e.stride {
                    StreamEntry {
                        last_line: line,
                        stride: e.stride,
                        confidence: (e.confidence + 1).min(self.cfg.threshold + 4),
                        lru: self.clock,
                    }
                } else {
                    StreamEntry {
                        last_line: line,
                        stride: if observed != 0 { observed } else { e.stride },
                        confidence: 0,
                        lru: self.clock,
                    }
                }
            }
        };
        // Capacity: evict the LRU stream.
        if !self.table.contains_key(&stream) && self.table.len() >= self.cfg.table_entries {
            if let Some((&victim, _)) = self.table.iter().min_by_key(|(_, e)| e.lru) {
                self.table.remove(&victim);
            }
        }
        self.table.insert(stream, new_entry);

        // Issue prefetches once armed.
        if new_entry.confidence >= self.cfg.threshold && new_entry.stride != 0 {
            for k in 1..=self.cfg.degree as i64 {
                let target_line = line as i64 + new_entry.stride * k;
                if target_line < 0 {
                    continue;
                }
                let target_addr = target_line as u64 * line_bytes;
                if !self.cache.contains(target_addr) {
                    self.metrics.incr("prefetches_issued");
                    self.cache.access(target_addr, AccessKind::Read);
                    self.prefetched.insert(target_line as u64, ());
                }
            }
        }
    }

    /// Run a trace.
    pub fn run(&mut self, trace: &[Access]) {
        for &a in trace {
            self.access(a);
        }
    }

    /// Demand miss rate.
    pub fn demand_miss_rate(&self) -> f64 {
        self.metrics.ratio("demand_misses", "demand_accesses")
    }

    /// Prefetch accuracy: useful / issued.
    pub fn accuracy(&self) -> f64 {
        self.metrics.ratio("useful_prefetches", "prefetches_issued")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::trace::TraceGen;

    fn wrapped() -> PrefetchingCache {
        PrefetchingCache::new(
            Cache::new(CacheConfig::l1()).unwrap(),
            PrefetchConfig::default(),
        )
    }

    fn baseline_miss_rate(trace: &[Access]) -> f64 {
        let mut c = Cache::new(CacheConfig::l1()).unwrap();
        for a in trace {
            let kind = if a.write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            c.access(a.addr, kind);
        }
        c.miss_rate()
    }

    #[test]
    fn sequential_stream_prefetches_almost_everything() {
        let mut g = TraceGen::new(1);
        // A long streaming scan over 4 MiB: baseline misses every line.
        let trace = g.sequential(50_000, 0, 64, 0.0);
        let base = baseline_miss_rate(&trace);
        let mut pc = wrapped();
        pc.run(&trace);
        assert!(base > 0.9, "baseline should thrash: {base}");
        assert!(
            pc.demand_miss_rate() < 0.2 * base,
            "prefetched miss rate {} vs base {base}",
            pc.demand_miss_rate()
        );
        assert!(pc.accuracy() > 0.9, "accuracy={}", pc.accuracy());
    }

    #[test]
    fn strided_stream_covered_too() {
        let mut g = TraceGen::new(2);
        // Stride of 3 lines within one huge region... strided() wraps
        // within a working set; use a large set so it's a pure stream.
        let trace = g.strided(30_000, 0, 192, 192 * 30_000, 0.0);
        let base = baseline_miss_rate(&trace);
        let mut pc = wrapped();
        pc.run(&trace);
        assert!(pc.demand_miss_rate() < 0.5 * base);
    }

    #[test]
    fn random_traffic_gains_nothing_but_stays_accurate_enough() {
        let mut g = TraceGen::new(3);
        let trace = g.uniform(30_000, 0, 64 << 20, 64, 0.0);
        let base = baseline_miss_rate(&trace);
        let mut pc = wrapped();
        pc.run(&trace);
        // No stream to learn: miss rate ≈ baseline and few prefetches fire
        // (random strides rarely confirm twice).
        assert!((pc.demand_miss_rate() - base).abs() < 0.05);
        let issued = pc.metrics.counter("prefetches_issued");
        assert!(
            (issued as f64) < 0.2 * trace.len() as f64,
            "spurious prefetches: {issued}"
        );
    }

    #[test]
    fn pointer_chase_defeats_stride_prefetching() {
        // The pathological case: dependent random hops.
        let mut g = TraceGen::new(4);
        let trace = g.pointer_chase(20_000, 0, 4096, 64);
        let base = baseline_miss_rate(&trace);
        let mut pc = wrapped();
        pc.run(&trace);
        assert!(pc.demand_miss_rate() > 0.8 * base, "nothing to predict");
    }

    #[test]
    fn degree_scales_coverage_on_streams() {
        let mut g = TraceGen::new(5);
        let trace = g.sequential(20_000, 0, 64, 0.0);
        let run = |degree| {
            let mut pc = PrefetchingCache::new(
                Cache::new(CacheConfig::l1()).unwrap(),
                PrefetchConfig {
                    degree,
                    ..PrefetchConfig::default()
                },
            );
            pc.run(&trace);
            pc.demand_miss_rate()
        };
        assert!(run(4) <= run(1) + 1e-9);
    }

    #[test]
    fn table_capacity_is_bounded() {
        let mut g = TraceGen::new(6);
        // Touch 1000 distinct 4 KiB streams.
        let trace = g.uniform(50_000, 0, 1000 * 4096, 64, 0.0);
        let mut pc = wrapped();
        pc.run(&trace);
        assert!(pc.table.len() <= pc.cfg.table_entries);
    }
}
