//! # xxi-mem
//!
//! Memory-hierarchy simulation for the `xxi-arch` framework.
//!
//! The white paper makes the memory system a protagonist three times over:
//! communication (data movement) now costs more energy than computation
//! (Table 1 row 4; §2.2 "fetching the operands … one to two orders of
//! magnitude more energy than performing the operation"); emerging
//! non-volatile memories "drive a rethinking of the relationship between
//! memory and storage" (§2.3); and "memory and storage systems consume an
//! increasing fraction of the total data center power budget" (§2.1).
//!
//! Modules:
//!
//! * [`trace`] — synthetic address-trace generators (sequential, strided,
//!   uniform-random, Zipf object popularity, pointer-chase) standing in for
//!   the proprietary workload traces the paper's scenarios assume.
//! * [`cache`] — a set-associative cache model with LRU / FIFO / random /
//!   tree-PLRU replacement, write-back + write-allocate, and full stats.
//! * [`hierarchy`] — multi-level cache + memory stacks with per-level
//!   latency and energy; computes AMAT and energy per access.
//! * [`coherence`] — a MESI snooping-bus protocol simulator with the
//!   single-writer/multiple-reader invariant enforced and tested.
//! * [`dram`] — a banked DRAM model with row-buffer locality, open/closed
//!   page policies, and refresh energy.
//! * [`nvm`] — emerging non-volatile device models (PCM, STT-RAM,
//!   memristor, flash): asymmetric read/write latency and energy, limited
//!   write endurance, cell-level wear tracking.
//! * [`wear`] — Start-Gap wear leveling (Qureshi et al., MICRO 2009)
//!   implemented exactly: an algebraic address rotation that spreads hot
//!   writes across the physical array (experiment E12).
//! * [`hybrid`] — a page-migrating hybrid DRAM+NVM main memory, the
//!   "rethought" memory/storage stack of §2.3.
//! * [`energy`] — the per-access energy ladder (register file → L1 → L2 →
//!   L3 → DRAM → NVM) per technology node, anchored to published 45 nm
//!   picojoule budgets (experiment E4).
//! * [`compress`] — frequent-pattern cache-line compression, one of the
//!   paper's named levers for "energy efficiency through specialization
//!   (e.g., through compression …)" (§2.2).
//! * [`prefetch`] — a reference-prediction-table stride prefetcher
//!   (§2.1's "predicting and prefetching"), with coverage/accuracy
//!   accounting.
//! * [`tlb`] — TLB + page-walk costs, the tax for "extending … virtual
//!   memory to accelerators" (§2.2), with large pages as the reach knob.

pub mod cache;
pub mod coherence;
pub mod compress;
pub mod dram;
pub mod energy;
pub mod hierarchy;
pub mod hybrid;
pub mod nvm;
pub mod prefetch;
pub mod tlb;
pub mod trace;
pub mod wear;

pub use cache::{AccessKind, Cache, CacheConfig, Replacement};
pub use coherence::{CoherentSystem, MesiState};
pub use dram::{Dram, DramConfig};
pub use energy::MemEnergyTable;
pub use hierarchy::{Hierarchy, HierarchyConfig, LevelConfig};
pub use hybrid::{HybridConfig, HybridMemory};
pub use nvm::{NvmDevice, NvmTech};
pub use prefetch::{PrefetchConfig, PrefetchingCache};
pub use tlb::{Tlb, TlbConfig};
pub use trace::{Access, TraceGen};
pub use wear::StartGap;
