//! TLB and page-walk modeling — virtual memory as an energy/latency tax.
//!
//! §2.2 asks memory systems to "simplify programmability (e.g., by
//! extending coherence and virtual memory to accelerators when needed)";
//! §2.4 notes virtual memory was "defined when memory was at a premium".
//! Extending VM to accelerators means paying translation costs there too,
//! so the experiments need a TLB model: a set-associative translation
//! cache in front of a multi-level page walk, with reach, miss rates, and
//! the latency/energy bill. Large pages — the standard reach fix — are a
//! config knob whose effect the tests verify.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use xxi_core::metrics::Metrics;
use xxi_core::units::{Energy, Seconds};

/// TLB configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Page-table levels walked on a miss.
    pub walk_levels: u32,
    /// Latency of one walk step (one memory access, possibly cached).
    pub walk_step_latency: Seconds,
    /// Energy of one walk step.
    pub walk_step_energy: Energy,
}

impl TlbConfig {
    /// A typical L1 DTLB: 64 entries, 4 KiB pages, 4-level walk at cached
    /// page-table latency.
    pub fn dtlb_4k() -> TlbConfig {
        TlbConfig {
            entries: 64,
            page_bytes: 4096,
            walk_levels: 4,
            walk_step_latency: Seconds::from_ns(10.0),
            walk_step_energy: Energy::from_pj(250.0),
        }
    }

    /// The same TLB with 2 MiB pages (512× the reach, one fewer level).
    pub fn dtlb_2m() -> TlbConfig {
        TlbConfig {
            entries: 64,
            page_bytes: 2 * 1024 * 1024,
            walk_levels: 3,
            ..TlbConfig::dtlb_4k()
        }
    }

    /// Address space covered by a full TLB.
    pub fn reach_bytes(&self) -> u64 {
        self.entries as u64 * self.page_bytes
    }
}

/// A fully-associative LRU TLB (small enough that FA is realistic).
pub struct Tlb {
    cfg: TlbConfig,
    /// LRU order: front = most recent.
    entries: VecDeque<u64>,
    /// `accesses`, `hits`, `misses`, `walk_steps`.
    pub metrics: Metrics,
    total_latency: Seconds,
    total_energy: Energy,
}

impl Tlb {
    /// Build from config.
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.entries > 0 && cfg.page_bytes.is_power_of_two());
        Tlb {
            cfg,
            entries: VecDeque::new(),
            metrics: Metrics::new(),
            total_latency: Seconds::ZERO,
            total_energy: Energy::ZERO,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Translate `vaddr`; returns the translation cost added by the TLB
    /// (zero on a hit in this model; a full walk on a miss).
    pub fn translate(&mut self, vaddr: u64) -> (Seconds, Energy) {
        self.metrics.incr("accesses");
        let vpn = vaddr / self.cfg.page_bytes;
        if let Some(pos) = self.entries.iter().position(|&e| e == vpn) {
            self.metrics.incr("hits");
            // Move to front.
            self.entries.remove(pos);
            self.entries.push_front(vpn);
            (Seconds::ZERO, Energy::ZERO)
        } else {
            self.metrics.incr("misses");
            self.metrics
                .count("walk_steps", self.cfg.walk_levels as u64);
            let lat = Seconds(self.cfg.walk_step_latency.value() * self.cfg.walk_levels as f64);
            let en = self.cfg.walk_step_energy * self.cfg.walk_levels as f64;
            self.total_latency += lat;
            self.total_energy += en;
            if self.entries.len() >= self.cfg.entries {
                self.entries.pop_back();
            }
            self.entries.push_front(vpn);
            (lat, en)
        }
    }

    /// Miss rate so far.
    pub fn miss_rate(&self) -> f64 {
        self.metrics.ratio("misses", "accesses")
    }

    /// Total translation latency added.
    pub fn total_latency(&self) -> Seconds {
        self.total_latency
    }

    /// Total translation energy added.
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGen;
    use xxi_core::rng::Rng64;

    #[test]
    fn reach_math() {
        assert_eq!(TlbConfig::dtlb_4k().reach_bytes(), 64 * 4096);
        assert_eq!(TlbConfig::dtlb_2m().reach_bytes(), 64 * 2 * 1024 * 1024);
    }

    #[test]
    fn working_set_within_reach_hits() {
        let mut tlb = Tlb::new(TlbConfig::dtlb_4k());
        // 32 pages, touched repeatedly.
        for round in 0..100 {
            for p in 0..32u64 {
                let (lat, _) = tlb.translate(p * 4096 + 128);
                if round > 0 {
                    assert_eq!(lat, Seconds::ZERO, "round {round} page {p}");
                }
            }
        }
        assert!(tlb.miss_rate() <= 0.011); // 32 cold misses / 3200
    }

    #[test]
    fn thrashing_beyond_reach() {
        let mut tlb = Tlb::new(TlbConfig::dtlb_4k());
        // 128 pages round-robin through a 64-entry LRU TLB: every access
        // misses (classic LRU worst case).
        for _ in 0..10 {
            for p in 0..128u64 {
                tlb.translate(p * 4096);
            }
        }
        assert!(tlb.miss_rate() > 0.99, "{}", tlb.miss_rate());
    }

    #[test]
    fn large_pages_restore_reach() {
        // The same 64 MiB working set: 16k 4-KiB pages (thrash) vs 32
        // 2-MiB pages (fit).
        let mut g = TraceGen::new(1);
        let trace = g.uniform(50_000, 0, 64 << 20, 64, 0.0);
        let mut small = Tlb::new(TlbConfig::dtlb_4k());
        let mut big = Tlb::new(TlbConfig::dtlb_2m());
        for a in &trace {
            small.translate(a.addr);
            big.translate(a.addr);
        }
        assert!(small.miss_rate() > 0.9, "small={}", small.miss_rate());
        assert!(big.miss_rate() < 0.01, "big={}", big.miss_rate());
        assert!(big.total_energy().value() < 0.02 * small.total_energy().value());
    }

    #[test]
    fn walk_cost_accounting() {
        let mut tlb = Tlb::new(TlbConfig::dtlb_4k());
        tlb.translate(0); // one miss: 4 steps
        assert_eq!(tlb.metrics.counter("walk_steps"), 4);
        assert!((tlb.total_latency().value() - 40e-9).abs() < 1e-15);
        assert!((tlb.total_energy().pj() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn lru_keeps_hot_pages_under_mixed_traffic() {
        let mut tlb = Tlb::new(TlbConfig::dtlb_4k());
        let mut rng = Rng64::new(2);
        // 8 hot pages (90%) + huge cold space (10%).
        let mut hot_hits = 0;
        let mut hot_accesses = 0;
        for i in 0..200_000u64 {
            let addr = if rng.chance(0.9) {
                (i % 8) * 4096
            } else {
                (1000 + rng.below(100_000)) * 4096
            };
            let is_hot = addr < 8 * 4096;
            let (lat, _) = tlb.translate(addr);
            if is_hot {
                hot_accesses += 1;
                if lat == Seconds::ZERO {
                    hot_hits += 1;
                }
            }
        }
        assert!(
            hot_hits as f64 / hot_accesses as f64 > 0.99,
            "hot pages must stay resident"
        );
    }
}
