//! Multi-level memory hierarchies: latency and energy per access.
//!
//! Chains [`Cache`] levels in front of a memory model and charges each
//! access the latency/energy of every level it touches. Produces the AMAT
//! (average memory access time) and average energy per access that the
//! chip-level models in `xxi-cpu` consume, and lets experiments contrast
//! performance-first vs energy-first hierarchy tuning (§2.2).

use serde::{Deserialize, Serialize};

use crate::cache::{AccessKind, Cache, CacheConfig};
use crate::trace::Access;
use xxi_core::metrics::Metrics;
use xxi_core::obs::{EnergyLedger, Layer};
use xxi_core::units::{Energy, Seconds};
use xxi_core::Result;

/// Static level names so ledger/metric charges never allocate. Hierarchies
/// deeper than 8 cache levels share the last name.
const LEVEL: [&str; 8] = ["l1", "l2", "l3", "l4", "l5", "l6", "l7", "l8"];
const LEVEL_HIT: [&str; 8] = [
    "l1_hit", "l2_hit", "l3_hit", "l4_hit", "l5_hit", "l6_hit", "l7_hit", "l8_hit",
];
const LEVEL_MISS: [&str; 8] = [
    "l1_miss", "l2_miss", "l3_miss", "l4_miss", "l5_miss", "l6_miss", "l7_miss", "l8_miss",
];

fn level_name(i: usize) -> &'static str {
    LEVEL[i.min(LEVEL.len() - 1)]
}

/// One cache level plus its access costs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LevelConfig {
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Hit latency.
    pub latency: Seconds,
    /// Energy per access (charged on every probe of this level).
    pub energy: Energy,
}

/// Hierarchy = ordered cache levels + backing memory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Cache levels, L1 first.
    pub levels: Vec<LevelConfig>,
    /// Backing-memory latency.
    pub mem_latency: Seconds,
    /// Backing-memory energy per access.
    pub mem_energy: Energy,
}

impl HierarchyConfig {
    /// A conventional three-level hierarchy with 45 nm-class costs:
    /// L1 1 ns/20 pJ, L2 4 ns/80 pJ, L3 12 ns/250 pJ, DRAM 60 ns/12 nJ.
    pub fn three_level() -> HierarchyConfig {
        HierarchyConfig {
            levels: vec![
                LevelConfig {
                    cache: CacheConfig::l1(),
                    latency: Seconds::from_ns(1.0),
                    energy: Energy::from_pj(20.0),
                },
                LevelConfig {
                    cache: CacheConfig::l2(),
                    latency: Seconds::from_ns(4.0),
                    energy: Energy::from_pj(80.0),
                },
                LevelConfig {
                    cache: CacheConfig::l3(),
                    latency: Seconds::from_ns(12.0),
                    energy: Energy::from_pj(250.0),
                },
            ],
            mem_latency: Seconds::from_ns(60.0),
            mem_energy: Energy::from_nj(12.0),
        }
    }
}

/// A running hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<(Cache, Seconds, Energy)>,
    mem_latency: Seconds,
    mem_energy: Energy,
    accesses: u64,
    total_latency: Seconds,
    total_energy: Energy,
    mem_accesses: u64,
    ledger: EnergyLedger,
    metrics: Metrics,
}

impl Hierarchy {
    /// Build from a config.
    pub fn new(cfg: HierarchyConfig) -> Result<Hierarchy> {
        let mut levels = Vec::with_capacity(cfg.levels.len());
        for l in cfg.levels {
            levels.push((Cache::new(l.cache)?, l.latency, l.energy));
        }
        Ok(Hierarchy {
            levels,
            mem_latency: cfg.mem_latency,
            mem_energy: cfg.mem_energy,
            accesses: 0,
            total_latency: Seconds::ZERO,
            total_energy: Energy::ZERO,
            mem_accesses: 0,
            ledger: EnergyLedger::new(),
            metrics: Metrics::new(),
        })
    }

    /// Issue one access; returns its latency and energy. Misses probe each
    /// deeper level in turn (charging that level's cost), fill on the way
    /// back (non-inclusive, fill-everywhere), and dirty evictions charge
    /// one write access at the next level down.
    pub fn access(&mut self, a: Access) -> (Seconds, Energy) {
        self.accesses += 1;
        let kind = if a.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let mut latency = Seconds::ZERO;
        let mut energy = Energy::ZERO;
        let mut hit_level: Option<usize> = None;
        // Cost of writing a dirty victim from level i to level i+1 (or to
        // memory from the last level).
        let wb_costs: Vec<Energy> = (0..self.levels.len())
            .map(|i| {
                self.levels
                    .get(i + 1)
                    .map(|(_, _, e)| *e)
                    .unwrap_or(self.mem_energy)
            })
            .collect();
        let nlevels = self.levels.len();
        for (i, (cache, lat, en)) in self.levels.iter_mut().enumerate() {
            latency += *lat;
            energy += *en;
            self.ledger.charge(level_name(i), Layer::Memory, *en);
            let outcome = cache.access(a.addr, kind);
            if let crate::cache::Outcome::Miss { writeback } = outcome {
                self.metrics.incr(LEVEL_MISS[i.min(LEVEL_MISS.len() - 1)]);
                if writeback {
                    // Dirty victim written one level down; attribute the
                    // energy to the destination level (or DRAM).
                    energy += wb_costs[i];
                    let dest = if i + 1 < nlevels {
                        level_name(i + 1)
                    } else {
                        "dram"
                    };
                    self.ledger.charge(dest, Layer::Memory, wb_costs[i]);
                }
                continue;
            }
            self.metrics.incr(LEVEL_HIT[i.min(LEVEL_HIT.len() - 1)]);
            hit_level = Some(i);
            break;
        }
        if hit_level.is_none() {
            latency += self.mem_latency;
            energy += self.mem_energy;
            self.mem_accesses += 1;
            self.ledger.charge("dram", Layer::Memory, self.mem_energy);
        }
        self.total_latency += latency;
        self.total_energy += energy;
        (latency, energy)
    }

    /// Run a whole trace.
    pub fn run(&mut self, trace: &[Access]) {
        for &a in trace {
            self.access(a);
        }
    }

    /// Average memory-access time so far.
    pub fn amat(&self) -> Seconds {
        if self.accesses == 0 {
            Seconds::ZERO
        } else {
            Seconds(self.total_latency.value() / self.accesses as f64)
        }
    }

    /// Average energy per access so far.
    pub fn energy_per_access(&self) -> Energy {
        if self.accesses == 0 {
            Energy::ZERO
        } else {
            Energy(self.total_energy.value() / self.accesses as f64)
        }
    }

    /// Total accesses issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that reached backing memory.
    pub fn mem_accesses(&self) -> u64 {
        self.mem_accesses
    }

    /// Per-level hit rates, L1 first.
    pub fn hit_rates(&self) -> Vec<f64> {
        self.levels.iter().map(|(c, _, _)| c.hit_rate()).collect()
    }

    /// Energy attribution so far: one component per cache level (`l1`,
    /// `l2`, …) plus `dram`, all under [`Layer::Memory`]. Writeback energy
    /// is attributed to the destination level.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Per-level hit/miss counters (`l1_hit`, `l1_miss`, …).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGen;

    #[test]
    fn l1_resident_working_set_runs_at_l1_cost() {
        let mut h = Hierarchy::new(HierarchyConfig::three_level()).unwrap();
        let mut g = TraceGen::new(1);
        // 16 KiB set fits in the 32 KiB L1.
        let warm = g.strided(256, 0, 64, 16 * 1024, 0.0);
        h.run(&warm);
        let mut h2 = h.clone();
        let hot = g.strided(10_000, 0, 64, 16 * 1024, 0.0);
        h2.run(&hot);
        // Cost after warmup ≈ L1 hit cost.
        let (lat, en) = h2.access(Access::read(0));
        assert!((lat.value() - 1e-9).abs() < 1e-12, "lat={lat:?}");
        assert!((en.pj() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dram_bound_stream_pays_full_stack() {
        let mut h = Hierarchy::new(HierarchyConfig::three_level()).unwrap();
        let mut g = TraceGen::new(2);
        // A 64 MiB uniform-random stream misses everywhere.
        let t = g.uniform(20_000, 0, 64 << 20, 64, 0.0);
        h.run(&t);
        let amat = h.amat();
        // 1 + 4 + 12 + 60 ns = 77 ns on a full miss.
        assert!(amat.value() > 70e-9, "amat={amat:?}");
        assert!(h.mem_accesses() as f64 / h.accesses() as f64 > 0.9);
        // Energy dominated by DRAM.
        assert!(h.energy_per_access().nj() > 10.0);
    }

    #[test]
    fn amat_between_best_and_worst() {
        let mut h = Hierarchy::new(HierarchyConfig::three_level()).unwrap();
        let mut g = TraceGen::new(3);
        // Zipf over 1 MiB of objects: some levels catch some accesses.
        let t = g.zipf(50_000, 0, 16_384, 64, 0.9, 0.2);
        h.run(&t);
        let amat = h.amat().value();
        assert!(amat > 1e-9 && amat < 77e-9, "amat={amat}");
        let rates = h.hit_rates();
        assert_eq!(rates.len(), 3);
        assert!(rates[0] > 0.2, "L1 should catch the hot head: {rates:?}");
    }

    #[test]
    fn empty_hierarchy_counts_are_zero() {
        let h = Hierarchy::new(HierarchyConfig::three_level()).unwrap();
        assert_eq!(h.amat(), Seconds::ZERO);
        assert_eq!(h.energy_per_access(), Energy::ZERO);
        assert_eq!(h.accesses(), 0);
    }

    #[test]
    fn ledger_accounts_for_every_joule() {
        let mut h = Hierarchy::new(HierarchyConfig::three_level()).unwrap();
        let mut g = TraceGen::new(5);
        let t = g.zipf(30_000, 0, 8_192, 64, 0.9, 0.3);
        h.run(&t);
        let ledger_total = h.ledger().total_spent();
        let model_total = Energy(h.energy_per_access().value() * h.accesses() as f64);
        assert!(
            (ledger_total.value() - model_total.value()).abs() / model_total.value() < 1e-9,
            "ledger={ledger_total:?} model={model_total:?}"
        );
        // Every probed level shows up, attributed to the memory layer.
        for name in ["l1", "l2", "l3", "dram"] {
            assert!(h.ledger().component(name).value() > 0.0, "missing {name}");
        }
        assert_eq!(
            h.ledger().total_spent().value(),
            h.ledger().layer_total(xxi_core::obs::Layer::Memory).value()
        );
    }

    #[test]
    fn hit_miss_counters_match_hit_rates() {
        let mut h = Hierarchy::new(HierarchyConfig::three_level()).unwrap();
        let mut g = TraceGen::new(6);
        let t = g.zipf(20_000, 0, 8_192, 64, 0.9, 0.2);
        h.run(&t);
        let m = h.metrics();
        let l1_rate =
            m.counter("l1_hit") as f64 / (m.counter("l1_hit") + m.counter("l1_miss")) as f64;
        assert!((l1_rate - h.hit_rates()[0]).abs() < 1e-12);
        assert_eq!(m.counter("l1_hit") + m.counter("l1_miss"), h.accesses());
    }

    #[test]
    fn bigger_l1_improves_amat_for_medium_sets() {
        let mut small = Hierarchy::new(HierarchyConfig::three_level()).unwrap();
        let mut big_cfg = HierarchyConfig::three_level();
        big_cfg.levels[0].cache.size_bytes = 128 * 1024;
        let mut big = Hierarchy::new(big_cfg).unwrap();
        let mut g = TraceGen::new(4);
        // 64 KiB working set: fits the big L1 only.
        let t = g.strided(50_000, 0, 64, 64 * 1024, 0.0);
        small.run(&t);
        big.run(&t);
        assert!(big.amat().value() < small.amat().value());
    }
}
