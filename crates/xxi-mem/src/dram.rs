//! Banked DRAM with row-buffer locality and refresh.
//!
//! DRAM is the incumbent that §2.3's emerging NVMs challenge. The model
//! captures the three properties the experiments compare against NVM:
//! row-buffer locality (open-page hits are fast and cheap), destructive
//! reads requiring activation energy, and **refresh** — a standing power
//! cost that grows with capacity and that non-volatile memories simply do
//! not pay.

use serde::{Deserialize, Serialize};

use xxi_core::metrics::Metrics;
use xxi_core::units::{Energy, Power, Seconds};

/// Row-buffer management policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Keep the row open after an access (bets on locality).
    Open,
    /// Precharge immediately after each access (bets against it).
    Closed,
}

/// DRAM geometry and timing/energy parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent banks.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Activate (RAS-to-CAS) delay.
    pub t_rcd: Seconds,
    /// Precharge delay.
    pub t_rp: Seconds,
    /// Column access (CAS) latency.
    pub t_cas: Seconds,
    /// Energy to activate a row.
    pub e_activate: Energy,
    /// Energy to transfer one 64-byte burst.
    pub e_burst: Energy,
    /// Standing refresh + background power per GiB.
    pub p_refresh_per_gib: Power,
    /// Capacity in GiB (for refresh accounting).
    pub capacity_gib: f64,
    /// Page policy.
    pub policy: PagePolicy,
}

impl Default for DramConfig {
    /// DDR3-1600-class timings: tRCD = tRP ≈ 13.75 ns, tCAS ≈ 13.75 ns;
    /// activate ≈ 2 nJ/row, burst ≈ 6 nJ incl. I/O; refresh ≈ 50 mW/GiB.
    fn default() -> DramConfig {
        DramConfig {
            banks: 8,
            row_bytes: 8192,
            t_rcd: Seconds::from_ns(13.75),
            t_rp: Seconds::from_ns(13.75),
            t_cas: Seconds::from_ns(13.75),
            e_activate: Energy::from_nj(2.0),
            e_burst: Energy::from_nj(6.0),
            p_refresh_per_gib: Power::from_mw(50.0),
            capacity_gib: 8.0,
            policy: PagePolicy::Open,
        }
    }
}

/// The DRAM device model.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Open row per bank (`None` = precharged).
    open_rows: Vec<Option<u64>>,
    /// `accesses`, `row_hits`, `row_misses`, `row_conflicts`, `activates`.
    pub metrics: Metrics,
    energy: Energy,
}

/// Result of one DRAM access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramAccess {
    /// Total access latency.
    pub latency: Seconds,
    /// Energy consumed by this access (excludes standing refresh).
    pub energy: Energy,
    /// The access hit an already-open row.
    pub row_hit: bool,
}

impl Dram {
    /// Build a device.
    pub fn new(cfg: DramConfig) -> Dram {
        assert!(cfg.banks > 0 && cfg.row_bytes.is_power_of_two());
        Dram {
            open_rows: vec![None; cfg.banks],
            cfg,
            metrics: Metrics::new(),
            energy: Energy::ZERO,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        let row_addr = addr / self.cfg.row_bytes;
        (
            (row_addr % self.cfg.banks as u64) as usize,
            row_addr / self.cfg.banks as u64,
        )
    }

    /// Access one 64-byte burst at `addr`.
    pub fn access(&mut self, addr: u64) -> DramAccess {
        self.metrics.incr("accesses");
        let (bank, row) = self.locate(addr);
        let mut latency = self.cfg.t_cas;
        let mut energy = self.cfg.e_burst;
        let row_hit = match self.open_rows[bank] {
            Some(open) if open == row => {
                self.metrics.incr("row_hits");
                true
            }
            Some(_) => {
                // Conflict: precharge + activate + cas.
                self.metrics.incr("row_conflicts");
                self.metrics.incr("activates");
                latency += self.cfg.t_rp + self.cfg.t_rcd;
                energy += self.cfg.e_activate;
                false
            }
            None => {
                // Miss on a precharged bank: activate + cas.
                self.metrics.incr("row_misses");
                self.metrics.incr("activates");
                latency += self.cfg.t_rcd;
                energy += self.cfg.e_activate;
                false
            }
        };
        self.open_rows[bank] = match self.cfg.policy {
            PagePolicy::Open => Some(row),
            PagePolicy::Closed => None,
        };
        self.energy += energy;
        DramAccess {
            latency,
            energy,
            row_hit,
        }
    }

    /// Dynamic energy consumed so far.
    pub fn dynamic_energy(&self) -> Energy {
        self.energy
    }

    /// Standing refresh energy over a wall-clock interval.
    pub fn refresh_energy(&self, interval: Seconds) -> Energy {
        Power(self.cfg.p_refresh_per_gib.value() * self.cfg.capacity_gib) * interval
    }

    /// Row-buffer hit rate so far.
    pub fn row_hit_rate(&self) -> f64 {
        self.metrics.ratio("row_hits", "accesses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_streams_hit_the_row_buffer() {
        let mut d = Dram::new(DramConfig::default());
        for a in (0..8192u64).step_by(64) {
            d.access(a);
        }
        // First access opens the row; the remaining 127 hit.
        assert_eq!(d.metrics.counter("row_hits"), 127);
        assert_eq!(d.metrics.counter("activates"), 1);
        assert!(d.row_hit_rate() > 0.99 - 1.0 / 128.0);
    }

    #[test]
    fn row_hits_are_faster_and_cheaper() {
        let mut d = Dram::new(DramConfig::default());
        let miss = d.access(0);
        let hit = d.access(64);
        assert!(!miss.row_hit && hit.row_hit);
        assert!(hit.latency.value() < miss.latency.value());
        assert!(hit.energy.value() < miss.energy.value());
        // Hit = CAS only.
        assert!((hit.latency.value() - 13.75e-9).abs() < 1e-15);
        // Miss = RCD + CAS.
        assert!((miss.latency.value() - 27.5e-9).abs() < 1e-15);
    }

    #[test]
    fn bank_conflict_pays_precharge() {
        let cfg = DramConfig::default();
        let row_bytes = cfg.row_bytes;
        let banks = cfg.banks as u64;
        let mut d = Dram::new(cfg);
        // Two different rows in the same bank: row k and row k + banks.
        d.access(0);
        let conflict = d.access(row_bytes * banks);
        assert!(!conflict.row_hit);
        assert_eq!(d.metrics.counter("row_conflicts"), 1);
        // RP + RCD + CAS.
        assert!((conflict.latency.value() - 41.25e-9).abs() < 1e-15);
    }

    #[test]
    fn closed_policy_never_row_hits() {
        let mut d = Dram::new(DramConfig {
            policy: PagePolicy::Closed,
            ..DramConfig::default()
        });
        for a in (0..4096u64).step_by(64) {
            d.access(a);
        }
        assert_eq!(d.metrics.counter("row_hits"), 0);
        assert_eq!(d.row_hit_rate(), 0.0);
    }

    #[test]
    fn interleaved_banks_avoid_conflicts() {
        let cfg = DramConfig::default();
        let row_bytes = cfg.row_bytes;
        let mut d = Dram::new(cfg);
        // Touch one row in each of the 8 banks, then touch them again:
        // second round is all hits under the open policy.
        for b in 0..8u64 {
            d.access(b * row_bytes);
        }
        for b in 0..8u64 {
            let r = d.access(b * row_bytes + 64);
            assert!(r.row_hit);
        }
    }

    #[test]
    fn refresh_energy_scales_with_capacity_and_time() {
        let d = Dram::new(DramConfig::default()); // 8 GiB @ 50 mW/GiB
        let e = d.refresh_energy(Seconds(10.0));
        assert!((e.value() - 0.05 * 8.0 * 10.0).abs() < 1e-12);
        let d2 = Dram::new(DramConfig {
            capacity_gib: 16.0,
            ..DramConfig::default()
        });
        assert!((d2.refresh_energy(Seconds(10.0)).value() - 2.0 * e.value()).abs() < 1e-12);
    }

    #[test]
    fn dynamic_energy_accumulates() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.access(0);
        let b = d.access(64);
        assert!((d.dynamic_energy().value() - (a.energy + b.energy).value()).abs() < 1e-18);
    }
}
