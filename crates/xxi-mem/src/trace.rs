//! Synthetic memory-address trace generators.
//!
//! The paper's evaluation scenarios presuppose workload traces (search,
//! analytics, sensor streams) that are proprietary. These generators are
//! the documented substitution: each produces the *locality structure* a
//! class of workloads exhibits, which is all the cache/DRAM/NVM experiments
//! consume:
//!
//! * [`TraceGen::sequential`] — streaming scans (perfect spatial locality).
//! * [`TraceGen::strided`] — column walks / structured-grid codes.
//! * [`TraceGen::uniform`] — worst-case random access (hash joins,
//!   pointer-dense graphs).
//! * [`TraceGen::zipf`] — skewed object popularity, the canonical "big
//!   data" distribution (Appendix A).
//! * [`TraceGen::pointer_chase`] — dependent-load chains (linked
//!   structures).

use serde::{Deserialize, Serialize};
use xxi_core::rng::{Rng64, Zipf};

/// One memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub write: bool,
}

impl Access {
    /// A load at `addr`.
    pub fn read(addr: u64) -> Access {
        Access { addr, write: false }
    }

    /// A store at `addr`.
    pub fn write(addr: u64) -> Access {
        Access { addr, write: true }
    }
}

/// Builder for synthetic traces. All generators take a `write_frac` giving
/// the probability each access is a store.
#[derive(Clone, Debug)]
pub struct TraceGen {
    rng: Rng64,
}

impl TraceGen {
    /// A generator with its own RNG stream.
    pub fn new(seed: u64) -> TraceGen {
        TraceGen {
            rng: Rng64::new(seed),
        }
    }

    fn mark_writes(&mut self, addrs: Vec<u64>, write_frac: f64) -> Vec<Access> {
        addrs
            .into_iter()
            .map(|addr| Access {
                addr,
                write: self.rng.chance(write_frac),
            })
            .collect()
    }

    /// `n` accesses walking sequentially through memory `step` bytes at a
    /// time starting at `base`.
    pub fn sequential(&mut self, n: usize, base: u64, step: u64, write_frac: f64) -> Vec<Access> {
        let addrs = (0..n as u64).map(|i| base + i * step).collect();
        self.mark_writes(addrs, write_frac)
    }

    /// `n` accesses with stride `stride` bytes over a working set of
    /// `set_bytes`, wrapping around (grid/column traversal).
    pub fn strided(
        &mut self,
        n: usize,
        base: u64,
        stride: u64,
        set_bytes: u64,
        write_frac: f64,
    ) -> Vec<Access> {
        assert!(set_bytes > 0);
        let addrs = (0..n as u64)
            .map(|i| base + (i * stride) % set_bytes)
            .collect();
        self.mark_writes(addrs, write_frac)
    }

    /// `n` uniformly random accesses over `[base, base + set_bytes)`,
    /// aligned to `align` bytes.
    pub fn uniform(
        &mut self,
        n: usize,
        base: u64,
        set_bytes: u64,
        align: u64,
        write_frac: f64,
    ) -> Vec<Access> {
        assert!(align > 0 && set_bytes >= align);
        let slots = set_bytes / align;
        let addrs = (0..n)
            .map(|_| base + self.rng.below(slots) * align)
            .collect();
        self.mark_writes(addrs, write_frac)
    }

    /// `n` accesses over `objects` cache-line-sized objects with Zipf(`s`)
    /// popularity; object `k`'s line address is `base + k·line`.
    pub fn zipf(
        &mut self,
        n: usize,
        base: u64,
        objects: usize,
        line: u64,
        s: f64,
        write_frac: f64,
    ) -> Vec<Access> {
        let z = Zipf::new(objects, s);
        let addrs = (0..n)
            .map(|_| base + z.sample(&mut self.rng) as u64 * line)
            .collect();
        self.mark_writes(addrs, write_frac)
    }

    /// A pointer chase: a random permutation cycle over `nodes` slots of
    /// `slot_bytes`, visited `n` times. Every access depends on the
    /// previous one — zero memory-level parallelism, the pathological case
    /// for latency hiding.
    pub fn pointer_chase(
        &mut self,
        n: usize,
        base: u64,
        nodes: usize,
        slot_bytes: u64,
    ) -> Vec<Access> {
        assert!(nodes > 0);
        // Build a single-cycle permutation (Sattolo's algorithm).
        let mut next: Vec<usize> = (0..nodes).collect();
        for i in (1..nodes).rev() {
            let j = self.rng.below(i as u64) as usize;
            next.swap(i, j);
        }
        let mut cur = 0usize;
        (0..n)
            .map(|_| {
                let a = Access::read(base + cur as u64 * slot_bytes);
                cur = next[cur];
                a
            })
            .collect()
    }

    /// Interleave several traces round-robin (models multiprogramming).
    pub fn interleave(traces: Vec<Vec<Access>>) -> Vec<Access> {
        let total: usize = traces.iter().map(|t| t.len()).sum();
        let mut out = Vec::with_capacity(total);
        let longest = traces.iter().map(|t| t.len()).max().unwrap_or(0);
        for i in 0..longest {
            for t in &traces {
                if let Some(a) = t.get(i) {
                    out.push(*a);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sequential_addresses_ascend_by_step() {
        let mut g = TraceGen::new(1);
        let t = g.sequential(10, 1000, 8, 0.0);
        for (i, a) in t.iter().enumerate() {
            assert_eq!(a.addr, 1000 + 8 * i as u64);
            assert!(!a.write);
        }
    }

    #[test]
    fn strided_wraps_at_working_set() {
        let mut g = TraceGen::new(2);
        let t = g.strided(6, 0, 64, 192, 0.0);
        let addrs: Vec<u64> = t.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 64, 128, 0, 64, 128]);
    }

    #[test]
    fn uniform_respects_bounds_and_alignment() {
        let mut g = TraceGen::new(3);
        let t = g.uniform(10_000, 4096, 1 << 20, 64, 0.5);
        for a in &t {
            assert!(a.addr >= 4096 && a.addr < 4096 + (1 << 20));
            assert_eq!((a.addr - 4096) % 64, 0);
        }
        let writes = t.iter().filter(|a| a.write).count();
        assert!((writes as f64 / t.len() as f64 - 0.5).abs() < 0.03);
    }

    #[test]
    fn zipf_trace_is_skewed() {
        let mut g = TraceGen::new(4);
        let t = g.zipf(50_000, 0, 1000, 64, 1.0, 0.0);
        let mut counts = std::collections::HashMap::new();
        for a in &t {
            *counts.entry(a.addr).or_insert(0u64) += 1;
        }
        let hottest = *counts.values().max().unwrap();
        // Rank-0 under Zipf(1.0) over 1000 objects gets ~13% of accesses.
        assert!(hottest as f64 / t.len() as f64 > 0.08);
        // Far more than uniform (0.1%).
        assert!(hottest > 50 * (t.len() as u64 / 1000));
    }

    #[test]
    fn pointer_chase_visits_every_node_before_repeating() {
        let mut g = TraceGen::new(5);
        let nodes = 64;
        let t = g.pointer_chase(nodes, 0, nodes, 64);
        let unique: HashSet<u64> = t.iter().map(|a| a.addr).collect();
        // Sattolo's algorithm yields a single cycle: all nodes visited once.
        assert_eq!(unique.len(), nodes);
    }

    #[test]
    fn pointer_chase_is_deterministic_per_seed() {
        let t1 = TraceGen::new(6).pointer_chase(100, 0, 32, 64);
        let t2 = TraceGen::new(6).pointer_chase(100, 0, 32, 64);
        assert_eq!(t1, t2);
    }

    #[test]
    fn interleave_preserves_all_accesses() {
        let a = vec![Access::read(1), Access::read(2)];
        let b = vec![Access::read(10), Access::read(20), Access::read(30)];
        let m = TraceGen::interleave(vec![a, b]);
        assert_eq!(m.len(), 5);
        assert_eq!(m[0].addr, 1);
        assert_eq!(m[1].addr, 10);
        assert_eq!(m[2].addr, 2);
        assert_eq!(m[3].addr, 20);
        assert_eq!(m[4].addr, 30);
    }
}
