//! Set-associative cache model.
//!
//! A behavioural (not timing-accurate) cache: it answers hit/miss, tracks
//! dirty state for write-back traffic, and exposes the statistics the
//! hierarchy and energy models consume. Four replacement policies are
//! implemented — true LRU, FIFO, random, and tree-PLRU (the hardware-
//! practical approximation) — so the experiments can quantify how much
//! replacement quality matters relative to the energy ladder.

use serde::{Deserialize, Serialize};

use xxi_core::metrics::Metrics;
use xxi_core::rng::Rng64;
use xxi_core::{Result, XxiError};

/// Replacement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Replacement {
    /// True least-recently-used (access-stamp based).
    Lru,
    /// First-in first-out (fill-stamp based).
    Fifo,
    /// Uniformly random victim.
    Random,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
}

/// What kind of access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Result of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Line present.
    Hit,
    /// Line absent; `writeback` reports whether a dirty victim was evicted.
    Miss {
        /// A dirty line was evicted and must be written downstream.
        writeback: bool,
    },
}

impl Outcome {
    /// True for hits.
    pub fn is_hit(self) -> bool {
        matches!(self, Outcome::Hit)
    }
}

/// Static cache geometry and policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u64,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Allocate on write miss (write-allocate)? If false, write misses
    /// bypass the cache (they still count as misses).
    pub write_allocate: bool,
}

impl CacheConfig {
    /// A conventional L1: 32 KiB, 64 B lines, 8-way, LRU, write-allocate.
    pub fn l1() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            replacement: Replacement::Lru,
            write_allocate: true,
        }
    }

    /// A conventional private L2: 256 KiB, 64 B lines, 8-way.
    pub fn l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 256 * 1024,
            line_bytes: 64,
            ways: 8,
            replacement: Replacement::Lru,
            write_allocate: true,
        }
    }

    /// A shared L3 slice: 8 MiB, 64 B lines, 16-way.
    pub fn l3() -> CacheConfig {
        CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            line_bytes: 64,
            ways: 16,
            replacement: Replacement::Lru,
            write_allocate: true,
        }
    }

    fn validate(&self) -> Result<u64> {
        if !self.line_bytes.is_power_of_two() {
            return Err(XxiError::config("line size must be a power of two"));
        }
        if self.ways == 0 || self.size_bytes == 0 {
            return Err(XxiError::config("cache must have nonzero size and ways"));
        }
        let lines = self.size_bytes / self.line_bytes;
        if lines == 0 || !lines.is_multiple_of(self.ways) {
            return Err(XxiError::config(
                "capacity must be a whole number of sets × ways × line",
            ));
        }
        let sets = lines / self.ways;
        if !sets.is_power_of_two() {
            return Err(XxiError::config("set count must be a power of two"));
        }
        if self.replacement == Replacement::TreePlru && !self.ways.is_power_of_two() {
            return Err(XxiError::config("tree-PLRU requires power-of-two ways"));
        }
        Ok(sets)
    }
}

#[derive(Clone, Debug, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// LRU: last-access stamp. FIFO: fill stamp.
    stamp: u64,
}

#[derive(Clone, Debug)]
struct Set {
    lines: Vec<Line>,
    /// Tree-PLRU direction bits (ways − 1 of them), stored as a bitmask.
    plru: u64,
}

/// The cache.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Set>,
    set_mask: u64,
    line_shift: u32,
    clock: u64,
    rng: Rng64,
    /// `accesses`, `hits`, `misses`, `evictions`, `writebacks`, `fills`.
    pub metrics: Metrics,
}

impl Cache {
    /// Build a cache; fails on inconsistent geometry.
    pub fn new(cfg: CacheConfig) -> Result<Cache> {
        let sets = cfg.validate()?;
        let line_shift = cfg.line_bytes.trailing_zeros();
        Ok(Cache {
            sets: (0..sets)
                .map(|_| Set {
                    lines: vec![Line::default(); cfg.ways as usize],
                    plru: 0,
                })
                .collect(),
            set_mask: sets - 1,
            line_shift,
            clock: 0,
            rng: Rng64::new(0xCACE),
            cfg,
            metrics: Metrics::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        (
            (line_addr & self.set_mask) as usize,
            line_addr >> self.sets.len().trailing_zeros(),
        )
    }

    /// Perform one access; returns hit/miss and whether a dirty victim was
    /// written back.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> Outcome {
        self.clock += 1;
        self.metrics.incr("accesses");
        let (set_idx, tag) = self.index(addr);
        let ways = self.cfg.ways as usize;
        let clock = self.clock;
        let replacement = self.cfg.replacement;

        // Hit path.
        if let Some(way) = self.sets[set_idx]
            .lines
            .iter()
            .position(|l| l.valid && l.tag == tag)
        {
            let set = &mut self.sets[set_idx];
            if replacement == Replacement::Lru {
                set.lines[way].stamp = clock;
            }
            if replacement == Replacement::TreePlru {
                set.plru = plru_touch(set.plru, way, ways);
            }
            if kind == AccessKind::Write {
                set.lines[way].dirty = true;
            }
            self.metrics.incr("hits");
            return Outcome::Hit;
        }

        // Miss path.
        self.metrics.incr("misses");
        if kind == AccessKind::Write && !self.cfg.write_allocate {
            return Outcome::Miss { writeback: false };
        }

        let victim = self.pick_victim(set_idx);
        let set = &mut self.sets[set_idx];
        let v = &mut set.lines[victim];
        let writeback = v.valid && v.dirty;
        if v.valid {
            self.metrics.incr("evictions");
        }
        if writeback {
            self.metrics.incr("writebacks");
        }
        *v = Line {
            valid: true,
            dirty: kind == AccessKind::Write,
            tag,
            stamp: clock,
        };
        if replacement == Replacement::TreePlru {
            set.plru = plru_touch(set.plru, victim, ways);
        }
        self.metrics.incr("fills");
        Outcome::Miss { writeback }
    }

    fn pick_victim(&mut self, set_idx: usize) -> usize {
        let ways = self.cfg.ways as usize;
        // Prefer an invalid way.
        if let Some(w) = self.sets[set_idx].lines.iter().position(|l| !l.valid) {
            return w;
        }
        match self.cfg.replacement {
            Replacement::Lru | Replacement::Fifo => self.sets[set_idx]
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .unwrap(), // xxi-allow: panic-path -- a set always has >= 1 way
            Replacement::Random => self.rng.below(ways as u64) as usize,
            Replacement::TreePlru => plru_victim(self.sets[set_idx].plru, ways),
        }
    }

    /// Does the cache currently hold the line containing `addr`?
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx]
            .lines
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate the line containing `addr` (coherence / flush). Returns
    /// `true` if the line was present and dirty (caller must write back).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        for l in &mut self.sets[set_idx].lines {
            if l.valid && l.tag == tag {
                let dirty = l.dirty;
                l.valid = false;
                l.dirty = false;
                return dirty;
            }
        }
        false
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.metrics.ratio("hits", "accesses")
    }

    /// Miss rate so far.
    pub fn miss_rate(&self) -> f64 {
        self.metrics.ratio("misses", "accesses")
    }

    /// Number of valid lines (for occupancy checks in tests).
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.lines.iter().filter(|l| l.valid).count())
            .sum()
    }
}

/// Update tree-PLRU bits after touching `way`: set each node on the path to
/// point *away* from the touched leaf.
fn plru_touch(mut bits: u64, way: usize, ways: usize) -> u64 {
    let levels = ways.trailing_zeros() as usize;
    let mut node = 0usize; // root at index 0 in a 1-based heap layout minus 1
    for level in 0..levels {
        // Bit of `way` at this level, MSB first.
        let dir = (way >> (levels - 1 - level)) & 1;
        if dir == 0 {
            bits |= 1 << node; // point right (away from left child we took)
        } else {
            bits &= !(1 << node); // point left
        }
        node = 2 * node + 1 + dir;
    }
    bits
}

/// Pick the tree-PLRU victim: follow the direction bits from the root.
fn plru_victim(bits: u64, ways: usize) -> usize {
    let levels = ways.trailing_zeros() as usize;
    let mut node = 0usize;
    let mut way = 0usize;
    for _ in 0..levels {
        let dir = ((bits >> node) & 1) as usize;
        way = (way << 1) | dir;
        node = 2 * node + 1 + dir;
    }
    way
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(replacement: Replacement) -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
            replacement,
            write_allocate: true,
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(Cache::new(CacheConfig {
            size_bytes: 0,
            ..CacheConfig::l1()
        })
        .is_err());
        assert!(Cache::new(CacheConfig {
            line_bytes: 48,
            ..CacheConfig::l1()
        })
        .is_err());
        assert!(Cache::new(CacheConfig {
            ways: 3,
            replacement: Replacement::TreePlru,
            size_bytes: 3 * 64 * 4,
            line_bytes: 64,
            write_allocate: true,
        })
        .is_err());
        assert!(Cache::new(CacheConfig::l1()).is_ok());
        assert!(Cache::new(CacheConfig::l3()).is_ok());
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny(Replacement::Lru);
        assert!(!c.access(0x1000, AccessKind::Read).is_hit());
        assert!(c.access(0x1000, AccessKind::Read).is_hit());
        // Same line, different byte.
        assert!(c.access(0x103F, AccessKind::Read).is_hit());
        // Next line misses.
        assert!(!c.access(0x1040, AccessKind::Read).is_hit());
        assert_eq!(c.metrics.counter("hits"), 2);
        assert_eq!(c.metrics.counter("misses"), 2);
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // k*256 spells out the set math
    fn lru_evicts_least_recent() {
        let mut c = tiny(Replacement::Lru);
        // Set 0 holds lines with addr bits [7:6]=0: addresses k*256.
        c.access(0 * 256, AccessKind::Read);
        c.access(1 * 256, AccessKind::Read);
        // Touch line 0 so line 1 is LRU.
        c.access(0 * 256, AccessKind::Read);
        // Fill a third line → evicts line 1.
        c.access(2 * 256, AccessKind::Read);
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // k*256 spells out the set math
    fn fifo_ignores_recency() {
        let mut c = tiny(Replacement::Fifo);
        c.access(0 * 256, AccessKind::Read);
        c.access(1 * 256, AccessKind::Read);
        c.access(0 * 256, AccessKind::Read); // does not refresh FIFO stamp
        c.access(2 * 256, AccessKind::Read); // evicts line 0 (first in)
        assert!(!c.contains(0));
        assert!(c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // k*256 spells out the set math
    fn writeback_on_dirty_eviction_only() {
        let mut c = tiny(Replacement::Lru);
        c.access(0 * 256, AccessKind::Write); // dirty
        c.access(1 * 256, AccessKind::Read); // clean
                                             // Evict dirty line 0.
        let o = c.access(2 * 256, AccessKind::Read);
        assert_eq!(o, Outcome::Miss { writeback: true });
        // Evict clean line 1.
        let o = c.access(3 * 256, AccessKind::Read);
        assert_eq!(o, Outcome::Miss { writeback: false });
        assert_eq!(c.metrics.counter("writebacks"), 1);
        assert_eq!(c.metrics.counter("evictions"), 2);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny(Replacement::Lru);
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write); // hit, now dirty
        c.access(256, AccessKind::Read);
        let o = c.access(512, AccessKind::Read); // evicts line 0
        assert_eq!(o, Outcome::Miss { writeback: true });
    }

    #[test]
    fn no_write_allocate_bypasses() {
        let mut c = Cache::new(CacheConfig {
            write_allocate: false,
            ..CacheConfig::l1()
        })
        .unwrap();
        assert!(!c.access(0x2000, AccessKind::Write).is_hit());
        // Still not cached.
        assert!(!c.contains(0x2000));
        assert!(!c.access(0x2000, AccessKind::Read).is_hit());
        assert!(c.contains(0x2000));
    }

    #[test]
    fn invalidate_reports_dirty() {
        let mut c = tiny(Replacement::Lru);
        c.access(0, AccessKind::Write);
        assert!(c.invalidate(0));
        assert!(!c.contains(0));
        c.access(0, AccessKind::Read);
        assert!(!c.invalidate(0));
        assert!(!c.invalidate(0x777000)); // absent line
    }

    #[test]
    fn working_set_behaviour_small_fits_large_thrashes() {
        let mut c = Cache::new(CacheConfig::l1()).unwrap(); // 32 KiB
                                                            // 16 KiB working set, sequential, looped 10×: near-perfect reuse.
        let mut small = Cache::new(CacheConfig::l1()).unwrap();
        for _ in 0..10 {
            for a in (0..16 * 1024).step_by(64) {
                small.access(a, AccessKind::Read);
            }
        }
        assert!(small.hit_rate() > 0.89, "{}", small.hit_rate());
        // 4 MiB working set: hit rate collapses.
        for _ in 0..3 {
            for a in (0..4 * 1024 * 1024).step_by(64) {
                c.access(a, AccessKind::Read);
            }
        }
        assert!(c.hit_rate() < 0.05, "{}", c.hit_rate());
    }

    #[test]
    fn plru_behaves_like_lru_for_two_ways() {
        // With 2 ways tree-PLRU is exact LRU.
        let mut plru = tiny(Replacement::TreePlru);
        let mut lru = tiny(Replacement::Lru);
        let mut rng = xxi_core::rng::Rng64::new(77);
        for _ in 0..2000 {
            let addr = rng.below(16) * 256; // 16 lines mapping to set 0..4
            let a = plru.access(addr, AccessKind::Read).is_hit();
            let b = lru.access(addr, AccessKind::Read).is_hit();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn plru_eight_way_reasonable_hit_rate() {
        let mut c = Cache::new(CacheConfig {
            replacement: Replacement::TreePlru,
            ..CacheConfig::l1()
        })
        .unwrap();
        for _ in 0..10 {
            for a in (0..16 * 1024).step_by(64) {
                c.access(a, AccessKind::Read);
            }
        }
        // PLRU should retain a fitting working set nearly as well as LRU.
        assert!(c.hit_rate() > 0.85, "{}", c.hit_rate());
    }

    #[test]
    fn random_policy_fills_all_ways() {
        let mut c = tiny(Replacement::Random);
        for k in 0..8u64 {
            c.access(k * 256, AccessKind::Read);
        }
        // 4 sets × 2 ways but only set 0 exercised: occupancy = 2.
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = Cache::new(CacheConfig::l1()).unwrap();
        for a in (0..1_000_000).step_by(64) {
            c.access(a, AccessKind::Read);
        }
        assert_eq!(c.occupancy() as u64, 32 * 1024 / 64);
    }
}
