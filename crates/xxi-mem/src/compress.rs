//! Frequent-pattern cache-line compression (FPC).
//!
//! §2.2 names compression as a specialization lever for energy-efficient
//! memory: *"Future memory-systems must seek energy efficiency through
//! specialization (e.g., through compression and support for streaming
//! data)"*. This is a faithful implementation of Alameldeen & Wood's
//! Frequent Pattern Compression at 32-bit-word granularity: each word is
//! encoded with a 3-bit prefix selecting one of eight patterns, from
//! zero-run to uncompressed.
//!
//! The compression ratio translates directly into energy: a line
//! compressed to half its size moves half the bits across the interconnect
//! and (in a compressed cache) doubles effective capacity.

use serde::{Deserialize, Serialize};

/// A 64-byte cache line as 16 little-endian 32-bit words.
pub type Line = [u32; 16];

/// FPC pattern codes (3-bit prefix per word).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Run of zero words (run length in 3 extra bits, up to 8 words).
    ZeroRun,
    /// 4-bit sign-extended value.
    Se4,
    /// 8-bit sign-extended value.
    Se8,
    /// 16-bit sign-extended value.
    Se16,
    /// Upper half zero (16-bit unsigned).
    HalfZero,
    /// 16-bit value sign-extended in each half-word.
    HalfSe8,
    /// All four bytes equal.
    RepeatedByte,
    /// Uncompressed 32-bit word.
    Uncompressed,
}

impl Pattern {
    /// Payload bits for this pattern (excluding the 3-bit prefix).
    pub fn payload_bits(self) -> u32 {
        match self {
            Pattern::ZeroRun => 3,
            Pattern::Se4 => 4,
            Pattern::Se8 => 8,
            Pattern::Se16 => 16,
            Pattern::HalfZero => 16,
            Pattern::HalfSe8 => 16,
            Pattern::RepeatedByte => 8,
            Pattern::Uncompressed => 32,
        }
    }
}

/// Classify one 32-bit word.
pub fn classify(w: u32) -> Pattern {
    if w == 0 {
        return Pattern::ZeroRun;
    }
    let s = w as i32;
    if (-8..8).contains(&s) {
        return Pattern::Se4;
    }
    if (-128..128).contains(&s) {
        return Pattern::Se8;
    }
    if (-32768..32768).contains(&s) {
        return Pattern::Se16;
    }
    if w & 0xFFFF_0000 == 0 {
        return Pattern::HalfZero;
    }
    // Each half-word is an 8-bit sign-extended value.
    let lo = (w & 0xFFFF) as u16 as i16;
    let hi = (w >> 16) as u16 as i16;
    if (-128..128).contains(&lo) && (-128..128).contains(&hi) {
        return Pattern::HalfSe8;
    }
    let b = w & 0xFF;
    if w == b | (b << 8) | (b << 16) | (b << 24) {
        return Pattern::RepeatedByte;
    }
    Pattern::Uncompressed
}

/// Compressed size of a line in bits (prefix + payload per word, zero runs
/// coalesced up to 8 words per token).
pub fn compressed_bits(line: &Line) -> u32 {
    let mut bits = 0;
    let mut i = 0;
    while i < 16 {
        let p = classify(line[i]);
        if p == Pattern::ZeroRun {
            // Coalesce up to 8 zero words into one token.
            let mut run = 1;
            while i + run < 16 && run < 8 && line[i + run] == 0 {
                run += 1;
            }
            bits += 3 + Pattern::ZeroRun.payload_bits();
            i += run;
        } else {
            bits += 3 + p.payload_bits();
            i += 1;
        }
    }
    bits
}

/// Compression ratio of a line: original bits / compressed bits (≥ ~1).
pub fn compression_ratio(line: &Line) -> f64 {
    512.0 / compressed_bits(line) as f64
}

/// Summary over a stream of lines.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Lines observed.
    pub lines: u64,
    /// Total uncompressed bits.
    pub raw_bits: u64,
    /// Total compressed bits.
    pub compressed_bits: u64,
}

impl CompressionStats {
    /// New empty accumulator.
    pub fn new() -> CompressionStats {
        CompressionStats::default()
    }

    /// Record one line.
    pub fn add(&mut self, line: &Line) {
        self.lines += 1;
        self.raw_bits += 512;
        self.compressed_bits += compressed_bits(line) as u64;
    }

    /// Aggregate ratio.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bits == 0 {
            1.0
        } else {
            self.raw_bits as f64 / self.compressed_bits as f64
        }
    }

    /// Fractional interconnect-energy saving from moving compressed lines
    /// (1 − 1/ratio).
    pub fn transfer_energy_saving(&self) -> f64 {
        1.0 - 1.0 / self.ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_patterns() {
        assert_eq!(classify(0), Pattern::ZeroRun);
        assert_eq!(classify(5), Pattern::Se4);
        assert_eq!(classify((-3i32) as u32), Pattern::Se4);
        assert_eq!(classify(100), Pattern::Se8);
        assert_eq!(classify((-100i32) as u32), Pattern::Se8);
        assert_eq!(classify(30_000), Pattern::Se16);
        assert_eq!(classify(0xFFFF), Pattern::HalfZero);
        assert_eq!(classify(0x0042_0017), Pattern::HalfSe8);
        assert_eq!(classify(0xABAB_ABAB), Pattern::RepeatedByte);
        assert_eq!(classify(0xDEAD_BEEF), Pattern::Uncompressed);
    }

    #[test]
    fn zero_line_compresses_maximally() {
        let line = [0u32; 16];
        // Two zero-run tokens (8 + 8 words) of 6 bits each.
        assert_eq!(compressed_bits(&line), 12);
        assert!(compression_ratio(&line) > 40.0);
    }

    #[test]
    fn incompressible_line_pays_prefix_tax() {
        let mut line = [0u32; 16];
        for (i, w) in line.iter_mut().enumerate() {
            *w = 0x9E37_79B9u32.wrapping_mul(i as u32 + 1) | 0x8000_0001;
        }
        let bits = compressed_bits(&line);
        // All words uncompressed: 16 × 35 = 560 > 512.
        assert_eq!(bits, 560);
        assert!(compression_ratio(&line) < 1.0);
    }

    #[test]
    fn small_integer_array_compresses_well() {
        // Typical "array of small counters" data.
        let mut line = [0u32; 16];
        for (i, w) in line.iter_mut().enumerate() {
            *w = (i as u32) % 7;
        }
        let ratio = compression_ratio(&line);
        assert!(ratio > 3.0, "ratio={ratio}");
    }

    #[test]
    fn stats_accumulate_and_energy_saving() {
        let mut st = CompressionStats::new();
        st.add(&[0u32; 16]); // highly compressible
        let mut bad = [0u32; 16];
        for (i, w) in bad.iter_mut().enumerate() {
            *w = 0xDEAD_0000u32 | (0xBEEF ^ i as u32) | 0x8000_0000;
        }
        st.add(&bad);
        assert_eq!(st.lines, 2);
        let r = st.ratio();
        assert!(r > 1.0, "r={r}");
        let saving = st.transfer_energy_saving();
        assert!((0.0..1.0).contains(&saving));
        assert!((saving - (1.0 - 1.0 / r)).abs() < 1e-12);
    }

    #[test]
    fn ratio_of_empty_stats_is_one() {
        assert_eq!(CompressionStats::new().ratio(), 1.0);
    }

    #[test]
    fn zero_run_coalescing_capped_at_eight() {
        let mut line = [0u32; 16];
        line[8] = 0xDEAD_BEEF; // split runs: 8 zeros, 1 word, 7 zeros
        let bits = compressed_bits(&line);
        // 6 (run of 8) + 35 (uncompressed) + 6 (run of 7) = 47.
        assert_eq!(bits, 47);
    }
}
