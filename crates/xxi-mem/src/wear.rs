//! Start-Gap wear leveling (Qureshi et al., MICRO 2009).
//!
//! PCM's ~10⁸-write endurance is useless if the OS keeps rewriting one hot
//! counter line: the device dies when its *hottest* line dies. Start-Gap is
//! the classic algebraic remedy the §2.3 "device wear out" agenda calls
//! for: instead of a remapping table, two registers (`start`, `gap`) define
//! a slowly rotating bijection from logical to physical lines, so hot
//! logical lines migrate across the whole physical array.
//!
//! Mechanics (exactly as published):
//!
//! * The physical array has `n + 1` lines for `n` logical lines; the spare
//!   is the "gap".
//! * Mapping: `pa = (la + start) mod n`, then `pa += 1` if `pa ≥ gap`.
//! * Every `psi` writes, the gap moves down one slot (one extra device
//!   write to copy the displaced line); when it wraps, `start` advances —
//!   after `n·(n+1)·psi` writes every logical line has visited every
//!   physical slot.
//!
//! The write overhead is `1/psi` (one extra write per `psi` demand writes).

use crate::nvm::NvmDevice;
use xxi_core::units::Seconds;

/// Start-Gap wear-leveling layer over an [`NvmDevice`].
///
/// ```
/// use xxi_mem::nvm::{NvmDevice, NvmTech};
/// use xxi_mem::wear::StartGap;
/// let mut sg = StartGap::new(NvmDevice::new(NvmTech::Pcm, 9), 4);
/// for _ in 0..1000 { sg.write(0); }   // hammer one logical line
/// // Wear is spread: no physical line absorbed it all.
/// assert!(sg.device().max_wear() < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct StartGap {
    device: NvmDevice,
    /// Logical lines (device has `n + 1`).
    n: usize,
    start: usize,
    gap: usize,
    psi: u64,
    writes_since_move: u64,
    gap_moves: u64,
}

impl StartGap {
    /// Wrap `device` (which must have `n + 1` lines) exposing `n` logical
    /// lines, moving the gap every `psi` demand writes. The published
    /// sweet spot is `psi = 100` (1% overhead).
    pub fn new(device: NvmDevice, psi: u64) -> StartGap {
        assert!(device.lines() >= 2, "need at least one logical line + gap");
        assert!(psi >= 1);
        let n = device.lines() - 1;
        StartGap {
            device,
            n,
            start: 0,
            gap: n,
            psi,
            writes_since_move: 0,
            gap_moves: 0,
        }
    }

    /// Logical capacity in lines.
    pub fn logical_lines(&self) -> usize {
        self.n
    }

    /// Translate a logical line to its current physical line.
    pub fn translate(&self, la: usize) -> usize {
        assert!(la < self.n, "logical address out of range");
        let mut pa = (la + self.start) % self.n;
        if pa >= self.gap {
            pa += 1;
        }
        pa
    }

    /// Read logical line `la`.
    pub fn read(&mut self, la: usize) -> Seconds {
        let pa = self.translate(la);
        self.device.read(pa)
    }

    /// Write logical line `la`; periodically performs a gap move (which
    /// costs one additional device write).
    pub fn write(&mut self, la: usize) -> Seconds {
        let pa = self.translate(la);
        let lat = self.device.write(pa);
        self.writes_since_move += 1;
        if self.writes_since_move >= self.psi {
            self.writes_since_move = 0;
            self.move_gap();
        }
        lat
    }

    /// One gap-move step: copy line `gap − 1` into the gap slot (a device
    /// write), then the gap takes its place.
    fn move_gap(&mut self) {
        self.gap_moves += 1;
        if self.gap == 0 {
            // Gap wraps to the top; start advances, completing one rotation
            // step of the whole mapping.
            self.gap = self.n;
            self.start = (self.start + 1) % self.n;
        } else {
            // Copy displaced line into the current gap slot.
            self.device.write(self.gap);
            self.gap -= 1;
        }
    }

    /// Gap moves performed so far.
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// Borrow the underlying device (wear statistics etc.).
    pub fn device(&self) -> &NvmDevice {
        &self.device
    }

    /// Consume the layer, returning the device.
    pub fn into_device(self) -> NvmDevice {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvm::NvmTech;
    use std::collections::HashSet;

    fn fresh(n_logical: usize, psi: u64) -> StartGap {
        StartGap::new(NvmDevice::new(NvmTech::Pcm, n_logical + 1), psi)
    }

    #[test]
    fn mapping_is_injective_always() {
        let mut sg = fresh(17, 3);
        for step in 0..500 {
            let pas: HashSet<usize> = (0..17).map(|la| sg.translate(la)).collect();
            assert_eq!(pas.len(), 17, "collision after {step} writes");
            assert!(!pas.contains(&sg.gap), "mapped onto the gap");
            sg.write(step % 17);
        }
    }

    #[test]
    fn identity_mapping_initially() {
        let sg = fresh(8, 100);
        for la in 0..8 {
            assert_eq!(sg.translate(la), la);
        }
    }

    #[test]
    fn gap_moves_every_psi_writes() {
        let mut sg = fresh(8, 10);
        for _ in 0..9 {
            sg.write(0);
        }
        assert_eq!(sg.gap_moves(), 0);
        sg.write(0);
        assert_eq!(sg.gap_moves(), 1);
        for _ in 0..10 {
            sg.write(0);
        }
        assert_eq!(sg.gap_moves(), 2);
    }

    #[test]
    fn hot_line_migrates_across_physical_array() {
        // Hammer logical line 0; after enough gap moves it must occupy
        // many distinct physical slots.
        let mut sg = fresh(16, 4);
        let mut seen = HashSet::new();
        for _ in 0..16 * 17 * 4 {
            seen.insert(sg.translate(0));
            sg.write(0);
        }
        assert!(
            seen.len() >= 16,
            "hot line only visited {} slots",
            seen.len()
        );
    }

    #[test]
    fn leveling_flattens_wear_under_hotspot() {
        // The E12 headline: under a single-line hotspot, Start-Gap brings
        // max/mean wear from ~n down toward a small constant.
        let n = 64;
        let writes = 200_000u64;

        // Baseline: no leveling.
        let mut raw = NvmDevice::new(NvmTech::Pcm, n + 1);
        for _ in 0..writes {
            raw.write(0);
        }
        let raw_imbalance = raw.wear_imbalance();

        // Start-Gap with 1% overhead.
        let mut sg = fresh(n, 100);
        for _ in 0..writes {
            sg.write(0);
        }
        let leveled_imbalance = sg.device().wear_imbalance();

        assert!(raw_imbalance > (n as f64) / 2.0, "raw={raw_imbalance}");
        assert!(
            leveled_imbalance < raw_imbalance / 5.0,
            "leveled={leveled_imbalance} raw={raw_imbalance}"
        );
    }

    #[test]
    fn write_overhead_is_one_over_psi() {
        let mut sg = fresh(32, 100);
        let demand = 10_000u64;
        for i in 0..demand {
            sg.write((i % 32) as usize);
        }
        let device_writes = sg.device().metrics.counter("writes");
        let overhead = device_writes as f64 / demand as f64 - 1.0;
        // Some gap moves (the wrap step) don't cost a write, so overhead is
        // at most 1/psi.
        assert!(overhead <= 0.0101, "overhead={overhead}");
        assert!(overhead >= 0.008, "overhead={overhead}");
    }

    #[test]
    fn reads_never_move_the_gap() {
        let mut sg = fresh(8, 2);
        for _ in 0..100 {
            sg.read(3);
        }
        assert_eq!(sg.gap_moves(), 0);
        assert_eq!(sg.device().metrics.counter("reads"), 100);
    }

    #[test]
    #[should_panic]
    fn out_of_range_logical_address_panics() {
        let sg = fresh(8, 10);
        sg.translate(8);
    }
}
