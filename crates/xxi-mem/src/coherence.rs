//! MESI snooping-bus cache-coherence protocol.
//!
//! §2.2 asks for memory systems that "simplify programmability (e.g., by
//! extending coherence and virtual memory to accelerators when needed)".
//! This module provides the protocol substrate: a state-level MESI
//! simulator over a shared snooping bus connecting `n` caches.
//!
//! The simulator tracks protocol *states and traffic*, not data values —
//! the standard abstraction level for coherence studies. Per-line state is
//! kept in a map (effectively infinite caches), isolating protocol
//! behaviour from capacity effects, which [`crate::cache`] models
//! separately.
//!
//! The load-bearing invariant — **single writer / multiple readers** (at
//! most one cache in M or E; M/E excludes all other valid copies) — is
//! checked after every operation in debug builds and verified by property
//! tests.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use xxi_core::metrics::Metrics;

/// MESI stable states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MesiState {
    /// Modified: sole copy, dirty.
    Modified,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly multiple copies, clean.
    Shared,
    /// Invalid / not present.
    Invalid,
}

use MesiState::*;

/// A system of `n` coherent caches on one snooping bus.
#[derive(Clone, Debug)]
pub struct CoherentSystem {
    n: usize,
    /// state[line][cache]
    lines: HashMap<u64, Vec<MesiState>>,
    /// Counters: `bus_rd`, `bus_rdx`, `bus_upgr`, `invalidations`,
    /// `writebacks`, `interventions` (cache-to-cache supply), `mem_reads`,
    /// `reads`, `writes`, `read_hits`, `write_hits`.
    pub metrics: Metrics,
}

impl CoherentSystem {
    /// A system with `n ≥ 1` caches.
    pub fn new(n: usize) -> CoherentSystem {
        assert!(n >= 1);
        CoherentSystem {
            n,
            lines: HashMap::new(),
            metrics: Metrics::new(),
        }
    }

    /// Number of caches.
    pub fn num_caches(&self) -> usize {
        self.n
    }

    /// Current state of `line` in `cache`.
    pub fn state(&self, cache: usize, line: u64) -> MesiState {
        self.lines.get(&line).map(|v| v[cache]).unwrap_or(Invalid)
    }

    fn entry(&mut self, line: u64) -> &mut Vec<MesiState> {
        let n = self.n;
        self.lines.entry(line).or_insert_with(|| vec![Invalid; n])
    }

    /// Core `cache` reads `line`.
    pub fn read(&mut self, cache: usize, line: u64) {
        assert!(cache < self.n);
        self.metrics.incr("reads");
        let states = self.entry(line).clone();
        match states[cache] {
            Modified | Exclusive | Shared => {
                self.metrics.incr("read_hits");
            }
            Invalid => {
                // BusRd: snoopers with M supply data and downgrade; E
                // downgrades silently-ish (supplies in our model).
                self.metrics.incr("bus_rd");
                let mut supplied = false;
                let v = self.entry(line);
                for (i, s) in v.iter_mut().enumerate() {
                    if i == cache {
                        continue;
                    }
                    match *s {
                        Modified => {
                            *s = Shared;
                            supplied = true;
                        }
                        Exclusive => {
                            *s = Shared;
                            supplied = true;
                        }
                        Shared => supplied = true,
                        Invalid => {}
                    }
                }
                let any_shared = v
                    .iter()
                    .enumerate()
                    .any(|(i, s)| i != cache && *s == Shared);
                v[cache] = if any_shared { Shared } else { Exclusive };
                if supplied {
                    self.metrics.incr("interventions");
                    // An M supplier also writes back in MESI (no O state).
                    if states.contains(&Modified) {
                        self.metrics.incr("writebacks");
                    }
                } else {
                    self.metrics.incr("mem_reads");
                }
            }
        }
        self.check_invariant(line);
    }

    /// Core `cache` writes `line`.
    pub fn write(&mut self, cache: usize, line: u64) {
        assert!(cache < self.n);
        self.metrics.incr("writes");
        let states = self.entry(line).clone();
        match states[cache] {
            Modified => {
                self.metrics.incr("write_hits");
            }
            Exclusive => {
                // Silent upgrade E→M.
                self.metrics.incr("write_hits");
                self.entry(line)[cache] = Modified;
            }
            Shared => {
                // BusUpgr: invalidate other sharers, no data transfer.
                self.metrics.incr("bus_upgr");
                let mut inv = 0;
                let v = self.entry(line);
                for (i, s) in v.iter_mut().enumerate() {
                    if i != cache && *s == Shared {
                        *s = Invalid;
                        inv += 1;
                    }
                }
                v[cache] = Modified;
                self.metrics.count("invalidations", inv);
            }
            Invalid => {
                // BusRdX: fetch with intent to modify; invalidate everyone.
                self.metrics.incr("bus_rdx");
                let mut inv = 0;
                let mut had_m = false;
                let mut supplied = false;
                let v = self.entry(line);
                for (i, s) in v.iter_mut().enumerate() {
                    if i == cache {
                        continue;
                    }
                    match *s {
                        Modified => {
                            had_m = true;
                            supplied = true;
                            *s = Invalid;
                            inv += 1;
                        }
                        Exclusive | Shared => {
                            supplied = true;
                            *s = Invalid;
                            inv += 1;
                        }
                        Invalid => {}
                    }
                }
                v[cache] = Modified;
                self.metrics.count("invalidations", inv);
                if had_m {
                    self.metrics.incr("writebacks");
                }
                if supplied {
                    self.metrics.incr("interventions");
                } else {
                    self.metrics.incr("mem_reads");
                }
            }
        }
        self.check_invariant(line);
    }

    /// Evict `line` from `cache` (capacity pressure); M lines write back.
    pub fn evict(&mut self, cache: usize, line: u64) {
        let was_modified = self.entry(line)[cache] == Modified;
        if was_modified {
            self.metrics.incr("writebacks");
        }
        self.entry(line)[cache] = Invalid;
        self.check_invariant(line);
    }

    /// Verify single-writer/multiple-reader for `line`.
    fn check_invariant(&self, line: u64) {
        debug_assert!(self.holds_swmr(line), "SWMR violated on line {line:#x}");
    }

    /// Does `line` satisfy the SWMR invariant?
    pub fn holds_swmr(&self, line: u64) -> bool {
        let Some(v) = self.lines.get(&line) else {
            return true;
        };
        let m = v.iter().filter(|s| **s == Modified).count();
        let e = v.iter().filter(|s| **s == Exclusive).count();
        let s = v.iter().filter(|s| **s == Shared).count();
        // At most one owner; an owner excludes every other valid copy.
        m + e <= 1 && ((m + e == 0) || s == 0)
    }

    /// Check SWMR across all touched lines.
    pub fn holds_swmr_everywhere(&self) -> bool {
        self.lines.keys().all(|&l| self.holds_swmr(l))
    }

    /// Number of caches holding `line` in any valid state.
    pub fn sharers(&self, line: u64) -> usize {
        self.lines
            .get(&line)
            .map(|v| v.iter().filter(|s| **s != Invalid).count())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xxi_core::rng::Rng64;

    #[test]
    fn cold_read_takes_exclusive_from_memory() {
        let mut sys = CoherentSystem::new(4);
        sys.read(0, 0x40);
        assert_eq!(sys.state(0, 0x40), Exclusive);
        assert_eq!(sys.metrics.counter("bus_rd"), 1);
        assert_eq!(sys.metrics.counter("mem_reads"), 1);
    }

    #[test]
    fn second_reader_downgrades_to_shared() {
        let mut sys = CoherentSystem::new(4);
        sys.read(0, 0x40);
        sys.read(1, 0x40);
        assert_eq!(sys.state(0, 0x40), Shared);
        assert_eq!(sys.state(1, 0x40), Shared);
        // Data supplied cache-to-cache, no second memory read.
        assert_eq!(sys.metrics.counter("mem_reads"), 1);
        assert_eq!(sys.metrics.counter("interventions"), 1);
    }

    #[test]
    fn silent_e_to_m_upgrade() {
        let mut sys = CoherentSystem::new(2);
        sys.read(0, 0x80);
        assert_eq!(sys.state(0, 0x80), Exclusive);
        sys.write(0, 0x80);
        assert_eq!(sys.state(0, 0x80), Modified);
        // No bus traffic for the upgrade.
        assert_eq!(sys.metrics.counter("bus_upgr"), 0);
        assert_eq!(sys.metrics.counter("bus_rdx"), 0);
    }

    #[test]
    fn write_to_shared_invalidates_peers() {
        let mut sys = CoherentSystem::new(4);
        for c in 0..4 {
            sys.read(c, 0x100);
        }
        assert_eq!(sys.sharers(0x100), 4);
        sys.write(2, 0x100);
        assert_eq!(sys.state(2, 0x100), Modified);
        for c in [0, 1, 3] {
            assert_eq!(sys.state(c, 0x100), Invalid);
        }
        assert_eq!(sys.metrics.counter("invalidations"), 3);
        assert_eq!(sys.metrics.counter("bus_upgr"), 1);
    }

    #[test]
    fn read_after_remote_write_forces_writeback_and_share() {
        let mut sys = CoherentSystem::new(2);
        sys.write(0, 0x200);
        assert_eq!(sys.state(0, 0x200), Modified);
        sys.read(1, 0x200);
        assert_eq!(sys.state(0, 0x200), Shared);
        assert_eq!(sys.state(1, 0x200), Shared);
        assert_eq!(sys.metrics.counter("writebacks"), 1);
        assert_eq!(sys.metrics.counter("interventions"), 1);
    }

    #[test]
    fn write_after_remote_write_migrates_ownership() {
        let mut sys = CoherentSystem::new(2);
        sys.write(0, 0x240);
        sys.write(1, 0x240);
        assert_eq!(sys.state(0, 0x240), Invalid);
        assert_eq!(sys.state(1, 0x240), Modified);
        assert_eq!(sys.metrics.counter("writebacks"), 1);
        // Both writes started from Invalid, so both issued BusRdX.
        assert_eq!(sys.metrics.counter("bus_rdx"), 2);
    }

    #[test]
    fn eviction_of_modified_writes_back() {
        let mut sys = CoherentSystem::new(2);
        sys.write(0, 0x280);
        sys.evict(0, 0x280);
        assert_eq!(sys.state(0, 0x280), Invalid);
        assert_eq!(sys.metrics.counter("writebacks"), 1);
        // Clean eviction does not write back.
        sys.read(1, 0x280);
        sys.evict(1, 0x280);
        assert_eq!(sys.metrics.counter("writebacks"), 1);
    }

    #[test]
    fn false_sharing_pingpong_generates_traffic() {
        // Two cores alternately writing the same line: every write is a
        // coherence miss — the communication cost §2.2 worries about.
        let mut sys = CoherentSystem::new(2);
        for i in 0..100 {
            sys.write(i % 2, 0x300);
        }
        // First write is a cold BusRdX; the other 99 each need BusRdX too.
        assert_eq!(sys.metrics.counter("bus_rdx"), 100);
        assert_eq!(sys.metrics.counter("write_hits"), 0);
        assert!(sys.metrics.counter("writebacks") >= 98);
    }

    #[test]
    fn random_stress_preserves_swmr() {
        let mut sys = CoherentSystem::new(8);
        let mut rng = Rng64::new(99);
        for _ in 0..50_000 {
            let cache = rng.below(8) as usize;
            let line = rng.below(64) * 64;
            match rng.below(3) {
                0 => sys.read(cache, line),
                1 => sys.write(cache, line),
                _ => sys.evict(cache, line),
            }
            // (Debug builds also assert per-op.)
        }
        assert!(sys.holds_swmr_everywhere());
        // Conservation: every write either hit or generated a bus op.
        let writes = sys.metrics.counter("writes");
        let covered = sys.metrics.counter("write_hits")
            + sys.metrics.counter("bus_upgr")
            + sys.metrics.counter("bus_rdx");
        assert_eq!(writes, covered);
    }
}
