//! The memory-access energy ladder per technology node — experiment E4.
//!
//! Table 1 row 4 and §2.2 assert that *"communication \[is\] more expensive
//! than computation"* and that operand fetch costs *"one to two orders of
//! magnitude more energy than performing the operation"*. This module
//! encodes the ladder that substantiates those claims, anchored at 45 nm
//! to the widely reproduced Keckler/Horowitz picojoule budgets:
//!
//! | access (64 B line / 64 b word as noted) | 45 nm energy |
//! |---|---|
//! | register file, 64 b                     | 1.5 pJ  |
//! | L1 (32 KiB), 64 b                       | 20 pJ   |
//! | L2 (256 KiB), 64 b                      | 80 pJ   |
//! | L3 (8 MiB slice), 64 b                  | 250 pJ  |
//! | on-chip wire, 64 b across 10 mm         | 160 pJ  |
//! | off-chip DRAM, 64 b incl. interface     | 12 nJ   |
//! | chip-to-chip link, 64 b                 | 1.3 nJ  |
//!
//! SRAM energies scale with logic (`C·V²`); DRAM and off-chip interfaces
//! scale much more slowly (they are dominated by wire capacitance and I/O
//! voltage swings, not transistors) — we model them with the square root of
//! the logic scaling factor, which captures the paper's point: **the
//! compute-to-memory energy gap widens every generation**.

use serde::Serialize;

use xxi_core::units::Energy;
use xxi_tech::node::TechNode;
use xxi_tech::ops::OpEnergies;

/// 45 nm anchor values, picojoules per 64-bit access.
mod anchor45 {
    pub const RF_PJ: f64 = 1.5;
    pub const L1_PJ: f64 = 20.0;
    pub const L2_PJ: f64 = 80.0;
    pub const L3_PJ: f64 = 250.0;
    pub const WIRE_10MM_PJ: f64 = 160.0;
    pub const DRAM_PJ: f64 = 12_000.0;
    pub const CHIP_TO_CHIP_PJ: f64 = 1_300.0;
    /// gate_energy_rel of the 45nm node in the standard ladder.
    pub const GATE_ENERGY_REL: f64 = 0.240 / (1.8 * 1.8);
}

/// Per-64-bit-access energies on one node.
#[derive(Clone, Debug, Serialize)]
pub struct MemEnergyTable {
    /// Register-file read.
    pub rf: Energy,
    /// L1 cache access.
    pub l1: Energy,
    /// L2 cache access.
    pub l2: Energy,
    /// L3 cache access.
    pub l3: Energy,
    /// Driving 64 bits across 10 mm of on-chip wire.
    pub wire_10mm: Energy,
    /// Off-chip DRAM access including interface.
    pub dram: Energy,
    /// Chip-to-chip (in-package) transfer.
    pub chip_to_chip: Energy,
}

impl MemEnergyTable {
    /// The ladder on `node`.
    pub fn at(node: &TechNode) -> MemEnergyTable {
        let logic_scale = node.gate_energy_rel() / anchor45::GATE_ENERGY_REL;
        // Interfaces/wires improve with the square root of logic scaling.
        let wire_scale = logic_scale.sqrt();
        MemEnergyTable {
            rf: Energy::from_pj(anchor45::RF_PJ * logic_scale),
            l1: Energy::from_pj(anchor45::L1_PJ * logic_scale),
            l2: Energy::from_pj(anchor45::L2_PJ * logic_scale),
            l3: Energy::from_pj(anchor45::L3_PJ * logic_scale),
            wire_10mm: Energy::from_pj(anchor45::WIRE_10MM_PJ * wire_scale),
            dram: Energy::from_pj(anchor45::DRAM_PJ * wire_scale),
            chip_to_chip: Energy::from_pj(anchor45::CHIP_TO_CHIP_PJ * wire_scale),
        }
    }

    /// The ratio DRAM-access : FMA-operation on this node — the paper's
    /// "one to two orders of magnitude" claim (and growing).
    pub fn dram_to_fma_ratio(&self, ops: &OpEnergies) -> f64 {
        self.dram.value() / ops.fp_fma.value()
    }

    /// Energy to fetch two 64-bit operands and write one result at a given
    /// level of the hierarchy (3 accesses).
    pub fn operand_traffic(&self, level: Level) -> Energy {
        self.level(level) * 3.0
    }

    /// Energy of one access at `level`.
    pub fn level(&self, level: Level) -> Energy {
        match level {
            Level::RegisterFile => self.rf,
            Level::L1 => self.l1,
            Level::L2 => self.l2,
            Level::L3 => self.l3,
            Level::Dram => self.dram,
        }
    }
}

/// Hierarchy levels for [`MemEnergyTable::operand_traffic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Register file.
    RegisterFile,
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory.
    Dram,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xxi_tech::node::NodeDb;

    #[test]
    fn anchor_values_at_45nm() {
        let db = NodeDb::standard();
        let t = MemEnergyTable::at(db.by_name("45nm").unwrap());
        assert!((t.rf.pj() - 1.5).abs() < 1e-9);
        assert!((t.l1.pj() - 20.0).abs() < 1e-9);
        assert!((t.dram.nj() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn ladder_is_strictly_increasing() {
        let db = NodeDb::standard();
        for node in db.all() {
            let t = MemEnergyTable::at(node);
            assert!(t.rf.value() < t.l1.value());
            assert!(t.l1.value() < t.l2.value());
            assert!(t.l2.value() < t.l3.value());
            assert!(t.l3.value() < t.chip_to_chip.value());
            assert!(t.chip_to_chip.value() < t.dram.value());
        }
    }

    #[test]
    fn operand_fetch_dwarfs_compute_45nm() {
        // §2.2: operand fetch 1-2 orders of magnitude above the FP op.
        let db = NodeDb::standard();
        let node = db.by_name("45nm").unwrap();
        let t = MemEnergyTable::at(node);
        let ops = OpEnergies::at(node);
        let ratio = t.dram_to_fma_ratio(&ops);
        assert!((100.0..1000.0).contains(&ratio), "DRAM/FMA ratio = {ratio}");
        // Even an L2 operand fetch (3 accesses) exceeds the FMA itself.
        assert!(t.operand_traffic(Level::L2).value() > ops.fp_fma.value());
    }

    #[test]
    fn gap_widens_with_scaling() {
        // Logic energy falls faster than interface energy ⇒ the DRAM/FMA
        // ratio grows monotonically across nodes — the trend that makes
        // "communication more expensive than computation" (Table 1 row 4).
        let db = NodeDb::standard();
        let mut prev = 0.0;
        for node in db.all() {
            let ratio = MemEnergyTable::at(node).dram_to_fma_ratio(&OpEnergies::at(node));
            assert!(ratio > prev, "{}: {ratio} <= {prev}", node.name);
            prev = ratio;
        }
    }

    #[test]
    fn all_energies_physical() {
        let db = NodeDb::standard();
        for node in db.all() {
            let t = MemEnergyTable::at(node);
            for e in [t.rf, t.l1, t.l2, t.l3, t.wire_10mm, t.dram, t.chip_to_chip] {
                assert!(e.is_physical() && e.value() > 0.0);
            }
        }
    }

    #[test]
    fn operand_traffic_is_three_accesses() {
        let db = NodeDb::standard();
        let t = MemEnergyTable::at(db.by_name("45nm").unwrap());
        assert!(
            (t.operand_traffic(Level::RegisterFile).value() - t.rf.value() * 3.0).abs() < 1e-18
        );
    }
}
