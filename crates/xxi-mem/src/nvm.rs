//! Emerging non-volatile memory device models.
//!
//! §2.3: *"Other emerging non-volatile storage technologies (e.g., STT-RAM,
//! PCRAM, and memristor) promise to disrupt the current design dichotomy
//! between volatile memory and non-volatile, long-term storage … yet
//! require re-architecting memory and storage systems to address the device
//! capabilities (e.g., longer, asymmetric, or variable latency, as well as
//! device wear out)."*
//!
//! Each [`NvmTech`] is parameterized by exactly those properties: read and
//! write latency (asymmetric), read and write energy (asymmetric), and
//! write endurance. [`NvmDevice`] tracks per-line wear so the Start-Gap
//! experiment in [`crate::wear`] can measure lifetime with and without
//! leveling.

use serde::{Deserialize, Serialize};

use xxi_core::metrics::Metrics;
use xxi_core::units::{Energy, Seconds};

/// Non-volatile memory technology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmTech {
    /// Phase-change memory.
    Pcm,
    /// Spin-transfer-torque magnetic RAM.
    SttRam,
    /// Resistive RAM / memristor.
    Memristor,
    /// NAND flash (block-erase granularity is abstracted to a high per-
    /// write cost and low endurance).
    Flash,
}

/// Device parameters for a 64-byte line access.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NvmParams {
    /// Read latency.
    pub read_latency: Seconds,
    /// Write latency.
    pub write_latency: Seconds,
    /// Read energy per 64 B.
    pub read_energy: Energy,
    /// Write energy per 64 B.
    pub write_energy: Energy,
    /// Writes a cell endures before failing.
    pub endurance: u64,
    /// Standing (idle/refresh) power per GiB — zero for true NVM.
    pub idle_mw_per_gib: f64,
}

impl NvmTech {
    /// Literature-calibrated parameters (ISCA/MICRO 2009-2013 era surveys,
    /// which match the paper's vintage).
    pub fn params(self) -> NvmParams {
        match self {
            // PCM: reads ~2-4× DRAM latency, writes ~10×, endurance ~1e8.
            NvmTech::Pcm => NvmParams {
                read_latency: Seconds::from_ns(60.0),
                write_latency: Seconds::from_ns(300.0),
                read_energy: Energy::from_nj(2.0),
                write_energy: Energy::from_nj(30.0),
                endurance: 100_000_000,
                idle_mw_per_gib: 1.0,
            },
            // STT-RAM: near-DRAM reads, 2-3× writes, effectively unlimited
            // endurance (1e12 modeled as 1e12).
            NvmTech::SttRam => NvmParams {
                read_latency: Seconds::from_ns(20.0),
                write_latency: Seconds::from_ns(40.0),
                read_energy: Energy::from_nj(1.0),
                write_energy: Energy::from_nj(5.0),
                endurance: 1_000_000_000_000,
                idle_mw_per_gib: 0.5,
            },
            // Memristor/ReRAM: fast-ish reads, moderate writes, 1e9-1e10.
            NvmTech::Memristor => NvmParams {
                read_latency: Seconds::from_ns(30.0),
                write_latency: Seconds::from_ns(100.0),
                read_energy: Energy::from_nj(1.5),
                write_energy: Energy::from_nj(10.0),
                endurance: 5_000_000_000,
                idle_mw_per_gib: 0.5,
            },
            // Flash: microsecond reads, effective-millisecond program/erase
            // amortized, endurance ~1e5.
            NvmTech::Flash => NvmParams {
                read_latency: Seconds::from_us(25.0),
                write_latency: Seconds::from_us(200.0),
                read_energy: Energy::from_nj(250.0),
                write_energy: Energy::from_uj(2.0),
                endurance: 100_000,
                idle_mw_per_gib: 0.1,
            },
        }
    }
}

/// A line-addressed NVM array with per-line wear tracking.
#[derive(Clone, Debug)]
pub struct NvmDevice {
    tech: NvmTech,
    params: NvmParams,
    wear: Vec<u64>,
    failed_lines: u64,
    /// `reads`, `writes`, `line_failures`.
    pub metrics: Metrics,
    energy: Energy,
}

impl NvmDevice {
    /// An array of `lines` 64-byte lines of `tech`.
    pub fn new(tech: NvmTech, lines: usize) -> NvmDevice {
        assert!(lines > 0);
        NvmDevice {
            tech,
            params: tech.params(),
            wear: vec![0; lines],
            failed_lines: 0,
            metrics: Metrics::new(),
            energy: Energy::ZERO,
        }
    }

    /// The technology.
    pub fn tech(&self) -> NvmTech {
        self.tech
    }

    /// Device parameters.
    pub fn params(&self) -> &NvmParams {
        &self.params
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.wear.len()
    }

    /// Read line `idx`; returns latency (energy is accumulated).
    pub fn read(&mut self, idx: usize) -> Seconds {
        self.metrics.incr("reads");
        self.energy += self.params.read_energy;
        let _ = self.wear[idx]; // bounds-check as the real device would
        self.params.read_latency
    }

    /// Write line `idx`; returns latency. Each write wears the line; a
    /// line whose wear crosses the endurance budget is counted as failed
    /// (it keeps "working" so experiments can count total failures).
    pub fn write(&mut self, idx: usize) -> Seconds {
        self.metrics.incr("writes");
        self.energy += self.params.write_energy;
        self.wear[idx] += 1;
        if self.wear[idx] == self.params.endurance {
            self.failed_lines += 1;
            self.metrics.incr("line_failures");
        }
        self.params.write_latency
    }

    /// Writes absorbed by line `idx` so far.
    pub fn wear_of(&self, idx: usize) -> u64 {
        self.wear[idx]
    }

    /// Highest per-line wear.
    pub fn max_wear(&self) -> u64 {
        self.wear.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-line wear.
    pub fn mean_wear(&self) -> f64 {
        self.wear.iter().sum::<u64>() as f64 / self.wear.len() as f64
    }

    /// Wear-imbalance factor: max/mean (1.0 = perfectly level). The figure
    /// of merit for wear leveling.
    pub fn wear_imbalance(&self) -> f64 {
        let mean = self.mean_wear();
        if mean == 0.0 {
            1.0
        } else {
            self.max_wear() as f64 / mean
        }
    }

    /// Lines that exceeded their endurance.
    pub fn failed_lines(&self) -> u64 {
        self.failed_lines
    }

    /// True once any line has failed — the device-lifetime criterion used
    /// by experiment E12.
    pub fn is_worn_out(&self) -> bool {
        self.failed_lines > 0
    }

    /// Total dynamic energy so far.
    pub fn dynamic_energy(&self) -> Energy {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetry_read_vs_write() {
        for tech in [
            NvmTech::Pcm,
            NvmTech::SttRam,
            NvmTech::Memristor,
            NvmTech::Flash,
        ] {
            let p = tech.params();
            assert!(
                p.write_latency.value() > p.read_latency.value(),
                "{tech:?} writes must be slower"
            );
            assert!(
                p.write_energy.value() > p.read_energy.value(),
                "{tech:?} writes must cost more energy"
            );
        }
    }

    #[test]
    fn technology_ordering_matches_literature() {
        let pcm = NvmTech::Pcm.params();
        let stt = NvmTech::SttRam.params();
        let flash = NvmTech::Flash.params();
        assert!(stt.read_latency.value() < pcm.read_latency.value());
        assert!(pcm.read_latency.value() < flash.read_latency.value());
        assert!(stt.endurance > pcm.endurance);
        assert!(pcm.endurance > flash.endurance);
    }

    #[test]
    fn nvm_idle_power_below_dram_refresh() {
        // The headline §2.3 advantage: no refresh.
        for tech in [
            NvmTech::Pcm,
            NvmTech::SttRam,
            NvmTech::Memristor,
            NvmTech::Flash,
        ] {
            assert!(tech.params().idle_mw_per_gib < 50.0);
        }
    }

    #[test]
    fn wear_accumulates_only_on_writes() {
        let mut d = NvmDevice::new(NvmTech::Pcm, 16);
        for _ in 0..10 {
            d.read(3);
        }
        assert_eq!(d.wear_of(3), 0);
        for _ in 0..10 {
            d.write(3);
        }
        assert_eq!(d.wear_of(3), 10);
        assert_eq!(d.metrics.counter("reads"), 10);
        assert_eq!(d.metrics.counter("writes"), 10);
    }

    #[test]
    fn line_fails_exactly_at_endurance() {
        let mut d = NvmDevice::new(NvmTech::Flash, 4);
        let endurance = d.params().endurance;
        for i in 0..endurance {
            assert!(!d.is_worn_out(), "failed early at write {i}");
            d.write(0);
        }
        assert!(d.is_worn_out());
        assert_eq!(d.failed_lines(), 1);
    }

    #[test]
    fn wear_imbalance_metric() {
        let mut d = NvmDevice::new(NvmTech::Pcm, 4);
        // Uniform writes → imbalance 1.
        for i in 0..4 {
            d.write(i);
        }
        assert!((d.wear_imbalance() - 1.0).abs() < 1e-12);
        // Hammer one line → imbalance grows.
        for _ in 0..96 {
            d.write(0);
        }
        assert!(d.wear_imbalance() > 3.0);
        assert_eq!(d.max_wear(), 97);
    }

    #[test]
    fn energy_accounting() {
        let mut d = NvmDevice::new(NvmTech::Pcm, 4);
        d.read(0);
        d.write(1);
        let expect = NvmTech::Pcm.params().read_energy + NvmTech::Pcm.params().write_energy;
        assert!((d.dynamic_energy().value() - expect.value()).abs() < 1e-18);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_access_panics() {
        let mut d = NvmDevice::new(NvmTech::Pcm, 4);
        d.read(4);
    }
}
