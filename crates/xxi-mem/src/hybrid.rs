//! Hybrid DRAM + NVM main memory with page migration.
//!
//! The "rethought memory/storage stack" of §2.3: a small, fast, volatile
//! DRAM tier in front of a large, slow-to-write, non-volatile tier, managed
//! at page granularity. Hot pages are promoted into DRAM (evicting the
//! coldest resident page) using epoch-based access counting — the standard
//! first-order design from the PCM-hybrid literature (Qureshi et al., ISCA
//! 2009) that the paper's agenda builds on.
//!
//! The model answers the E12 questions: how close does a mostly-NVM system
//! get to all-DRAM latency, at what write-traffic cost, and how much
//! standing (refresh) power does it save?

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::nvm::NvmTech;
use crate::trace::Access;
use xxi_core::metrics::Metrics;
use xxi_core::units::{Energy, Power, Seconds};

/// Hybrid-memory configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HybridConfig {
    /// DRAM tier capacity in pages.
    pub dram_pages: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// NVM technology of the capacity tier.
    pub nvm: NvmTech,
    /// Accesses to a page within one epoch before it is promoted.
    pub promote_threshold: u32,
    /// Epoch length in accesses (counters halve each epoch).
    pub epoch_accesses: u64,
    /// DRAM access latency / energy per 64 B.
    pub dram_latency: Seconds,
    /// DRAM energy per 64 B.
    pub dram_energy: Energy,
    /// DRAM refresh power per GiB.
    pub dram_refresh_per_gib: Power,
}

impl Default for HybridConfig {
    fn default() -> HybridConfig {
        HybridConfig {
            dram_pages: 1024,
            page_bytes: 4096,
            nvm: NvmTech::Pcm,
            promote_threshold: 4,
            epoch_accesses: 100_000,
            dram_latency: Seconds::from_ns(60.0),
            dram_energy: Energy::from_nj(12.0),
            dram_refresh_per_gib: Power::from_mw(50.0),
        }
    }
}

/// The hybrid memory.
#[derive(Clone, Debug)]
pub struct HybridMemory {
    cfg: HybridConfig,
    /// Pages currently in DRAM, with their epoch access count.
    dram: HashMap<u64, u32>,
    /// Epoch access counters for NVM-resident pages.
    heat: HashMap<u64, u32>,
    since_epoch: u64,
    total_latency: Seconds,
    total_energy: Energy,
    accesses: u64,
    /// `dram_hits`, `nvm_reads`, `nvm_writes`, `promotions`, `demotions`,
    /// `migration_writes`.
    pub metrics: Metrics,
}

impl HybridMemory {
    /// Build from config.
    pub fn new(cfg: HybridConfig) -> HybridMemory {
        assert!(cfg.dram_pages > 0 && cfg.page_bytes.is_power_of_two());
        HybridMemory {
            cfg,
            dram: HashMap::new(),
            heat: HashMap::new(),
            since_epoch: 0,
            total_latency: Seconds::ZERO,
            total_energy: Energy::ZERO,
            accesses: 0,
            metrics: Metrics::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.cfg
    }

    fn page_of(&self, addr: u64) -> u64 {
        addr / self.cfg.page_bytes
    }

    /// Serve one access.
    pub fn access(&mut self, a: Access) -> (Seconds, Energy) {
        self.accesses += 1;
        self.since_epoch += 1;
        if self.since_epoch >= self.cfg.epoch_accesses {
            self.rotate_epoch();
        }
        let page = self.page_of(a.addr);
        let nvm = self.cfg.nvm.params();

        let (lat, en) = if let Some(count) = self.dram.get_mut(&page) {
            *count = count.saturating_add(1);
            self.metrics.incr("dram_hits");
            (self.cfg.dram_latency, self.cfg.dram_energy)
        } else {
            // NVM access.
            let (lat, en) = if a.write {
                self.metrics.incr("nvm_writes");
                (nvm.write_latency, nvm.write_energy)
            } else {
                self.metrics.incr("nvm_reads");
                (nvm.read_latency, nvm.read_energy)
            };
            // Heat accounting and possible promotion.
            let heat = self.heat.entry(page).or_insert(0);
            *heat = heat.saturating_add(1);
            if *heat >= self.cfg.promote_threshold {
                self.promote(page);
            }
            (lat, en)
        };
        self.total_latency += lat;
        self.total_energy += en;
        (lat, en)
    }

    /// Promote `page` into DRAM, evicting the coldest resident page if
    /// full. Migration copies one page: charged as page-size/64 NVM reads
    /// plus (on demotion) page-size/64 NVM writes.
    fn promote(&mut self, page: u64) {
        let nvm = self.cfg.nvm.params();
        let lines = (self.cfg.page_bytes / 64).max(1) as f64;
        if self.dram.len() >= self.cfg.dram_pages {
            // Evict coldest (min counter; ties broken by smallest page id
            // for determinism).
            let (&victim, _) = self
                .dram
                .iter()
                .min_by_key(|(p, c)| (**c, **p))
                .expect("dram non-empty"); // xxi-allow: panic-path -- see the expect message
            self.dram.remove(&victim);
            self.metrics.incr("demotions");
            // Write the page back to NVM.
            self.metrics.count("migration_writes", lines as u64);
            self.total_energy += nvm.write_energy * lines;
        }
        self.heat.remove(&page);
        self.dram.insert(page, 0);
        self.metrics.incr("promotions");
        // Read the page out of NVM into DRAM.
        self.total_energy += nvm.read_energy * lines;
    }

    /// Epoch rotation: halve all heat counters (aging) and DRAM counters.
    fn rotate_epoch(&mut self) {
        self.since_epoch = 0;
        // xxi-allow: hashmap-order -- halving every counter is order-independent
        for c in self.heat.values_mut() {
            *c /= 2;
        }
        // xxi-allow: hashmap-order -- halving every counter is order-independent
        for c in self.dram.values_mut() {
            *c /= 2;
        }
        self.heat.retain(|_, c| *c > 0);
    }

    /// Run a trace.
    pub fn run(&mut self, trace: &[Access]) {
        for &a in trace {
            self.access(a);
        }
    }

    /// Average access latency so far.
    pub fn avg_latency(&self) -> Seconds {
        if self.accesses == 0 {
            Seconds::ZERO
        } else {
            Seconds(self.total_latency.value() / self.accesses as f64)
        }
    }

    /// Average dynamic energy per access so far (incl. migration).
    pub fn avg_energy(&self) -> Energy {
        if self.accesses == 0 {
            Energy::ZERO
        } else {
            Energy(self.total_energy.value() / self.accesses as f64)
        }
    }

    /// Fraction of accesses served from DRAM.
    pub fn dram_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.metrics.counter("dram_hits") as f64 / self.accesses as f64
        }
    }

    /// Standing power of the DRAM tier (refresh) — the part NVM avoids.
    pub fn dram_standing_power(&self) -> Power {
        let gib = self.cfg.dram_pages as f64 * self.cfg.page_bytes as f64 / (1u64 << 30) as f64;
        Power(self.cfg.dram_refresh_per_gib.value() * gib)
    }

    /// Number of DRAM-resident pages.
    pub fn dram_occupancy(&self) -> usize {
        self.dram.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGen;

    #[test]
    fn hot_pages_get_promoted() {
        let mut m = HybridMemory::new(HybridConfig::default());
        // Hammer one page.
        for i in 0..100 {
            m.access(Access::read(4096 * 7 + (i % 64) * 64));
        }
        assert!(m.metrics.counter("promotions") >= 1);
        assert!(m.dram_occupancy() >= 1);
        // After promotion the page serves from DRAM.
        assert!(m.dram_hit_rate() > 0.9, "{}", m.dram_hit_rate());
    }

    #[test]
    fn cold_uniform_traffic_stays_in_nvm() {
        let mut m = HybridMemory::new(HybridConfig {
            promote_threshold: 8,
            ..HybridConfig::default()
        });
        let mut g = TraceGen::new(1);
        // 1 GiB span, 20k accesses: pages rarely repeat within an epoch.
        let t = g.uniform(20_000, 0, 1 << 30, 64, 0.3);
        m.run(&t);
        assert!(m.dram_hit_rate() < 0.1, "{}", m.dram_hit_rate());
        assert!(m.metrics.counter("nvm_reads") + m.metrics.counter("nvm_writes") > 15_000);
    }

    #[test]
    fn zipf_traffic_approaches_dram_latency() {
        // Skewed traffic: the hot head fits in DRAM, so average latency
        // lands near DRAM's, far below PCM write latency.
        let mut m = HybridMemory::new(HybridConfig::default());
        let mut g = TraceGen::new(2);
        let t = g.zipf(300_000, 0, 100_000, 4096, 1.1, 0.3);
        m.run(&t);
        assert!(m.dram_hit_rate() > 0.5, "hit={}", m.dram_hit_rate());
        let avg_ns = m.avg_latency().value() * 1e9;
        assert!(avg_ns < 150.0, "avg={avg_ns}ns");
    }

    #[test]
    fn dram_capacity_bound_respected() {
        let mut m = HybridMemory::new(HybridConfig {
            dram_pages: 8,
            promote_threshold: 1,
            ..HybridConfig::default()
        });
        let mut g = TraceGen::new(3);
        let t = g.uniform(10_000, 0, 1 << 24, 64, 0.0);
        m.run(&t);
        assert!(m.dram_occupancy() <= 8);
        assert!(m.metrics.counter("demotions") > 0);
    }

    #[test]
    fn migration_energy_is_charged() {
        let mut m = HybridMemory::new(HybridConfig {
            dram_pages: 1,
            promote_threshold: 1,
            ..HybridConfig::default()
        });
        // Two pages alternate, forcing promote/demote churn.
        for i in 0..50u64 {
            m.access(Access::read((i % 2) * 4096));
        }
        assert!(m.metrics.counter("migration_writes") > 0);
        // Energy per access exceeds the pure read energy because of
        // migration traffic.
        let pure_read = NvmTech::Pcm.params().read_energy;
        assert!(m.avg_energy().value() > pure_read.value());
    }

    #[test]
    fn standing_power_scales_with_dram_size_only() {
        let small = HybridMemory::new(HybridConfig {
            dram_pages: 1024,
            ..HybridConfig::default()
        });
        let big = HybridMemory::new(HybridConfig {
            dram_pages: 4096,
            ..HybridConfig::default()
        });
        assert!(
            (big.dram_standing_power().value() / small.dram_standing_power().value() - 4.0).abs()
                < 1e-9
        );
    }
}
