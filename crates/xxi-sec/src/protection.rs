//! Fine-grain protection domains within one application.
//!
//! §2.4: *"We need interfaces to specify fine-grain protection boundaries
//! among modules within a single application."* The classical page-granular
//! process boundary is too coarse (a crypto library and a JSON parser share
//! one address space today); the mechanism modeled here is a
//! **domain × region access matrix** checked on every access — the
//! Mondrian-/CHERI-flavored direction the paper gestures at — plus
//! controlled cross-domain calls (gates) and an energy price per check, so
//! "efficient enforcement" is measurable, not assumed.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use xxi_core::metrics::Metrics;
use xxi_core::units::Energy;
use xxi_core::{Result, XxiError};

/// A protection domain (an intra-application module).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub u32);

/// A protected memory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// Access kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
    /// Instruction fetch / call into the region.
    Execute,
}

/// Permission bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Perms(pub u8);

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms(0);
    /// Read.
    pub const R: Perms = Perms(1);
    /// Write.
    pub const W: Perms = Perms(2);
    /// Execute.
    pub const X: Perms = Perms(4);
    /// Read + write.
    pub const RW: Perms = Perms(3);
    /// Read + execute.
    pub const RX: Perms = Perms(5);

    /// Union.
    pub fn or(self, other: Perms) -> Perms {
        Perms(self.0 | other.0)
    }

    /// Does this permission set allow `kind`?
    pub fn allows(self, kind: AccessKind) -> bool {
        let need = match kind {
            AccessKind::Read => 1,
            AccessKind::Write => 2,
            AccessKind::Execute => 4,
        };
        self.0 & need != 0
    }
}

/// The access matrix plus regions and call gates.
#[derive(Clone, Debug, Default)]
pub struct ProtectionMatrix {
    /// region → (base word, length in words)
    // BTreeMap so overlap checks and `region_of` scans visit regions in
    // id order — error messages and lookups stay deterministic.
    regions: BTreeMap<RegionId, (usize, usize)>,
    /// (domain, region) → perms
    matrix: HashMap<(DomainId, RegionId), Perms>,
    /// Legal cross-domain calls (caller → callee), i.e. gates.
    gates: HashMap<DomainId, Vec<DomainId>>,
    /// `checks`, `faults`, `gate_calls`, `gate_faults`.
    pub metrics: Metrics,
}

/// Energy per protection check — a few lookaside-buffer bits' worth, far
/// cheaper than a TLB miss (anchored at 45 nm alongside the other tables).
pub const CHECK_ENERGY_PJ: f64 = 0.8;

impl ProtectionMatrix {
    /// Empty matrix.
    pub fn new() -> ProtectionMatrix {
        ProtectionMatrix::default()
    }

    /// Define (or redefine) a region covering `[base, base+len)` words.
    pub fn define_region(&mut self, id: RegionId, base: usize, len: usize) -> Result<()> {
        if len == 0 {
            return Err(XxiError::config("empty region"));
        }
        for (other, &(b, l)) in &self.regions {
            if *other != id && base < b + l && b < base + len {
                return Err(XxiError::config(format!(
                    "region {id:?} overlaps {other:?}"
                )));
            }
        }
        self.regions.insert(id, (base, len));
        Ok(())
    }

    /// Grant `perms` on `region` to `domain` (replaces previous grant).
    pub fn grant(&mut self, domain: DomainId, region: RegionId, perms: Perms) {
        self.matrix.insert((domain, region), perms);
    }

    /// Allow `caller` to call into `callee` through a gate.
    pub fn add_gate(&mut self, caller: DomainId, callee: DomainId) {
        self.gates.entry(caller).or_default().push(callee);
    }

    /// The region containing word `addr`, if any.
    pub fn region_of(&self, addr: usize) -> Option<RegionId> {
        self.regions
            .iter()
            .find(|(_, &(b, l))| addr >= b && addr < b + l)
            .map(|(id, _)| *id)
    }

    /// Check one access; `Ok` means allowed. Faults are counted.
    pub fn check(&mut self, domain: DomainId, addr: usize, kind: AccessKind) -> Result<()> {
        self.metrics.incr("checks");
        let Some(region) = self.region_of(addr) else {
            self.metrics.incr("faults");
            return Err(XxiError::invariant(format!(
                "{domain:?} touched unmapped word {addr}"
            )));
        };
        let perms = self
            .matrix
            .get(&(domain, region))
            .copied()
            .unwrap_or(Perms::NONE);
        if perms.allows(kind) {
            Ok(())
        } else {
            self.metrics.incr("faults");
            Err(XxiError::invariant(format!(
                "{domain:?} lacks {kind:?} on {region:?}"
            )))
        }
    }

    /// Check a cross-domain call.
    pub fn call(&mut self, caller: DomainId, callee: DomainId) -> Result<()> {
        self.metrics.incr("gate_calls");
        if self
            .gates
            .get(&caller)
            .map(|v| v.contains(&callee))
            .unwrap_or(false)
        {
            Ok(())
        } else {
            self.metrics.incr("gate_faults");
            Err(XxiError::invariant(format!(
                "no gate {caller:?} -> {callee:?}"
            )))
        }
    }

    /// Total checking energy so far.
    pub fn check_energy(&self) -> Energy {
        Energy::from_pj(CHECK_ENERGY_PJ * self.metrics.counter("checks") as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scenario §2.4 implies: an app with a crypto module holding key
    /// material, a parser handling untrusted input, and shared scratch.
    fn app() -> (
        ProtectionMatrix,
        DomainId,
        DomainId,
        RegionId,
        RegionId,
        RegionId,
    ) {
        let mut pm = ProtectionMatrix::new();
        let crypto = DomainId(1);
        let parser = DomainId(2);
        let keys = RegionId(10);
        let inbuf = RegionId(11);
        let scratch = RegionId(12);
        pm.define_region(keys, 0, 64).unwrap();
        pm.define_region(inbuf, 64, 256).unwrap();
        pm.define_region(scratch, 320, 128).unwrap();
        pm.grant(crypto, keys, Perms::RW);
        pm.grant(crypto, scratch, Perms::RW);
        pm.grant(parser, inbuf, Perms::RW);
        pm.grant(parser, scratch, Perms::RW);
        pm.add_gate(parser, crypto);
        (pm, crypto, parser, keys, inbuf, scratch)
    }

    #[test]
    fn intra_module_access_allowed() {
        let (mut pm, crypto, parser, ..) = app();
        assert!(pm.check(crypto, 5, AccessKind::Read).is_ok());
        assert!(pm.check(crypto, 5, AccessKind::Write).is_ok());
        assert!(pm.check(parser, 100, AccessKind::Read).is_ok());
        assert!(pm.check(parser, 400, AccessKind::Write).is_ok());
        assert_eq!(pm.metrics.counter("faults"), 0);
    }

    #[test]
    fn parser_cannot_touch_key_material() {
        // The Heartbleed-shaped fault this mechanism exists to stop.
        let (mut pm, _, parser, ..) = app();
        assert!(pm.check(parser, 5, AccessKind::Read).is_err());
        assert!(pm.check(parser, 5, AccessKind::Write).is_err());
        assert_eq!(pm.metrics.counter("faults"), 2);
    }

    #[test]
    fn crypto_cannot_read_raw_input_unless_granted() {
        let (mut pm, crypto, _, _, _inbuf, _) = app();
        assert!(pm.check(crypto, 100, AccessKind::Read).is_err());
        pm.grant(crypto, RegionId(11), Perms::R);
        assert!(pm.check(crypto, 100, AccessKind::Read).is_ok());
        assert!(pm.check(crypto, 100, AccessKind::Write).is_err());
    }

    #[test]
    fn gates_control_cross_domain_calls() {
        let (mut pm, crypto, parser, ..) = app();
        assert!(pm.call(parser, crypto).is_ok());
        assert!(pm.call(crypto, parser).is_err());
        assert_eq!(pm.metrics.counter("gate_faults"), 1);
    }

    #[test]
    fn unmapped_addresses_fault() {
        let (mut pm, crypto, ..) = app();
        assert!(pm.check(crypto, 9_999, AccessKind::Read).is_err());
    }

    #[test]
    fn overlapping_regions_rejected() {
        let mut pm = ProtectionMatrix::new();
        pm.define_region(RegionId(1), 0, 100).unwrap();
        assert!(pm.define_region(RegionId(2), 50, 100).is_err());
        assert!(pm.define_region(RegionId(2), 100, 100).is_ok());
        assert!(pm.define_region(RegionId(3), 0, 0).is_err());
        // Redefining the same region is allowed.
        assert!(pm.define_region(RegionId(1), 0, 50).is_ok());
    }

    #[test]
    fn perms_semantics() {
        assert!(Perms::RW.allows(AccessKind::Read));
        assert!(Perms::RW.allows(AccessKind::Write));
        assert!(!Perms::RW.allows(AccessKind::Execute));
        assert!(Perms::RX.allows(AccessKind::Execute));
        assert!(!Perms::NONE.allows(AccessKind::Read));
        assert_eq!(Perms::R.or(Perms::W), Perms::RW);
    }

    #[test]
    fn checking_energy_is_cheap_relative_to_work() {
        // 1M checked accesses cost ~0.8 µJ — noise next to the ~100 pJ/op
        // application they protect (<1% overhead).
        let (mut pm, crypto, ..) = app();
        for _ in 0..1_000_000 {
            let _ = pm.check(crypto, 5, AccessKind::Read);
        }
        let overhead = pm.check_energy().value() / (1_000_000.0 * 100e-12);
        assert!(overhead < 0.01, "overhead={overhead}");
    }
}
