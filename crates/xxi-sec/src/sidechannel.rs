//! A cache side channel, demonstrated and then closed.
//!
//! §2.4 cites "information flow tracking (reducing side-channel attacks)"
//! and power "footprints"; the microarchitectural reality behind that
//! agenda is that shared caches leak. This module stages the classic
//! **prime + probe** attack against the `xxi-mem` cache model:
//!
//! 1. The attacker *primes* every set of a shared cache with its own lines.
//! 2. The victim runs one secret-dependent access: a table lookup indexed
//!    by the secret (the shape of a T-table AES or a secret-indexed array).
//! 3. The attacker *probes* its lines; the set the victim touched evicted
//!    one attacker line, so exactly that set misses — the secret's cache-set
//!    bits are recovered bit-for-bit.
//!
//! The architectural defense the paper family proposes — **partitioning**
//! (here: per-domain way partitioning, [`PartitionedCache`]) — removes the
//! interference: the victim's fills can no longer evict attacker lines, and
//! the attack's posterior collapses to chance. Both facts are tests.

use serde::Serialize;

use xxi_mem::cache::{AccessKind, Cache, CacheConfig};

/// Result of one prime+probe round.
#[derive(Clone, Debug, Serialize)]
pub struct AttackResult {
    /// Set index the attacker inferred (most-missed probe set).
    pub inferred_set: usize,
    /// Number of probe misses observed in that set.
    pub signal_misses: u64,
    /// Total probe misses everywhere else (noise floor).
    pub noise_misses: u64,
}

/// The victim: performs one load whose cache set depends on `secret`.
/// Table base is placed so that the secret maps directly to a set index.
fn victim_access(cache: &mut Cache, secret: usize) {
    let line = cache.config().line_bytes;
    let addr = (secret as u64) * line; // set = secret % num_sets
    cache.access(addr, AccessKind::Read);
}

/// Run prime+probe against a shared cache and infer the victim's secret
/// cache set. The attacker's lines live in a disjoint address range that
/// maps onto the same sets (tag differs, set matches).
pub fn prime_probe_attack(cache: &mut Cache, secret: usize) -> AttackResult {
    let sets = cache.num_sets();
    let ways = cache.config().ways as usize;
    let line = cache.config().line_bytes;
    let attacker_base: u64 = 1 << 30;

    // Prime: fill every set with attacker lines.
    for way in 0..ways {
        for set in 0..sets {
            let addr = attacker_base + (way * sets + set) as u64 * line;
            cache.access(addr, AccessKind::Read);
        }
    }

    // Victim runs.
    victim_access(cache, secret);

    // Probe: re-touch the attacker lines, counting misses per set.
    let mut misses = vec![0u64; sets];
    for way in 0..ways {
        for (set, m) in misses.iter_mut().enumerate() {
            let addr = attacker_base + (way * sets + set) as u64 * line;
            if !cache.access(addr, AccessKind::Read).is_hit() {
                *m += 1;
            }
        }
    }

    let inferred_set = misses
        .iter()
        .enumerate()
        .max_by_key(|(_, &m)| m)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let signal = misses[inferred_set];
    let noise: u64 = misses.iter().sum::<u64>() - signal;
    AttackResult {
        inferred_set,
        signal_misses: signal,
        noise_misses: noise,
    }
}

/// A way-partitioned shared cache: each security domain owns a disjoint
/// subset of the ways (implemented as one private sub-cache per domain —
/// behaviourally identical to way masks for this analysis). The §2.4
/// defense: isolation by construction, at a capacity cost.
pub struct PartitionedCache {
    partitions: Vec<Cache>,
}

impl PartitionedCache {
    /// Split a cache of `total_ways` ways among `domains` equal partitions.
    pub fn new(cfg: CacheConfig, domains: usize) -> PartitionedCache {
        assert!(domains >= 1 && cfg.ways as usize >= domains);
        let ways_each = cfg.ways as usize / domains;
        let size_each = cfg.size_bytes / domains as u64;
        let partitions = (0..domains)
            .map(|_| {
                Cache::new(CacheConfig {
                    size_bytes: size_each,
                    ways: ways_each as u64,
                    ..cfg.clone()
                })
                .expect("partition config valid") // xxi-allow: panic-path -- see the expect message
            })
            .collect();
        PartitionedCache { partitions }
    }

    /// Access on behalf of `domain`.
    pub fn access(&mut self, domain: usize, addr: u64, kind: AccessKind) -> bool {
        self.partitions[domain].access(addr, kind).is_hit()
    }

    /// The partition belonging to `domain`.
    pub fn partition_mut(&mut self, domain: usize) -> &mut Cache {
        &mut self.partitions[domain]
    }
}

/// Prime+probe against a partitioned cache: attacker in domain 0, victim in
/// domain 1. Returns the same statistics; with isolation the signal is
/// zero.
pub fn prime_probe_attack_partitioned(pc: &mut PartitionedCache, secret: usize) -> AttackResult {
    let (sets, ways, line) = {
        let c = pc.partition_mut(0);
        (
            c.num_sets(),
            c.config().ways as usize,
            c.config().line_bytes,
        )
    };
    let attacker_base: u64 = 1 << 30;
    for way in 0..ways {
        for set in 0..sets {
            let addr = attacker_base + (way * sets + set) as u64 * line;
            pc.access(0, addr, AccessKind::Read);
        }
    }
    victim_access(pc.partition_mut(1), secret);
    let mut misses = vec![0u64; sets];
    for way in 0..ways {
        for (set, m) in misses.iter_mut().enumerate() {
            let addr = attacker_base + (way * sets + set) as u64 * line;
            if !pc.access(0, addr, AccessKind::Read) {
                *m += 1;
            }
        }
    }
    let inferred_set = misses
        .iter()
        .enumerate()
        .max_by_key(|(_, &m)| m)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let signal = misses[inferred_set];
    let noise: u64 = misses.iter().sum::<u64>() - signal;
    AttackResult {
        inferred_set,
        signal_misses: signal,
        noise_misses: noise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xxi_mem::cache::Replacement;

    fn shared_cache() -> Cache {
        // 64 sets × 8 ways × 64 B = 32 KiB, LRU.
        Cache::new(CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            replacement: Replacement::Lru,
            write_allocate: true,
        })
        .unwrap()
    }

    #[test]
    fn attack_recovers_every_secret_set() {
        let sets = shared_cache().num_sets();
        for secret in [0usize, 1, 7, 31, 42, 63] {
            let mut cache = shared_cache();
            let r = prime_probe_attack(&mut cache, secret);
            assert_eq!(
                r.inferred_set,
                secret % sets,
                "secret {secret} not recovered: {r:?}"
            );
            assert!(r.signal_misses >= 1);
            assert_eq!(r.noise_misses, 0, "LRU prime+probe is noise-free here");
        }
    }

    #[test]
    fn attack_distinguishes_two_secrets() {
        let mut c1 = shared_cache();
        let mut c2 = shared_cache();
        let r1 = prime_probe_attack(&mut c1, 5);
        let r2 = prime_probe_attack(&mut c2, 50);
        assert_ne!(r1.inferred_set, r2.inferred_set);
    }

    #[test]
    fn partitioning_blinds_the_attack() {
        for secret in [0usize, 13, 42, 63] {
            let mut pc = PartitionedCache::new(
                CacheConfig {
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    ways: 8,
                    replacement: Replacement::Lru,
                    write_allocate: true,
                },
                2,
            );
            let r = prime_probe_attack_partitioned(&mut pc, secret);
            assert_eq!(
                r.signal_misses, 0,
                "partitioned cache leaked for secret {secret}: {r:?}"
            );
            assert_eq!(r.noise_misses, 0);
        }
    }

    #[test]
    fn partitioning_costs_capacity() {
        // The defense is not free: each domain sees half the cache. A
        // working set that fit before now thrashes.
        let cfg = CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            replacement: Replacement::Lru,
            write_allocate: true,
        };
        let mut whole = Cache::new(cfg.clone()).unwrap();
        let mut pc = PartitionedCache::new(cfg, 2);
        // 24 KiB working set: fits 32 KiB, not 16 KiB.
        let pass = |f: &mut dyn FnMut(u64) -> bool| {
            let mut hits = 0;
            for _ in 0..5 {
                for a in (0..24 * 1024).step_by(64) {
                    if f(a) {
                        hits += 1;
                    }
                }
            }
            hits
        };
        let whole_hits = pass(&mut |a| whole.access(a, AccessKind::Read).is_hit());
        let part_hits = pass(&mut |a| pc.access(0, a, AccessKind::Read));
        assert!(
            whole_hits > part_hits,
            "whole={whole_hits} part={part_hits}"
        );
    }

    #[test]
    fn partition_construction_validates() {
        let cfg = CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            replacement: Replacement::Lru,
            write_allocate: true,
        };
        let pc = PartitionedCache::new(cfg, 4);
        assert_eq!(pc.partitions.len(), 4);
    }
}
