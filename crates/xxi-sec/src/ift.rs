//! Dynamic information-flow tracking (DIFT).
//!
//! A minimal register machine in which **every value carries a taint
//! label** maintained by "hardware" (the interpreter), per the classic
//! DIFT designs (Suh et al. ASPLOS'04; Dalton et al. "Raksha") that §2.4's
//! "information flow tracking" refers to. Rules:
//!
//! * `In` produces **tainted** data (untrusted input) or **secret** data
//!   (confidential), per the policy's source labels.
//! * Arithmetic propagates the union of operand taints.
//! * Loads/stores propagate taint through memory (each word has a label).
//! * The policy traps on: tainted **jump targets** (control-flow hijack),
//!   tainted **output** when confidentiality is enforced (exfiltration),
//!   and secret-dependent branches if configured (timing discipline).
//! * `Declassify` clears labels — the explicit, auditable escape hatch.

use serde::{Deserialize, Serialize};

use xxi_core::metrics::Metrics;

/// Taint label lattice: a small bitset (untrusted | secret).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Taint(pub u8);

impl Taint {
    /// No label.
    pub const CLEAN: Taint = Taint(0);
    /// Attacker-influenced (integrity concern).
    pub const UNTRUSTED: Taint = Taint(1);
    /// Confidential (secrecy concern).
    pub const SECRET: Taint = Taint(2);

    /// Lattice join.
    pub fn join(self, other: Taint) -> Taint {
        Taint(self.0 | other.0)
    }

    /// Does this label include `other`?
    pub fn contains(self, other: Taint) -> bool {
        self.0 & other.0 == other.0
    }
}

/// The machine's instruction set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// `r[d] = imm` (clean constant).
    Const {
        /// Destination register.
        d: u8,
        /// Immediate value.
        imm: u64,
    },
    /// `r[d] = r[a] + r[b]` (taint join).
    Add {
        /// Destination.
        d: u8,
        /// Left operand.
        a: u8,
        /// Right operand.
        b: u8,
    },
    /// `r[d] = r[a] ^ r[b]` (taint join).
    Xor {
        /// Destination.
        d: u8,
        /// Left operand.
        a: u8,
        /// Right operand.
        b: u8,
    },
    /// `r[d] = mem[r[a]]` (value + label from memory, joined with address
    /// taint — pointer taint matters).
    Load {
        /// Destination.
        d: u8,
        /// Address register.
        a: u8,
    },
    /// `mem[r[a]] = r[v]`.
    Store {
        /// Address register.
        a: u8,
        /// Value register.
        v: u8,
    },
    /// `r[d] = input()` labeled by the policy's input label.
    In {
        /// Destination.
        d: u8,
    },
    /// `output(r[v])` — the confidentiality sink.
    Out {
        /// Value register.
        v: u8,
    },
    /// Indirect jump to `r[a]` — the integrity sink.
    JmpReg {
        /// Target-address register.
        a: u8,
    },
    /// Branch to absolute `target` if `r[c] != 0`.
    Bnz {
        /// Condition register.
        c: u8,
        /// Branch target (instruction index).
        target: usize,
    },
    /// Clear `r[v]`'s label (explicit, audited).
    Declassify {
        /// Register to declassify.
        v: u8,
    },
    /// Stop.
    Halt,
}

/// What the hardware monitor traps on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrapKind {
    /// Untrusted data used as a jump target.
    TaintedJump,
    /// Secret data reached output without declassification.
    SecretLeak,
    /// Branch condition depends on a secret (timing discipline).
    SecretBranch,
}

/// Enforcement policy.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Policy {
    /// Label attached to `In` data.
    pub input_label: Taint,
    /// Trap on untrusted jump targets.
    pub block_tainted_jumps: bool,
    /// Trap on secret-labeled output.
    pub block_secret_output: bool,
    /// Trap on secret-dependent branches.
    pub block_secret_branches: bool,
}

impl Policy {
    /// Integrity policy: inputs untrusted, jumps protected.
    pub fn integrity() -> Policy {
        Policy {
            input_label: Taint::UNTRUSTED,
            block_tainted_jumps: true,
            block_secret_output: false,
            block_secret_branches: false,
        }
    }

    /// Confidentiality policy: inputs secret, output protected.
    pub fn confidentiality() -> Policy {
        Policy {
            input_label: Taint::SECRET,
            block_tainted_jumps: false,
            block_secret_output: true,
            block_secret_branches: false,
        }
    }
}

/// Result of running a program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Ran to `Halt`; the outputs produced.
    Finished(Vec<u64>),
    /// The monitor trapped.
    Trapped {
        /// Why.
        kind: TrapKind,
        /// At which instruction index.
        pc: usize,
    },
}

/// The DIFT machine.
///
/// ```
/// use xxi_sec::ift::{Instr, Machine, Outcome, Policy, TrapKind};
/// // Untrusted input used as a jump target: the monitor traps.
/// let mut m = Machine::new(Policy::integrity(), 16, vec![0xBAD]);
/// let prog = [Instr::In { d: 0 }, Instr::JmpReg { a: 0 }, Instr::Halt];
/// assert_eq!(
///     m.run(&prog, 10),
///     Outcome::Trapped { kind: TrapKind::TaintedJump, pc: 1 }
/// );
/// ```
pub struct Machine {
    regs: [u64; 16],
    reg_taint: [Taint; 16],
    mem: Vec<u64>,
    mem_taint: Vec<Taint>,
    inputs: Vec<u64>,
    next_input: usize,
    policy: Policy,
    /// `instructions`, `taint_propagations`, `declassifications`, `traps`.
    pub metrics: Metrics,
}

impl Machine {
    /// A machine with `mem_words` of zeroed memory and a queue of `inputs`.
    pub fn new(policy: Policy, mem_words: usize, inputs: Vec<u64>) -> Machine {
        Machine {
            regs: [0; 16],
            reg_taint: [Taint::CLEAN; 16],
            mem: vec![0; mem_words],
            mem_taint: vec![Taint::CLEAN; mem_words],
            inputs,
            next_input: 0,
            policy,
            metrics: Metrics::new(),
        }
    }

    /// Taint currently on register `r`.
    pub fn taint_of(&self, r: u8) -> Taint {
        self.reg_taint[r as usize]
    }

    /// Execute `prog` (bounded at `max_steps` to stop runaway loops).
    pub fn run(&mut self, prog: &[Instr], max_steps: usize) -> Outcome {
        let mut pc = 0usize;
        let mut outputs = Vec::new();
        for _ in 0..max_steps {
            let Some(&ins) = prog.get(pc) else {
                return Outcome::Finished(outputs);
            };
            self.metrics.incr("instructions");
            match ins {
                Instr::Const { d, imm } => {
                    self.regs[d as usize] = imm;
                    self.reg_taint[d as usize] = Taint::CLEAN;
                }
                Instr::Add { d, a, b } => {
                    self.regs[d as usize] =
                        self.regs[a as usize].wrapping_add(self.regs[b as usize]);
                    self.propagate2(d, a, b);
                }
                Instr::Xor { d, a, b } => {
                    self.regs[d as usize] = self.regs[a as usize] ^ self.regs[b as usize];
                    self.propagate2(d, a, b);
                }
                Instr::Load { d, a } => {
                    let addr = (self.regs[a as usize] as usize) % self.mem.len();
                    self.regs[d as usize] = self.mem[addr];
                    let t = self.mem_taint[addr].join(self.reg_taint[a as usize]);
                    self.set_taint(d, t);
                }
                Instr::Store { a, v } => {
                    let addr = (self.regs[a as usize] as usize) % self.mem.len();
                    self.mem[addr] = self.regs[v as usize];
                    self.mem_taint[addr] =
                        self.reg_taint[v as usize].join(self.reg_taint[a as usize]);
                }
                Instr::In { d } => {
                    self.regs[d as usize] = self.inputs.get(self.next_input).copied().unwrap_or(0);
                    self.next_input += 1;
                    self.set_taint(d, self.policy.input_label);
                }
                Instr::Out { v } => {
                    if self.policy.block_secret_output
                        && self.reg_taint[v as usize].contains(Taint::SECRET)
                    {
                        self.metrics.incr("traps");
                        return Outcome::Trapped {
                            kind: TrapKind::SecretLeak,
                            pc,
                        };
                    }
                    outputs.push(self.regs[v as usize]);
                }
                Instr::JmpReg { a } => {
                    if self.policy.block_tainted_jumps
                        && self.reg_taint[a as usize].contains(Taint::UNTRUSTED)
                    {
                        self.metrics.incr("traps");
                        return Outcome::Trapped {
                            kind: TrapKind::TaintedJump,
                            pc,
                        };
                    }
                    pc = (self.regs[a as usize] as usize) % prog.len().max(1);
                    continue;
                }
                Instr::Bnz { c, target } => {
                    if self.policy.block_secret_branches
                        && self.reg_taint[c as usize].contains(Taint::SECRET)
                    {
                        self.metrics.incr("traps");
                        return Outcome::Trapped {
                            kind: TrapKind::SecretBranch,
                            pc,
                        };
                    }
                    if self.regs[c as usize] != 0 {
                        pc = target;
                        continue;
                    }
                }
                Instr::Declassify { v } => {
                    self.metrics.incr("declassifications");
                    self.reg_taint[v as usize] = Taint::CLEAN;
                }
                Instr::Halt => return Outcome::Finished(outputs),
            }
            pc += 1;
        }
        Outcome::Finished(outputs)
    }

    fn propagate2(&mut self, d: u8, a: u8, b: u8) {
        let t = self.reg_taint[a as usize].join(self.reg_taint[b as usize]);
        self.set_taint(d, t);
    }

    fn set_taint(&mut self, d: u8, t: Taint) {
        if t != Taint::CLEAN {
            self.metrics.incr("taint_propagations");
        }
        self.reg_taint[d as usize] = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Instr::*;

    #[test]
    fn taint_lattice_joins() {
        assert_eq!(Taint::CLEAN.join(Taint::SECRET), Taint::SECRET);
        assert_eq!(Taint::UNTRUSTED.join(Taint::SECRET), Taint(3));
        assert!(Taint(3).contains(Taint::SECRET));
        assert!(!Taint::UNTRUSTED.contains(Taint::SECRET));
    }

    #[test]
    fn clean_program_runs_and_outputs() {
        let mut m = Machine::new(Policy::integrity(), 16, vec![]);
        let prog = [
            Const { d: 0, imm: 2 },
            Const { d: 1, imm: 3 },
            Add { d: 2, a: 0, b: 1 },
            Out { v: 2 },
            Halt,
        ];
        assert_eq!(m.run(&prog, 100), Outcome::Finished(vec![5]));
        assert_eq!(m.taint_of(2), Taint::CLEAN);
    }

    #[test]
    fn control_flow_hijack_is_trapped() {
        // Attacker-controlled input flows (via arithmetic and memory) into
        // a jump target: the integrity policy must trap.
        let mut m = Machine::new(Policy::integrity(), 16, vec![0xDEAD]);
        let prog = [
            In { d: 0 }, // untrusted
            Const { d: 1, imm: 4 },
            Add { d: 2, a: 0, b: 1 }, // still untrusted
            Const { d: 3, imm: 8 },
            Store { a: 3, v: 2 }, // through memory
            Load { d: 4, a: 3 },
            JmpReg { a: 4 }, // hijack attempt
            Halt,
        ];
        assert_eq!(
            m.run(&prog, 100),
            Outcome::Trapped {
                kind: TrapKind::TaintedJump,
                pc: 6
            }
        );
    }

    #[test]
    fn clean_indirect_jump_is_allowed() {
        let mut m = Machine::new(Policy::integrity(), 16, vec![]);
        let prog = [
            Const { d: 0, imm: 3 },
            JmpReg { a: 0 }, // jump over the bad Out
            Out { v: 0 },    // skipped
            Halt,
        ];
        assert_eq!(m.run(&prog, 100), Outcome::Finished(vec![]));
    }

    #[test]
    fn secret_exfiltration_is_trapped_even_laundered_through_memory() {
        let mut m = Machine::new(Policy::confidentiality(), 16, vec![42]);
        let prog = [
            In { d: 0 }, // secret
            Const { d: 1, imm: 7 },
            Xor { d: 2, a: 0, b: 1 }, // "encrypted"? still secret label
            Const { d: 3, imm: 5 },
            Store { a: 3, v: 2 },
            Load { d: 4, a: 3 },
            Out { v: 4 },
            Halt,
        ];
        assert_eq!(
            m.run(&prog, 100),
            Outcome::Trapped {
                kind: TrapKind::SecretLeak,
                pc: 6
            }
        );
    }

    #[test]
    fn declassification_permits_output() {
        let mut m = Machine::new(Policy::confidentiality(), 16, vec![42]);
        let prog = [In { d: 0 }, Declassify { v: 0 }, Out { v: 0 }, Halt];
        assert_eq!(m.run(&prog, 100), Outcome::Finished(vec![42]));
        assert_eq!(m.metrics.counter("declassifications"), 1);
    }

    #[test]
    fn pointer_taint_propagates_on_load() {
        // Loading through a secret-derived address taints the result
        // (index-based leaks).
        let mut m = Machine::new(Policy::confidentiality(), 16, vec![3]);
        let prog = [
            In { d: 0 },         // secret index
            Load { d: 1, a: 0 }, // mem is clean, but address is secret
            Out { v: 1 },
            Halt,
        ];
        assert_eq!(
            m.run(&prog, 100),
            Outcome::Trapped {
                kind: TrapKind::SecretLeak,
                pc: 2
            }
        );
    }

    #[test]
    fn secret_branch_discipline() {
        let policy = Policy {
            block_secret_branches: true,
            ..Policy::confidentiality()
        };
        let mut m = Machine::new(policy, 16, vec![1]);
        let prog = [In { d: 0 }, Bnz { c: 0, target: 3 }, Halt, Halt];
        assert_eq!(
            m.run(&prog, 100),
            Outcome::Trapped {
                kind: TrapKind::SecretBranch,
                pc: 1
            }
        );
    }

    #[test]
    fn loops_execute_with_branches() {
        // Sum 1..=5 with a loop; all-clean, must finish with 15.
        let mut m = Machine::new(Policy::integrity(), 16, vec![]);
        let prog = [
            Const { d: 0, imm: 5 }, // counter
            Const { d: 1, imm: 0 }, // acc
            Const {
                d: 2,
                imm: u64::MAX,
            }, // -1
            Add { d: 1, a: 1, b: 0 }, // acc += counter
            Add { d: 0, a: 0, b: 2 }, // counter -= 1
            Bnz { c: 0, target: 3 },
            Out { v: 1 },
            Halt,
        ];
        assert_eq!(m.run(&prog, 1000), Outcome::Finished(vec![15]));
    }

    #[test]
    fn constants_scrub_registers() {
        let mut m = Machine::new(Policy::confidentiality(), 16, vec![9]);
        let prog = [
            In { d: 0 },
            Const { d: 0, imm: 1 }, // overwrite secret with constant
            Out { v: 0 },
            Halt,
        ];
        assert_eq!(m.run(&prog, 100), Outcome::Finished(vec![1]));
    }
}
