//! # xxi-sec
//!
//! Security mechanisms for the `xxi-arch` framework.
//!
//! §2.4 ("Security and Privacy"): *"it is time to rethink security and
//! privacy from the ground up and define architectural interfaces that
//! enable hardware to act as the 'root of trust' … Such services include
//! information flow tracking (reducing side-channel attacks) and efficient
//! enforcement of richer information access rules"*; and under interfaces:
//! *"we need interfaces to specify fine-grain protection boundaries among
//! modules within a single application."*
//!
//! Three mechanisms, each runnable and tested:
//!
//! * [`ift`] — **dynamic information-flow tracking (DIFT)**: a tiny
//!   register machine whose every value carries a taint label; taint
//!   propagates through arithmetic, loads and stores; a hardware policy
//!   blocks tainted data from reaching output (or jump targets) without an
//!   explicit declassification — the canonical DIFT design the paper
//!   names.
//! * [`protection`] — **fine-grain protection domains**: an
//!   access-control matrix between intra-application modules and memory
//!   regions with word granularity, checked on every access — the §2.4
//!   interface experiment, with an energy cost per check so the
//!   "efficiency" half of the claim is priced too.
//! * [`sidechannel`] — a working **prime+probe cache side channel**
//!   against the `xxi-mem` cache model (a victim whose memory access
//!   pattern depends on a secret), and the architectural defense the paper
//!   family proposes: way-partitioning. The attack recovers the secret
//!   from an unpartitioned cache and is blinded by the partitioned one.

pub mod ift;
pub mod protection;
pub mod sidechannel;

pub use ift::{Instr, Machine, Policy, Taint, TrapKind};
pub use protection::{AccessKind, DomainId, ProtectionMatrix, RegionId};
pub use sidechannel::{prime_probe_attack, PartitionedCache};
