//! Structured experiment reports: named sections of [`Table`]s, free text,
//! and scalar findings, rendered both as the classic plain-text experiment
//! output (byte-identical to what the historical `exp_*` binaries printed)
//! and as a stable JSON document.
//!
//! The text renderer is the source of truth for golden-output regression
//! tests; the JSON renderer is the scriptable surface (`xxi run --format
//! json`). Items that depend on the host machine (wall-clock timings, real
//! thread races) are flagged *volatile* so the golden renderer can mask
//! them while still pinning their shape.
//!
//! ## JSON schema (version 2)
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "experiment": "e9",
//!   "paper_claim": "…",
//!   "seed": 0,
//!   "params": {"threads": "1"},
//!   "findings": [{"name": "straggler_frac", "value": 0.652, "unit": "frac"}],
//!   "items": [
//!     {"kind": "section", "title": "…"},
//!     {"kind": "table", "volatile": false, "caption": null,
//!      "headers": ["fan-out", "p99 (ms)"],
//!      "rows": [[{"text": "100", "value": 100.0}, {"text": "63.4", "value": 63.4}]]},
//!     {"kind": "text", "volatile": false, "text": "…"}
//!   ],
//!   "runtime": {
//!     "counters": {"mc.trials": 1020000, "pool.steals": 37},
//!     "gauges": {"pool.threads": 4.0},
//!     "hists": {"fanout.p99_ms": {"count": 6, "mean": 41.0, "min": 11.2,
//!               "p50": 38.0, "p90": 63.0, "p99": 63.0, "p999": 63.0, "max": 63.4}}
//!   }
//! }
//! ```
//!
//! `seed` is the user's `--seed` override, or `0` meaning "the experiment's
//! canonical per-call-site seeds" (the values every number in
//! EXPERIMENTS.md was produced with). Cells carry `value` only when the
//! rendered text is a plain finite number.
//!
//! `runtime` (version 2, `null` when the run recorded no telemetry) is the
//! run's [`RunMetrics`]: counters/gauges/histogram summaries snapshotted
//! from the experiment's metrics sink and the thread pool's scheduler
//! stats. It renders as a trailing "Runtime" text section that is always
//! treated as *volatile* — masked in golden renderings — because scheduler
//! counters and timings depend on the host. Version-1 documents (no
//! `runtime` key) still parse.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::metrics::Metrics;
use crate::obs::LogHistogram;
use crate::table::Table;

pub mod json;

use json::Json;

/// Version of the JSON document layout. Bump on any breaking change.
/// Version history: 1 = initial report model; 2 = added the `runtime`
/// telemetry member (older documents still parse).
pub const SCHEMA_VERSION: u64 = 2;

/// A named scalar result, e.g. the headline number of an experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Short snake_case name, stable across runs.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit label (`"x"`, `"ms"`, `"frac"`, `""` for dimensionless).
    pub unit: String,
}

/// Fixed-quantile summary of one runtime histogram — the serializable
/// projection of a [`LogHistogram`] (the full bucket array is not part of
/// the report schema).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    pub count: u64,
    pub mean: f64,
    pub min: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub p999: f64,
    pub max: f64,
}

impl HistSummary {
    /// Summarize a histogram. Callers only build summaries for histograms
    /// that received at least one sample, so every field is finite.
    pub fn of(h: &LogHistogram) -> HistSummary {
        HistSummary {
            count: h.count(),
            mean: h.mean(),
            min: h.min(),
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
            p999: h.p999(),
            max: h.max(),
        }
    }

    /// One-line rendering mirroring [`LogHistogram::summary_line`].
    pub fn summary_line(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "n={} mean={:.4} p50={:.4} p90={:.4} p99={:.4} p99.9={:.4} max={:.4}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.p999, self.max
        )
    }
}

/// Runtime telemetry attached to a report: the run's [`Metrics`] flattened
/// into serializable, name-ordered lists. Always rendered as a *volatile*
/// trailing "Runtime" section — scheduler counters and timing histograms
/// depend on the host and thread count, so golden renderings mask the
/// values while pinning the member counts.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Monotonic counters, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges, name-ordered. Keep values finite: JSON has
    /// no NaN/inf lexeme, so non-finite gauges serialize as `null` and
    /// fail to round-trip.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, name-ordered.
    pub hists: Vec<(String, HistSummary)>,
}

impl RunMetrics {
    /// Snapshot a metrics registry.
    pub fn of(m: &Metrics) -> RunMetrics {
        RunMetrics {
            counters: m.counters().map(|(k, v)| (k.to_string(), v)).collect(),
            gauges: m.gauges().map(|(k, v)| (k.to_string(), v)).collect(),
            hists: m
                .hists()
                .map(|(k, h)| (k.to_string(), HistSummary::of(h)))
                .collect(),
        }
    }

    /// True when nothing was recorded (the runtime section is omitted).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Read a counter back (zero if absent) — convenience for tests and
    /// `xxi compare`.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// The payload of one report item, in document order.
#[derive(Clone, Debug, PartialEq)]
pub enum ItemBody {
    /// A section header (`== title ==`).
    Section(String),
    /// A rendered table.
    Table(Table),
    /// One free-text block, printed followed by a newline.
    Text(String),
}

/// One item plus its volatility flag.
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    pub body: ItemBody,
    /// True when the content depends on the host machine (wall-clock
    /// timings, real thread interleavings); masked in golden renderings.
    pub volatile: bool,
}

/// A structured experiment report.
///
/// Built incrementally by an experiment (sections, tables, text,
/// findings), then rendered with [`Report::render_text`] (the classic
/// stdout format) or [`Report::render_json`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Lowercase experiment id (`"e9"`).
    pub id: String,
    /// The paper claim this experiment reproduces (the banner anchor).
    pub paper_claim: String,
    /// `--seed` override, or 0 for the canonical per-call-site seeds.
    pub seed: u64,
    /// Run parameters (`threads`, `trace`, …) as ordered key/value pairs.
    pub params: Vec<(String, String)>,
    /// Items in document order.
    pub items: Vec<Item>,
    /// Scalar findings.
    pub findings: Vec<Finding>,
    /// Runtime telemetry (schema v2); `None` when the run recorded none.
    pub runtime: Option<RunMetrics>,
}

impl Report {
    /// Start an empty report for experiment `id`.
    pub fn new(id: impl Into<String>, paper_claim: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            paper_claim: paper_claim.into(),
            seed: 0,
            params: Vec::new(),
            items: Vec::new(),
            findings: Vec::new(),
            runtime: None,
        }
    }

    /// Attach the run's metrics as the trailing Runtime section. Empty
    /// registries are dropped (no section, `"runtime":null` in JSON).
    pub fn set_runtime(&mut self, m: &Metrics) {
        let rt = RunMetrics::of(m);
        self.runtime = if rt.is_empty() { None } else { Some(rt) };
    }

    /// Record a run parameter.
    pub fn param(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.params.push((key.into(), value.into()));
    }

    /// Append a section header.
    pub fn section(&mut self, title: impl Into<String>) {
        self.items.push(Item {
            body: ItemBody::Section(title.into()),
            volatile: false,
        });
    }

    /// Append a table.
    pub fn table(&mut self, t: Table) {
        self.items.push(Item {
            body: ItemBody::Table(t),
            volatile: false,
        });
    }

    /// Append a machine-dependent table (masked in golden renderings).
    pub fn volatile_table(&mut self, t: Table) {
        self.items.push(Item {
            body: ItemBody::Table(t),
            volatile: true,
        });
    }

    /// Append a text block (rendered as the string plus a newline).
    pub fn text(&mut self, s: impl Into<String>) {
        self.items.push(Item {
            body: ItemBody::Text(s.into()),
            volatile: false,
        });
    }

    /// Append a machine-dependent text block (masked in golden renderings).
    pub fn volatile_text(&mut self, s: impl Into<String>) {
        self.items.push(Item {
            body: ItemBody::Text(s.into()),
            volatile: true,
        });
    }

    /// Record a scalar finding.
    pub fn finding(&mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) {
        self.findings.push(Finding {
            name: name.into(),
            value,
            unit: unit.into(),
        });
    }

    /// Render the classic experiment stdout: banner, then every item.
    ///
    /// Byte-identical to what the historical stand-alone binaries printed
    /// (`banner()` + `section()` + `Table::render` + `println!`).
    pub fn render_text(&self) -> String {
        self.render_text_with(false)
    }

    /// Render for golden-output comparison: identical to
    /// [`Report::render_text`] except volatile items are replaced by a
    /// deterministic placeholder that still pins their shape (a volatile
    /// table keeps its caption and headers; volatile text collapses to a
    /// marker line).
    pub fn render_text_golden(&self) -> String {
        self.render_text_with(true)
    }

    fn render_text_with(&self, golden: bool) -> String {
        let mut out = String::new();
        let rule = "#".repeat(70);
        let _ = writeln!(out, "{rule}");
        let _ = writeln!(out, "# Experiment {}", self.id.to_uppercase());
        let _ = writeln!(out, "# Paper anchor: {}", self.paper_claim);
        let _ = writeln!(out, "{rule}");
        for item in &self.items {
            match (&item.body, golden && item.volatile) {
                (ItemBody::Section(t), _) => {
                    let _ = writeln!(out, "\n== {t} ==\n");
                }
                (ItemBody::Table(t), false) => out.push_str(&t.render()),
                (ItemBody::Table(t), true) => {
                    if let Some(c) = t.caption_text() {
                        let _ = writeln!(out, "{c}");
                    }
                    let _ = writeln!(out, "<volatile table: {}>", t.headers().join(" | "));
                }
                (ItemBody::Text(s), false) => {
                    let _ = writeln!(out, "{s}");
                }
                (ItemBody::Text(s), true) => {
                    let _ = writeln!(out, "<volatile text: {} line(s)>", s.lines().count());
                }
            }
        }
        if let Some(rt) = &self.runtime {
            if !rt.is_empty() {
                let _ = writeln!(out, "\n== Runtime ==\n");
                if golden {
                    // Host-dependent values are masked; the member counts
                    // pin the section's shape (a lost counter still fails
                    // the golden diff).
                    let _ = writeln!(
                        out,
                        "<volatile runtime: {} counter(s), {} gauge(s), {} histogram(s)>",
                        rt.counters.len(),
                        rt.gauges.len(),
                        rt.hists.len()
                    );
                } else {
                    let width = rt
                        .counters
                        .iter()
                        .map(|(k, _)| k.len())
                        .chain(rt.gauges.iter().map(|(k, _)| k.len()))
                        .chain(rt.hists.iter().map(|(k, _)| k.len()))
                        .max()
                        .unwrap_or(0);
                    for (k, v) in &rt.counters {
                        let _ = writeln!(out, "{k:<width$}  {v}");
                    }
                    for (k, v) in &rt.gauges {
                        let _ = writeln!(out, "{k:<width$}  {v}");
                    }
                    for (k, h) in &rt.hists {
                        let _ = writeln!(out, "{k:<width$}  {}", h.summary_line());
                    }
                }
            }
        }
        out
    }

    /// Render the schema-version-2 JSON document (see the module docs).
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(s, "\"schema_version\":{SCHEMA_VERSION}");
        let _ = write!(s, ",\"experiment\":\"{}\"", json::escape(&self.id));
        let _ = write!(
            s,
            ",\"paper_claim\":\"{}\"",
            json::escape(&self.paper_claim)
        );
        let _ = write!(s, ",\"seed\":{}", self.seed);
        s.push_str(",\"params\":{");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":\"{}\"", json::escape(k), json::escape(v));
        }
        s.push_str("},\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"value\":{},\"unit\":\"{}\"}}",
                json::escape(&f.name),
                json::number(f.value),
                json::escape(&f.unit)
            );
        }
        s.push_str("],\"items\":[");
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match &item.body {
                ItemBody::Section(t) => {
                    let _ = write!(
                        s,
                        "{{\"kind\":\"section\",\"title\":\"{}\"}}",
                        json::escape(t)
                    );
                }
                ItemBody::Text(txt) => {
                    let _ = write!(
                        s,
                        "{{\"kind\":\"text\",\"volatile\":{},\"text\":\"{}\"}}",
                        item.volatile,
                        json::escape(txt)
                    );
                }
                ItemBody::Table(t) => {
                    let _ = write!(s, "{{\"kind\":\"table\",\"volatile\":{}", item.volatile);
                    match t.caption_text() {
                        Some(c) => {
                            let _ = write!(s, ",\"caption\":\"{}\"", json::escape(c));
                        }
                        None => s.push_str(",\"caption\":null"),
                    }
                    s.push_str(",\"headers\":[");
                    for (j, h) in t.headers().iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        let _ = write!(s, "\"{}\"", json::escape(h));
                    }
                    s.push_str("],\"rows\":[");
                    for (j, row) in t.rows().iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push('[');
                        for (k, cell) in row.iter().enumerate() {
                            if k > 0 {
                                s.push(',');
                            }
                            let _ = write!(s, "{{\"text\":\"{}\"", json::escape(&cell.text));
                            if let Some(v) = cell.value {
                                let _ = write!(s, ",\"value\":{}", json::number(v));
                            }
                            s.push('}');
                        }
                        s.push(']');
                    }
                    s.push_str("]}");
                }
            }
        }
        s.push_str("],\"runtime\":");
        match &self.runtime {
            None => s.push_str("null"),
            Some(rt) => {
                s.push_str("{\"counters\":{");
                for (i, (k, v)) in rt.counters.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    // Counters stay raw u64 (json::number would squeeze
                    // them through f64 and lose precision past 2^53).
                    let _ = write!(s, "\"{}\":{v}", json::escape(k));
                }
                s.push_str("},\"gauges\":{");
                for (i, (k, v)) in rt.gauges.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\":{}", json::escape(k), json::number(*v));
                }
                s.push_str("},\"hists\":{");
                for (i, (k, h)) in rt.hists.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "\"{}\":{{\"count\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                        json::escape(k),
                        h.count,
                        json::number(h.mean),
                        json::number(h.min),
                        json::number(h.p50),
                        json::number(h.p90),
                        json::number(h.p99),
                        json::number(h.p999),
                        json::number(h.max)
                    );
                }
                s.push_str("}}");
            }
        }
        s.push('}');
        s
    }

    /// Parse a JSON document (schema version 1 or 2) back into a
    /// [`Report`].
    ///
    /// The inverse of [`Report::render_json`]: `parse_json(render_json(r))
    /// == r` for every report (the round-trip is tested over all golden
    /// reports). Also the validator behind `xxi validate`. Version-1
    /// documents (pre-telemetry) parse with `runtime: None`.
    pub fn parse_json(text: &str) -> Result<Report, String> {
        let v = json::parse(text)?;
        Report::from_json(&v)
    }

    /// Build a report from a parsed JSON value, validating the schema.
    pub fn from_json(v: &Json) -> Result<Report, String> {
        let obj = v.as_object().ok_or("report: expected an object")?;
        let version = json::get(obj, "schema_version")?
            .as_u64()
            .ok_or("schema_version: expected a number")?;
        if !(1..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema_version {version} (expected 1..={SCHEMA_VERSION})"
            ));
        }
        let mut r = Report::new(
            json::get_str(obj, "experiment")?,
            json::get_str(obj, "paper_claim")?,
        );
        r.seed = json::get(obj, "seed")?
            .as_u64()
            .ok_or("seed: expected an unsigned integer")?;
        for (k, v) in json::get(obj, "params")?
            .as_object()
            .ok_or("params: expected an object")?
        {
            r.param(k.clone(), v.as_str().ok_or("param: expected a string")?);
        }
        for f in json::get(obj, "findings")?
            .as_array()
            .ok_or("findings: expected an array")?
        {
            let fo = f.as_object().ok_or("finding: expected an object")?;
            r.finding(
                json::get_str(fo, "name")?,
                json::get(fo, "value")?
                    .as_f64()
                    .ok_or("finding value: expected a number")?,
                json::get_str(fo, "unit")?,
            );
        }
        for item in json::get(obj, "items")?
            .as_array()
            .ok_or("items: expected an array")?
        {
            let io = item.as_object().ok_or("item: expected an object")?;
            let volatile = json::find(io, "volatile")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            let body = match json::get_str(io, "kind")?.as_str() {
                "section" => ItemBody::Section(json::get_str(io, "title")?),
                "text" => ItemBody::Text(json::get_str(io, "text")?),
                "table" => {
                    let headers: Vec<String> = json::get(io, "headers")?
                        .as_array()
                        .ok_or("headers: expected an array")?
                        .iter()
                        .map(|h| h.as_str().ok_or("header: expected a string"))
                        .collect::<Result<_, _>>()?;
                    let hrefs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
                    let mut t = Table::new(&hrefs);
                    if let Some(c) = json::get(io, "caption")?.as_str() {
                        t = t.caption(c);
                    }
                    for row in json::get(io, "rows")?
                        .as_array()
                        .ok_or("rows: expected an array")?
                    {
                        let cells: Vec<String> = row
                            .as_array()
                            .ok_or("row: expected an array")?
                            .iter()
                            .map(|c| {
                                c.as_object()
                                    .and_then(|o| json::find(o, "text"))
                                    .and_then(Json::as_str)
                                    .ok_or("cell: expected an object with text")
                            })
                            .collect::<Result<_, _>>()?;
                        t.row(&cells);
                    }
                    ItemBody::Table(t)
                }
                k => return Err(format!("item: unknown kind {k:?}")),
            };
            r.items.push(Item { body, volatile });
        }
        // `runtime` arrived with schema v2; absent (v1) and null both mean
        // "no telemetry recorded".
        match json::find(obj, "runtime") {
            None | Some(Json::Null) => {}
            Some(rv) => {
                let ro = rv.as_object().ok_or("runtime: expected an object")?;
                let mut rt = RunMetrics::default();
                for (k, v) in json::get(ro, "counters")?
                    .as_object()
                    .ok_or("runtime counters: expected an object")?
                {
                    rt.counters.push((
                        k.clone(),
                        v.as_u64().ok_or("runtime counter: expected a u64")?,
                    ));
                }
                for (k, v) in json::get(ro, "gauges")?
                    .as_object()
                    .ok_or("runtime gauges: expected an object")?
                {
                    rt.gauges.push((
                        k.clone(),
                        v.as_f64().ok_or("runtime gauge: expected a number")?,
                    ));
                }
                for (k, v) in json::get(ro, "hists")?
                    .as_object()
                    .ok_or("runtime hists: expected an object")?
                {
                    let ho = v.as_object().ok_or("runtime hist: expected an object")?;
                    let num = |key: &str| -> Result<f64, String> {
                        json::get(ho, key)?
                            .as_f64()
                            .ok_or_else(|| format!("runtime hist {key}: expected a number"))
                    };
                    rt.hists.push((
                        k.clone(),
                        HistSummary {
                            count: json::get(ho, "count")?
                                .as_u64()
                                .ok_or("runtime hist count: expected a u64")?,
                            mean: num("mean")?,
                            min: num("min")?,
                            p50: num("p50")?,
                            p90: num("p90")?,
                            p99: num("p99")?,
                            p999: num("p999")?,
                            max: num("max")?,
                        },
                    ));
                }
                r.runtime = Some(rt);
            }
        }
        Ok(r)
    }

    /// Tables in document order (with their volatility flags).
    pub fn tables(&self) -> impl Iterator<Item = (&Table, bool)> {
        self.items.iter().filter_map(|i| match &i.body {
            ItemBody::Table(t) => Some((t, i.volatile)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;
    use crate::table::fnum;

    fn sample() -> Report {
        let mut r = Report::new("e0", "Table 0: a \"quoted\" claim");
        r.seed = 7;
        r.param("threads", "4");
        r.section("First section");
        let mut t = Table::new(&["node", "pJ"]).caption("cap");
        t.row(&["180nm".into(), "45.0".into()]);
        t.row(&["90nm".into(), "12.5".into()]);
        r.table(t);
        r.text("a free\nmultiline block");
        let mut v = Table::new(&["threads", "time (s)"]);
        v.row(&["1".into(), "0.123".into()]);
        r.volatile_table(v);
        r.volatile_text("took 0.5 s");
        r.finding("ratio", 3.6, "x");
        let mut m = Metrics::new();
        m.count("pool.steals", 37);
        m.count("mc.trials", 1 << 55); // u64 precision must survive JSON
        m.gauge("pool.threads", 4.0);
        m.observe("op_ms", 1.5);
        m.observe("op_ms", 3.0);
        r.set_runtime(&m);
        r
    }

    #[test]
    fn text_render_matches_legacy_layout() {
        let s = sample().render_text();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "#".repeat(70));
        assert_eq!(lines[1], "# Experiment E0");
        assert!(lines[2].starts_with("# Paper anchor: Table 0"));
        assert!(s.contains("\n== First section ==\n\n"));
        assert!(s.contains("cap\nnode"));
        assert!(s.contains("a free\nmultiline block\n"));
        // Non-golden render includes volatile content verbatim.
        assert!(s.contains("0.123"));
        assert!(s.contains("took 0.5 s"));
        // Runtime telemetry renders as an aligned trailing section.
        assert!(s.contains("\n== Runtime ==\n\n"));
        assert!(s.contains("pool.steals   37"));
        assert!(s.contains("pool.threads  4"));
        assert!(s.contains("op_ms         n=2 mean=2.25"));
    }

    #[test]
    fn golden_render_masks_volatile_items_only() {
        let r = sample();
        let g = r.render_text_golden();
        assert!(g.contains("45.0"), "deterministic table kept");
        assert!(!g.contains("0.123"), "volatile table masked");
        assert!(g.contains("<volatile table: threads | time (s)>"));
        assert!(!g.contains("took 0.5 s"));
        assert!(g.contains("<volatile text: 1 line(s)>"));
        // The runtime section is always masked, but its shape is pinned.
        assert!(g.contains("\n== Runtime ==\n\n"));
        assert!(!g.contains("pool.steals"));
        assert!(g.contains("<volatile runtime: 2 counter(s), 1 gauge(s), 1 histogram(s)>"));
        // Identical up to the first volatile item.
        let t = r.render_text();
        assert_eq!(
            &g[..g.find("<volatile table").unwrap()],
            &t[..t.find("threads  time (s)").unwrap()]
        );
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let j = r.render_json();
        let back = Report::parse_json(&j).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn json_has_typed_cells_and_schema_fields() {
        let j = sample().render_json();
        assert!(j.starts_with("{\"schema_version\":2,\"experiment\":\"e0\""));
        assert!(j.contains("{\"text\":\"45.0\",\"value\":45}"));
        assert!(j.contains("{\"text\":\"180nm\"}"));
        assert!(j.contains("\"findings\":[{\"name\":\"ratio\",\"value\":3.6,\"unit\":\"x\"}]"));
        assert!(j.contains("\"volatile\":true"));
        // Runtime telemetry: counters stay integer (2^55 > f64 mantissa),
        // histograms carry the fixed quantile set.
        assert!(j.contains(&format!("\"mc.trials\":{}", 1u64 << 55)));
        assert!(j.contains("\"gauges\":{\"pool.threads\":4}"));
        assert!(j.contains("\"op_ms\":{\"count\":2,\"mean\":2.25,"));
    }

    #[test]
    fn parse_rejects_wrong_schema_version() {
        let j = sample()
            .render_json()
            .replacen("\"schema_version\":2", "\"schema_version\":99", 1);
        assert!(Report::parse_json(&j).is_err());
    }

    #[test]
    fn parse_accepts_version_1_documents() {
        // A pre-telemetry (v1) document: no `runtime` member at all.
        let mut r = sample();
        r.runtime = None;
        let j = r
            .render_json()
            .replacen("\"schema_version\":2", "\"schema_version\":1", 1)
            .replace(",\"runtime\":null", "");
        let back = Report::parse_json(&j).expect("v1 parses");
        assert_eq!(back.runtime, None);
        assert_eq!(back.items, r.items);
    }

    #[test]
    fn runtime_json_round_trips() {
        let r = sample();
        let back = Report::parse_json(&r.render_json()).expect("parses");
        assert_eq!(back.runtime, r.runtime);
        let rt = back.runtime.unwrap();
        assert_eq!(rt.counter("mc.trials"), 1 << 55);
        assert_eq!(rt.counter("absent"), 0);
        assert_eq!(rt.hists[0].1.count, 2);
    }

    #[test]
    fn empty_metrics_attach_nothing() {
        let mut r = Report::new("e0", "claim");
        r.set_runtime(&Metrics::new());
        assert_eq!(r.runtime, None);
        assert!(!r.render_text().contains("Runtime"));
        assert!(r.render_json().contains("\"runtime\":null"));
    }

    /// Property: for seeded-random reports, (a) `render_text` embeds every
    /// table exactly as `Table::render` produces it (the pre-Report
    /// format), and (b) the JSON round-trip is lossless.
    #[test]
    fn random_reports_render_tables_verbatim_and_round_trip() {
        let mut rng = Rng64::new(0x5EED_0001);
        for case in 0..50 {
            let mut r = Report::new(format!("e{case}"), "claim");
            r.seed = rng.next_u64();
            let mut tables = Vec::new();
            for _ in 0..rng.below(4) + 1 {
                r.section(format!("s{}", rng.below(1000)));
                let ncols = rng.below(4) as usize + 1;
                let headers: Vec<String> = (0..ncols).map(|c| format!("col{c}")).collect();
                let hrefs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
                let mut t = Table::new(&hrefs);
                for _ in 0..rng.below(5) {
                    let row: Vec<String> =
                        (0..ncols).map(|_| fnum(rng.range_f64(-1e4, 1e4))).collect();
                    t.row(&row);
                }
                r.table(t.clone());
                tables.push(t);
                if rng.chance(0.5) {
                    r.text(format!("note {}", rng.below(100)));
                }
                if rng.chance(0.3) {
                    r.finding(format!("f{}", rng.below(10)), rng.next_f64(), "");
                }
            }
            let text = r.render_text();
            for t in &tables {
                assert!(
                    text.contains(&t.render()),
                    "case {case}: table block not rendered verbatim"
                );
            }
            assert_eq!(text, r.render_text_golden(), "no volatile items => equal");
            let back = Report::parse_json(&r.render_json()).expect("parses");
            assert_eq!(back, r, "case {case}: JSON round-trip");
        }
    }
}
