//! Structured experiment reports: named sections of [`Table`]s, free text,
//! and scalar findings, rendered both as the classic plain-text experiment
//! output (byte-identical to what the historical `exp_*` binaries printed)
//! and as a stable JSON document.
//!
//! The text renderer is the source of truth for golden-output regression
//! tests; the JSON renderer is the scriptable surface (`xxi run --format
//! json`). Items that depend on the host machine (wall-clock timings, real
//! thread races) are flagged *volatile* so the golden renderer can mask
//! them while still pinning their shape.
//!
//! ## JSON schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "experiment": "e9",
//!   "paper_claim": "…",
//!   "seed": 0,
//!   "params": {"threads": "1"},
//!   "findings": [{"name": "straggler_frac", "value": 0.652, "unit": "frac"}],
//!   "items": [
//!     {"kind": "section", "title": "…"},
//!     {"kind": "table", "volatile": false, "caption": null,
//!      "headers": ["fan-out", "p99 (ms)"],
//!      "rows": [[{"text": "100", "value": 100.0}, {"text": "63.4", "value": 63.4}]]},
//!     {"kind": "text", "volatile": false, "text": "…"}
//!   ]
//! }
//! ```
//!
//! `seed` is the user's `--seed` override, or `0` meaning "the experiment's
//! canonical per-call-site seeds" (the values every number in
//! EXPERIMENTS.md was produced with). Cells carry `value` only when the
//! rendered text is a plain finite number.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::table::Table;

pub mod json;

use json::Json;

/// Version of the JSON document layout. Bump on any breaking change.
pub const SCHEMA_VERSION: u64 = 1;

/// A named scalar result, e.g. the headline number of an experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Short snake_case name, stable across runs.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit label (`"x"`, `"ms"`, `"frac"`, `""` for dimensionless).
    pub unit: String,
}

/// The payload of one report item, in document order.
#[derive(Clone, Debug, PartialEq)]
pub enum ItemBody {
    /// A section header (`== title ==`).
    Section(String),
    /// A rendered table.
    Table(Table),
    /// One free-text block, printed followed by a newline.
    Text(String),
}

/// One item plus its volatility flag.
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    pub body: ItemBody,
    /// True when the content depends on the host machine (wall-clock
    /// timings, real thread interleavings); masked in golden renderings.
    pub volatile: bool,
}

/// A structured experiment report.
///
/// Built incrementally by an experiment (sections, tables, text,
/// findings), then rendered with [`Report::render_text`] (the classic
/// stdout format) or [`Report::render_json`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Lowercase experiment id (`"e9"`).
    pub id: String,
    /// The paper claim this experiment reproduces (the banner anchor).
    pub paper_claim: String,
    /// `--seed` override, or 0 for the canonical per-call-site seeds.
    pub seed: u64,
    /// Run parameters (`threads`, `trace`, …) as ordered key/value pairs.
    pub params: Vec<(String, String)>,
    /// Items in document order.
    pub items: Vec<Item>,
    /// Scalar findings.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Start an empty report for experiment `id`.
    pub fn new(id: impl Into<String>, paper_claim: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            paper_claim: paper_claim.into(),
            seed: 0,
            params: Vec::new(),
            items: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Record a run parameter.
    pub fn param(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.params.push((key.into(), value.into()));
    }

    /// Append a section header.
    pub fn section(&mut self, title: impl Into<String>) {
        self.items.push(Item {
            body: ItemBody::Section(title.into()),
            volatile: false,
        });
    }

    /// Append a table.
    pub fn table(&mut self, t: Table) {
        self.items.push(Item {
            body: ItemBody::Table(t),
            volatile: false,
        });
    }

    /// Append a machine-dependent table (masked in golden renderings).
    pub fn volatile_table(&mut self, t: Table) {
        self.items.push(Item {
            body: ItemBody::Table(t),
            volatile: true,
        });
    }

    /// Append a text block (rendered as the string plus a newline).
    pub fn text(&mut self, s: impl Into<String>) {
        self.items.push(Item {
            body: ItemBody::Text(s.into()),
            volatile: false,
        });
    }

    /// Append a machine-dependent text block (masked in golden renderings).
    pub fn volatile_text(&mut self, s: impl Into<String>) {
        self.items.push(Item {
            body: ItemBody::Text(s.into()),
            volatile: true,
        });
    }

    /// Record a scalar finding.
    pub fn finding(&mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) {
        self.findings.push(Finding {
            name: name.into(),
            value,
            unit: unit.into(),
        });
    }

    /// Render the classic experiment stdout: banner, then every item.
    ///
    /// Byte-identical to what the historical stand-alone binaries printed
    /// (`banner()` + `section()` + `Table::render` + `println!`).
    pub fn render_text(&self) -> String {
        self.render_text_with(false)
    }

    /// Render for golden-output comparison: identical to
    /// [`Report::render_text`] except volatile items are replaced by a
    /// deterministic placeholder that still pins their shape (a volatile
    /// table keeps its caption and headers; volatile text collapses to a
    /// marker line).
    pub fn render_text_golden(&self) -> String {
        self.render_text_with(true)
    }

    fn render_text_with(&self, golden: bool) -> String {
        let mut out = String::new();
        let rule = "#".repeat(70);
        let _ = writeln!(out, "{rule}");
        let _ = writeln!(out, "# Experiment {}", self.id.to_uppercase());
        let _ = writeln!(out, "# Paper anchor: {}", self.paper_claim);
        let _ = writeln!(out, "{rule}");
        for item in &self.items {
            match (&item.body, golden && item.volatile) {
                (ItemBody::Section(t), _) => {
                    let _ = writeln!(out, "\n== {t} ==\n");
                }
                (ItemBody::Table(t), false) => out.push_str(&t.render()),
                (ItemBody::Table(t), true) => {
                    if let Some(c) = t.caption_text() {
                        let _ = writeln!(out, "{c}");
                    }
                    let _ = writeln!(out, "<volatile table: {}>", t.headers().join(" | "));
                }
                (ItemBody::Text(s), false) => {
                    let _ = writeln!(out, "{s}");
                }
                (ItemBody::Text(s), true) => {
                    let _ = writeln!(out, "<volatile text: {} line(s)>", s.lines().count());
                }
            }
        }
        out
    }

    /// Render the schema-version-1 JSON document (see the module docs).
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(s, "\"schema_version\":{SCHEMA_VERSION}");
        let _ = write!(s, ",\"experiment\":\"{}\"", json::escape(&self.id));
        let _ = write!(
            s,
            ",\"paper_claim\":\"{}\"",
            json::escape(&self.paper_claim)
        );
        let _ = write!(s, ",\"seed\":{}", self.seed);
        s.push_str(",\"params\":{");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":\"{}\"", json::escape(k), json::escape(v));
        }
        s.push_str("},\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"value\":{},\"unit\":\"{}\"}}",
                json::escape(&f.name),
                json::number(f.value),
                json::escape(&f.unit)
            );
        }
        s.push_str("],\"items\":[");
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match &item.body {
                ItemBody::Section(t) => {
                    let _ = write!(
                        s,
                        "{{\"kind\":\"section\",\"title\":\"{}\"}}",
                        json::escape(t)
                    );
                }
                ItemBody::Text(txt) => {
                    let _ = write!(
                        s,
                        "{{\"kind\":\"text\",\"volatile\":{},\"text\":\"{}\"}}",
                        item.volatile,
                        json::escape(txt)
                    );
                }
                ItemBody::Table(t) => {
                    let _ = write!(s, "{{\"kind\":\"table\",\"volatile\":{}", item.volatile);
                    match t.caption_text() {
                        Some(c) => {
                            let _ = write!(s, ",\"caption\":\"{}\"", json::escape(c));
                        }
                        None => s.push_str(",\"caption\":null"),
                    }
                    s.push_str(",\"headers\":[");
                    for (j, h) in t.headers().iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        let _ = write!(s, "\"{}\"", json::escape(h));
                    }
                    s.push_str("],\"rows\":[");
                    for (j, row) in t.rows().iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push('[');
                        for (k, cell) in row.iter().enumerate() {
                            if k > 0 {
                                s.push(',');
                            }
                            let _ = write!(s, "{{\"text\":\"{}\"", json::escape(&cell.text));
                            if let Some(v) = cell.value {
                                let _ = write!(s, ",\"value\":{}", json::number(v));
                            }
                            s.push('}');
                        }
                        s.push(']');
                    }
                    s.push_str("]}");
                }
            }
        }
        s.push_str("]}");
        s
    }

    /// Parse a schema-version-1 JSON document back into a [`Report`].
    ///
    /// The inverse of [`Report::render_json`]: `parse_json(render_json(r))
    /// == r` for every report (the round-trip is tested over all golden
    /// reports). Also the validator behind `xxi validate`.
    pub fn parse_json(text: &str) -> Result<Report, String> {
        let v = json::parse(text)?;
        Report::from_json(&v)
    }

    /// Build a report from a parsed JSON value, validating the schema.
    pub fn from_json(v: &Json) -> Result<Report, String> {
        let obj = v.as_object().ok_or("report: expected an object")?;
        let version = json::get(obj, "schema_version")?
            .as_u64()
            .ok_or("schema_version: expected a number")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let mut r = Report::new(
            json::get_str(obj, "experiment")?,
            json::get_str(obj, "paper_claim")?,
        );
        r.seed = json::get(obj, "seed")?
            .as_u64()
            .ok_or("seed: expected an unsigned integer")?;
        for (k, v) in json::get(obj, "params")?
            .as_object()
            .ok_or("params: expected an object")?
        {
            r.param(k.clone(), v.as_str().ok_or("param: expected a string")?);
        }
        for f in json::get(obj, "findings")?
            .as_array()
            .ok_or("findings: expected an array")?
        {
            let fo = f.as_object().ok_or("finding: expected an object")?;
            r.finding(
                json::get_str(fo, "name")?,
                json::get(fo, "value")?
                    .as_f64()
                    .ok_or("finding value: expected a number")?,
                json::get_str(fo, "unit")?,
            );
        }
        for item in json::get(obj, "items")?
            .as_array()
            .ok_or("items: expected an array")?
        {
            let io = item.as_object().ok_or("item: expected an object")?;
            let volatile = json::find(io, "volatile")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            let body = match json::get_str(io, "kind")?.as_str() {
                "section" => ItemBody::Section(json::get_str(io, "title")?),
                "text" => ItemBody::Text(json::get_str(io, "text")?),
                "table" => {
                    let headers: Vec<String> = json::get(io, "headers")?
                        .as_array()
                        .ok_or("headers: expected an array")?
                        .iter()
                        .map(|h| h.as_str().ok_or("header: expected a string"))
                        .collect::<Result<_, _>>()?;
                    let hrefs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
                    let mut t = Table::new(&hrefs);
                    if let Some(c) = json::get(io, "caption")?.as_str() {
                        t = t.caption(c);
                    }
                    for row in json::get(io, "rows")?
                        .as_array()
                        .ok_or("rows: expected an array")?
                    {
                        let cells: Vec<String> = row
                            .as_array()
                            .ok_or("row: expected an array")?
                            .iter()
                            .map(|c| {
                                c.as_object()
                                    .and_then(|o| json::find(o, "text"))
                                    .and_then(Json::as_str)
                                    .ok_or("cell: expected an object with text")
                            })
                            .collect::<Result<_, _>>()?;
                        t.row(&cells);
                    }
                    ItemBody::Table(t)
                }
                k => return Err(format!("item: unknown kind {k:?}")),
            };
            r.items.push(Item { body, volatile });
        }
        Ok(r)
    }

    /// Tables in document order (with their volatility flags).
    pub fn tables(&self) -> impl Iterator<Item = (&Table, bool)> {
        self.items.iter().filter_map(|i| match &i.body {
            ItemBody::Table(t) => Some((t, i.volatile)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;
    use crate::table::fnum;

    fn sample() -> Report {
        let mut r = Report::new("e0", "Table 0: a \"quoted\" claim");
        r.seed = 7;
        r.param("threads", "4");
        r.section("First section");
        let mut t = Table::new(&["node", "pJ"]).caption("cap");
        t.row(&["180nm".into(), "45.0".into()]);
        t.row(&["90nm".into(), "12.5".into()]);
        r.table(t);
        r.text("a free\nmultiline block");
        let mut v = Table::new(&["threads", "time (s)"]);
        v.row(&["1".into(), "0.123".into()]);
        r.volatile_table(v);
        r.volatile_text("took 0.5 s");
        r.finding("ratio", 3.6, "x");
        r
    }

    #[test]
    fn text_render_matches_legacy_layout() {
        let s = sample().render_text();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "#".repeat(70));
        assert_eq!(lines[1], "# Experiment E0");
        assert!(lines[2].starts_with("# Paper anchor: Table 0"));
        assert!(s.contains("\n== First section ==\n\n"));
        assert!(s.contains("cap\nnode"));
        assert!(s.contains("a free\nmultiline block\n"));
        // Non-golden render includes volatile content verbatim.
        assert!(s.contains("0.123"));
        assert!(s.contains("took 0.5 s"));
    }

    #[test]
    fn golden_render_masks_volatile_items_only() {
        let r = sample();
        let g = r.render_text_golden();
        assert!(g.contains("45.0"), "deterministic table kept");
        assert!(!g.contains("0.123"), "volatile table masked");
        assert!(g.contains("<volatile table: threads | time (s)>"));
        assert!(!g.contains("took 0.5 s"));
        assert!(g.contains("<volatile text: 1 line(s)>"));
        // Identical up to the first volatile item.
        let t = r.render_text();
        assert_eq!(
            &g[..g.find("<volatile table").unwrap()],
            &t[..t.find("threads  time (s)").unwrap()]
        );
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let j = r.render_json();
        let back = Report::parse_json(&j).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn json_has_typed_cells_and_schema_fields() {
        let j = sample().render_json();
        assert!(j.starts_with("{\"schema_version\":1,\"experiment\":\"e0\""));
        assert!(j.contains("{\"text\":\"45.0\",\"value\":45}"));
        assert!(j.contains("{\"text\":\"180nm\"}"));
        assert!(j.contains("\"findings\":[{\"name\":\"ratio\",\"value\":3.6,\"unit\":\"x\"}]"));
        assert!(j.contains("\"volatile\":true"));
    }

    #[test]
    fn parse_rejects_wrong_schema_version() {
        let j = sample()
            .render_json()
            .replacen("\"schema_version\":1", "\"schema_version\":99", 1);
        assert!(Report::parse_json(&j).is_err());
    }

    /// Property: for seeded-random reports, (a) `render_text` embeds every
    /// table exactly as `Table::render` produces it (the pre-Report
    /// format), and (b) the JSON round-trip is lossless.
    #[test]
    fn random_reports_render_tables_verbatim_and_round_trip() {
        let mut rng = Rng64::new(0x5EED_0001);
        for case in 0..50 {
            let mut r = Report::new(format!("e{case}"), "claim");
            r.seed = rng.next_u64();
            let mut tables = Vec::new();
            for _ in 0..rng.below(4) + 1 {
                r.section(format!("s{}", rng.below(1000)));
                let ncols = rng.below(4) as usize + 1;
                let headers: Vec<String> = (0..ncols).map(|c| format!("col{c}")).collect();
                let hrefs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
                let mut t = Table::new(&hrefs);
                for _ in 0..rng.below(5) {
                    let row: Vec<String> =
                        (0..ncols).map(|_| fnum(rng.range_f64(-1e4, 1e4))).collect();
                    t.row(&row);
                }
                r.table(t.clone());
                tables.push(t);
                if rng.chance(0.5) {
                    r.text(format!("note {}", rng.below(100)));
                }
                if rng.chance(0.3) {
                    r.finding(format!("f{}", rng.below(10)), rng.next_f64(), "");
                }
            }
            let text = r.render_text();
            for t in &tables {
                assert!(
                    text.contains(&t.render()),
                    "case {case}: table block not rendered verbatim"
                );
            }
            assert_eq!(text, r.render_text_golden(), "no volatile items => equal");
            let back = Report::parse_json(&r.render_json()).expect("parses");
            assert_eq!(back, r, "case {case}: JSON round-trip");
        }
    }
}
