//! A lightweight named-counter/gauge registry.
//!
//! Simulators across the workspace (caches, routers, servers, sensor nodes)
//! need to expose dozens of counters — hits, misses, retries, drops,
//! checkpoints — without each defining bespoke bookkeeping structs for
//! rarely-read values. `Metrics` is a string-keyed map of integer counters,
//! float gauges, and [`LogHistogram`]s with ordered, stable iteration for
//! reporting. `Display` renders an aligned dump of all three.

use std::collections::BTreeMap;
use std::fmt;

use crate::obs::LogHistogram;

/// Named counters (u64, monotonic), gauges (f64, last-write-wins), and
/// sample distributions ([`LogHistogram`], fed via [`Metrics::observe`]).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, LogHistogram>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// True when nothing has been recorded (no counters, gauges, or
    /// histograms exist — a counter created at zero still counts).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Add `n` to counter `name` (creating it at zero).
    #[inline]
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.count(name, 1);
    }

    /// Read counter `name` (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name`.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Read gauge `name` (NaN if absent, so misuse is visible).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(f64::NAN)
    }

    /// Record sample `x` into the histogram `name` (creating it empty).
    /// Quantiles are then available via [`Metrics::hist`].
    #[inline]
    pub fn observe(&mut self, name: &'static str, x: f64) {
        self.hists.entry(name).or_default().add(x);
    }

    /// Read histogram `name`, if any samples were observed under it.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Ratio of two counters; 0 when the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        let d = self.counter(den);
        if d == 0 {
            0.0
        } else {
            self.counter(num) as f64 / d as f64
        }
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.hists.iter().map(|(k, v)| (*k, v))
    }

    /// Merge another registry: counters add, histograms merge, gauges take
    /// the other's value.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        // Gauges are last-write-wins by definition: when rolling shards up,
        // `other` is the later observation, so its value replaces ours.
        // Callers needing an aggregate (mean, max) should use a counter or
        // `observe` a histogram instead.
        for (k, v) in &other.gauges {
            self.gauges.insert(k, *v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k).or_default().merge(h);
        }
    }
}

/// Aligned dump: counters, then gauges, then histogram summary lines, each
/// name-ordered, name column padded to the longest name.
impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.hists.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (k, v) in &self.counters {
            writeln!(f, "{k:<width$}  {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k:<width$}  {v}")?;
        }
        for (k, h) in &self.hists {
            writeln!(f, "{k:<width$}  {}", h.summary_line())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_empty_tracks_any_kind() {
        let mut m = Metrics::new();
        assert!(m.is_empty());
        m.count("zero", 0);
        assert!(!m.is_empty(), "a created counter is recorded state");
        let mut m = Metrics::new();
        m.observe("h", 1.0);
        assert!(!m.is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("hits");
        m.count("hits", 4);
        assert_eq!(m.counter("hits"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.gauge("temp", 1.0);
        m.gauge("temp", 2.0);
        assert_eq!(m.gauge_value("temp"), 2.0);
        assert!(m.gauge_value("absent").is_nan());
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut m = Metrics::new();
        m.count("hits", 3);
        assert_eq!(m.ratio("hits", "accesses"), 0.0);
        m.count("accesses", 4);
        assert!((m.ratio("hits", "accesses") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn merge_adds_counters_and_takes_gauges() {
        let mut a = Metrics::new();
        a.count("x", 1);
        a.gauge("g", 1.0);
        let mut b = Metrics::new();
        b.count("x", 2);
        b.count("y", 3);
        b.gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 3);
        assert_eq!(a.gauge_value("g"), 9.0);
    }

    #[test]
    fn observe_feeds_histograms() {
        let mut m = Metrics::new();
        for i in 1..=100 {
            m.observe("latency_ms", i as f64);
        }
        let h = m.hist("latency_ms").unwrap();
        assert_eq!(h.count(), 100);
        assert!(h.p50() > 40.0 && h.p50() < 60.0);
        assert!(m.hist("absent").is_none());
    }

    #[test]
    fn merge_merges_histograms() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.observe("x", 1.0);
        b.observe("x", 2.0);
        b.observe("y", 3.0);
        a.merge(&b);
        assert_eq!(a.hist("x").unwrap().count(), 2);
        assert_eq!(a.hist("y").unwrap().count(), 1);
    }

    #[test]
    fn display_is_aligned_and_complete() {
        let mut m = Metrics::new();
        m.count("hits", 7);
        m.gauge("utilization", 0.5);
        m.observe("latency", 3.0);
        let s = m.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All value columns start at the same offset.
        assert!(lines[0].starts_with("hits         "), "{s}");
        assert!(lines[1].starts_with("utilization  "), "{s}");
        assert!(lines[2].starts_with("latency      "), "{s}");
        assert!(s.contains("n=1"), "{s}");
    }
}
