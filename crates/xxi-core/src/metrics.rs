//! A lightweight named-counter/gauge registry.
//!
//! Simulators across the workspace (caches, routers, servers, sensor nodes)
//! need to expose dozens of counters — hits, misses, retries, drops,
//! checkpoints — without each defining bespoke bookkeeping structs for
//! rarely-read values. `Metrics` is a string-keyed map of integer counters
//! and float gauges with ordered, stable iteration for reporting.

use std::collections::BTreeMap;

/// Named counters (u64, monotonic) and gauges (f64, last-write-wins).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `n` to counter `name` (creating it at zero).
    #[inline]
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.count(name, 1);
    }

    /// Read counter `name` (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name`.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Read gauge `name` (NaN if absent, so misuse is visible).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(f64::NAN)
    }

    /// Ratio of two counters; 0 when the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        let d = self.counter(den);
        if d == 0 {
            0.0
        } else {
            self.counter(num) as f64 / d as f64
        }
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Merge another registry: counters add, gauges take the other's value.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("hits");
        m.count("hits", 4);
        assert_eq!(m.counter("hits"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.gauge("temp", 1.0);
        m.gauge("temp", 2.0);
        assert_eq!(m.gauge_value("temp"), 2.0);
        assert!(m.gauge_value("absent").is_nan());
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut m = Metrics::new();
        m.count("hits", 3);
        assert_eq!(m.ratio("hits", "accesses"), 0.0);
        m.count("accesses", 4);
        assert!((m.ratio("hits", "accesses") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn merge_adds_counters_and_takes_gauges() {
        let mut a = Metrics::new();
        a.count("x", 1);
        a.gauge("g", 1.0);
        let mut b = Metrics::new();
        b.count("x", 2);
        b.count("y", 3);
        b.gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 3);
        assert_eq!(a.gauge_value("g"), 9.0);
    }
}
