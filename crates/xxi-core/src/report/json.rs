//! A minimal JSON value model, emitter helpers, and recursive-descent
//! parser — just enough for the [`Report`](super::Report) schema.
//!
//! The build environment has no crates.io access (the workspace `serde` is
//! a no-op derive stub), so serialization is hand-rolled. The parser exists
//! for the schema round-trip tests and `xxi validate`; it accepts standard
//! JSON (objects, arrays, strings with escapes, numbers, booleans, null).

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved (the schema
/// round-trip compares ordered `params`).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number, kept as its raw lexeme so integer precision survives
    /// (`u64` seeds exceed `f64`'s 53-bit mantissa).
    Num(String),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<String> {
        match self {
            Json::Str(s) => Some(s.clone()),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Look up a member, `None` when absent.
pub fn find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Look up a required member.
pub fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    find(obj, key).ok_or_else(|| format!("missing key {key:?}"))
}

/// Look up a required string member.
pub fn get_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .ok_or_else(|| format!("{key}: expected a string"))
}

/// Escape a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a finite `f64` as a JSON number (Rust's shortest round-trippable
/// decimal). Non-finite values have no JSON representation and become
/// `null`; keep findings finite.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Parse a JSON document. Errors carry the byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.num(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8".to_string())?,
                    );
                }
            }
        }
    }

    fn num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap(); // xxi-allow: panic-path -- scanned span is ASCII by construction
        match s.parse::<f64>() {
            Ok(_) => Ok(Json::Num(s.to_string())),
            Err(_) => Err(format!("bad number {s:?} at byte {start}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#" {"a": [1, -2.5e2, "x\ny", true, null], "b": {}} "#).unwrap();
        let obj = v.as_object().unwrap();
        let a = get(obj, "a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-250.0));
        assert_eq!(a[2].as_str().unwrap(), "x\ny");
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4], Json::Null);
        assert!(get(obj, "b").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{1} unicode é";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"abc", "1 2", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(45.0), "45");
        assert_eq!(number(0.1), "0.1");
        assert_eq!(number(f64::NAN), "null");
        let v = 1.234567890123e-7;
        assert_eq!(number(v).parse::<f64>().unwrap(), v);
    }
}
