//! A deterministic discrete-event simulation (DES) engine.
//!
//! Several of the paper's arguments are *dynamic* phenomena: tail latencies
//! emerge from queueing and fan-out (§2.1), sensor lifetimes from the
//! interleaving of harvest/compute/transmit (§2.1), NoC congestion from
//! packet interactions (§2.3). Those experiments run on this engine.
//!
//! The [`fault`] submodule is the deterministic fault-injection seam:
//! seeded [`fault::FaultPlan`]s kill, pause, or slow named components at
//! scheduled sim-times, with exact injected-event accounting.
//!
//! ## Model
//!
//! A [`Sim<S>`] owns user state `S` and a priority queue of events. An event
//! is a boxed `FnOnce(&mut Sim<S>)`: when it fires it can mutate the state
//! *and* schedule further events. Events fire in time order; ties are broken
//! by scheduling sequence number, which makes runs **bit-reproducible**
//! regardless of heap internals.
//!
//! ```
//! use xxi_core::{Sim, SimTime};
//!
//! // Count ticks of a 1 ns clock for 1 µs.
//! struct Counter { ticks: u64 }
//! fn tick(sim: &mut Sim<Counter>) {
//!     sim.state.ticks += 1;
//!     sim.schedule_in(SimTime::from_ns(1), tick);
//! }
//!
//! let mut sim = Sim::new(Counter { ticks: 0 });
//! sim.schedule_at(SimTime::ZERO, tick);
//! sim.run_until(SimTime::from_us(1));
//! assert_eq!(sim.state.ticks, 1000);
//! ```

pub mod fault;

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::obs::{SpanId, Trace};
use crate::time::SimTime;

type EventFn<S> = Box<dyn FnOnce(&mut Sim<S>)>;

struct Scheduled<S> {
    time: SimTime,
    seq: u64,
    f: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    /// Reversed so that the `BinaryHeap` (a max-heap) pops the *earliest*
    /// event; among equal times, the event scheduled first fires first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The discrete-event simulator. See the [module docs](self) for an example.
pub struct Sim<S> {
    /// User-owned simulation state, freely accessible from events.
    pub state: S,
    /// Event trace recorder. Disabled by default ([`Trace::disabled`]), in
    /// which case every recording call is a single predicted branch and no
    /// memory is ever allocated — the DES hot loop pays nothing. Enable
    /// with [`Sim::with_trace`] or by assigning [`Trace::enabled`].
    pub trace: Trace,
    now: SimTime,
    seq: u64,
    fired: u64,
    heap: BinaryHeap<Scheduled<S>>,
}

impl<S> Sim<S> {
    /// Create a simulator at time zero wrapping `state`, tracing disabled.
    pub fn new(state: S) -> Sim<S> {
        Sim {
            state,
            trace: Trace::disabled(),
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Create a simulator with the given trace recorder (typically
    /// [`Trace::enabled`]).
    pub fn with_trace(state: S, trace: Trace) -> Sim<S> {
        let mut sim = Sim::new(state);
        sim.trace = trace;
        sim
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far.
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a model bug; the event is clamped to fire
    /// at the current time (it will still fire after already-queued events
    /// at `now`, preserving causality).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim<S>) + 'static) {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            time,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut Sim<S>) + 'static) {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, f);
    }

    /// Fire the next pending event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        match self.heap.pop() {
            Some(ev) => {
                debug_assert!(ev.time >= self.now, "event heap returned past event");
                self.now = ev.time;
                self.fired += 1;
                (ev.f)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue drains. Returns the number of events fired
    /// by this call.
    pub fn run(&mut self) -> u64 {
        let start = self.fired;
        while self.step() {}
        self.fired - start
    }

    /// Run until the queue drains or the next event would fire at or after
    /// `horizon`. The clock is left at the last fired event's time (or
    /// unchanged if nothing fired). Events at exactly `horizon` do **not**
    /// fire, so `run_until(t)` covers the half-open interval `[now, t)`.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let start = self.fired;
        while let Some(next) = self.heap.peek() {
            if next.time >= horizon {
                break;
            }
            self.step();
        }
        self.fired - start
    }

    /// Run at most `max_events` events.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let start = self.fired;
        while self.fired - start < max_events && self.step() {}
        self.fired - start
    }

    /// Open a trace span starting at the current simulated time.
    /// Free (and returns a dead [`SpanId`]) when tracing is disabled.
    #[inline]
    pub fn trace_begin(&mut self, name: &'static str, cat: &'static str, track: u64) -> SpanId {
        let now = self.now;
        self.trace.begin(name, cat, track, now)
    }

    /// Close a trace span at the current simulated time.
    #[inline]
    pub fn trace_end(&mut self, id: SpanId) {
        let now = self.now;
        self.trace.end(id, now);
    }

    /// Close a trace span at the current time with numeric arguments.
    #[inline]
    pub fn trace_end_args(&mut self, id: SpanId, args: &[(&'static str, f64)]) {
        let now = self.now;
        self.trace.end_args(id, now, args);
    }

    /// Record an instant trace event at the current simulated time.
    #[inline]
    pub fn trace_instant(&mut self, name: &'static str, cat: &'static str, track: u64) {
        let now = self.now;
        self.trace.instant(name, cat, track, now);
    }
}

/// Schedule a periodic event: `f` fires every `period` starting at `start`,
/// for as long as `f` returns `true`.
pub fn every<S: 'static>(
    sim: &mut Sim<S>,
    start: SimTime,
    period: SimTime,
    f: impl FnMut(&mut Sim<S>) -> bool + 'static,
) {
    fn arm<S: 'static>(
        sim: &mut Sim<S>,
        at: SimTime,
        period: SimTime,
        mut f: impl FnMut(&mut Sim<S>) -> bool + 'static,
    ) {
        sim.schedule_at(at, move |sim| {
            if f(sim) {
                let next = sim.now().saturating_add(period);
                arm(sim, next, period, f);
            }
        });
    }
    arm(sim, start, period, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_ns(30), |s| s.state.push(3));
        sim.schedule_at(SimTime::from_ns(10), |s| s.state.push(1));
        sim.schedule_at(SimTime::from_ns(20), |s| s.state.push(2));
        sim.run();
        assert_eq!(sim.state, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..100 {
            sim.schedule_at(SimTime::from_ns(5), move |s| s.state.push(i));
        }
        sim.run();
        assert_eq!(sim.state, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u64);
        fn chain(sim: &mut Sim<u64>) {
            sim.state += 1;
            if sim.state < 5 {
                sim.schedule_in(SimTime::from_ns(1), chain);
            }
        }
        sim.schedule_at(SimTime::ZERO, chain);
        sim.run();
        assert_eq!(sim.state, 5);
        assert_eq!(sim.now(), SimTime::from_ns(4));
    }

    #[test]
    fn run_until_is_half_open() {
        let mut sim = Sim::new(Vec::<u64>::new());
        for ns in [5u64, 10, 15] {
            sim.schedule_at(SimTime::from_ns(ns), move |s| s.state.push(ns));
        }
        let fired = sim.run_until(SimTime::from_ns(10));
        assert_eq!(fired, 1);
        assert_eq!(sim.state, vec![5]);
        // The 10 ns event is still pending.
        assert_eq!(sim.pending(), 2);
        sim.run();
        assert_eq!(sim.state, vec![5, 10, 15]);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(Vec::<&'static str>::new());
        sim.schedule_at(SimTime::from_ns(10), |s| {
            // Try to schedule at t=1 while now=10.
            s.schedule_at(SimTime::from_ns(1), |s2| s2.state.push("clamped"));
            s.state.push("first");
        });
        sim.run();
        assert_eq!(sim.state, vec!["first", "clamped"]);
        assert_eq!(sim.now(), SimTime::from_ns(10));
    }

    #[test]
    fn run_events_bounds_work() {
        let mut sim = Sim::new(0u64);
        fn forever(sim: &mut Sim<u64>) {
            sim.state += 1;
            sim.schedule_in(SimTime::from_ns(1), forever);
        }
        sim.schedule_at(SimTime::ZERO, forever);
        let fired = sim.run_events(1000);
        assert_eq!(fired, 1000);
        assert_eq!(sim.state, 1000);
    }

    #[test]
    fn every_repeats_until_false() {
        let mut sim = Sim::new(0u64);
        every(
            &mut sim,
            SimTime::from_ns(10),
            SimTime::from_ns(10),
            |sim| {
                sim.state += 1;
                sim.state < 7
            },
        );
        sim.run();
        assert_eq!(sim.state, 7);
        assert_eq!(sim.now(), SimTime::from_ns(70));
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once(seedlike: u64) -> (u64, SimTime) {
            let mut sim = Sim::new(seedlike);
            fn ev(sim: &mut Sim<u64>) {
                sim.state = sim.state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let d = sim.state % 97;
                if sim.events_fired() < 10_000 {
                    sim.schedule_in(SimTime::from_ps(d), ev);
                    if d.is_multiple_of(3) {
                        sim.schedule_in(SimTime::from_ps(d * 2), |s| {
                            s.state ^= 0xDEAD;
                        });
                    }
                }
            }
            sim.schedule_at(SimTime::ZERO, ev);
            sim.run();
            (sim.state, sim.now())
        }
        assert_eq!(run_once(42), run_once(42));
        assert_ne!(run_once(42).0, run_once(43).0);
    }

    #[test]
    fn sim_trace_records_spans_at_sim_time() {
        use crate::obs::Trace;
        let mut sim = Sim::with_trace((), Trace::enabled());
        sim.schedule_at(SimTime::from_ns(10), |s| {
            let id = s.trace_begin("work", "test", 1);
            s.schedule_in(SimTime::from_ns(5), move |s2| {
                s2.trace_end(id);
                s2.trace_instant("done", "test", 1);
            });
        });
        sim.run();
        assert_eq!(sim.trace.len(), 2);
        let json = sim.trace.chrome_json();
        assert!(json.contains("\"work\""), "{json}");
        assert!(json.contains("\"done\""), "{json}");
    }

    #[test]
    fn default_sim_trace_is_disabled_and_allocation_free() {
        let mut sim = Sim::new(());
        for _ in 0..1000 {
            let id = sim.trace_begin("x", "t", 0);
            sim.trace_end(id);
            sim.trace_instant("y", "t", 0);
        }
        assert!(!sim.trace.is_enabled());
        assert_eq!(sim.trace.events_capacity(), 0);
    }

    #[test]
    fn empty_sim_runs_zero_events() {
        let mut sim = Sim::new(());
        assert_eq!(sim.run(), 0);
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }
}
