//! A deterministic discrete-event simulation (DES) engine.
//!
//! Several of the paper's arguments are *dynamic* phenomena: tail latencies
//! emerge from queueing and fan-out (§2.1), sensor lifetimes from the
//! interleaving of harvest/compute/transmit (§2.1), NoC congestion from
//! packet interactions (§2.3). Those experiments run on this engine.
//!
//! The [`fault`] submodule is the deterministic fault-injection seam:
//! seeded [`fault::FaultPlan`]s kill, pause, or slow named components at
//! scheduled sim-times, with exact injected-event accounting.
//!
//! ## Model
//!
//! A [`Sim<S>`] owns user state `S` and a pending-event queue. An event is
//! an `FnOnce(&mut Sim<S>)`: when it fires it can mutate the state *and*
//! schedule further events. Events fire in time order; ties are broken by
//! scheduling sequence number, which makes runs **bit-reproducible**
//! regardless of queue internals.
//!
//! ## Engine
//!
//! The ready queue is a hierarchical timer wheel ([`wheel`]): a wide
//! 4096-slot level 0 plus four 512-slot levels hash events by bit-fields
//! of their absolute picosecond tick, cascading coarse buckets toward
//! level 0 only when the clock reaches them, with a fallback far-heap
//! for events beyond the wheel's `2^48`-tick span. Same-tick events share one level-0 bucket, so FIFO
//! ties cost a single sort of the burst instead of per-event heap
//! comparisons. Event closures live in a recycling arena ([`arena`]):
//! small closures (≤ 64 bytes — the common case) are stored inline in
//! reused slots, so steady-state scheduling is allocation-free; oversized
//! closures take a cold boxed path. Scheduling returns a generation-checked
//! [`TimerHandle`] (via the `_handle` variants) that [`Sim::cancel`]
//! resolves in O(1), unlinking the event from its wheel bucket so it
//! never runs and the clock never visits its tick; only events parked in
//! the far-heap fall back to a tombstone that is skipped silently when
//! the queue drains past it.
//!
//! ```
//! use xxi_core::{Sim, SimTime};
//!
//! // Count ticks of a 1 ns clock for 1 µs.
//! struct Counter { ticks: u64 }
//! fn tick(sim: &mut Sim<Counter>) {
//!     sim.state.ticks += 1;
//!     sim.schedule_in(SimTime::from_ns(1), tick);
//! }
//!
//! let mut sim = Sim::new(Counter { ticks: 0 });
//! sim.schedule_at(SimTime::ZERO, tick);
//! sim.run_until(SimTime::from_us(1));
//! assert_eq!(sim.state.ticks, 1000);
//! ```

mod arena;
pub mod fault;
mod wheel;

pub use arena::ArenaStats;

use crate::metrics::Metrics;
use crate::obs::{SpanId, Trace};
use crate::time::SimTime;

type EventFn<S> = Box<dyn FnOnce(&mut Sim<S>)>;

/// A cancellation handle for a scheduled event, returned by
/// [`Sim::schedule_at_handle`] / [`Sim::schedule_in_handle`].
///
/// Handles are generation-checked: once the event fires (or its slot is
/// recycled by a later event), the handle goes stale and
/// [`Sim::cancel`] returns `false` instead of touching the new occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerHandle {
    idx: u32,
    gen: u32,
}

/// A snapshot of the engine's own counters, for the `== Runtime ==`
/// telemetry section. See [`Sim::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DesStats {
    /// Events whose closure actually ran.
    pub events_fired: u64,
    /// Events tombstoned by [`Sim::cancel`] before they could fire.
    pub cancelled: u64,
    /// Events still pending (scheduled, neither fired nor cancelled).
    pub pending: u64,
    /// Event-arena allocation counters.
    pub arena: ArenaStats,
}

impl DesStats {
    /// Record the snapshot as `des.*` counters.
    pub fn record(&self, m: &mut Metrics) {
        m.count("des.events_fired", self.events_fired);
        m.count("des.cancelled", self.cancelled);
        m.count("des.arena_high_water", self.arena.high_water);
        m.count("des.arena_recycled", self.arena.recycled);
        m.count("des.inline_events", self.arena.inline_events);
        m.count("des.boxed_events", self.arena.boxed_events);
    }
}

/// The discrete-event simulator. See the [module docs](self) for an example.
pub struct Sim<S> {
    /// User-owned simulation state, freely accessible from events.
    pub state: S,
    /// Event trace recorder. Disabled by default ([`Trace::disabled`]), in
    /// which case every recording call is a single predicted branch and no
    /// memory is ever allocated — the DES hot loop pays nothing. Enable
    /// with [`Sim::with_trace`] or by assigning [`Trace::enabled`].
    pub trace: Trace,
    now: SimTime,
    seq: u64,
    fired: u64,
    cancelled: u64,
    /// Cancelled far-heap entries still awaiting their silent drain.
    /// Wheel-resident cancellations unlink eagerly and never tombstone.
    tombstones: u64,
    arena: arena::Arena<S>,
    wheel: wheel::Wheel,
}

impl<S> Sim<S> {
    /// Create a simulator at time zero wrapping `state`, tracing disabled.
    pub fn new(state: S) -> Sim<S> {
        Sim {
            state,
            trace: Trace::disabled(),
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            cancelled: 0,
            tombstones: 0,
            arena: arena::Arena::new(),
            wheel: wheel::Wheel::new(),
        }
    }

    /// Create a simulator with the given trace recorder (typically
    /// [`Trace::enabled`]).
    pub fn with_trace(state: S, trace: Trace) -> Sim<S> {
        let mut sim = Sim::new(state);
        sim.trace = trace;
        sim
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far. Cancelled events never fire
    /// and are not counted here — see [`Sim::cancelled`].
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Total number of events cancelled so far.
    #[inline]
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Number of events currently pending (excluding cancelled ones).
    #[inline]
    pub fn pending(&self) -> usize {
        self.wheel.len() - self.tombstones as usize
    }

    /// Engine counters for runtime telemetry (`des.*`).
    pub fn stats(&self) -> DesStats {
        DesStats {
            events_fired: self.fired,
            cancelled: self.cancelled,
            pending: self.pending() as u64,
            arena: self.arena.stats(),
        }
    }

    /// Schedule `f` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a model bug; the event is clamped to fire
    /// at the current time (it will still fire after already-queued events
    /// at `now`, preserving causality).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim<S>) + 'static) {
        let _ = self.schedule_at_handle(at, f);
    }

    /// Schedule `f` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut Sim<S>) + 'static) {
        let _ = self.schedule_in_handle(delay, f);
    }

    /// Like [`Sim::schedule_at`], returning a [`TimerHandle`] for
    /// [`Sim::cancel`].
    pub fn schedule_at_handle(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut Sim<S>) + 'static,
    ) -> TimerHandle {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let (idx, gen) = self.arena.insert(time.ps(), f);
        self.wheel.insert(time.ps(), seq, idx);
        TimerHandle { idx, gen }
    }

    /// Like [`Sim::schedule_in`], returning a [`TimerHandle`] for
    /// [`Sim::cancel`].
    pub fn schedule_in_handle(
        &mut self,
        delay: SimTime,
        f: impl FnOnce(&mut Sim<S>) + 'static,
    ) -> TimerHandle {
        let at = self.now.saturating_add(delay);
        self.schedule_at_handle(at, f)
    }

    /// Cancel a scheduled event in O(1). Returns `true` if the event was
    /// still pending (it will now never run — its closure is dropped
    /// immediately); `false` if it already fired, was already cancelled,
    /// or the handle is stale (its slot was recycled).
    ///
    /// A cancelled event is removed from the timeline outright: its wheel
    /// entry is unlinked and the clock never visits its tick. (Events
    /// parked beyond the wheel span in the far-heap leave a tombstone
    /// instead, skipped silently — without advancing the clock — when the
    /// queue drains past it.) Since user code only ever runs at the tick
    /// of a *surviving* event, cancellation can never change the firing
    /// order or clamping of the events that remain.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        let Some(time) = self.arena.sched_time(handle.idx, handle.gen) else {
            return false;
        };
        if self.wheel.remove(time, handle.idx) {
            // Unlinked from its bucket: drop the closure and free the
            // slot now.
            self.arena.discard(handle.idx);
        } else {
            // Far-heap resident: tombstone, drained silently at pop.
            let hit = self.arena.cancel(handle.idx, handle.gen);
            debug_assert!(hit, "sched_time proved the slot live");
            self.tombstones += 1;
        }
        self.cancelled += 1;
        true
    }

    /// Fire or discard the earliest entry strictly before `horizon_ps`,
    /// repeating past tombstones. Returns `true` iff an event fired.
    fn step_before(&mut self, horizon_ps: u64) -> bool {
        loop {
            match self.wheel.peek_time() {
                Some(t) if t < horizon_ps => {
                    let e = self.wheel.pop().expect("peeked entry vanished"); // xxi-allow: panic-path -- peek just proved the wheel non-empty
                    debug_assert!(e.time >= self.now.ps(), "wheel returned past event");
                    match self.arena.take(e.idx) {
                        arena::Fired::Inline(call, p) => {
                            self.now = SimTime::from_ps(e.time);
                            self.fired += 1;
                            let sim: *mut Sim<S> = self;
                            // SAFETY: `take` returned the live thunk for
                            // this entry; it runs exactly once, here,
                            // and `sim` is `self` — valid and exclusive.
                            unsafe { call(p, sim) };
                            return true;
                        }
                        arena::Fired::Boxed(f) => {
                            self.now = SimTime::from_ps(e.time);
                            self.fired += 1;
                            f(self);
                            return true;
                        }
                        arena::Fired::Tombstone => self.tombstones -= 1,
                    }
                }
                _ => return false,
            }
        }
    }

    /// Fire the next pending event, if any. Returns `false` when the queue
    /// is empty. Tombstones of cancelled far-heap events are drained
    /// silently on the way, without advancing the clock.
    pub fn step(&mut self) -> bool {
        while let Some(e) = self.wheel.pop() {
            debug_assert!(e.time >= self.now.ps(), "wheel returned past event");
            match self.arena.take(e.idx) {
                arena::Fired::Inline(call, p) => {
                    self.now = SimTime::from_ps(e.time);
                    self.fired += 1;
                    let sim: *mut Sim<S> = self;
                    // SAFETY: `take` returned the live thunk for this
                    // entry; it runs exactly once, here, and `sim` is
                    // `self` — valid and exclusive.
                    unsafe { call(p, sim) };
                    return true;
                }
                arena::Fired::Boxed(f) => {
                    self.now = SimTime::from_ps(e.time);
                    self.fired += 1;
                    f(self);
                    return true;
                }
                arena::Fired::Tombstone => self.tombstones -= 1,
            }
        }
        false
    }

    /// Run until the event queue drains. Returns the number of events fired
    /// by this call.
    pub fn run(&mut self) -> u64 {
        let start = self.fired;
        while self.step() {}
        self.fired - start
    }

    /// Run until the queue drains or the next event would fire at or after
    /// `horizon`. Events at exactly `horizon` do **not** fire, so
    /// `run_until(t)` covers the half-open interval `[now, t)`, and the
    /// clock is left at `min(horizon, last-fired-time)` exclusive of the
    /// horizon itself: at the last drained event's time (always `<
    /// horizon`), or unchanged if nothing drained. Callers that need the
    /// clock *at* the horizon (e.g. to take an end-of-window measurement)
    /// must read [`Sim::now`] and handle the gap explicitly.
    ///
    /// ```
    /// use xxi_core::{Sim, SimTime};
    ///
    /// let mut sim = Sim::new(Vec::new());
    /// for ns in [5u64, 10, 15] {
    ///     sim.schedule_at(SimTime::from_ns(ns), move |s| s.state.push(ns));
    /// }
    /// // Half-open: the event at exactly 10 ns does not fire...
    /// assert_eq!(sim.run_until(SimTime::from_ns(10)), 1);
    /// assert_eq!(sim.state, vec![5]);
    /// // ...and the clock sits at the last fired event, not the horizon.
    /// assert_eq!(sim.now(), SimTime::from_ns(5));
    /// assert_eq!(sim.pending(), 2);
    /// ```
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let start = self.fired;
        while self.step_before(horizon.ps()) {}
        self.fired - start
    }

    /// Run at most `max_events` events.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let start = self.fired;
        while self.fired - start < max_events && self.step() {}
        self.fired - start
    }

    /// Open a trace span starting at the current simulated time.
    /// Free (and returns a dead [`SpanId`]) when tracing is disabled.
    #[inline]
    pub fn trace_begin(&mut self, name: &'static str, cat: &'static str, track: u64) -> SpanId {
        let now = self.now;
        self.trace.begin(name, cat, track, now)
    }

    /// Close a trace span at the current simulated time.
    #[inline]
    pub fn trace_end(&mut self, id: SpanId) {
        let now = self.now;
        self.trace.end(id, now);
    }

    /// Close a trace span at the current time with numeric arguments.
    #[inline]
    pub fn trace_end_args(&mut self, id: SpanId, args: &[(&'static str, f64)]) {
        let now = self.now;
        self.trace.end_args(id, now, args);
    }

    /// Record an instant trace event at the current simulated time.
    #[inline]
    pub fn trace_instant(&mut self, name: &'static str, cat: &'static str, track: u64) {
        let now = self.now;
        self.trace.instant(name, cat, track, now);
    }
}

/// Schedule a periodic event: `f` fires every `period` starting at `start`,
/// for as long as `f` returns `true`.
pub fn every<S: 'static>(
    sim: &mut Sim<S>,
    start: SimTime,
    period: SimTime,
    f: impl FnMut(&mut Sim<S>) -> bool + 'static,
) {
    fn arm<S: 'static>(
        sim: &mut Sim<S>,
        at: SimTime,
        period: SimTime,
        mut f: impl FnMut(&mut Sim<S>) -> bool + 'static,
    ) {
        sim.schedule_at(at, move |sim| {
            if f(sim) {
                let next = sim.now().saturating_add(period);
                arm(sim, next, period, f);
            }
        });
    }
    arm(sim, start, period, f);
}

/// The seed repo's `BinaryHeap` engine, kept verbatim as the ordering
/// oracle for the wheel+arena engine's property tests.
#[cfg(test)]
pub(crate) mod oracle {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    type EventFn<S> = Box<dyn FnOnce(&mut OracleSim<S>)>;

    struct Scheduled<S> {
        time: SimTime,
        seq: u64,
        f: EventFn<S>,
    }

    impl<S> PartialEq for Scheduled<S> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<S> Eq for Scheduled<S> {}
    impl<S> PartialOrd for Scheduled<S> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<S> Ord for Scheduled<S> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    pub(crate) struct OracleSim<S> {
        pub state: S,
        now: SimTime,
        seq: u64,
        fired: u64,
        heap: BinaryHeap<Scheduled<S>>,
    }

    impl<S> OracleSim<S> {
        pub fn new(state: S) -> OracleSim<S> {
            OracleSim {
                state,
                now: SimTime::ZERO,
                seq: 0,
                fired: 0,
                heap: BinaryHeap::new(),
            }
        }

        pub fn now(&self) -> SimTime {
            self.now
        }

        pub fn events_fired(&self) -> u64 {
            self.fired
        }

        pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut OracleSim<S>) + 'static) {
            let time = at.max(self.now);
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Scheduled {
                time,
                seq,
                f: Box::new(f),
            });
        }

        pub fn step(&mut self) -> bool {
            match self.heap.pop() {
                Some(ev) => {
                    self.now = ev.time;
                    self.fired += 1;
                    (ev.f)(self);
                    true
                }
                None => false,
            }
        }

        pub fn run(&mut self) {
            while self.step() {}
        }

        pub fn run_until(&mut self, horizon: SimTime) {
            while let Some(next) = self.heap.peek() {
                if next.time >= horizon {
                    break;
                }
                self.step();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_ns(30), |s| s.state.push(3));
        sim.schedule_at(SimTime::from_ns(10), |s| s.state.push(1));
        sim.schedule_at(SimTime::from_ns(20), |s| s.state.push(2));
        sim.run();
        assert_eq!(sim.state, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..100 {
            sim.schedule_at(SimTime::from_ns(5), move |s| s.state.push(i));
        }
        sim.run();
        assert_eq!(sim.state, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u64);
        fn chain(sim: &mut Sim<u64>) {
            sim.state += 1;
            if sim.state < 5 {
                sim.schedule_in(SimTime::from_ns(1), chain);
            }
        }
        sim.schedule_at(SimTime::ZERO, chain);
        sim.run();
        assert_eq!(sim.state, 5);
        assert_eq!(sim.now(), SimTime::from_ns(4));
    }

    #[test]
    fn run_until_is_half_open() {
        let mut sim = Sim::new(Vec::<u64>::new());
        for ns in [5u64, 10, 15] {
            sim.schedule_at(SimTime::from_ns(ns), move |s| s.state.push(ns));
        }
        let fired = sim.run_until(SimTime::from_ns(10));
        assert_eq!(fired, 1);
        assert_eq!(sim.state, vec![5]);
        // The clock stays at the last fired event, short of the horizon.
        assert_eq!(sim.now(), SimTime::from_ns(5));
        // The 10 ns event is still pending.
        assert_eq!(sim.pending(), 2);
        sim.run();
        assert_eq!(sim.state, vec![5, 10, 15]);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(Vec::<&'static str>::new());
        sim.schedule_at(SimTime::from_ns(10), |s| {
            // Try to schedule at t=1 while now=10.
            s.schedule_at(SimTime::from_ns(1), |s2| s2.state.push("clamped"));
            s.state.push("first");
        });
        sim.run();
        assert_eq!(sim.state, vec!["first", "clamped"]);
        assert_eq!(sim.now(), SimTime::from_ns(10));
    }

    #[test]
    fn run_events_bounds_work() {
        let mut sim = Sim::new(0u64);
        fn forever(sim: &mut Sim<u64>) {
            sim.state += 1;
            sim.schedule_in(SimTime::from_ns(1), forever);
        }
        sim.schedule_at(SimTime::ZERO, forever);
        let fired = sim.run_events(1000);
        assert_eq!(fired, 1000);
        assert_eq!(sim.state, 1000);
    }

    #[test]
    fn every_repeats_until_false() {
        let mut sim = Sim::new(0u64);
        every(
            &mut sim,
            SimTime::from_ns(10),
            SimTime::from_ns(10),
            |sim| {
                sim.state += 1;
                sim.state < 7
            },
        );
        sim.run();
        assert_eq!(sim.state, 7);
        assert_eq!(sim.now(), SimTime::from_ns(70));
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once(seedlike: u64) -> (u64, SimTime) {
            let mut sim = Sim::new(seedlike);
            fn ev(sim: &mut Sim<u64>) {
                sim.state = sim.state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let d = sim.state % 97;
                if sim.events_fired() < 10_000 {
                    sim.schedule_in(SimTime::from_ps(d), ev);
                    if d.is_multiple_of(3) {
                        sim.schedule_in(SimTime::from_ps(d * 2), |s| {
                            s.state ^= 0xDEAD;
                        });
                    }
                }
            }
            sim.schedule_at(SimTime::ZERO, ev);
            sim.run();
            (sim.state, sim.now())
        }
        assert_eq!(run_once(42), run_once(42));
        assert_ne!(run_once(42).0, run_once(43).0);
    }

    #[test]
    fn sim_trace_records_spans_at_sim_time() {
        use crate::obs::Trace;
        let mut sim = Sim::with_trace((), Trace::enabled());
        sim.schedule_at(SimTime::from_ns(10), |s| {
            let id = s.trace_begin("work", "test", 1);
            s.schedule_in(SimTime::from_ns(5), move |s2| {
                s2.trace_end(id);
                s2.trace_instant("done", "test", 1);
            });
        });
        sim.run();
        assert_eq!(sim.trace.len(), 2);
        let json = sim.trace.chrome_json();
        assert!(json.contains("\"work\""), "{json}");
        assert!(json.contains("\"done\""), "{json}");
    }

    #[test]
    fn default_sim_trace_is_disabled_and_allocation_free() {
        let mut sim = Sim::new(());
        for _ in 0..1000 {
            let id = sim.trace_begin("x", "t", 0);
            sim.trace_end(id);
            sim.trace_instant("y", "t", 0);
        }
        assert!(!sim.trace.is_enabled());
        assert_eq!(sim.trace.events_capacity(), 0);
    }

    #[test]
    fn empty_sim_runs_zero_events() {
        let mut sim = Sim::new(());
        assert_eq!(sim.run(), 0);
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn far_future_events_fire_in_order() {
        // Exercise the far-heap: events beyond the wheel's 2^48-tick span
        // (≈ 281 s), across multiple far blocks, interleaved with near ones.
        let mut sim = Sim::new(Vec::<u64>::new());
        let times = [
            1u64,
            500,
            1 << 20,
            (1 << 48) - 1,
            1 << 48,
            (1 << 48) + 7,
            3 << 48,
            (3 << 48) + 1,
            u64::MAX - 1,
        ];
        // Schedule in a scrambled order.
        for &t in &[
            times[4], times[0], times[8], times[2], times[6], times[1], times[3], times[7],
            times[5],
        ] {
            sim.schedule_at(SimTime::from_ps(t), move |s| s.state.push(t));
        }
        sim.run();
        assert_eq!(sim.state, times.to_vec());
        assert_eq!(sim.now(), SimTime::from_ps(u64::MAX - 1));
    }

    #[test]
    fn cancel_prevents_firing_and_counts() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_ns(1), |s| s.state.push(1));
        let h = sim.schedule_at_handle(SimTime::from_ns(2), |s| s.state.push(2));
        sim.schedule_at(SimTime::from_ns(3), |s| s.state.push(3));
        assert!(sim.cancel(h));
        // Double-cancel is a no-op.
        assert!(!sim.cancel(h));
        assert_eq!(sim.pending(), 2);
        sim.run();
        assert_eq!(sim.state, vec![1, 3]);
        assert_eq!(sim.events_fired(), 2);
        assert_eq!(sim.cancelled(), 1);
    }

    #[test]
    fn cancel_of_fired_event_is_stale_even_after_slot_reuse() {
        let mut sim = Sim::new(Vec::<u32>::new());
        let h_a = sim.schedule_at_handle(SimTime::from_ns(1), |s| s.state.push(1));
        sim.run();
        assert_eq!(sim.state, vec![1]);
        // B recycles A's arena slot; A's stale handle must not touch it.
        let h_b = sim.schedule_at_handle(SimTime::from_ns(2), |s| s.state.push(2));
        assert!(!sim.cancel(h_a));
        sim.run();
        assert_eq!(sim.state, vec![1, 2]);
        assert_eq!(sim.cancelled(), 0);
        // The fresh handle is stale only after its own event fired.
        assert!(!sim.cancel(h_b));
    }

    #[test]
    fn cancelled_event_never_fires_and_never_advances_the_clock() {
        // Cancellation removes the event from the timeline outright: the
        // clock only ever visits ticks of events that actually fire.
        let mut sim = Sim::new(Vec::<u64>::new());
        let h = sim.schedule_at_handle(SimTime::from_ns(10), |s| s.state.push(10));
        sim.cancel(h);
        sim.run();
        assert!(sim.state.is_empty());
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.events_fired(), 0);
        assert_eq!(sim.pending(), 0);

        // The same holds for a far-heap resident (beyond the 2^48 ps wheel
        // span), which takes the tombstone path internally.
        let far = sim.schedule_at_handle(SimTime::from_ps(1 << 60), |s| s.state.push(60));
        sim.schedule_at(SimTime::from_ns(1), |s| s.state.push(1));
        assert!(sim.cancel(far));
        sim.run();
        assert_eq!(sim.state, vec![1]);
        assert_eq!(sim.now(), SimTime::from_ns(1));
        assert_eq!(sim.cancelled(), 2);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn cancelled_closure_is_dropped_exactly_once() {
        use std::cell::Cell;
        use std::rc::Rc;

        struct DropFlag(Rc<Cell<u32>>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }

        let drops = Rc::new(Cell::new(0));
        let flag = DropFlag(Rc::clone(&drops));
        let mut sim = Sim::new(());
        let h = sim.schedule_at_handle(SimTime::from_ns(1), move |_| {
            let _keep = &flag;
            unreachable!("cancelled event fired");
        });
        assert_eq!(drops.get(), 0);
        assert!(sim.cancel(h));
        // Cancel drops the closure (and its captures) immediately.
        assert_eq!(drops.get(), 1);
        sim.run();
        assert_eq!(drops.get(), 1);
    }

    #[test]
    fn unfired_closures_drop_with_the_sim() {
        use std::cell::Cell;
        use std::rc::Rc;

        struct DropFlag(Rc<Cell<u32>>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }

        let drops = Rc::new(Cell::new(0));
        {
            let mut sim = Sim::new(());
            for _ in 0..3 {
                let flag = DropFlag(Rc::clone(&drops));
                sim.schedule_at(SimTime::from_ns(1), move |_| {
                    let _keep = &flag;
                });
            }
            // Drop the sim with the events still pending.
        }
        assert_eq!(drops.get(), 3);
    }

    #[test]
    fn oversized_closures_take_the_boxed_path() {
        let big = [7u8; 200];
        let mut sim = Sim::new(0u64);
        sim.schedule_at(SimTime::from_ns(1), move |s| {
            s.state = big.iter().map(|&b| b as u64).sum();
        });
        sim.run();
        assert_eq!(sim.state, 7 * 200);
        let stats = sim.stats();
        assert_eq!(stats.arena.boxed_events, 1);
        assert_eq!(stats.arena.inline_events, 0);
    }

    #[test]
    fn arena_recycles_slots_in_steady_state() {
        let mut sim = Sim::new(0u64);
        fn chain(sim: &mut Sim<u64>) {
            sim.state += 1;
            if sim.state < 1000 {
                sim.schedule_in(SimTime::from_ns(1), chain);
            }
        }
        sim.schedule_at(SimTime::ZERO, chain);
        sim.run();
        let stats = sim.stats();
        // One event in flight at a time: the arena never grows past a
        // handful of slots and recycles for the rest of the run.
        assert_eq!(stats.events_fired, 1000);
        assert!(stats.arena.high_water <= 2, "{stats:?}");
        assert!(stats.arena.recycled >= 998, "{stats:?}");
        assert_eq!(stats.arena.inline_events, 1000);
    }

    #[test]
    fn des_stats_record_as_counters() {
        let mut sim = Sim::new(());
        sim.schedule_at(SimTime::from_ns(1), |_| {});
        let h = sim.schedule_at_handle(SimTime::from_ns(2), |_| {});
        sim.cancel(h);
        sim.run();
        let mut m = Metrics::new();
        sim.stats().record(&mut m);
        assert_eq!(m.counter("des.events_fired"), 1);
        assert_eq!(m.counter("des.cancelled"), 1);
        assert!(m.counter("des.arena_high_water") >= 1);
    }

    /// Drive the wheel+arena engine and the seed `BinaryHeap` oracle
    /// through the same randomized program and demand identical firing
    /// logs. Cancellation in the oracle is modeled exactly as the seed
    /// consumers did it: the event still fires but a guard makes it a
    /// no-op — the new engine's contract is that real cancellation is
    /// indistinguishable from that *to user code* (every surviving event
    /// fires at the same tick in the same order; only the clock's idle
    /// walk past cancelled ticks disappears).
    fn check_against_oracle(seed: u64, horizons: &[u64]) {
        use crate::rng::Rng64;
        use std::cell::RefCell;
        use std::collections::HashSet;
        use std::rc::Rc;

        // A step of the shared program, decided by a per-event RNG stream
        // so both engines see identical choices as long as their firing
        // orders match.
        #[derive(Clone, Copy)]
        enum Op {
            /// Schedule a child this many ps ahead (0 = same-tick burst).
            Child(u64),
            /// Schedule a child in the past (clamps to now).
            PastChild,
            /// Cancel the event with this id, if still tracked.
            Cancel(u64),
        }

        fn ops_for(seed: u64, id: u64, next_id: u64, fired: u64) -> Vec<Op> {
            let mut rng = Rng64::stream(seed, id);
            let mut ops = Vec::new();
            if fired > 4000 {
                return ops; // damp the branching process
            }
            for _ in 0..rng.below(4) {
                ops.push(match rng.below(10) {
                    0 => Op::Child(0),
                    1 => Op::PastChild,
                    2 => Op::Cancel(rng.below(next_id.max(1))),
                    // Mix near ticks with far-heap range jumps.
                    n if n < 8 => Op::Child(rng.below(1 << 16)),
                    _ => Op::Child(rng.below(1 << 52)),
                });
            }
            ops
        }

        // --- New engine ---
        struct NewState {
            log: Vec<(u64, u64)>,
            next_id: u64,
            handles: Vec<TimerHandle>,
        }
        fn new_fire(sim: &mut Sim<NewState>, seed: u64, id: u64) {
            sim.state.log.push((id, sim.now().ps()));
            let fired = sim.events_fired();
            for op in ops_for(seed, id, sim.state.next_id, fired) {
                match op {
                    Op::Child(d) => {
                        let cid = sim.state.next_id;
                        sim.state.next_id += 1;
                        let at = sim.now().saturating_add(SimTime::from_ps(d));
                        let h = sim.schedule_at_handle(at, move |s| new_fire(s, seed, cid));
                        sim.state.handles.push(h);
                    }
                    Op::PastChild => {
                        let cid = sim.state.next_id;
                        sim.state.next_id += 1;
                        let at = SimTime::from_ps(sim.now().ps() / 2);
                        let h = sim.schedule_at_handle(at, move |s| new_fire(s, seed, cid));
                        sim.state.handles.push(h);
                    }
                    Op::Cancel(target) => {
                        let h = sim.state.handles[target as usize];
                        sim.cancel(h);
                    }
                }
            }
        }

        // --- Oracle: seed engine + guarded-no-op "cancellation" ---
        struct OracleState {
            log: Vec<(u64, u64)>,
            next_id: u64,
            cancelled: Rc<RefCell<HashSet<u64>>>,
            real_fired: u64,
        }
        fn oracle_fire(sim: &mut oracle::OracleSim<OracleState>, seed: u64, id: u64) {
            if sim.state.cancelled.borrow().contains(&id) {
                return; // guarded no-op, exactly like the seed consumers
            }
            sim.state.real_fired += 1;
            sim.state.log.push((id, sim.now().ps()));
            let fired = sim.state.real_fired;
            for op in ops_for(seed, id, sim.state.next_id, fired) {
                match op {
                    Op::Child(d) => {
                        let cid = sim.state.next_id;
                        sim.state.next_id += 1;
                        let at = sim.now().saturating_add(SimTime::from_ps(d));
                        sim.schedule_at(at, move |s| oracle_fire(s, seed, cid));
                    }
                    Op::PastChild => {
                        let cid = sim.state.next_id;
                        sim.state.next_id += 1;
                        let at = SimTime::from_ps(sim.now().ps() / 2);
                        sim.schedule_at(at, move |s| oracle_fire(s, seed, cid));
                    }
                    Op::Cancel(target) => {
                        sim.state.cancelled.borrow_mut().insert(target);
                    }
                }
            }
        }

        let mut new_sim = Sim::new(NewState {
            log: Vec::new(),
            next_id: 0,
            handles: Vec::new(),
        });
        let cancelled = Rc::new(RefCell::new(HashSet::new()));
        let mut ora_sim = oracle::OracleSim::new(OracleState {
            log: Vec::new(),
            next_id: 0,
            cancelled: Rc::clone(&cancelled),
            real_fired: 0,
        });

        // Identical root schedules, including same-tick ties.
        let mut root_rng = Rng64::stream(seed, u64::MAX);
        for _ in 0..32 {
            let t = root_rng.below(1 << 40);
            let id_new = new_sim.state.next_id;
            new_sim.state.next_id += 1;
            let h =
                new_sim.schedule_at_handle(SimTime::from_ps(t), move |s| new_fire(s, seed, id_new));
            new_sim.state.handles.push(h);
            let id_ora = ora_sim.state.next_id;
            ora_sim.state.next_id += 1;
            ora_sim.schedule_at(SimTime::from_ps(t), move |s| oracle_fire(s, seed, id_ora));
        }

        // Run in lock-stepped horizons, comparing at each boundary, then
        // drain both.
        for &h in horizons {
            new_sim.run_until(SimTime::from_ps(h));
            ora_sim.run_until(SimTime::from_ps(h));
            assert_eq!(
                new_sim.state.log, ora_sim.state.log,
                "seed {seed} horizon {h}"
            );
        }
        new_sim.run();
        ora_sim.run();
        assert_eq!(new_sim.state.log, ora_sim.state.log, "seed {seed}");
        // The oracle's guarded no-ops still advance its clock; the new
        // engine removes cancelled events from the timeline, so its final
        // clock sits at the last *real* fire — never past the oracle's.
        assert!(new_sim.now() <= ora_sim.now(), "seed {seed}");
        if let Some(&(_, t)) = new_sim.state.log.last() {
            assert_eq!(new_sim.now().ps(), t, "seed {seed}");
        }
        // Every event the oracle fired was either real or a cancelled no-op.
        assert_eq!(
            ora_sim.events_fired(),
            new_sim.events_fired() + new_sim.cancelled(),
            "seed {seed}"
        );
    }

    #[test]
    fn wheel_matches_binary_heap_oracle_on_random_schedules() {
        for seed in 0..12 {
            check_against_oracle(seed, &[]);
        }
    }

    #[test]
    fn wheel_matches_oracle_across_run_until_horizons() {
        for seed in 100..106 {
            check_against_oracle(seed, &[1 << 10, 1 << 20, 1 << 36, 1 << 41, 1 << 50]);
        }
    }
}
