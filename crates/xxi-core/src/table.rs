//! Plain-text table rendering for experiment output.
//!
//! Every `exp_*` binary in `xxi-bench` regenerates one of the paper's tables
//! (or a table for a quantitative claim made in prose). This module renders
//! those tables consistently: left-aligned first column (row label),
//! right-aligned numeric columns, a header rule, and an optional caption.

use std::fmt::Write as _;

/// One table cell: the exact text that is rendered, plus the numeric
/// value behind it when the text is a plain finite number. The text is
/// authoritative for rendering (byte-identical output); the value is what
/// the JSON emitter exports as a typed cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Preformatted cell text, rendered verbatim.
    pub text: String,
    /// The cell parsed as a finite `f64`, when it is one (`"45.0"`,
    /// `"1999"`); decorated values (`"12.3x"`, `"180nm"`) stay text-only.
    pub value: Option<f64>,
}

impl Cell {
    /// Build a cell from preformatted text, deriving the typed value.
    pub fn new(text: impl Into<String>) -> Cell {
        let text = text.into();
        let value = text.trim().parse::<f64>().ok().filter(|v| v.is_finite());
        Cell { text, value }
    }
}

/// A simple column-aligned text table.
///
/// ```
/// use xxi_core::Table;
/// let mut t = Table::new(&["node", "P/chip (W)"]);
/// t.row(&["180nm".to_string(), "45.0".to_string()]);
/// let s = t.render();
/// assert!(s.contains("node"));
/// assert!(s.contains("180nm"));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
    caption: Option<String>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            caption: None,
        }
    }

    /// Attach a caption printed above the table.
    pub fn caption(mut self, c: impl Into<String>) -> Table {
        self.caption = Some(c.into());
        self
    }

    /// Append a row of preformatted cells. Short rows are padded with empty
    /// cells; long rows are a bug.
    pub fn row(&mut self, cells: &[String]) {
        assert!(
            cells.len() <= self.headers.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.headers.len()
        );
        let mut r: Vec<Cell> = cells.iter().map(Cell::new).collect();
        r.resize(self.headers.len(), Cell::new(""));
        self.rows.push(r);
    }

    /// Append a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows as typed cells.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// The caption, when one was attached.
    pub fn caption_text(&self) -> Option<&str> {
        self.caption.as_deref()
    }

    /// Render to a string. The first column is left-aligned; all other
    /// columns are right-aligned (they are almost always numeric).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.text.len());
            }
        }

        let mut out = String::new();
        if let Some(c) = &self.caption {
            let _ = writeln!(out, "{c}");
        }
        // Header.
        for (i, h) in self.headers.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "{:<w$}", h, w = widths[i]);
            } else {
                let _ = write!(out, "  {:>w$}", h, w = widths[i]);
            }
        }
        out.push('\n');
        // Rule.
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        // Rows.
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", cell.text, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", cell.text, w = widths[i]);
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with engineering-style precision: 3 significant-ish
/// decimals for small magnitudes, fewer for large.
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.0}")
    } else if a >= 100.0 {
        format!("{x:.1}")
    } else if a >= 1.0 {
        format!("{x:.2}")
    } else if a >= 0.001 {
        format!("{x:.4}")
    } else if a == 0.0 {
        "0".to_string()
    } else {
        format!("{x:.3e}")
    }
}

/// Format a ratio as a multiplicative factor, e.g. `123x`.
pub fn xfactor(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_rule_rows() {
        let mut t = Table::new(&["name", "value"]).caption("Table X");
        t.row(&["a".into(), "1".into()]);
        t.row(&["bb".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Table X");
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("a"));
        assert!(lines[4].starts_with("bb"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn alignment_right_for_numeric_columns() {
        let mut t = Table::new(&["k", "val"]);
        t.row(&["x".into(), "5".into()]);
        t.row(&["y".into(), "500".into()]);
        let s = t.render();
        // Column width is 3 ("val"/"500"), so "5" appears right-aligned.
        assert!(s.contains("x    5"), "{s}");
        assert!(s.contains("y  500"), "{s}");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["only".into()]);
        assert_eq!(t.render().lines().count(), 3);
    }

    #[test]
    #[should_panic]
    fn long_rows_panic() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(123.45), "123.5");
        assert_eq!(fnum(1.2345), "1.23");
        assert_eq!(fnum(0.012345), "0.0123");
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1e-9), "1.000e-9");
    }

    #[test]
    fn xfactor_ranges() {
        assert_eq!(xfactor(123.4), "123x");
        assert_eq!(xfactor(12.34), "12.3x");
        assert_eq!(xfactor(1.234), "1.23x");
    }

    #[test]
    fn cells_are_typed_when_numeric() {
        let mut t = Table::new(&["k", "v", "decorated"]);
        t.row(&["180nm".into(), "45.0".into(), "12.3x".into()]);
        let row = &t.rows()[0];
        assert_eq!(row[0].value, None);
        assert_eq!(row[1].value, Some(45.0));
        assert_eq!(row[2].value, None);
        assert_eq!(Cell::new("inf").value, None);
        assert_eq!(Cell::new("NaN").value, None);
        assert_eq!(Cell::new("1.000e-9").value, Some(1.0e-9));
    }

    #[test]
    fn row_display_accepts_mixed_types() {
        let mut t = Table::new(&["a", "b"]);
        t.row_display(&[&"label", &42]);
        assert!(t.render().contains("42"));
    }
}
