//! Streaming and exact statistics.
//!
//! The warehouse-scale experiments (§2.1) hinge on *tail* behaviour — "if
//! 100 systems must jointly respond to a request, 63% of requests will incur
//! the 99-percentile delay of the individual systems". That claim is only
//! reproducible with careful percentile machinery, so this module provides:
//!
//! * [`Streaming`] — Welford's online mean/variance plus min/max/count.
//! * [`Summary`] — exact percentiles from a collected sample (sorting copy).
//! * [`P2Quantile`] — the Jain–Chlamtac P² streaming quantile estimator, for
//!   simulations too long to retain every sample.
//! * [`Histogram`] — fixed-width linear histogram with percentile queries.

use serde::{Deserialize, Serialize};

/// Welford online moments: numerically stable streaming mean and variance.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Streaming {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// New empty accumulator.
    pub fn new() -> Streaming {
        Streaming {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction —
    /// Chan et al.'s pairwise update).
    pub fn merge(&mut self, other: &Streaming) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact summary statistics over a retained sample.
///
/// Percentiles use the nearest-rank method on the sorted sample, matching
/// how "the 99th-percentile server" is defined in the tail-at-scale
/// argument.
///
/// ```
/// use xxi_core::stats::Summary;
/// let s = Summary::from_slice(&[3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(s.median(), 2.0);
/// assert_eq!(s.percentile(100.0), 4.0);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
}

impl Summary {
    /// Build from a sample (copies and sorts; NaNs are rejected).
    pub fn from_slice(xs: &[f64]) -> Summary {
        assert!(
            xs.iter().all(|x| !x.is_nan()),
            "Summary over NaN-containing sample"
        );
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap()); // xxi-allow: panic-path -- samples are finite by construction
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        Summary { sorted, mean }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Minimum (panics when empty).
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum (panics when empty).
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap() // xxi-allow: panic-path -- documented: panics when empty
    }

    /// Median, alias for `percentile(50)`.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Nearest-rank percentile, `p ∈ [0, 100]` (panics when empty).
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "percentile of empty summary");
        assert!((0.0..=100.0).contains(&p));
        if p == 0.0 {
            return self.sorted[0];
        }
        let rank = (p / 100.0 * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Fraction of samples strictly greater than `x`.
    pub fn frac_above(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }
}

/// P² (Jain & Chlamtac 1985) streaming quantile estimator.
///
/// Maintains five markers whose heights converge to the target quantile
/// without retaining the sample — O(1) memory for arbitrarily long
/// simulations. Accuracy is typically within a percent or two of exact for
/// smooth distributions; the tests quantify this against [`Summary`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based as in the paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments.
    dn: [f64; 5],
    count: u64,
    init: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for quantile `p ∈ (0, 1)` — e.g. `0.99` for p99.
    pub fn new(p: f64) -> P2Quantile {
        assert!(p > 0.0 && p < 1.0);
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).unwrap()); // xxi-allow: panic-path -- samples are finite by construction
                for i in 0..5 {
                    self.q[i] = self.init[i];
                }
            }
            return;
        }

        // Find the cell k such that q[k] <= x < q[k+1], adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers with the parabolic (P²) formula, falling
        // back to linear when the parabolic prediction would break
        // monotonicity.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    self.q[i] = qp;
                } else {
                    self.q[i] = self.linear(i, d);
                }
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate. With fewer than five observations, falls back to
    /// the exact nearest-rank quantile of what has been seen.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.init.len() < 5 && self.count < 5 {
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // xxi-allow: panic-path -- samples are finite by construction
            let rank = ((self.p * v.len() as f64).ceil() as usize).clamp(1, v.len());
            return v[rank - 1];
        }
        self.q[2]
    }
}

/// Fixed-width linear histogram over `[lo, hi)` with saturating outer bins.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram with `nbins` equal bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(hi > lo && nbins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record an observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate quantile by interpolating within the containing bin.
    /// Returns `lo`/`hi` if the quantile falls in an outer saturating bin.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return self.lo;
        }
        let target = q * self.count as f64;
        let mut acc = self.underflow as f64;
        if acc >= target && self.underflow > 0 {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            if acc + b as f64 >= target {
                let within = if b == 0 {
                    0.0
                } else {
                    (target - acc) / b as f64
                };
                return self.lo + (i as f64 + within) * w;
            }
            acc += b as f64;
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn streaming_moments_exact_small_case() {
        let mut s = Streaming::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_empty_defaults() {
        let s = Streaming::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn streaming_merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = Streaming::new();
        for &x in &data {
            all.add(x);
        }
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        for &x in &data[..300] {
            a.add(x);
        }
        for &x in &data[300..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn streaming_merge_with_empty_sides() {
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        b.add(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
        let empty = Streaming::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn summary_percentiles_nearest_rank() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(10.0), 1.0);
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.percentile(90.0), 9.0);
        assert_eq!(s.percentile(99.0), 10.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
        assert!((s.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn summary_frac_above() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.frac_above(2.0) - 0.5).abs() < 1e-12);
        assert!((s.frac_above(0.0) - 1.0).abs() < 1e-12);
        assert!((s.frac_above(4.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn summary_rejects_nan() {
        Summary::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn p2_tracks_median_of_uniform() {
        let mut rng = Rng64::new(1);
        let mut p2 = P2Quantile::new(0.5);
        for _ in 0..100_000 {
            p2.add(rng.next_f64());
        }
        assert!((p2.estimate() - 0.5).abs() < 0.01, "est={}", p2.estimate());
    }

    #[test]
    fn p2_tracks_p99_of_exponential_close_to_exact() {
        let mut rng = Rng64::new(2);
        let xs: Vec<f64> = (0..200_000).map(|_| rng.exp(1.0)).collect();
        let mut p2 = P2Quantile::new(0.99);
        for &x in &xs {
            p2.add(x);
        }
        let exact = Summary::from_slice(&xs).percentile(99.0);
        let rel = (p2.estimate() - exact).abs() / exact;
        assert!(rel < 0.05, "p2={} exact={exact}", p2.estimate());
        // Analytic p99 of Exp(1) is ln(100) ≈ 4.605.
        assert!((exact - 4.605).abs() < 0.15);
    }

    #[test]
    fn p2_small_sample_fallback() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), 0.0);
        p2.add(3.0);
        assert_eq!(p2.estimate(), 3.0);
        p2.add(1.0);
        p2.add(2.0);
        assert_eq!(p2.count(), 3);
        let e = p2.estimate();
        assert!((1.0..=3.0).contains(&e));
    }

    #[test]
    fn histogram_counts_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 25.0] {
            h.add(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.bins()[0], 2); // 0.0 and 0.5
        assert_eq!(h.bins()[5], 1); // 5.0
        assert_eq!(h.bins()[9], 1); // 9.99
    }

    #[test]
    fn histogram_quantile_tracks_uniform() {
        let mut h = Histogram::new(0.0, 1.0, 1000);
        let mut rng = Rng64::new(3);
        for _ in 0..100_000 {
            h.add(rng.next_f64());
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert!(
                (h.quantile(q) - q).abs() < 0.01,
                "q={q} got={}",
                h.quantile(q)
            );
        }
    }

    #[test]
    fn tail_at_scale_claim_reproduced_statistically() {
        // Sanity-check the percentile machinery against the paper's 63%
        // fan-out arithmetic: with fan-out 100 over i.i.d. latencies, the
        // fraction of requests whose max exceeds the single-server p99
        // should be ≈ 1 − 0.99^100 ≈ 0.634.
        let mut rng = Rng64::new(4);
        let server: Vec<f64> = (0..100_000).map(|_| rng.lognormal(0.0, 0.5)).collect();
        let p99 = Summary::from_slice(&server).percentile(99.0);
        let trials = 20_000;
        let mut hit = 0;
        for _ in 0..trials {
            let worst = (0..100)
                .map(|_| rng.lognormal(0.0, 0.5))
                .fold(f64::MIN, f64::max);
            if worst > p99 {
                hit += 1;
            }
        }
        let frac = hit as f64 / trials as f64;
        assert!((frac - 0.634).abs() < 0.03, "frac={frac}");
    }
}
