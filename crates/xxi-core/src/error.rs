//! Common error type for the `xxi-arch` workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, XxiError>;

/// Errors produced by model construction and simulation.
///
/// Models are configured from plain Rust structs rather than external files,
/// so most errors are *configuration* errors caught at construction time
/// (e.g. a cache with a non-power-of-two line size, a NoC with zero columns).
/// Simulation-time errors indicate a model invariant was violated and are
/// bugs rather than user errors.
#[derive(Debug, Clone, PartialEq)]
pub enum XxiError {
    /// A model parameter is out of range or inconsistent.
    Config(String),
    /// A capacity (queue, buffer, endurance budget) was exhausted.
    Capacity(String),
    /// A simulation invariant was violated; indicates a bug in the model.
    Invariant(String),
    /// The requested item does not exist (e.g. unknown technology node).
    NotFound(String),
}

impl XxiError {
    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        XxiError::Config(msg.into())
    }

    /// Convenience constructor for capacity-exhaustion errors.
    pub fn capacity(msg: impl Into<String>) -> Self {
        XxiError::Capacity(msg.into())
    }

    /// Convenience constructor for invariant violations.
    pub fn invariant(msg: impl Into<String>) -> Self {
        XxiError::Invariant(msg.into())
    }

    /// Convenience constructor for lookups that failed.
    pub fn not_found(msg: impl Into<String>) -> Self {
        XxiError::NotFound(msg.into())
    }
}

impl fmt::Display for XxiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XxiError::Config(m) => write!(f, "configuration error: {m}"),
            XxiError::Capacity(m) => write!(f, "capacity exhausted: {m}"),
            XxiError::Invariant(m) => write!(f, "invariant violated: {m}"),
            XxiError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for XxiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = XxiError::config("line size must be a power of two");
        assert_eq!(
            e.to_string(),
            "configuration error: line size must be a power of two"
        );
        let e = XxiError::capacity("queue full");
        assert!(e.to_string().starts_with("capacity exhausted"));
        let e = XxiError::invariant("negative energy");
        assert!(e.to_string().starts_with("invariant violated"));
        let e = XxiError::not_found("node 3nm");
        assert!(e.to_string().starts_with("not found"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(XxiError::config("x"), XxiError::Config("x".into()));
        assert_ne!(XxiError::config("x"), XxiError::capacity("x"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(XxiError::config("x"));
        assert!(e.to_string().contains("x"));
    }
}
