//! Hierarchical timer wheel: the DES ready queue.
//!
//! Five levels hash an event's absolute tick (picoseconds) by bit-field:
//! a 4096-slot level 0 resolves single ticks across the current 2^12-tick
//! window, and four 512-slot levels above it bucket geometrically coarser
//! spans (2^12, 2^21, 2^30, 2^39 ticks per slot). An event lands in the
//! level of the *highest bit-field in which its tick differs from the
//! wheel clock* — so nearby events sit directly in level 0 and far ones
//! coarsen gracefully. Buckets cascade toward level 0 lazily, only when
//! the wheel actually reaches them; events beyond the five-level span
//! (`2^48` ps ≈ 281 s) wait in a fallback far-heap and migrate in one
//! block at a time. The wide level 0 exists to keep cascades short: a
//! microsecond-scale timer crosses one or two levels, not five, and each
//! level's lowest occupied slot is found in O(1) through a per-level
//! summary bitmap (one bit per occupancy word).
//!
//! Sparse sims never touch that geometry at all: while the pending
//! population stays at or under [`NEAR_MAX`], entries live in one
//! sorted near list popped off the back — an M/G/1 queue holding two
//! events runs out of a single cache line, where the wheel's bucket
//! array would thrash. Outgrowing the list migrates everything into the
//! wheel, which hands back only once it fully drains (hysteresis, so
//! the modes cannot flap around the threshold).
//!
//! Ordering contract: [`Wheel::pop`] yields entries in exactly `(time,
//! seq)` order. Same-tick entries share a level-0 bucket and are drained
//! through a scratch batch sorted by `seq`, so FIFO ties cost one sort of
//! the burst instead of per-event heap comparisons; a tick holding a
//! single entry is popped straight out of its bucket.
//!
//! Cancellation contract: [`Wheel::remove`] unlinks a wheel-resident
//! entry without letting it cascade to level 0 first. Its bucket is
//! *computed*, not searched for: the placement invariant ("every stored
//! entry sits exactly where [`place`](Wheel::place) would put it against
//! the current clock") makes `(time, clock)` name the bucket directly. A
//! per-arena-slot location cache (`loc`), written only on insert so the
//! cascade hot path stays store-free, usually pins the exact position;
//! when the entry has cascaded since insert the cache misses and a scan
//! of the (low-level, therefore small) computed bucket finds it.
//! Far-heap entries are the one exception (`remove` returns `false`): a
//! `BinaryHeap` has no cheap removal, so the caller tombstones them and
//! [`pop`](Wheel::pop) drains them later.
//!
//! The wheel clock only moves when `pop` commits to a tick, never during
//! [`Wheel::peek_time`]; the [`Sim`](super::Sim) keeps its own clock equal
//! to the wheel clock whenever user code runs, which is what makes the
//! bit-field hashing invariant hold across re-entrant scheduling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel levels.
const LEVELS: usize = 5;
/// Bits resolved by level 0 (4096 single-tick slots).
const L0_BITS: u32 = 12;
/// Bits resolved by each level above 0 (512 slots each).
const LN_BITS: u32 = 9;
/// The tick shift where each level's bit-field starts.
const SHIFT: [u32; LEVELS] = [0, 12, 21, 30, 39];
/// Ticks covered by the wheel proper (`L0_BITS + 4 * LN_BITS`).
const BLOCK_BITS: u32 = 48;
/// Slot-index mask per level.
const MASK: [u64; LEVELS] = [(1 << L0_BITS) - 1, 511, 511, 511, 511];
/// First bucket of each level in the flat bucket array.
const BASE: [usize; LEVELS] = [0, 4096, 4608, 5120, 5632];
const TOTAL_SLOTS: usize = 6144;
/// Occupancy words per level (level 0's 4096 slots need all 64).
const WORDS: usize = 64;

/// One pending event: absolute tick, FIFO tiebreak, arena slot.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Entry {
    pub time: u64,
    pub seq: u64,
    pub idx: u32,
}

/// Far-heap key; ordered by `(time, seq)` so ties stay FIFO.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FarKey(u64, u64, u32);

/// Cached bucket position for an arena slot index: where `insert` placed
/// it. Best-effort — stale once the entry cascades, migrates, or moves
/// into the batch — so consumers verify by matching `idx` (unique among
/// live entries) before trusting it.
#[derive(Clone, Copy, Default)]
struct Loc {
    level: u8,
    slot: u16,
    pos: u32,
}

/// Population at which the near list hands over to the wheel proper.
/// Sparse sims (an M/G/1 queue keeps ~2 events pending) never cross it
/// and run entirely out of one sorted line of entries.
const NEAR_MAX: usize = 16;

pub(crate) struct Wheel {
    /// The wheel clock: the tick of the most recently popped entry. All
    /// stored slot indices are relative to this.
    cur: u64,
    /// `TOTAL_SLOTS` buckets, level-major (see [`BASE`]).
    buckets: Vec<Vec<Entry>>,
    /// One occupancy bit per bucket.
    occupied: [[u64; WORDS]; LEVELS],
    /// One bit per *occupancy word* with any bit set, so the lowest
    /// occupied slot of a level is two trailing-zero counts away.
    summary: [u64; LEVELS],
    /// One bit per level with any occupied bucket.
    live: u8,
    /// Insert-time bucket position per arena slot index (see [`Loc`]).
    loc: Vec<Loc>,
    /// Events beyond the wheel span, keyed `(time, seq)`.
    far: BinaryHeap<Reverse<FarKey>>,
    /// Current same-tick batch, sorted by `seq` *descending* (pop back).
    batch: Vec<Entry>,
    /// Reusable buffer for cascades, so steady state never allocates.
    scratch: Vec<Entry>,
    /// Small-population mode: while `small` is set every pending entry
    /// lives here, sorted `(time, seq)`-descending so the minimum pops
    /// off the back — one hot cache line instead of the wheel's slot
    /// geometry. Crossing [`NEAR_MAX`] migrates everything into the
    /// wheel; the wheel hands back only once it fully drains, so the
    /// modes never flap.
    near: Vec<Entry>,
    small: bool,
    len: usize,
}

impl Wheel {
    pub(crate) fn new() -> Wheel {
        Wheel {
            cur: 0,
            buckets: (0..TOTAL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [[0; WORDS]; LEVELS],
            summary: [0; LEVELS],
            live: 0,
            loc: Vec::new(),
            far: BinaryHeap::new(),
            batch: Vec::new(),
            scratch: Vec::new(),
            near: Vec::new(),
            small: true,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The level/slot `place` resolves `time` to against the current
    /// clock. Callers must have excluded the far-heap range first.
    #[inline]
    fn slot_of(&self, time: u64) -> (usize, usize) {
        let d = time ^ self.cur;
        debug_assert_eq!(d >> BLOCK_BITS, 0);
        let level = if d >> L0_BITS == 0 {
            0
        } else {
            (1 + (63 - L0_BITS - d.leading_zeros()) / LN_BITS) as usize
        };
        let slot = ((time >> SHIFT[level]) & MASK[level]) as usize;
        (level, slot)
    }

    /// Insert an entry. `time` must be `>= self.cur`; the [`Sim`](super::Sim)
    /// guarantees this by clamping schedule times to its clock, which it
    /// keeps equal to the wheel clock. Records the placement in the `loc`
    /// cache so a cancellation before the first cascade is O(1).
    #[inline]
    pub(crate) fn insert(&mut self, time: u64, seq: u64, idx: u32) {
        debug_assert!(time >= self.cur, "insert below the wheel clock");
        self.len += 1;
        if self.small {
            if self.len <= NEAR_MAX {
                // Sorted insert, `(time, seq)` descending. The list does
                // not care about wheel geometry, so far-range times are
                // fine here.
                let pos = self.near.partition_point(|e| (e.time, e.seq) > (time, seq));
                self.near.insert(pos, Entry { time, seq, idx });
                return;
            }
            // Population outgrew the near list: migrate into the wheel
            // and stay there until it fully drains.
            self.small = false;
            while let Some(e) = self.near.pop() {
                self.insert_wheel(e.time, e.seq, e.idx);
            }
        }
        self.insert_wheel(time, seq, idx);
    }

    /// The wheel-proper half of [`Wheel::insert`].
    fn insert_wheel(&mut self, time: u64, seq: u64, idx: u32) {
        if (time ^ self.cur) >> BLOCK_BITS != 0 {
            self.far.push(Reverse(FarKey(time, seq, idx)));
            return;
        }
        let (level, slot) = self.slot_of(time);
        let pos = self.push_bucket(level, slot, Entry { time, seq, idx });
        let i = idx as usize;
        if i >= self.loc.len() {
            self.loc.resize(i + 1, Loc::default());
        }
        self.loc[i] = Loc {
            level: level as u8,
            slot: slot as u16,
            pos,
        };
    }

    /// Hash an entry into its level/slot (or the far-heap) without
    /// touching `len` or the `loc` cache — the store-free re-placement
    /// path for cascades and far-block migration.
    #[inline]
    fn place(&mut self, e: Entry) {
        if (e.time ^ self.cur) >> BLOCK_BITS != 0 {
            self.far.push(Reverse(FarKey(e.time, e.seq, e.idx)));
            return;
        }
        let (level, slot) = self.slot_of(e.time);
        self.push_bucket(level, slot, e);
    }

    /// Append to a bucket, maintaining the occupancy bitmaps; returns the
    /// entry's position in the bucket.
    #[inline]
    fn push_bucket(&mut self, level: usize, slot: usize, e: Entry) -> u32 {
        let bucket = &mut self.buckets[BASE[level] + slot];
        let pos = bucket.len() as u32;
        bucket.push(e);
        self.occupied[level][slot / 64] |= 1u64 << (slot % 64);
        self.summary[level] |= 1u64 << (slot / 64);
        self.live |= 1 << level;
        pos
    }

    /// Clear the occupancy bit of a just-emptied bucket.
    #[inline]
    fn clear_bucket(&mut self, level: usize, slot: usize) {
        let word = &mut self.occupied[level][slot / 64];
        *word &= !(1u64 << (slot % 64));
        if *word == 0 {
            self.summary[level] &= !(1u64 << (slot / 64));
            if self.summary[level] == 0 {
                self.live &= !(1 << level);
            }
        }
    }

    /// Lowest occupied slot of the lowest live level; `None` when the
    /// wheel proper is empty. Two trailing-zero counts, no scanning.
    #[inline]
    fn lowest_live(&self) -> Option<(usize, usize)> {
        if self.live == 0 {
            return None;
        }
        let level = self.live.trailing_zeros() as usize;
        let word = self.summary[level].trailing_zeros() as usize;
        let slot = word * 64 + self.occupied[level][word].trailing_zeros() as usize;
        Some((level, slot))
    }

    fn take_bucket(&mut self, level: usize, slot: usize) -> Vec<Entry> {
        self.clear_bucket(level, slot);
        std::mem::replace(
            &mut self.buckets[BASE[level] + slot],
            std::mem::take(&mut self.scratch),
        )
    }

    /// Unlink the entry for arena slot `idx` (scheduled at `time`) from
    /// the wheel proper or the staged batch. Returns `false` — leaving
    /// the wheel untouched — when the entry is parked in the far-heap,
    /// where removal would be O(n); the caller tombstones it instead.
    pub(crate) fn remove(&mut self, time: u64, idx: u32) -> bool {
        if self.small {
            let pos = self
                .near
                .iter()
                .position(|e| e.idx == idx)
                .expect("cancelled entry missing from the near list"); // xxi-allow: panic-path -- the Sim proved the entry pending via its arena generation
            self.near.remove(pos);
            self.len -= 1;
            return true;
        }
        // The far/wheel split is exactly `place`'s predicate: every
        // wheel-resident entry sits where `place(time, cur)` would put it
        // *now* (cascades re-place on every clock move), and far blocks
        // migrate wholesale before the clock enters them.
        if (time ^ self.cur) >> BLOCK_BITS != 0 {
            return false;
        }
        // Fast path: the insert-time location cache. A live `idx` is
        // unique across the wheel, so matching it proves the hit even
        // though the cache goes stale on cascade.
        if let Some(&Loc { level, slot, pos }) = self.loc.get(idx as usize) {
            let (level, slot, pos) = (level as usize, slot as usize, pos as usize);
            if self.buckets[BASE[level] + slot]
                .get(pos)
                .is_some_and(|e| e.idx == idx)
            {
                self.unlink(level, slot, pos);
                return true;
            }
        }
        // Cache miss: the entry cascaded (or migrated in from the far
        // heap) since insert. Its bucket is still *computed*, and buckets
        // shrink as entries cascade down, so this scan is short.
        let (level, slot) = self.slot_of(time);
        if let Some(pos) = self.buckets[BASE[level] + slot]
            .iter()
            .position(|e| e.idx == idx)
        {
            self.unlink(level, slot, pos);
            return true;
        }
        // Not in a bucket and not far: the entry is staged in the current
        // same-tick batch. Preserve the batch's seq-descending order.
        let pos = self
            .batch
            .iter()
            .position(|e| e.idx == idx)
            .expect("cancelled entry in neither bucket, batch, nor far-heap"); // xxi-allow: panic-path -- the Sim proved the entry pending via its arena generation
        self.batch.remove(pos);
        self.len -= 1;
        true
    }

    /// Swap-remove position `pos` of bucket `(level, slot)`, repairing
    /// the displaced entry's `loc` cache and the occupancy bits.
    fn unlink(&mut self, level: usize, slot: usize, pos: usize) {
        let bucket = &mut self.buckets[BASE[level] + slot];
        bucket.swap_remove(pos);
        if let Some(moved) = bucket.get(pos).copied() {
            self.loc[moved.idx as usize] = Loc {
                level: level as u8,
                slot: slot as u16,
                pos: pos as u32,
            };
        } else if bucket.is_empty() {
            self.clear_bucket(level, slot);
        }
        self.len -= 1;
    }

    /// Earliest pending `(time, seq)`-ordered entry's time, without moving
    /// the wheel clock (no cascading — see the module docs).
    #[inline]
    pub(crate) fn peek_time(&self) -> Option<u64> {
        if self.small {
            return self.near.last().map(|e| e.time);
        }
        if let Some(e) = self.batch.last() {
            return Some(e.time);
        }
        if let Some((level, slot)) = self.lowest_live() {
            if level == 0 {
                return Some((self.cur & !MASK[0]) | slot as u64);
            }
            // Everything in this bucket precedes all higher levels and
            // the far-heap; scan it for the earliest tick.
            let min = self.buckets[BASE[level] + slot]
                .iter()
                .map(|e| e.time)
                .min();
            debug_assert!(min.is_some());
            return min;
        }
        self.far.peek().map(|Reverse(k)| k.0)
    }

    /// Remove and return the earliest entry in `(time, seq)` order,
    /// advancing the wheel clock to its tick.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Entry> {
        if self.small {
            let e = self.near.pop()?;
            debug_assert!(e.time >= self.cur);
            self.cur = e.time;
            self.len -= 1;
            return Some(e);
        }
        loop {
            if let Some(e) = self.batch.pop() {
                self.len -= 1;
                return Some(e);
            }
            if let Some((level, slot)) = self.lowest_live() {
                if level == 0 {
                    let tick = (self.cur & !MASK[0]) | slot as u64;
                    debug_assert!(tick >= self.cur);
                    self.cur = tick;
                    let bucket = &mut self.buckets[slot];
                    if bucket.len() == 1 {
                        // Singleton tick — the sparse-schedule hot path:
                        // pop straight out of the bucket, skipping the
                        // batch swap.
                        let e = bucket.pop().expect("occupancy bit set on an empty bucket"); // xxi-allow: panic-path -- clear_bucket drops the bit with the last entry
                        self.clear_bucket(0, slot);
                        self.len -= 1;
                        return Some(e);
                    }
                    // Refill the batch — covers both fresh ticks and
                    // same-tick events scheduled while the previous batch
                    // fired. Cascades and far-block migrations interleave
                    // seqs, so restore FIFO here: descending sort, pop
                    // from the back.
                    let mut b = self.take_bucket(0, slot);
                    b.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                    self.scratch = std::mem::replace(&mut self.batch, b);
                } else {
                    // Cascade the lowest occupied bucket of the lowest live
                    // level down one step. Advance the clock to the bucket's
                    // base tick (fields above `level` kept, field `level` =
                    // slot, lower fields zeroed); levels below are empty, so
                    // no stored slot index goes stale.
                    let shift = SHIFT[level];
                    let high = !0u64 << (shift + LN_BITS);
                    self.cur = (self.cur & high) | ((slot as u64) << shift);
                    let bucket = &mut self.buckets[BASE[level] + slot];
                    if bucket.len() == 1 {
                        // Singleton bucket at the lowest live level: its
                        // entry is the global minimum — lower levels are
                        // empty, later slots of this level and all higher
                        // levels differ from the clock in a strictly
                        // larger bit-field (so fire later), a same-tick
                        // twin would share this very bucket, and the far
                        // heap is a later block. Commit the clock to its
                        // tick and fire it directly instead of walking it
                        // down one cascade step per level — the sparse-
                        // schedule case (an M/G/1 queue keeps ~2 events
                        // pending) where per-level hops would dominate.
                        let e = bucket.pop().expect("occupancy bit set on an empty bucket"); // xxi-allow: panic-path -- clear_bucket drops the bit with the last entry
                        self.clear_bucket(level, slot);
                        debug_assert!(e.time >= self.cur);
                        self.cur = e.time;
                        self.len -= 1;
                        return Some(e);
                    } else {
                        let mut b = self.take_bucket(level, slot);
                        for e in b.drain(..) {
                            debug_assert!(e.time >= self.cur);
                            self.place(e);
                        }
                        self.scratch = b;
                    }
                }
                continue;
            }
            // Wheel empty: migrate the earliest far block, if any.
            let Some(&Reverse(first)) = self.far.peek() else {
                // Fully drained — hand back to the near list so the next
                // (possibly sparse) phase runs out of one cache line.
                debug_assert_eq!(self.len, 0);
                self.small = true;
                return None;
            };
            let base = (first.0 >> BLOCK_BITS) << BLOCK_BITS;
            debug_assert!(base > self.cur);
            self.cur = base;
            while let Some(&Reverse(k)) = self.far.peek() {
                if (k.0 >> BLOCK_BITS) << BLOCK_BITS != base {
                    break;
                }
                self.far.pop();
                self.place(Entry {
                    time: k.0,
                    seq: k.1,
                    idx: k.2,
                });
            }
        }
    }
}
