//! The event arena: recycled slots and inline closure storage for the DES.
//!
//! Every scheduled event owns a slot in this arena until it fires or its
//! tombstone is drained. Slots are recycled through a free list, so
//! steady-state scheduling allocates nothing once the simulation reaches
//! its high-water mark. Closures up to [`INLINE_BYTES`] are stored
//! *inline* in the slot (the common case — DES events capture a few
//! indices); larger ones fall back to the cold `Box<dyn FnOnce>` path.
//!
//! The inline path is also *move-free*: [`Arena::insert`] writes the
//! closure directly into the slot's buffer, and firing hands the
//! [`Sim`](super::Sim) a raw thunk + buffer pointer ([`Fired::Inline`])
//! instead of moving the payload out — the thunk reads the closure's
//! actual captures (often zero bytes) off the buffer and calls it. An
//! event's cost is therefore its captures, never the full buffer.
//!
//! Generation counters make [`TimerHandle`](super::TimerHandle)s safe
//! across slot reuse: a handle resolves only while its slot still holds
//! the exact event it was issued for.

use std::mem::{self, MaybeUninit};
use std::ptr;

use super::{EventFn, Sim};

/// Closures up to this many bytes are stored inline in the arena slot
/// (no allocation). Chosen to cover the workspace's DES events — a
/// function pointer plus a handful of `usize`/`u32` captures — with room
/// to spare.
pub(crate) const INLINE_BYTES: usize = 64;

/// Inline closure storage, aligned for any capture the workspace uses.
#[repr(align(16))]
struct InlineBuf([MaybeUninit<u8>; INLINE_BYTES]);

/// What a slot currently holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    /// Recycled or never used; on the free list.
    Free,
    /// A live closure written into the slot's inline buffer.
    Inline,
    /// A live oversized closure behind `boxed`.
    Boxed,
    /// Cancelled while parked in the far-heap; closure already dropped,
    /// the wheel drains the entry later.
    Tombstone,
}

/// The outcome of draining a slot as its wheel entry pops.
pub(crate) enum Fired<S> {
    /// A live inline event: the call thunk and the slot's buffer
    /// pointer. The caller must invoke the thunk **before any other
    /// arena access** — the thunk immediately reads the closure out of
    /// the buffer (consuming it) and then runs it, after which the slot
    /// (already freed) may be safely reused by re-entrant scheduling.
    /// The `Sim` travels as a raw pointer so the closure read provably
    /// precedes any fresh `&mut Sim` over the arena.
    // SAFETY: callers uphold the `call_raw` contract — invoke at most
    // once, before any other arena access, with a valid exclusive `sim`.
    Inline(unsafe fn(*mut u8, *mut Sim<S>), *mut u8),
    /// A live oversized event.
    Boxed(EventFn<S>),
    /// A cancelled far-heap event; nothing to run.
    Tombstone,
}

// SAFETY: `p` must point to a live `F` (written by `Arena::insert`),
// this must run at most once (it moves the closure out), and `sim` must
// be valid and exclusively reachable for the duration of the call.
unsafe fn call_raw<S, F: FnOnce(&mut Sim<S>)>(p: *mut u8, sim: *mut Sim<S>) {
    // SAFETY: the contract above; the read moves the closure onto this
    // stack frame *before* the `Sim` (which owns the slot buffer `p`
    // points into) is reborrowed, so user code may freely recycle the
    // already-freed slot.
    let f = unsafe { ptr::read(p.cast::<F>()) };
    // SAFETY: `sim` is valid and exclusively reachable per the contract.
    f(unsafe { &mut *sim });
}

// SAFETY: `p` must point to a live `F` that `call_raw` has not already
// consumed.
unsafe fn drop_raw<F>(p: *mut u8) {
    // SAFETY: the contract above.
    unsafe { ptr::drop_in_place(p.cast::<F>()) }
}

// SAFETY: placeholder thunk for freshly grown slots; never invoked (the
// slot is `State::Free` until `insert` overwrites both fields).
unsafe fn never_call<S>(_: *mut u8, _: *mut Sim<S>) {
    unreachable!("thunk of a Free arena slot invoked");
}

// SAFETY: placeholder like `never_call`.
unsafe fn never_drop(_: *mut u8) {
    unreachable!("drop thunk of a Free arena slot invoked");
}

struct Slot<S> {
    /// Bumped every time the slot is freed; handles carry the generation
    /// they were issued under and resolve only while it matches.
    gen: u32,
    state: State,
    /// The absolute tick the event is scheduled for — what lets
    /// [`Sim::cancel`](super::Sim::cancel) find the wheel entry to unlink.
    time: u64,
    /// Reads the closure out of `buf` (consuming it) and calls it.
    /// Valid while `state == Inline`.
    // SAFETY: always `call_raw::<S, F>` for the `F` currently in `buf`
    // (or the `never_call` placeholder while `Free`); see `call_raw`.
    call: unsafe fn(*mut u8, *mut Sim<S>),
    /// Drops the closure in `buf` without calling it. Valid while
    /// `state == Inline`.
    // SAFETY: always `drop_raw::<F>` for the `F` currently in `buf`
    // (or the `never_drop` placeholder while `Free`); see `drop_raw`.
    drop_fn: unsafe fn(*mut u8),
    /// The oversized-closure path. `Some` iff `state == Boxed`.
    boxed: Option<EventFn<S>>,
    buf: InlineBuf,
}

impl<S> Slot<S> {
    /// Drop whatever live closure the slot holds and mark it `Free`
    /// (without touching `gen` or the free list — callers own that).
    fn clear(&mut self) {
        match mem::replace(&mut self.state, State::Free) {
            // SAFETY: `state` was `Inline`, so `buf` holds the live
            // closure `insert` wrote and `call` has not consumed.
            State::Inline => unsafe { (self.drop_fn)(self.buf.0.as_mut_ptr().cast::<u8>()) },
            State::Boxed => self.boxed = None,
            State::Free | State::Tombstone => {}
        }
    }
}

impl<S> Drop for Slot<S> {
    fn drop(&mut self) {
        self.clear();
    }
}

/// Counters the arena exports through the `== Runtime ==` telemetry
/// (see [`Sim::stats`](super::Sim::stats)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Peak number of simultaneously occupied slots.
    pub high_water: u64,
    /// Events that reused a recycled slot (vs growing the arena).
    pub recycled: u64,
    /// Events whose closure was stored inline (allocation-free).
    pub inline_events: u64,
    /// Events that took the cold boxed path (closure over [`INLINE_BYTES`]).
    pub boxed_events: u64,
}

/// Slot storage for scheduled events. See the module docs.
pub(crate) struct Arena<S> {
    slots: Vec<Slot<S>>,
    free: Vec<u32>,
    stats: ArenaStats,
}

impl<S> Arena<S> {
    pub(crate) fn new() -> Arena<S> {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            stats: ArenaStats::default(),
        }
    }

    /// Store `f`, scheduled for tick `time`, returning the slot index and
    /// its current generation. The closure is written straight into the
    /// slot — no staging copy.
    #[inline]
    pub(crate) fn insert(
        &mut self,
        time: u64,
        f: impl FnOnce(&mut Sim<S>) + 'static,
    ) -> (u32, u32) {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.stats.recycled += 1;
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena outgrew u32 indices"); // xxi-allow: panic-path -- see the expect message
                self.slots.push(Slot {
                    gen: 0,
                    state: State::Free,
                    time: 0,
                    call: never_call::<S>,
                    drop_fn: never_drop,
                    boxed: None,
                    buf: InlineBuf([MaybeUninit::uninit(); INLINE_BYTES]),
                });
                idx
            }
        };
        let gen = self.write(idx, time, f);
        let occupied = (self.slots.len() - self.free.len()) as u64;
        self.stats.high_water = self.stats.high_water.max(occupied);
        (idx, gen)
    }

    /// The monomorphized slot-fill half of [`Arena::insert`]; the
    /// size/alignment branch is resolved at compile time per closure
    /// type. Returns the slot's generation.
    fn write<F: FnOnce(&mut Sim<S>) + 'static>(&mut self, idx: u32, time: u64, f: F) -> u32 {
        let slot = &mut self.slots[idx as usize];
        debug_assert_eq!(slot.state, State::Free, "insert into an occupied slot");
        slot.time = time;
        if mem::size_of::<F>() <= INLINE_BYTES
            && mem::align_of::<F>() <= mem::align_of::<InlineBuf>()
        {
            // SAFETY: size and alignment were just checked against the
            // buffer, and a `Free` slot's buffer holds no live closure.
            unsafe { ptr::write(slot.buf.0.as_mut_ptr().cast::<F>(), f) };
            slot.call = call_raw::<S, F>;
            slot.drop_fn = drop_raw::<F>;
            slot.state = State::Inline;
            self.stats.inline_events += 1;
        } else {
            slot.boxed = Some(Box::new(f));
            slot.state = State::Boxed;
            self.stats.boxed_events += 1;
        }
        slot.gen
    }

    /// Drain slot `idx` as its wheel entry pops, freeing it. For a live
    /// inline event the closure is **not** moved: the returned
    /// [`Fired::Inline`] points into the slot buffer, and its thunk
    /// contract (read the closure out, then call it) is what makes the
    /// already-freed slot safe to recycle re-entrantly.
    #[inline]
    pub(crate) fn take(&mut self, idx: u32) -> Fired<S> {
        let slot = &mut self.slots[idx as usize];
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        match mem::replace(&mut slot.state, State::Free) {
            State::Inline => Fired::Inline(slot.call, slot.buf.0.as_mut_ptr().cast::<u8>()),
            State::Boxed => Fired::Boxed(slot.boxed.take().expect("Boxed slot without a closure")), // xxi-allow: panic-path -- `write` set `boxed` with the state
            State::Tombstone => Fired::Tombstone,
            State::Free => unreachable!("wheel popped an entry for a free arena slot"),
        }
    }

    /// Free slot `idx` *without* running its closure — the
    /// wheel-resident cancellation path (the entry was just unlinked).
    pub(crate) fn discard(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.clear();
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
    }

    /// The scheduled tick of the event in slot `idx`, if `gen` still
    /// matches a live (neither fired nor cancelled) event — the
    /// cancellation path's handle-validity check.
    pub(crate) fn sched_time(&self, idx: u32, gen: u32) -> Option<u64> {
        match self.slots.get(idx as usize) {
            Some(slot) if slot.gen == gen && matches!(slot.state, State::Inline | State::Boxed) => {
                Some(slot.time)
            }
            _ => None,
        }
    }

    /// Tombstone the event in slot `idx` if `gen` still matches (the event
    /// has neither fired nor been cancelled). Drops the closure now; the
    /// slot itself is reclaimed when the wheel drains its entry. Only used
    /// for far-heap residents — wheel-resident cancellations unlink the
    /// entry and free the slot immediately via [`Arena::discard`].
    pub(crate) fn cancel(&mut self, idx: u32, gen: u32) -> bool {
        match self.slots.get_mut(idx as usize) {
            Some(slot) if slot.gen == gen && matches!(slot.state, State::Inline | State::Boxed) => {
                slot.clear();
                slot.state = State::Tombstone;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn stats(&self) -> ArenaStats {
        self.stats
    }
}
