//! Deterministic fault injection for DES models.
//!
//! §2.1 and §2.4 of the paper share a premise: 21st-century systems must
//! hold their latency and availability targets *while the hardware
//! underneath fails*. A simulation that only models healthy components
//! cannot test that, so this module is the seam every DES model can plug
//! faults through:
//!
//! * a [`FaultPlan`] is a schedule of faults — kill, pause, slow, or
//!   restore a numbered component at a chosen sim-time. Plans are built
//!   by hand ([`FaultPlan::at`]) or generated from a seed
//!   ([`FaultPlan::seeded`]), and a given `(seed, horizon, components,
//!   rate, mix)` always yields the same plan;
//! * a [`Topology`] maps components to failure scopes (racks, switches,
//!   power domains) so [`FaultPlan::correlated`] can draw *scope-level*
//!   faults that strike every component sharing the scope at the same
//!   instant — the blast-radius failure mode independent per-component
//!   draws can never produce;
//! * a [`FaultInjector`] executes the plan as simulated time advances:
//!   the owning model calls [`FaultInjector::advance`] with the DES clock
//!   and queries [`FaultInjector::is_up`] / [`FaultInjector::slowdown`]
//!   when dispatching work;
//! * every planned fault is accounted for — `scheduled == fired +
//!   cancelled` is an invariant (a fault aimed at an already-dead
//!   component is *cancelled*, not silently dropped) — and the counts
//!   surface through [`FaultInjector::record`] into a
//!   [`Metrics`](crate::metrics::Metrics) registry.
//!
//! The injector is deliberately independent of [`Sim`](crate::des::Sim):
//! it never schedules events itself, so any model (cluster serving,
//! NoC, sensor fleet) can adopt it without changing its event structure.

use crate::metrics::Metrics;
use crate::rng::Rng64;
use crate::time::SimTime;

/// Index of a simulated component (replica, router, node, …).
pub type CompId = u32;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Permanent crash: the component never responds again (until an
    /// explicit [`Fault::Restore`]).
    Kill,
    /// Unresponsive for `for_time`, then back to normal — a reboot, a
    /// long GC pause, a network partition.
    Pause {
        /// How long the component stays unresponsive.
        for_time: SimTime,
    },
    /// Still responsive, but service takes `factor`× as long for
    /// `for_time` — a degraded disk, a throttled CPU, a noisy neighbor.
    Slow {
        /// Service-time multiplier (> 1 slows the component down).
        factor: f64,
        /// How long the slowdown lasts.
        for_time: SimTime,
    },
    /// Repair intervention: clears any standing Kill/Pause/Slow.
    Restore,
}

/// One fault scheduled against one component at one sim-time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannedFault {
    /// When the fault strikes.
    pub at: SimTime,
    /// Which component it strikes.
    pub comp: CompId,
    /// What happens to it.
    pub fault: Fault,
}

/// Relative weights for the fault kinds a seeded plan draws from.
#[derive(Clone, Copy, Debug)]
pub struct FaultMix {
    /// Weight of [`Fault::Kill`].
    pub kill: f64,
    /// Weight of [`Fault::Pause`] (duration drawn in [`FaultMix::pause_ms`]).
    pub pause: f64,
    /// Weight of [`Fault::Slow`].
    pub slow: f64,
    /// Pause duration range (ms), uniform.
    pub pause_ms: (f64, f64),
    /// Slowdown factor range, uniform.
    pub slow_factor: (f64, f64),
    /// Slowdown duration range (ms), uniform.
    pub slow_ms: (f64, f64),
}

impl FaultMix {
    /// Kills only — the crash-failure model of the availability
    /// literature.
    pub fn kills_only() -> FaultMix {
        FaultMix {
            kill: 1.0,
            pause: 0.0,
            slow: 0.0,
            pause_ms: (10.0, 50.0),
            slow_factor: (2.0, 8.0),
            slow_ms: (10.0, 100.0),
        }
    }

    /// A gray-failure storm: mostly pauses and slowdowns, some crashes —
    /// the hard case for tail-latency SLOs.
    pub fn gray() -> FaultMix {
        FaultMix {
            kill: 0.2,
            pause: 0.4,
            slow: 0.4,
            pause_ms: (10.0, 50.0),
            slow_factor: (2.0, 8.0),
            slow_ms: (10.0, 100.0),
        }
    }
}

/// Component → failure-scope map: which components share a rack, a
/// top-of-rack switch, a power domain — anything that fails as a unit.
///
/// Scopes are numbered `0..scopes()`; every component belongs to exactly
/// one. [`FaultPlan::correlated`] draws faults per *scope* and expands
/// them to every member, so a "rack kill" takes out all its components
/// at one instant.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// `scope_of[comp]` is the failure scope of component `comp`.
    scope_of: Vec<u32>,
    scopes: u32,
}

impl Topology {
    /// Build from an explicit component → scope map. Scope ids must be
    /// dense (`0..=max`); a gap means a scope no fault can ever strike.
    pub fn new(scope_of: Vec<u32>) -> Topology {
        assert!(!scope_of.is_empty(), "a topology needs components");
        let scopes = scope_of.iter().max().unwrap() + 1; // xxi-allow: panic-path -- non-empty is asserted above
        Topology { scope_of, scopes }
    }

    /// Every component in its own scope — correlated draws degenerate to
    /// independent per-component faults (the budget-matched baseline).
    pub fn flat(components: u32) -> Topology {
        Topology {
            scope_of: (0..components).collect(),
            scopes: components,
        }
    }

    /// Striped assignment: component `c` lands in scope `c % scopes`.
    /// With components numbered shard-major (replica `r` of shard `s` is
    /// `s * replicas + r`), `striped(components, replicas)` puts replica
    /// column `r` of every shard in rack `r` — the classic
    /// one-replica-per-rack placement.
    pub fn striped(components: u32, scopes: u32) -> Topology {
        assert!(scopes > 0 && scopes <= components);
        Topology {
            scope_of: (0..components).map(|c| c % scopes).collect(),
            scopes,
        }
    }

    /// Contiguous blocks of `per_scope` components per scope — nodes
    /// racked in order.
    pub fn blocks(components: u32, per_scope: u32) -> Topology {
        assert!(per_scope > 0);
        let scopes = components.div_ceil(per_scope);
        Topology {
            scope_of: (0..components).map(|c| c / per_scope).collect(),
            scopes,
        }
    }

    /// Number of components mapped.
    pub fn components(&self) -> u32 {
        self.scope_of.len() as u32
    }

    /// Number of failure scopes.
    pub fn scopes(&self) -> u32 {
        self.scopes
    }

    /// Scope of component `comp`.
    pub fn scope_of(&self, comp: CompId) -> u32 {
        self.scope_of[comp as usize]
    }

    /// Components in `scope`, in component order.
    pub fn members(&self, scope: u32) -> Vec<CompId> {
        (0..self.components())
            .filter(|&c| self.scope_of[c as usize] == scope)
            .collect()
    }
}

/// A deterministic schedule of faults, sorted by strike time.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (the fault-free baseline).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `fault` against `comp` at sim-time `at`.
    pub fn at(&mut self, at: SimTime, comp: CompId, fault: Fault) -> &mut FaultPlan {
        self.events.push(PlannedFault { at, comp, fault });
        self
    }

    /// Schedule `fault` against every member of `scope` at sim-time
    /// `at` — a hand-built blast: one rack, one instant, all of it.
    pub fn at_scope(
        &mut self,
        at: SimTime,
        topo: &Topology,
        scope: u32,
        fault: Fault,
    ) -> &mut FaultPlan {
        for comp in topo.members(scope) {
            self.at(at, comp, fault);
        }
        self
    }

    /// Generate a seeded plan: exactly `ceil(rate * components)` faults
    /// (zero when `rate == 0`), each striking a component drawn uniformly
    /// at a time drawn uniformly in `[0, horizon)`, with kinds drawn from
    /// `mix`. A pure function of its arguments — the same plan on every
    /// host, executor, and thread count.
    ///
    /// Expressing the rate as *faults per component* (a "1% leaf-kill
    /// rate" is `rate = 0.01`) keeps the injected count deterministic
    /// instead of Bernoulli-noisy, so sweeps and regression tests see the
    /// exact fault load they asked for.
    pub fn seeded(
        seed: u64,
        horizon: SimTime,
        components: u32,
        rate: f64,
        mix: FaultMix,
    ) -> FaultPlan {
        assert!(components > 0, "a plan needs components to strike");
        assert!((0.0..=1.0).contains(&rate), "rate is faults per component");
        let faults = (rate * components as f64).ceil() as usize * usize::from(rate > 0.0);
        let mut rng = Rng64::stream(seed, 0xFA_017);
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            let at = SimTime::from_ps(rng.below(horizon.ps().max(1)));
            let comp = rng.below(components as u64) as CompId;
            let fault = draw_fault(&mut rng, &mix);
            plan.at(at, comp, fault);
        }
        plan
    }

    /// Generate a seeded *correlated* plan: exactly `ceil(rate *
    /// topo.scopes())` scope-level faults (zero when `rate == 0`), each
    /// striking a scope drawn uniformly at a time drawn uniformly in
    /// `[0, horizon)`, with kinds drawn from `mix` — then expanded into
    /// one [`PlannedFault`] per member of the scope, all sharing the
    /// same instant and the same fault. Per-component accounting
    /// (`scheduled == fired + cancelled`) is preserved because the
    /// expansion is ordinary planned faults, one per component.
    ///
    /// Drawn from its own RNG substream, disjoint from
    /// [`FaultPlan::seeded`]'s, so a model can layer both plans from one
    /// root seed without the draws colliding.
    pub fn correlated(
        seed: u64,
        horizon: SimTime,
        topo: &Topology,
        rate: f64,
        mix: FaultMix,
    ) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate is faults per scope");
        let faults = (rate * topo.scopes() as f64).ceil() as usize * usize::from(rate > 0.0);
        let mut rng = Rng64::stream(seed, 0xFA_C08);
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            let at = SimTime::from_ps(rng.below(horizon.ps().max(1)));
            let scope = rng.below(topo.scopes() as u64) as u32;
            let fault = draw_fault(&mut rng, &mix);
            plan.at_scope(at, topo, scope, fault);
        }
        plan
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn events(&self) -> &[PlannedFault] {
        &self.events
    }
}

fn ms_time(ms: f64) -> SimTime {
    SimTime::from_ps((ms * 1e9).round().max(0.0) as u64)
}

/// Draw one fault kind from `mix` — shared by [`FaultPlan::seeded`] and
/// [`FaultPlan::correlated`] so both consume the mix identically.
fn draw_fault(rng: &mut Rng64, mix: &FaultMix) -> Fault {
    let total = mix.kill + mix.pause + mix.slow;
    assert!(total > 0.0, "fault mix must have positive weight");
    let pick = rng.next_f64() * total;
    if pick < mix.kill {
        Fault::Kill
    } else if pick < mix.kill + mix.pause {
        let (lo, hi) = mix.pause_ms;
        Fault::Pause {
            for_time: ms_time(rng.range_f64(lo, hi)),
        }
    } else {
        Fault::Slow {
            factor: rng.range_f64(mix.slow_factor.0, mix.slow_factor.1),
            for_time: ms_time(rng.range_f64(mix.slow_ms.0, mix.slow_ms.1)),
        }
    }
}

/// Health of one component at one instant.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Status {
    Up,
    Dead,
    Paused { until: SimTime },
    Slowed { factor: f64, until: SimTime },
}

/// Executes a [`FaultPlan`] against `components` numbered components as
/// simulated time advances. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct FaultInjector {
    /// Plan events sorted by (time, insertion order).
    plan: Vec<PlannedFault>,
    next: usize,
    status: Vec<Status>,
    fired: u64,
    cancelled: u64,
    /// Fired work-losing faults (Kill/Pause) per component — models use
    /// the delta across an interval to detect "the server crashed while
    /// this job was resident".
    disruptions: Vec<u64>,
    total_disruptions: u64,
}

impl FaultInjector {
    /// Arm `plan` over components `0..components`. Faults aimed outside
    /// that range are a plan bug and panic at `advance` time.
    pub fn new(plan: &FaultPlan, components: u32) -> FaultInjector {
        let mut sorted: Vec<(usize, &PlannedFault)> = plan.events.iter().enumerate().collect();
        sorted.sort_by_key(|(i, f)| (f.at, *i));
        FaultInjector {
            plan: sorted.into_iter().map(|(_, f)| *f).collect(),
            next: 0,
            status: vec![Status::Up; components as usize],
            fired: 0,
            cancelled: 0,
            disruptions: vec![0; components as usize],
            total_disruptions: 0,
        }
    }

    /// Fire every planned fault due at or before `now`. Callers invoke
    /// this with the DES clock before querying component health; calling
    /// it more than once per instant is harmless.
    pub fn advance(&mut self, now: SimTime) {
        while let Some(f) = self.plan.get(self.next) {
            if f.at > now {
                break;
            }
            let f = *f;
            self.next += 1;
            self.apply(f);
        }
    }

    fn apply(&mut self, f: PlannedFault) {
        let s = &mut self.status[f.comp as usize];
        // A fault aimed at a dead component changes nothing: count it as
        // cancelled so the accounting invariant stays exact. Restore is
        // the exception — repair is precisely for dead components.
        if *s == Status::Dead && f.fault != Fault::Restore {
            self.cancelled += 1;
            return;
        }
        *s = match f.fault {
            Fault::Kill => Status::Dead,
            Fault::Pause { for_time } => Status::Paused {
                until: f.at.saturating_add(for_time),
            },
            Fault::Slow { factor, for_time } => Status::Slowed {
                factor,
                until: f.at.saturating_add(for_time),
            },
            Fault::Restore => Status::Up,
        };
        self.fired += 1;
        if matches!(f.fault, Fault::Kill | Fault::Pause { .. }) {
            self.disruptions[f.comp as usize] += 1;
            self.total_disruptions += 1;
        }
    }

    /// True when `comp` accepts and answers requests at `now` (a pause
    /// whose window has passed counts as recovered).
    pub fn is_up(&self, comp: CompId, now: SimTime) -> bool {
        match self.status[comp as usize] {
            Status::Up | Status::Slowed { .. } => true,
            Status::Dead => false,
            Status::Paused { until } => now >= until,
        }
    }

    /// Service-time multiplier for `comp` at `now` (1.0 when healthy).
    pub fn slowdown(&self, comp: CompId, now: SimTime) -> f64 {
        match self.status[comp as usize] {
            Status::Slowed { factor, until } if now < until => factor,
            _ => 1.0,
        }
    }

    /// Earliest instant ≥ `now` at which `comp` answers requests:
    /// `Some(now)` when up, the pause expiry when paused, `None` when
    /// dead (no planned recovery before another `advance`).
    pub fn up_at(&self, comp: CompId, now: SimTime) -> Option<SimTime> {
        match self.status[comp as usize] {
            Status::Up | Status::Slowed { .. } => Some(now),
            Status::Dead => None,
            Status::Paused { until } => Some(if now >= until { now } else { until }),
        }
    }

    /// Fired work-losing faults (Kill/Pause) against `comp` so far.
    /// Comparing the value before and after an interval tells a model
    /// whether the component crashed while its work was resident.
    pub fn disruptions(&self, comp: CompId) -> u64 {
        self.disruptions[comp as usize]
    }

    /// Fired work-losing faults across all components. A correlated
    /// scope fault contributes one per member, all at the same instant.
    pub fn total_disruptions(&self) -> u64 {
        self.total_disruptions
    }

    /// Faults in the plan.
    pub fn scheduled(&self) -> u64 {
        self.plan.len() as u64
    }

    /// Faults that took effect.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Faults that struck an already-dead component.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Surface the accounting into `m` as `fault.scheduled`,
    /// `fault.fired`, and `fault.cancelled` counters.
    pub fn record(&self, m: &mut Metrics) {
        m.count("fault.scheduled", self.scheduled());
        m.count("fault.fired", self.fired);
        m.count("fault.cancelled", self.cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_ms(x)
    }

    #[test]
    fn kill_is_permanent_and_pause_expires() {
        let mut plan = FaultPlan::new();
        plan.at(ms(10), 0, Fault::Kill);
        plan.at(ms(10), 1, Fault::Pause { for_time: ms(5) });
        let mut inj = FaultInjector::new(&plan, 2);
        inj.advance(ms(9));
        assert!(inj.is_up(0, ms(9)) && inj.is_up(1, ms(9)));
        inj.advance(ms(10));
        assert!(!inj.is_up(0, ms(10)));
        assert!(!inj.is_up(1, ms(12)), "paused inside the window");
        assert!(inj.is_up(1, ms(15)), "pause expires on its own");
        assert!(!inj.is_up(0, ms(1000)), "kill never expires");
    }

    #[test]
    fn slow_multiplies_then_expires() {
        let mut plan = FaultPlan::new();
        plan.at(
            ms(5),
            0,
            Fault::Slow {
                factor: 4.0,
                for_time: ms(10),
            },
        );
        let mut inj = FaultInjector::new(&plan, 1);
        inj.advance(ms(20));
        assert!(inj.is_up(0, ms(6)), "slowed components still answer");
        assert_eq!(inj.slowdown(0, ms(6)), 4.0);
        assert_eq!(inj.slowdown(0, ms(15)), 1.0, "slowdown expired");
    }

    #[test]
    fn restore_repairs_a_dead_component() {
        let mut plan = FaultPlan::new();
        plan.at(ms(1), 0, Fault::Kill);
        plan.at(ms(2), 0, Fault::Restore);
        let mut inj = FaultInjector::new(&plan, 1);
        inj.advance(ms(3));
        assert!(inj.is_up(0, ms(3)));
        assert_eq!(inj.fired(), 2);
        assert_eq!(inj.cancelled(), 0);
    }

    #[test]
    fn faults_on_dead_components_are_cancelled_not_lost() {
        let mut plan = FaultPlan::new();
        plan.at(ms(1), 0, Fault::Kill);
        plan.at(ms(2), 0, Fault::Kill);
        plan.at(ms(3), 0, Fault::Pause { for_time: ms(1) });
        let mut inj = FaultInjector::new(&plan, 1);
        inj.advance(ms(10));
        assert_eq!(inj.scheduled(), 3);
        assert_eq!(inj.fired(), 1);
        assert_eq!(inj.cancelled(), 2);
    }

    #[test]
    fn advance_fires_in_time_order_regardless_of_insertion() {
        let mut plan = FaultPlan::new();
        plan.at(ms(5), 0, Fault::Restore); // inserted first, fires second
        plan.at(ms(1), 0, Fault::Kill);
        let mut inj = FaultInjector::new(&plan, 1);
        inj.advance(ms(10));
        assert!(inj.is_up(0, ms(10)), "restore fired after the kill");
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn seeded_plans_are_pure_functions_of_their_arguments() {
        let a = FaultPlan::seeded(7, ms(1000), 60, 0.1, FaultMix::gray());
        let b = FaultPlan::seeded(7, ms(1000), 60, 0.1, FaultMix::gray());
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::seeded(8, ms(1000), 60, 0.1, FaultMix::gray());
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn seeded_plan_injects_the_exact_count_asked_for() {
        assert_eq!(
            FaultPlan::seeded(1, ms(100), 60, 0.01, FaultMix::kills_only()).len(),
            1,
            "ceil(0.01 * 60) = 1, deterministically"
        );
        assert_eq!(
            FaultPlan::seeded(1, ms(100), 60, 0.1, FaultMix::kills_only()).len(),
            6
        );
        assert!(FaultPlan::seeded(1, ms(100), 60, 0.0, FaultMix::gray()).is_empty());
    }

    #[test]
    fn seeded_kills_only_mix_produces_only_kills() {
        let plan = FaultPlan::seeded(3, ms(500), 20, 0.5, FaultMix::kills_only());
        assert!(plan.events().iter().all(|f| f.fault == Fault::Kill));
    }

    #[test]
    fn accounting_is_conserved_over_random_plans() {
        // Property: for any seeded plan, once the whole plan has fired,
        // scheduled == fired + cancelled.
        for seed in 0..50 {
            for mix in [FaultMix::kills_only(), FaultMix::gray()] {
                let plan = FaultPlan::seeded(seed, ms(1000), 16, 0.9, mix);
                let mut inj = FaultInjector::new(&plan, 16);
                inj.advance(SimTime::MAX);
                assert_eq!(
                    inj.scheduled(),
                    inj.fired() + inj.cancelled(),
                    "seed {seed}: {} != {} + {}",
                    inj.scheduled(),
                    inj.fired(),
                    inj.cancelled()
                );
            }
        }
    }

    #[test]
    fn record_surfaces_the_accounting_as_metrics() {
        let plan = FaultPlan::seeded(9, ms(100), 8, 1.0, FaultMix::gray());
        let mut inj = FaultInjector::new(&plan, 8);
        inj.advance(SimTime::MAX);
        let mut m = Metrics::new();
        inj.record(&mut m);
        assert_eq!(m.counter("fault.scheduled"), inj.scheduled());
        assert_eq!(m.counter("fault.fired"), inj.fired());
        assert_eq!(m.counter("fault.cancelled"), inj.cancelled());
        assert_eq!(
            m.counter("fault.scheduled"),
            m.counter("fault.fired") + m.counter("fault.cancelled")
        );
    }

    #[test]
    fn topology_constructors_partition_components() {
        let striped = Topology::striped(6, 3);
        assert_eq!(striped.scopes(), 3);
        assert_eq!(striped.members(1), vec![1, 4]);
        let blocks = Topology::blocks(6, 2);
        assert_eq!(blocks.scopes(), 3);
        assert_eq!(blocks.members(1), vec![2, 3]);
        let flat = Topology::flat(4);
        assert_eq!(flat.scopes(), 4);
        assert_eq!(flat.members(2), vec![2]);
        for topo in [striped, blocks, flat] {
            let mut seen = 0u32;
            for s in 0..topo.scopes() {
                seen += topo.members(s).len() as u32;
            }
            assert_eq!(seen, topo.components(), "scopes partition components");
        }
    }

    #[test]
    fn correlated_fires_every_scope_member_at_the_same_instant() {
        // Property: every fault a correlated plan schedules is part of a
        // scope-wide group — same instant, same fault, one event per
        // member, nothing outside the scope at that instant.
        for seed in 0..32 {
            let topo = Topology::striped(24, 4);
            let plan = FaultPlan::correlated(seed, ms(1000), &topo, 1.0, FaultMix::gray());
            for ev in plan.events() {
                let scope = topo.scope_of(ev.comp);
                for member in topo.members(scope) {
                    assert!(
                        plan.events()
                            .iter()
                            .any(|e| e.at == ev.at && e.comp == member && e.fault == ev.fault),
                        "seed {seed}: member {member} missing from scope {scope} blast at {:?}",
                        ev.at
                    );
                }
            }
        }
    }

    #[test]
    fn correlated_plans_are_pure_and_disjoint_from_seeded() {
        let topo = Topology::blocks(12, 4);
        let a = FaultPlan::correlated(5, ms(500), &topo, 0.5, FaultMix::gray());
        let b = FaultPlan::correlated(5, ms(500), &topo, 0.5, FaultMix::gray());
        assert_eq!(a.events(), b.events());
        // Same seed, flat topology vs per-component seeded: different
        // substreams, different draws.
        let flat = Topology::flat(12);
        let c = FaultPlan::correlated(5, ms(500), &flat, 0.5, FaultMix::gray());
        let s = FaultPlan::seeded(5, ms(500), 12, 0.5, FaultMix::gray());
        assert_ne!(c.events(), s.events());
    }

    #[test]
    fn correlated_budget_is_rate_times_scopes_expanded_by_members() {
        let topo = Topology::striped(60, 3); // 3 racks of 20
        let plan = FaultPlan::correlated(1, ms(100), &topo, 0.5, FaultMix::kills_only());
        // ceil(0.5 * 3) = 2 scope faults x 20 members each.
        assert_eq!(plan.len(), 40);
        assert!(FaultPlan::correlated(1, ms(100), &topo, 0.0, FaultMix::gray()).is_empty());
    }

    #[test]
    fn correlated_accounting_is_conserved() {
        for seed in 0..32 {
            let topo = Topology::blocks(16, 4);
            let plan = FaultPlan::correlated(seed, ms(1000), &topo, 1.0, FaultMix::gray());
            let mut inj = FaultInjector::new(&plan, 16);
            inj.advance(SimTime::MAX);
            assert_eq!(inj.scheduled(), inj.fired() + inj.cancelled());
        }
    }

    #[test]
    fn at_scope_strikes_all_members() {
        let topo = Topology::striped(6, 3);
        let mut plan = FaultPlan::new();
        plan.at_scope(ms(7), &topo, 0, Fault::Kill);
        assert_eq!(plan.len(), 2);
        let mut inj = FaultInjector::new(&plan, 6);
        inj.advance(ms(7));
        assert!(!inj.is_up(0, ms(7)) && !inj.is_up(3, ms(7)));
        assert!(inj.is_up(1, ms(7)) && inj.is_up(2, ms(7)));
    }

    #[test]
    fn up_at_reports_recovery_instants() {
        let mut plan = FaultPlan::new();
        plan.at(ms(10), 0, Fault::Kill);
        plan.at(ms(10), 1, Fault::Pause { for_time: ms(5) });
        let mut inj = FaultInjector::new(&plan, 3);
        inj.advance(ms(10));
        assert_eq!(inj.up_at(0, ms(10)), None, "dead: no planned recovery");
        assert_eq!(inj.up_at(1, ms(12)), Some(ms(15)), "pause expiry");
        assert_eq!(inj.up_at(1, ms(20)), Some(ms(20)), "after expiry: now");
        assert_eq!(inj.up_at(2, ms(10)), Some(ms(10)), "healthy: now");
    }

    #[test]
    fn disruptions_count_work_losing_faults_only() {
        let mut plan = FaultPlan::new();
        plan.at(ms(1), 0, Fault::Pause { for_time: ms(1) });
        plan.at(
            ms(3),
            0,
            Fault::Slow {
                factor: 2.0,
                for_time: ms(1),
            },
        );
        plan.at(ms(5), 0, Fault::Kill);
        plan.at(ms(6), 0, Fault::Restore);
        plan.at(ms(7), 1, Fault::Kill);
        let mut inj = FaultInjector::new(&plan, 2);
        inj.advance(ms(2));
        assert_eq!(inj.disruptions(0), 1, "pause disrupts");
        inj.advance(ms(4));
        assert_eq!(inj.disruptions(0), 1, "slow does not");
        inj.advance(SimTime::MAX);
        assert_eq!(inj.disruptions(0), 2, "kill disrupts; restore does not");
        assert_eq!(inj.disruptions(1), 1);
        assert_eq!(inj.total_disruptions(), 3);
    }

    #[test]
    fn incremental_advance_matches_one_shot_advance() {
        let plan = FaultPlan::seeded(11, ms(200), 10, 0.8, FaultMix::gray());
        let mut step = FaultInjector::new(&plan, 10);
        for t in 0..=200 {
            step.advance(ms(t));
            step.advance(ms(t)); // idempotent per instant
        }
        let mut shot = FaultInjector::new(&plan, 10);
        shot.advance(ms(200));
        assert_eq!(step.fired(), shot.fired());
        assert_eq!(step.cancelled(), shot.cancelled());
        for c in 0..10 {
            assert_eq!(step.is_up(c, ms(200)), shot.is_up(c, ms(200)));
            assert_eq!(step.slowdown(c, ms(200)), shot.slowdown(c, ms(200)));
        }
    }
}
