//! Typed physical quantities.
//!
//! The white paper's central thesis is that **energy is the new first-class
//! design constraint** ("Energy First", §2.2). Getting energy accounting
//! right across a dozen interacting models is far easier when joules, watts,
//! seconds, and operation counts are distinct types: a model cannot
//! accidentally add a per-bit link energy to a per-op compute energy without
//! an explicit conversion.
//!
//! All quantities are thin `f64` newtypes with the obvious arithmetic plus
//! the physically meaningful cross-type operations:
//!
//! * `Power × Seconds = Energy`, `Energy ÷ Seconds = Power`
//! * `Energy ÷ Ops = energy per op (Energy)`, `Ops ÷ Seconds = Frequency`
//!
//! Constructors exist for the SI prefixes the models actually use
//! (picojoules for per-op energies, nanojoules for radio bits, megawatts for
//! datacenters, …).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Raw numeric value in base units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// True if the value is finite and non-negative.
            #[inline]
            pub fn is_physical(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Dimensionless ratio of two like quantities.
        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

quantity!(
    /// Energy in joules.
    Energy,
    "J"
);
quantity!(
    /// Power in watts.
    Power,
    "W"
);
quantity!(
    /// Wall-clock / simulated physical time in seconds.
    ///
    /// Distinct from [`crate::time::SimTime`], which is the integer event
    /// clock of the DES engine; `Seconds` is used by the analytic models.
    Seconds,
    "s"
);
quantity!(
    /// Frequency in hertz.
    Frequency,
    "Hz"
);
quantity!(
    /// Operation count (dimensionless but typed, so ops and bits don't mix).
    Ops,
    "ops"
);
quantity!(
    /// Silicon area in square millimetres.
    Area,
    "mm^2"
);
quantity!(
    /// Supply or threshold voltage in volts.
    Volts,
    "V"
);
quantity!(
    /// Data volume in bits.
    Bits,
    "b"
);

impl Energy {
    /// Construct from picojoules (the natural unit for per-op energies).
    #[inline]
    pub fn from_pj(pj: f64) -> Energy {
        Energy(pj * 1e-12)
    }

    /// Construct from nanojoules (the natural unit for radio bits / DRAM).
    #[inline]
    pub fn from_nj(nj: f64) -> Energy {
        Energy(nj * 1e-9)
    }

    /// Construct from microjoules.
    #[inline]
    pub fn from_uj(uj: f64) -> Energy {
        Energy(uj * 1e-6)
    }

    /// Construct from millijoules.
    #[inline]
    pub fn from_mj(mj: f64) -> Energy {
        Energy(mj * 1e-3)
    }

    /// Construct from kilowatt-hours (battery capacities, datacenter bills).
    #[inline]
    pub fn from_kwh(kwh: f64) -> Energy {
        Energy(kwh * 3.6e6)
    }

    /// Value in picojoules.
    #[inline]
    pub fn pj(self) -> f64 {
        self.0 * 1e12
    }

    /// Value in nanojoules.
    #[inline]
    pub fn nj(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in millijoules.
    #[inline]
    pub fn mj(self) -> f64 {
        self.0 * 1e3
    }
}

impl Power {
    /// Construct from milliwatts (sensor nodes).
    #[inline]
    pub fn from_mw(mw: f64) -> Power {
        Power(mw * 1e-3)
    }

    /// Construct from microwatts.
    #[inline]
    pub fn from_uw(uw: f64) -> Power {
        Power(uw * 1e-6)
    }

    /// Construct from kilowatts (departmental servers).
    #[inline]
    pub fn from_kw(kw: f64) -> Power {
        Power(kw * 1e3)
    }

    /// Construct from megawatts (datacenters).
    #[inline]
    pub fn from_mega_w(mw: f64) -> Power {
        Power(mw * 1e6)
    }

    /// Value in milliwatts.
    #[inline]
    pub fn mw(self) -> f64 {
        self.0 * 1e3
    }

    /// Value in kilowatts.
    #[inline]
    pub fn kw(self) -> f64 {
        self.0 * 1e-3
    }
}

impl Seconds {
    /// Construct from nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> Seconds {
        Seconds(ns * 1e-9)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Seconds {
        Seconds(us * 1e-6)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Seconds {
        Seconds(ms * 1e-3)
    }

    /// Construct from hours.
    #[inline]
    pub fn from_hours(h: f64) -> Seconds {
        Seconds(h * 3600.0)
    }

    /// Value in milliseconds.
    #[inline]
    pub fn ms(self) -> f64 {
        self.0 * 1e3
    }

    /// Value in hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }
}

impl Frequency {
    /// Construct from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Frequency {
        Frequency(mhz * 1e6)
    }

    /// Construct from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Frequency {
        Frequency(ghz * 1e9)
    }

    /// Value in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 * 1e-9
    }

    /// The period of one cycle.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }
}

impl Ops {
    /// Giga-operations constructor.
    #[inline]
    pub fn from_gops(g: f64) -> Ops {
        Ops(g * 1e9)
    }

    /// Tera-operations constructor.
    #[inline]
    pub fn from_tops(t: f64) -> Ops {
        Ops(t * 1e12)
    }
}

impl Bits {
    /// Construct from bytes.
    #[inline]
    pub fn from_bytes(bytes: f64) -> Bits {
        Bits(bytes * 8.0)
    }

    /// Value in bytes.
    #[inline]
    pub fn bytes(self) -> f64 {
        self.0 / 8.0
    }
}

// ---- Physically meaningful cross-type operations -------------------------

impl Mul<Seconds> for Power {
    type Output = Energy;
    /// `P · t = E`
    #[inline]
    fn mul(self, rhs: Seconds) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Mul<Power> for Seconds {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Power) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Energy {
    type Output = Power;
    /// `E / t = P`
    #[inline]
    fn div(self, rhs: Seconds) -> Power {
        Power(self.0 / rhs.0)
    }
}

impl Div<Power> for Energy {
    type Output = Seconds;
    /// `E / P = t` — e.g. battery life.
    #[inline]
    fn div(self, rhs: Power) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<Ops> for Energy {
    type Output = Energy;
    /// Energy per operation (still joules, per one op).
    #[inline]
    fn div(self, rhs: Ops) -> Energy {
        Energy(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Ops {
    type Output = Frequency;
    /// Throughput: ops per second.
    #[inline]
    fn div(self, rhs: Seconds) -> Frequency {
        Frequency(self.0 / rhs.0)
    }
}

impl Div<Frequency> for Ops {
    type Output = Seconds;
    /// Time to execute `ops` at a given throughput.
    #[inline]
    fn div(self, rhs: Frequency) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// Energy efficiency in operations per joule — the quantity the paper's
/// §2.2 "energy pyramid" is written in (e.g. "an exa-op data center that
/// consumes no more than 10 MW" ⇒ 10¹⁸ ops/s ÷ 10⁷ W = 10¹¹ ops/J).
#[inline]
pub fn ops_per_joule(ops: Ops, energy: Energy) -> f64 {
    ops.0 / energy.0
}

/// Giga-operations per watt, the mobile-efficiency unit the paper quotes
/// ("today's ~10 giga-operations/watt", §2.1).
#[inline]
pub fn gops_per_watt(throughput: Frequency, power: Power) -> f64 {
    (throughput.0 / 1e9) / power.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_like_quantities() {
        let a = Energy::from_pj(10.0);
        let b = Energy::from_pj(5.0);
        assert!(((a + b).pj() - 15.0).abs() < 1e-9);
        assert!(((a - b).pj() - 5.0).abs() < 1e-9);
        assert!(((a * 2.0).pj() - 20.0).abs() < 1e-9);
        assert!(((a / 2.0).pj() - 5.0).abs() < 1e-9);
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_times_time_is_energy() {
        let p = Power::from_mw(100.0); // 0.1 W
        let t = Seconds::from_ms(10.0); // 0.01 s
        let e = p * t;
        assert!((e.mj() - 1.0).abs() < 1e-9);
        // and back
        let p2 = e / t;
        assert!((p2.mw() - 100.0).abs() < 1e-9);
        let t2 = e / p;
        assert!((t2.ms() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn battery_life_example() {
        // A 2 Wh battery (7200 J) at 1 W lasts 2 hours.
        let battery = Energy::from_kwh(0.002);
        let draw = Power(1.0);
        let life = battery / draw;
        assert!((life.hours() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_and_period() {
        let f = Frequency::from_ghz(2.0);
        assert!((f.period().value() - 0.5e-9).abs() < 1e-21);
        let ops = Ops::from_gops(4.0);
        let t = ops / f; // 4e9 ops at 2e9 ops/s = 2 s
        assert!((t.value() - 2.0).abs() < 1e-9);
        let thr = ops / Seconds(2.0);
        assert!((thr.ghz() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_pyramid_arithmetic() {
        // Exa-op @ 10 MW ⇒ 1e18/1e7 = 1e11 ops per joule.
        let need = ops_per_joule(Ops(1e18), Power::from_mega_w(10.0) * Seconds(1.0));
        assert!((need - 1e11).abs() / 1e11 < 1e-12);
        // Giga-op sensor @ 10 mW ⇒ also 1e11 ops/J: the pyramid is uniform.
        let sensor = ops_per_joule(Ops(1e9), Power::from_mw(10.0) * Seconds(1.0));
        assert!((sensor - 1e11).abs() / 1e11 < 1e-12);
    }

    #[test]
    fn gops_per_watt_matches_paper_anchor() {
        // "today's ~10 giga-operations/watt": 100 GOPS in 10 W.
        let g = gops_per_watt(Frequency(100e9), Power(10.0));
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats_with_unit() {
        let e = Energy::from_pj(1.0);
        assert_eq!(format!("{e:.2}"), "0.00 J");
        assert_eq!(format!("{}", Power(2.5)), "2.5 W");
    }

    #[test]
    fn is_physical_rejects_nan_and_negative() {
        assert!(Energy(1.0).is_physical());
        assert!(Energy::ZERO.is_physical());
        assert!(!Energy(-1.0).is_physical());
        assert!(!Energy(f64::NAN).is_physical());
        assert!(!Energy(f64::INFINITY).is_physical());
    }

    #[test]
    fn sum_of_quantities() {
        let total: Energy = (0..10).map(|i| Energy::from_pj(i as f64)).sum();
        assert!((total.pj() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_neg() {
        assert_eq!(Power(1.0).max(Power(2.0)), Power(2.0));
        assert_eq!(Power(1.0).min(Power(2.0)), Power(1.0));
        assert_eq!(-Power(1.0), Power(-1.0));
    }

    #[test]
    fn bits_and_bytes() {
        let b = Bits::from_bytes(64.0);
        assert_eq!(b.0, 512.0);
        assert_eq!(b.bytes(), 64.0);
    }
}
