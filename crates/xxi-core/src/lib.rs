//! # xxi-core
//!
//! Foundation crate for the `xxi-arch` framework: an executable model of the
//! research agenda laid out in the community white paper *21st Century
//! Computer Architecture* (CCC, 2012; PPoPP 2014 keynote).
//!
//! The white paper argues that post-Dennard architecture research must treat
//! **energy as the first-class constraint**, span **sensors to clouds**, and
//! cut across layers. Every higher-level crate in the workspace
//! (`xxi-tech`, `xxi-cpu`, `xxi-mem`, `xxi-noc`, `xxi-accel`, `xxi-rel`,
//! `xxi-approx`, `xxi-sensor`, `xxi-cloud`, `xxi-stack`) builds on the
//! primitives defined here:
//!
//! * [`units`] — typed physical quantities (energy, power, time, area,
//!   voltage, operations) so that energy accounting is dimension-checked at
//!   compile time rather than by convention.
//! * [`time`] — picosecond-resolution simulated time for discrete-event
//!   simulation.
//! * [`des`] — a deterministic discrete-event simulation engine used by the
//!   memory, interconnect, sensor-node, and warehouse-scale models, with a
//!   seeded fault-injection seam ([`des::fault`]) that kills, pauses, or
//!   slows named components at scheduled sim-times.
//! * [`stats`] — streaming statistics: Welford moments, exact and P²
//!   (streaming) quantiles, histograms. Tail-latency experiments depend on
//!   faithful percentile math.
//! * [`rng`] — deterministic, splittable pseudo-random generation plus the
//!   distributions the workload generators need (exponential, log-normal,
//!   Pareto, Zipf, normal).
//! * [`par`] — the executor seam for the Monte Carlo hot loops: the
//!   [`par::Parallelism`] trait (implemented by `xxi-stack`'s pool), the
//!   [`par::Serial`] default, and the fixed-grain [`par::mc_chunks`]
//!   chunking that keeps parallel runs byte-identical to serial ones.
//! * [`table`] — plain-text table rendering used by every experiment so
//!   that reproduced tables look like the paper's.
//! * [`report`] — the structured experiment report (sections of tables,
//!   free text, scalar findings) behind the `xxi` driver: renders the
//!   classic text output byte-identically and a stable JSON schema.
//! * [`metrics`] — a lightweight named-counter registry shared by simulators.
//! * [`obs`] — cross-layer observability: a zero-cost-when-disabled trace
//!   recorder hooked into the DES engine (Chrome `trace_event` export), a
//!   fixed-memory log-bucketed latency histogram, and an energy ledger that
//!   attributes joules to components and layers.
//! * [`error`] — the common error type.
//!
//! ## Design notes
//!
//! Determinism is a hard requirement: every simulation result in
//! EXPERIMENTS.md must be reproducible from a seed. The DES engine breaks
//! event-time ties by insertion sequence, and all stochastic inputs flow
//! through [`rng::Rng64`] seeded explicitly.

pub mod des;
pub mod error;
pub mod metrics;
pub mod obs;
pub mod par;
pub mod report;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;
pub mod units;

pub use des::fault::{Fault, FaultInjector, FaultMix, FaultPlan};
pub use des::{ArenaStats, DesStats, Sim, TimerHandle};
pub use error::{Result, XxiError};
pub use obs::{EnergyLedger, Layer, LogHistogram, SpanId, Trace};
pub use par::{Parallelism, Serial};
pub use report::{Finding, Item, ItemBody, Report};
pub use rng::Rng64;
pub use stats::{Histogram, P2Quantile, Streaming, Summary};
pub use table::Table;
pub use time::SimTime;
pub use units::{Area, Energy, Frequency, Ops, Power, Seconds, Volts};
