//! Simulated time for the discrete-event engine.
//!
//! [`SimTime`] is an integer count of **picoseconds** since simulation
//! start. Integer time makes event ordering exact (no floating-point
//! tie-break ambiguity) and picosecond resolution is fine enough to express
//! a single cycle of a 100 GHz photonic link while still giving a simulated
//! horizon of ~5 months in a `u64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::units::Seconds;

/// A point in simulated time, in integer picoseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> SimTime {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> SimTime {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000_000)
    }

    /// Convert a (non-negative, finite) physical duration to sim time,
    /// rounding to the nearest picosecond and saturating at the horizon.
    pub fn from_seconds(s: Seconds) -> SimTime {
        let ps = (s.value() * 1e12).round();
        if !ps.is_finite() || ps < 0.0 {
            return SimTime::ZERO;
        }
        if ps >= u64::MAX as f64 {
            return SimTime::MAX;
        }
        SimTime(ps as u64)
    }

    /// Picoseconds since the epoch.
    #[inline]
    pub const fn ps(self) -> u64 {
        self.0
    }

    /// Value as floating-point nanoseconds.
    #[inline]
    pub fn ns(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Value as floating-point microseconds.
    #[inline]
    pub fn us(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Value as floating-point milliseconds.
    #[inline]
    pub fn ms(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Value as a physical duration.
    #[inline]
    pub fn seconds(self) -> Seconds {
        Seconds(self.0 as f64 * 1e-12)
    }

    /// Saturating addition of a delay.
    #[inline]
    pub fn saturating_add(self, delta: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(delta.0))
    }

    /// Duration since an earlier instant; zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics in debug if `rhs > self` — use [`SimTime::since`] for a
    /// saturating difference.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn roundtrip_through_seconds() {
        let t = SimTime::from_ns(1_500);
        let s = t.seconds();
        assert!((s.value() - 1.5e-6).abs() < 1e-18);
        assert_eq!(SimTime::from_seconds(s), t);
    }

    #[test]
    fn from_seconds_clamps_pathologies() {
        assert_eq!(SimTime::from_seconds(Seconds(-1.0)), SimTime::ZERO);
        assert_eq!(SimTime::from_seconds(Seconds(f64::NAN)), SimTime::ZERO);
        assert_eq!(SimTime::from_seconds(Seconds(1e30)), SimTime::MAX);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(25);
        assert!(a < b);
        assert_eq!(b - a, SimTime::from_ns(15));
        assert_eq!(b.since(a), SimTime::from_ns(15));
        assert_eq!(a.since(b), SimTime::ZERO);
        let mut c = a;
        c += SimTime::from_ns(5);
        assert_eq!(c, SimTime::from_ns(15));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(SimTime(1)), SimTime::MAX);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimTime::from_ps(5).to_string(), "5ps");
        assert_eq!(SimTime::from_ns(5).to_string(), "5.000ns");
        assert_eq!(SimTime::from_us(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_ms(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn resolution_supports_100ghz_cycle() {
        // A 100 GHz cycle is 10 ps — representable exactly.
        let cycle = SimTime::from_seconds(Seconds(1.0 / 100e9));
        assert_eq!(cycle, SimTime::from_ps(10));
    }
}
