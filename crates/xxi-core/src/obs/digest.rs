//! A tiny streaming quantile digest for online policy decisions.
//!
//! [`LogHistogram`](crate::obs::LogHistogram) is the reporting histogram:
//! 16 KiB, forty decades of range, exact moments. A serving policy that
//! keeps one digest *per shard* and consults it on every dispatch wants
//! something an order of magnitude smaller and just as deterministic —
//! that is [`TailDigest`]: 2 KiB of fixed state, O(1) insert, O(buckets)
//! quantile, mergeable, with the same log-bucketed nearest-rank scheme
//! (16 sub-buckets per octave, so quantiles carry at most
//! [`TailDigest::MAX_REL_ERROR`] = 6.25% relative error).
//!
//! The narrower range (2⁻¹⁶ … 2¹⁶, e.g. ~15 ns … ~65 s when samples are
//! milliseconds) is deliberate: adaptive hedging and its kin only care
//! about values near a request budget; anything outside saturates into
//! the edge octaves and is still clamped by the exact min/max.
//!
//! Unlike P²-style estimators ([`crate::stats::P2Quantile`]), the digest
//! is insertion-order independent: merging shard digests or replaying
//! samples in any order yields bit-identical quantiles, which is what the
//! parallel-determinism contract demands of anything a policy reads.

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16 sub-buckets per octave
const E_MIN: i32 = -16;
const E_MAX: i32 = 15;
const OCTAVES: usize = (E_MAX - E_MIN + 1) as usize;
const NBUCKETS: usize = OCTAVES * SUB;

/// Fixed-memory streaming quantile digest (see module docs).
#[derive(Clone, Debug)]
pub struct TailDigest {
    buckets: Box<[u32; NBUCKETS]>,
    /// Samples ≤ 0 — ranked below every positive sample, reported as the
    /// exact minimum.
    nonpos: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for TailDigest {
    fn default() -> TailDigest {
        TailDigest::new()
    }
}

impl TailDigest {
    /// Bound on the relative error of [`TailDigest::quantile`] for
    /// in-range positive samples: one sub-bucket width.
    pub const MAX_REL_ERROR: f64 = 1.0 / SUB as f64;

    /// An empty digest.
    pub fn new() -> TailDigest {
        TailDigest {
            buckets: Box::new([0; NBUCKETS]),
            nonpos: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a finite positive value; out-of-range exponents
    /// saturate into the edge buckets.
    #[inline]
    fn index(x: f64) -> usize {
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < E_MIN {
            return 0;
        }
        if exp > E_MAX {
            return NBUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (exp - E_MIN) as usize * SUB + sub
    }

    /// Midpoint of bucket `i` — the value quantile queries report.
    fn midpoint(i: usize) -> f64 {
        let exp = E_MIN + (i / SUB) as i32;
        let octave = (exp as f64).exp2();
        octave * (1.0 + ((i % SUB) as f64 + 0.5) / SUB as f64)
    }

    /// Record one sample. NaN panics — a NaN latency is always a bug.
    #[inline]
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "TailDigest::add(NaN)");
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x <= 0.0 {
            self.nonpos += 1;
            return;
        }
        let i = Self::index(x);
        self.buckets[i] = self.buckets[i].saturating_add(1);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Nearest-rank quantile, `q ∈ [0, 1]`; 0.0 on an empty digest.
    ///
    /// Same rank arithmetic as [`crate::stats::Summary::percentile`] and
    /// [`crate::obs::LogHistogram::quantile`], within
    /// [`TailDigest::MAX_REL_ERROR`] for positive in-range samples.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.nonpos {
            return self.min;
        }
        let mut acc = self.nonpos;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += u64::from(b);
            if acc >= rank {
                return Self::midpoint(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another digest (shard reduction): counts add, extremes
    /// combine exactly.
    pub fn merge(&mut self, other: &TailDigest) {
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(b);
        }
        self.nonpos += other.nonpos;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;
    use crate::stats::Summary;

    #[test]
    fn empty_digest_defaults() {
        let d = TailDigest::new();
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), 0.0);
    }

    #[test]
    fn quantiles_track_exact_within_bucket_error() {
        let mut rng = Rng64::new(9);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.lognormal(1.6, 0.4)).collect();
        let mut d = TailDigest::new();
        for &x in &xs {
            d.add(x);
        }
        let s = Summary::from_slice(&xs);
        for p in [10.0, 50.0, 95.0, 99.0, 99.9] {
            let exact = s.percentile(p);
            let got = d.quantile(p / 100.0);
            let rel = (got - exact).abs() / exact;
            assert!(
                rel <= TailDigest::MAX_REL_ERROR,
                "p{p}: got {got}, exact {exact}, rel {rel}"
            );
        }
    }

    #[test]
    fn insertion_order_independent_and_merge_equals_sequential() {
        let mut rng = Rng64::new(10);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.exp(0.2)).collect();
        let mut fwd = TailDigest::new();
        let mut rev = TailDigest::new();
        let mut a = TailDigest::new();
        let mut b = TailDigest::new();
        for &x in &xs {
            fwd.add(x);
        }
        for &x in xs.iter().rev() {
            rev.add(x);
        }
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.add(x);
        }
        a.merge(&b);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(fwd.quantile(q).to_bits(), rev.quantile(q).to_bits());
            assert_eq!(fwd.quantile(q).to_bits(), a.quantile(q).to_bits());
        }
        assert_eq!(a.count(), fwd.count());
        assert_eq!(a.min(), fwd.min());
        assert_eq!(a.max(), fwd.max());
    }

    #[test]
    fn out_of_range_and_nonpositive_samples_stay_bounded() {
        let mut d = TailDigest::new();
        for x in [-1.0, 0.0, 1e-9, 2.5, 1e9] {
            d.add(x);
        }
        assert_eq!(d.count(), 5);
        assert_eq!(d.quantile(0.2), -1.0); // nonpos rank reports exact min
        assert!(d.quantile(1.0) <= 1e9);
        assert!(d.quantile(0.0) >= -1.0);
    }

    #[test]
    fn single_sample_is_its_own_quantile() {
        let mut d = TailDigest::new();
        d.add(12.0);
        for q in [0.0, 0.5, 1.0] {
            let v = d.quantile(q);
            assert!((v - 12.0).abs() / 12.0 <= TailDigest::MAX_REL_ERROR);
        }
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        TailDigest::new().add(f64::NAN);
    }

    #[test]
    fn fixed_memory_is_two_kib() {
        assert_eq!(NBUCKETS, 512);
        assert_eq!(std::mem::size_of::<[u32; NBUCKETS]>(), 2 * 1024);
    }
}
