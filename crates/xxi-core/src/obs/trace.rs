//! Event tracing for the simulators: Chrome `trace_event` JSON output.
//!
//! A [`Trace`] records typed *span* (`ph: "X"`) and *instant* (`ph: "i"`)
//! events against the simulated clock and exports them in the Chrome
//! trace-event format, so any run can be opened in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev) and inspected visually — per-request
//! fan-out trees, hedge triggers, sensor duty cycles.
//!
//! ## Zero cost when disabled
//!
//! Every recording method begins with a single predictable branch on
//! `enabled` and returns immediately when tracing is off; a disabled trace
//! never allocates (the guard test in `xxi-bench` asserts exactly this).
//! Simulators can therefore leave trace calls in their hot loops
//! unconditionally.
//!
//! ```
//! use xxi_core::obs::Trace;
//! use xxi_core::SimTime;
//!
//! let mut tr = Trace::enabled();
//! let id = tr.begin("request", "cloud", 0, SimTime::ZERO);
//! tr.instant("hedge-fired", "cloud", 0, SimTime::from_us(9));
//! tr.end(id, SimTime::from_us(12));
//! let json = tr.chrome_json();
//! assert!(json.contains("\"ph\":\"X\""));
//! assert!(json.contains("\"ph\":\"i\""));
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::time::SimTime;

/// Default cap on recorded events; beyond it new events are counted in
/// [`Trace::dropped`] instead of stored, bounding trace memory for long
/// simulations.
pub const DEFAULT_EVENT_LIMIT: usize = 1 << 20;

/// Handle to an open span returned by [`Trace::begin`].
///
/// Must be closed with [`Trace::end`]. Handles from a disabled trace are
/// inert sentinels; ending them is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    const DISABLED: SpanId = SpanId(u32::MAX);
}

#[derive(Clone, Debug)]
enum Phase {
    /// Complete span: `ph: "X"` with a duration.
    Span(SimTime),
    /// Instant event: `ph: "i"`, thread scope.
    Instant,
}

#[derive(Clone, Debug)]
struct Event {
    name: &'static str,
    cat: &'static str,
    track: u64,
    ts: SimTime,
    phase: Phase,
    args: Vec<(&'static str, f64)>,
}

#[derive(Clone, Debug)]
struct Open {
    name: &'static str,
    cat: &'static str,
    track: u64,
    start: SimTime,
    live: bool,
}

/// A recorder of span/instant events on the simulated clock.
///
/// Tracks (`tid` in the Chrome output) let concurrent activities — leaves
/// of a fan-out, mesh nodes, sensor subsystems — render on separate rows.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
    open: Vec<Open>,
    /// Events discarded after the event limit was reached.
    dropped: u64,
    limit: usize,
}

impl Trace {
    /// A disabled trace: records nothing, allocates nothing.
    pub fn disabled() -> Trace {
        Trace {
            enabled: false,
            events: Vec::new(),
            open: Vec::new(),
            dropped: 0,
            limit: DEFAULT_EVENT_LIMIT,
        }
    }

    /// An enabled trace with the default event limit.
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            ..Trace::disabled()
        }
    }

    /// An enabled trace that stores at most `limit` events (further events
    /// are counted in [`Trace::dropped`]).
    pub fn with_limit(limit: usize) -> Trace {
        Trace {
            enabled: true,
            limit,
            ..Trace::disabled()
        }
    }

    /// Whether this trace records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded because the limit was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Capacity of the event buffer — zero for a trace that has never been
    /// enabled, which is the "disabled tracing allocates nothing"
    /// guarantee the overhead guard asserts.
    pub fn events_capacity(&self) -> usize {
        self.events.capacity()
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        if self.events.len() >= self.limit {
            self.dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    /// Record an instant event at `ts` on `track`.
    #[inline]
    pub fn instant(&mut self, name: &'static str, cat: &'static str, track: u64, ts: SimTime) {
        if !self.enabled {
            return;
        }
        self.push(Event {
            name,
            cat,
            track,
            ts,
            phase: Phase::Instant,
            args: Vec::new(),
        });
    }

    /// Record an instant event with numeric arguments.
    pub fn instant_args(
        &mut self,
        name: &'static str,
        cat: &'static str,
        track: u64,
        ts: SimTime,
        args: &[(&'static str, f64)],
    ) {
        if !self.enabled {
            return;
        }
        self.push(Event {
            name,
            cat,
            track,
            ts,
            phase: Phase::Instant,
            args: args.to_vec(),
        });
    }

    /// Open a span starting at `ts`; close it with [`Trace::end`].
    #[inline]
    pub fn begin(
        &mut self,
        name: &'static str,
        cat: &'static str,
        track: u64,
        ts: SimTime,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::DISABLED;
        }
        // Reuse a dead slot if one exists to keep `open` small.
        if let Some(idx) = self.open.iter().position(|o| !o.live) {
            self.open[idx] = Open {
                name,
                cat,
                track,
                start: ts,
                live: true,
            };
            return SpanId(idx as u32);
        }
        self.open.push(Open {
            name,
            cat,
            track,
            start: ts,
            live: true,
        });
        SpanId((self.open.len() - 1) as u32)
    }

    /// Close span `id` at `ts`, emitting a complete (`ph: "X"`) event.
    #[inline]
    pub fn end(&mut self, id: SpanId, ts: SimTime) {
        self.end_args(id, ts, &[]);
    }

    /// Close span `id` at `ts` with numeric arguments attached.
    pub fn end_args(&mut self, id: SpanId, ts: SimTime, args: &[(&'static str, f64)]) {
        if !self.enabled || id == SpanId::DISABLED {
            return;
        }
        let Some(o) = self.open.get_mut(id.0 as usize) else {
            return;
        };
        if !o.live {
            return;
        }
        o.live = false;
        let (name, cat, track, start) = (o.name, o.cat, o.track, o.start);
        self.push(Event {
            name,
            cat,
            track,
            ts: start,
            phase: Phase::Span(ts.since(start)),
            args: args.to_vec(),
        });
    }

    /// Record a complete span `[start, end)` in one call.
    #[inline]
    pub fn span(
        &mut self,
        name: &'static str,
        cat: &'static str,
        track: u64,
        start: SimTime,
        end: SimTime,
    ) {
        self.span_args(name, cat, track, start, end, &[]);
    }

    /// Record a complete span with numeric arguments.
    pub fn span_args(
        &mut self,
        name: &'static str,
        cat: &'static str,
        track: u64,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, f64)],
    ) {
        if !self.enabled {
            return;
        }
        self.push(Event {
            name,
            cat,
            track,
            ts: start,
            phase: Phase::Span(end.since(start)),
            args: args.to_vec(),
        });
    }

    /// Render as Chrome `trace_event` JSON (the "JSON array format"):
    /// one object per event, `ph` either `"X"` (complete span, with `dur`)
    /// or `"i"` (instant), timestamps in microseconds.
    pub fn chrome_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.events.len() * 96);
        s.push_str("[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            s.push('{');
            write!(s, "\"name\":\"{}\"", escape(ev.name)).unwrap(); // xxi-allow: panic-path -- fmt::Write to String is infallible
            write!(s, ",\"cat\":\"{}\"", escape(ev.cat)).unwrap(); // xxi-allow: panic-path -- fmt::Write to String is infallible
            match ev.phase {
                Phase::Span(dur) => {
                    write!(
                        s,
                        ",\"ph\":\"X\",\"ts\":{:.6},\"dur\":{:.6}",
                        ev.ts.us(),
                        dur.us()
                    )
                    .unwrap(); // xxi-allow: panic-path -- fmt::Write to String is infallible
                }
                Phase::Instant => {
                    // xxi-allow: panic-path -- fmt::Write to String is infallible
                    write!(s, ",\"ph\":\"i\",\"ts\":{:.6},\"s\":\"t\"", ev.ts.us()).unwrap();
                }
            }
            write!(s, ",\"pid\":0,\"tid\":{}", ev.track).unwrap(); // xxi-allow: panic-path -- fmt::Write to String is infallible
            if !ev.args.is_empty() {
                s.push_str(",\"args\":{");
                for (j, (k, v)) in ev.args.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    if v.is_finite() {
                        write!(s, "\"{}\":{v}", escape(k)).unwrap(); // xxi-allow: panic-path -- fmt::Write to String is infallible
                    } else {
                        // JSON has no NaN/inf literals.
                        write!(s, "\"{}\":null", escape(k)).unwrap(); // xxi-allow: panic-path -- fmt::Write to String is infallible
                    }
                }
                s.push('}');
            }
            s.push('}');
        }
        s.push_str("\n]\n");
        s
    }

    /// Write the Chrome JSON to `path`.
    pub fn save_chrome_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.chrome_json())
    }

    /// A plain-text timeline, one line per event in time order — the quick
    /// look when a browser is not at hand.
    pub fn timeline(&self) -> String {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| (self.events[i].ts, i));
        let mut s = String::new();
        for i in order {
            let ev = &self.events[i];
            match ev.phase {
                Phase::Span(dur) => {
                    let _ = writeln!(
                        s,
                        "[{:>14}] {}/{} track={} dur={}",
                        ev.ts.to_string(),
                        ev.cat,
                        ev.name,
                        ev.track,
                        dur
                    );
                }
                Phase::Instant => {
                    let _ = writeln!(
                        s,
                        "[{:>14}] {}/{} track={} (instant)",
                        ev.ts.to_string(),
                        ev.cat,
                        ev.name,
                        ev.track
                    );
                }
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(
                s,
                "({} events dropped past the {}-event limit)",
                self.dropped, self.limit
            );
        }
        s
    }
}

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal recursive-descent JSON reader, enough to validate shape:
    /// returns the parsed value or None on malformed input.
    #[derive(Debug, PartialEq)]
    enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        fn as_num(&self) -> Option<f64> {
            match self {
                Json::Num(x) => Some(*x),
                _ => None,
            }
        }
        fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    fn parse(s: &str) -> Option<Json> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i == b.len() {
            Some(v)
        } else {
            None
        }
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Option<Json> {
        skip_ws(b, i);
        match *b.get(*i)? {
            b'{' => {
                *i += 1;
                let mut kvs = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Some(Json::Obj(kvs));
                }
                loop {
                    skip_ws(b, i);
                    let Json::Str(k) = value(b, i)? else {
                        return None;
                    };
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return None;
                    }
                    *i += 1;
                    kvs.push((k, value(b, i)?));
                    skip_ws(b, i);
                    match b.get(*i)? {
                        b',' => *i += 1,
                        b'}' => {
                            *i += 1;
                            return Some(Json::Obj(kvs));
                        }
                        _ => return None,
                    }
                }
            }
            b'[' => {
                *i += 1;
                let mut xs = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Some(Json::Arr(xs));
                }
                loop {
                    xs.push(value(b, i)?);
                    skip_ws(b, i);
                    match b.get(*i)? {
                        b',' => *i += 1,
                        b']' => {
                            *i += 1;
                            return Some(Json::Arr(xs));
                        }
                        _ => return None,
                    }
                }
            }
            b'"' => {
                *i += 1;
                let mut s = String::new();
                loop {
                    match *b.get(*i)? {
                        b'"' => {
                            *i += 1;
                            return Some(Json::Str(s));
                        }
                        b'\\' => {
                            *i += 1;
                            match *b.get(*i)? {
                                b'"' => s.push('"'),
                                b'\\' => s.push('\\'),
                                b'n' => s.push('\n'),
                                b'r' => s.push('\r'),
                                b't' => s.push('\t'),
                                b'u' => {
                                    let hex = std::str::from_utf8(b.get(*i + 1..*i + 5)?).ok()?;
                                    let cp = u32::from_str_radix(hex, 16).ok()?;
                                    s.push(char::from_u32(cp)?);
                                    *i += 4;
                                }
                                _ => return None,
                            }
                            *i += 1;
                        }
                        c => {
                            s.push(c as char);
                            *i += 1;
                        }
                    }
                }
            }
            b'n' => {
                *i += 4;
                Some(Json::Null)
            }
            b't' => {
                *i += 4;
                Some(Json::Bool(true))
            }
            b'f' => {
                *i += 5;
                Some(Json::Bool(false))
            }
            _ => {
                let start = *i;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                std::str::from_utf8(&b[start..*i])
                    .ok()?
                    .parse::<f64>()
                    .ok()
                    .map(Json::Num)
            }
        }
    }

    #[test]
    fn chrome_json_shape_is_valid() {
        // The acceptance-criteria shape check: an array of objects, every
        // event `ph: "X"` (with ts+dur) or `ph: "i"` (with ts), times in
        // microseconds.
        let mut tr = Trace::enabled();
        let id = tr.begin("request", "cloud", 0, SimTime::ZERO);
        for leaf in 0..3u64 {
            tr.span_args(
                "leaf",
                "cloud",
                leaf + 1,
                SimTime::from_us(1),
                SimTime::from_us(5 + leaf),
                &[("leaf", leaf as f64)],
            );
        }
        tr.instant("hedge-fired", "cloud", 0, SimTime::from_us(9));
        tr.end(id, SimTime::from_us(12));

        let json = tr.chrome_json();
        let Some(Json::Arr(events)) = parse(&json) else {
            panic!("trace output is not a JSON array:\n{json}");
        };
        assert_eq!(events.len(), 5);
        let mut spans = 0;
        let mut instants = 0;
        for ev in &events {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
            let ts = ev.get("ts").and_then(Json::as_num).expect("ts");
            assert!(ts >= 0.0);
            assert!(ev.get("name").and_then(Json::as_str).is_some());
            assert!(ev.get("pid").and_then(Json::as_num).is_some());
            assert!(ev.get("tid").and_then(Json::as_num).is_some());
            match ph {
                "X" => {
                    spans += 1;
                    let dur = ev.get("dur").and_then(Json::as_num).expect("dur");
                    assert!(dur >= 0.0);
                }
                "i" => instants += 1,
                other => panic!("unexpected ph {other:?}"),
            }
        }
        assert_eq!(spans, 4);
        assert_eq!(instants, 1);

        // Timestamps are microseconds: the request span runs 0 → 12 µs.
        let req = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("request"))
            .unwrap();
        assert_eq!(req.get("ts").and_then(Json::as_num), Some(0.0));
        assert_eq!(req.get("dur").and_then(Json::as_num), Some(12.0));
    }

    #[test]
    fn disabled_trace_records_and_allocates_nothing() {
        let mut tr = Trace::disabled();
        for i in 0..10_000 {
            let id = tr.begin("s", "c", 0, SimTime::from_ns(i));
            tr.instant("x", "c", 0, SimTime::from_ns(i));
            tr.end(id, SimTime::from_ns(i + 1));
        }
        assert!(tr.is_empty());
        assert_eq!(tr.events_capacity(), 0);
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn event_limit_drops_not_grows() {
        let mut tr = Trace::with_limit(4);
        for i in 0..10u64 {
            tr.instant("e", "c", 0, SimTime::from_ns(i));
        }
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.dropped(), 6);
        assert!(tr.timeline().contains("dropped"));
    }

    #[test]
    fn names_are_escaped() {
        let mut tr = Trace::enabled();
        tr.instant("quote\"back\\slash", "c", 0, SimTime::ZERO);
        let json = tr.chrome_json();
        assert!(parse(&json).is_some(), "escaping broke JSON:\n{json}");
    }

    #[test]
    fn span_ids_are_reusable_slots() {
        let mut tr = Trace::enabled();
        let a = tr.begin("a", "c", 0, SimTime::ZERO);
        tr.end(a, SimTime::from_ns(1));
        let b = tr.begin("b", "c", 0, SimTime::from_ns(2));
        // Slot reuse: ending `a` again must not corrupt `b`.
        tr.end(a, SimTime::from_ns(3));
        tr.end(b, SimTime::from_ns(4));
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn timeline_is_time_ordered() {
        let mut tr = Trace::enabled();
        tr.instant("late", "c", 0, SimTime::from_us(5));
        tr.instant("early", "c", 0, SimTime::from_us(1));
        let tl = tr.timeline();
        let early = tl.find("early").unwrap();
        let late = tl.find("late").unwrap();
        assert!(early < late);
    }

    #[test]
    fn nonfinite_args_serialize_as_null() {
        let mut tr = Trace::enabled();
        tr.instant_args("e", "c", 0, SimTime::ZERO, &[("bad", f64::NAN)]);
        let json = tr.chrome_json();
        assert!(parse(&json).is_some());
        assert!(json.contains("\"bad\":null"));
    }
}
